// Compression x ABORT_TIME sweep: how gradient wire codecs shift SpecSync's
// speculation economics.
//
// SpecSync's abort decision trades wasted compute against fresher parameters;
// the re-pull after an abort costs bytes-on-wire. A codec that shrinks pushes
// (top-k, int8, fp16) or makes unchanged pulls nearly free (delta) changes
// that trade, so the sweep runs every codec at two ABORT_TIME operating
// points and reports convergence cost next to the byte ledger. The headline
// acceptance number: top-k at 1% on MF cuts push bytes per push by >= 10x
// versus the uncompressed baseline.
//
// Results land in BENCH_compression.json (machine-readable, gated in CI via
// scripts/bench_compare.py and a minimum bytes-saved check); --smoke shrinks
// the grid to a seconds-long sanity pass.
#include <iostream>
#include <string>
#include <vector>

#include "benchmarks/bench_util.h"
#include "common/check.h"

using namespace specsync;

namespace {

// One codec column of the sweep; series[a] is the cell at abort point a.
struct CodecCell {
  CompressionSpec spec;
  std::vector<std::size_t> series;
};

double MeanPushBytesPerPush(const std::vector<ExperimentResult>& runs) {
  double bytes = 0.0;
  double pushes = 0.0;
  for (const ExperimentResult& run : runs) {
    bytes += static_cast<double>(
        run.sim.transfers.bytes(TransferCategory::kPushGrads));
    pushes += static_cast<double>(run.sim.total_pushes);
  }
  return pushes > 0.0 ? bytes / pushes : 0.0;
}

double MeanBytes(const std::vector<ExperimentResult>& runs,
                 TransferCategory category, bool saved = false) {
  double total = 0.0;
  for (const ExperimentResult& run : runs) {
    total += static_cast<double>(saved
                                     ? run.sim.transfers.saved_bytes(category)
                                     : run.sim.transfers.bytes(category));
  }
  return runs.empty() ? 0.0 : total / static_cast<double>(runs.size());
}

CompressionSpec MustParse(const char* text) {
  auto spec = CompressionSpec::Parse(text);
  SPECSYNC_CHECK(spec.has_value()) << "bad codec literal: " << text;
  return *spec;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::PrintHeader(
      "Compression x ABORT_TIME — codec cost/benefit under speculation",
      "cheaper re-pulls and smaller pushes shift the optimal ABORT_TIME; "
      "top-k 1% cuts MF push bytes >= 10x");

  const Workload workload = MakeMfWorkload(1, args.smoke ? 0.5 : 1.0);
  const std::size_t num_workers = args.smoke ? 8 : 40;
  const std::size_t replicates = args.smoke ? 1 : 2;
  const SimTime horizon =
      SimTime::FromSeconds(args.smoke ? 400.0 : 1200.0);
  // The CherryParams operating point (0.35 iterations) plus a window twice as
  // wide: with cheap re-pulls the wider window's extra aborts cost less, so
  // the two points bracket how a codec moves the tuning curve.
  const std::vector<double> abort_iters = {0.35, 0.70};

  std::vector<CodecCell> cells;
  for (const char* literal : {"none", "topk:0.01", "int8", "fp16", "delta"}) {
    cells.push_back({MustParse(literal), {}});
  }

  bench::CellBatch batch;
  for (CodecCell& cell : cells) {
    for (double iters : abort_iters) {
      SpeculationParams params;
      params.abort_time = workload.iteration_time * iters;
      params.abort_rate = 0.22;
      ExperimentConfig config;
      config.cluster = ClusterSpec::Homogeneous(num_workers);
      config.cluster.num_servers = args.num_servers;
      config.scheme = SchemeSpec::Cherrypick(params);
      config.max_time = horizon;
      config.stop_on_convergence = false;  // full horizon: comparable ledgers
      config.compression = cell.spec;
      cell.series.push_back(
          batch.AddSeries(workload, config,
                          replicates,
                          cell.spec.Label() + "|abort" + std::to_string(iters)));
    }
  }
  batch.Run(args.threads);

  bench::BenchReporter reporter("bench_compression", "BENCH_compression.json");
  reporter.AddBatch(batch);

  std::cout << "\nMF, " << num_workers << " workers, " << args.num_servers
            << " servers, Cherrypick, horizon " << horizon.seconds() << "s"
            << (args.smoke ? " (smoke)" : "") << "\n";
  for (std::size_t a = 0; a < abort_iters.size(); ++a) {
    const double baseline =
        MeanPushBytesPerPush(batch.Series(cells[0].series[a]));
    std::cout << "\n--- ABORT_TIME = " << abort_iters[a]
              << " x iteration time ---\n";
    Table table({"codec", "time_to_target(s)", "converged_frac",
                 "push_B_per_push", "push_reduction_vs_none",
                 "pull(MB)", "saved(MB)"});
    for (const CodecCell& cell : cells) {
      const std::vector<ExperimentResult>& runs =
          batch.Series(cell.series[a]);
      const double per_push = MeanPushBytesPerPush(runs);
      const double reduction =
          per_push > 0.0 ? baseline / per_push : 0.0;
      table.AddRowValues(
          cell.spec.Label(),
          bench::MeanTimeToTarget(runs, workload.loss_target,
                                  horizon - SimTime::Zero()),
          bench::ConvergedFraction(runs, workload.loss_target), per_push,
          reduction,
          MeanBytes(runs, TransferCategory::kPullParams) / 1e6,
          (MeanBytes(runs, TransferCategory::kPushGrads, /*saved=*/true) +
           MeanBytes(runs, TransferCategory::kPullParams, /*saved=*/true)) /
              1e6);
      // Headline metrics (first abort point): the CI gate reads these.
      if (a == 0 && cell.spec.enabled()) {
        const std::string name =
            std::string(CodecKindName(cell.spec.kind)) +
            "_push_reduction";
        reporter.AddMetric(name, reduction);
      }
    }
    table.PrintPretty(std::cout);
  }

  // Delta's benefit is on the pull side: fraction of pull bytes the
  // version-gated protocol avoided shipping (saved / (charged + saved)).
  {
    const std::vector<ExperimentResult>& delta_runs =
        batch.Series(cells[4].series[0]);
    const double charged =
        MeanBytes(delta_runs, TransferCategory::kPullParams);
    const double saved =
        MeanBytes(delta_runs, TransferCategory::kPullParams, /*saved=*/true);
    reporter.AddMetric("delta_pull_savings_fraction",
                       charged + saved > 0.0 ? saved / (charged + saved)
                                             : 0.0);
  }

  reporter.CellTable().PrintCsv(std::cout);
  reporter.WriteJson();

  // --metrics_out/--trace_out: one instrumented top-k run (net.codec.*
  // counters populated).
  {
    SpeculationParams params;
    params.abort_time = workload.iteration_time * abort_iters[0];
    params.abort_rate = 0.22;
    ExperimentConfig obs_config;
    obs_config.cluster = ClusterSpec::Homogeneous(num_workers);
    obs_config.cluster.num_servers = args.num_servers;
    obs_config.scheme = SchemeSpec::Cherrypick(params);
    obs_config.max_time = horizon;
    obs_config.stop_on_convergence = false;
    obs_config.seed = bench::kBenchRootSeed;
    obs_config.compression = cells[1].spec;  // topk:0.01
    bench::EmitObsArtifacts(args, workload, obs_config);
  }
  return 0;
}
