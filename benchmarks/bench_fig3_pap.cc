// Fig. 3: distribution of pushes-after-a-pull (PAP) per 1-second interval.
//
// Paper: CIFAR-10 on 40 ASP workers, ~14 s iterations; each 1 s interval
// after a pull receives a roughly uniform number of pushes from others, with
// wide whiskers; the median count within the first two seconds exceeds 6.
#include <iostream>

#include "benchmarks/bench_util.h"
#include "trace/pap_analysis.h"

using namespace specsync;

namespace {

void PapPanel(const Workload& workload, std::size_t num_intervals,
              double interval_seconds, SimTime horizon) {
  ExperimentConfig config;
  config.cluster = ClusterSpec::Homogeneous(40);
  config.scheme = SchemeSpec::Original();  // ASP, as in the paper's study
  config.max_time = horizon;
  config.stop_on_convergence = false;
  config.seed = 17;
  const ExperimentResult run = RunExperiment(workload, config);

  PapConfig pap_config;
  pap_config.interval = Duration::Seconds(interval_seconds);
  pap_config.num_intervals = num_intervals;
  const PapResult pap = AnalyzePap(run.sim.trace, pap_config);

  std::cout << "\n--- " << workload.name << " (iteration ~"
            << workload.iteration_time.seconds() << "s, " << 40
            << " workers, ASP) ---\n";
  Table table({"interval", "p5", "p25", "median", "p75", "p95", "mean"});
  for (std::size_t k = 0; k < num_intervals; ++k) {
    const BoxSummary& box = pap.per_interval[k];
    std::ostringstream label;
    label << k * interval_seconds << "-" << (k + 1) * interval_seconds << "s";
    table.AddRowValues(label.str(), box.p5, box.p25, box.p50, box.p75, box.p95,
                       pap.mean_per_interval[k]);
  }
  table.PrintPretty(std::cout);
  std::cout << "median PAP within first two intervals: "
            << pap.median_first_two
            << "  (paper, CIFAR-10: > 6 of 39 possible)\n";
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig. 3 — PAP distribution per interval after a pull",
      "approximately uniform arrivals with wide dispersion; median > 6 "
      "within 2 s of a 14 s CIFAR-10 iteration (40 workers)");

  PapPanel(MakeCifar10Workload(1), /*num_intervals=*/14,
           /*interval_seconds=*/1.0, SimTime::FromSeconds(700.0));
  PapPanel(MakeMfWorkload(1), /*num_intervals=*/12, /*interval_seconds=*/0.25,
           SimTime::FromSeconds(240.0));
  return 0;
}
