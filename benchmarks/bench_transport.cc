// Multi-process loopback transport bench: the sharded PS as real processes.
//
// Not a paper figure — a harness-health bench for src/net. It forks one
// server process per shard (each owning a full-dim ParameterServer but
// serving ONLY its own shard, exactly the multi-machine topology on
// loopback), then drives worker threads in the parent through per-shard
// ShardClients: every iteration is a composed Pull (one request per shard,
// concurrently) followed by a dense Push (per-shard slices + commits).
// Per-shard RTT histograms, retry/timeout counters, and injected-fault
// counts land in src/obs metrics, printable and exportable as metrics.json.
//
// Fault injection runs over the actual wire: --drop/--delay/--dup attach a
// FaultPlan to every client, so requests are really never sent (burning the
// timeout), held back, or sent twice — the bench doubles as a soak test that
// the retry protocol terminates under loss.
//
// Flags:
//   --num_servers=N   shard/server-process count        (default 4)
//   --workers=N       worker threads in the parent      (default 4)
//   --iters=N         pull+push iterations per worker   (default 200)
//   --dim=N           parameter dimension               (default 4096)
//   --drop=P --delay=P --dup=P   per-message fault probabilities (default 0)
//   --smoke           CI variant: tiny grid, and drop/delay default to 0.05
//                     so the retry path is exercised on every CI run
//   --metrics_out=P   write the metrics.json snapshot to P
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/table.h"
#include "fault/fault_plan.h"
#include "net/shard_client.h"
#include "net/shard_server.h"
#include "obs/obs.h"
#include "optim/lr_schedule.h"
#include "ps/param_store.h"

using namespace specsync;

namespace {

struct Args {
  std::size_t num_servers = 4;
  std::size_t workers = 4;
  std::size_t iters = 200;
  std::size_t dim = 4096;
  double drop = -1.0;  // negative = unset (lets --smoke pick its default)
  double delay = -1.0;
  double dup = -1.0;
  bool smoke = false;
  std::string metrics_out;
};

[[noreturn]] void Usage(const std::string& bad) {
  std::cerr << "bench_transport: bad flag '" << bad << "'\n"
            << "usage: bench_transport [--num_servers=N] [--workers=N]"
               " [--iters=N] [--dim=N] [--drop=P] [--delay=P] [--dup=P]"
               " [--smoke] [--metrics_out=PATH]\n";
  std::exit(2);
}

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    try {
      if (key == "--num_servers") {
        args.num_servers = std::stoul(value);
      } else if (key == "--workers") {
        args.workers = std::stoul(value);
      } else if (key == "--iters") {
        args.iters = std::stoul(value);
      } else if (key == "--dim") {
        args.dim = std::stoul(value);
      } else if (key == "--drop") {
        args.drop = std::stod(value);
      } else if (key == "--delay") {
        args.delay = std::stod(value);
      } else if (key == "--dup") {
        args.dup = std::stod(value);
      } else if (key == "--smoke") {
        args.smoke = true;
      } else if (key == "--metrics_out") {
        args.metrics_out = value;
      } else {
        Usage(arg);
      }
    } catch (const std::exception&) {
      Usage(arg);
    }
  }
  if (args.smoke) {
    args.num_servers = std::min<std::size_t>(args.num_servers, 3);
    args.workers = std::min<std::size_t>(args.workers, 3);
    args.iters = std::min<std::size_t>(args.iters, 30);
    args.dim = std::min<std::size_t>(args.dim, 512);
    // Smoke must exercise the retry protocol, not just the happy path.
    if (args.drop < 0.0) args.drop = 0.05;
    if (args.delay < 0.0) args.delay = 0.05;
  }
  if (args.drop < 0.0) args.drop = 0.0;
  if (args.delay < 0.0) args.delay = 0.0;
  if (args.dup < 0.0) args.dup = 0.0;
  if (args.num_servers == 0 || args.workers == 0 || args.dim == 0) {
    Usage("--num_servers/--workers/--dim must be positive");
  }
  return args;
}

bool WriteAll(int fd, const void* data, std::size_t bytes) {
  const char* p = static_cast<const char*>(data);
  while (bytes > 0) {
    const ssize_t n = ::write(fd, p, bytes);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    bytes -= static_cast<std::size_t>(n);
  }
  return true;
}

bool ReadAll(int fd, void* data, std::size_t bytes) {
  char* p = static_cast<char*>(data);
  while (bytes > 0) {
    const ssize_t n = ::read(fd, p, bytes);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF before the full value
    p += n;
    bytes -= static_cast<std::size_t>(n);
  }
  return true;
}

// The server process for one shard: a full-dim store (identically
// initialized in every process, so composed pulls are coherent) behind a
// ShardServer answering only for `shard`. Reports its ephemeral port through
// `port_wr`, then serves until the parent closes `shutdown_rd` (EOF).
int RunShardProcess(std::size_t shard, const Args& args, int port_wr,
                    int shutdown_rd) {
  auto applier = std::make_shared<SgdApplier>(
      std::make_shared<ConstantSchedule>(0.01));
  ParameterServer store(args.dim, args.num_servers, std::move(applier));
  DenseVector params(args.dim);
  for (std::size_t i = 0; i < args.dim; ++i) {
    params[i] = 0.001 * static_cast<double>(i % 97);
  }
  store.SetParams(std::move(params));

  net::ShardServerConfig config;
  config.served_shards = {shard};
  net::ShardServer server(&store, config);
  if (!server.Start()) return 1;

  const std::uint16_t port = server.port();
  if (!WriteAll(port_wr, &port, sizeof(port))) return 1;
  ::close(port_wr);

  char byte = 0;
  for (;;) {
    const ssize_t n = ::read(shutdown_rd, &byte, 1);
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF (parent closed its end) or error: shut down either way
  }
  ::close(shutdown_rd);
  server.Stop();
  return 0;
}

struct WorkerTally {
  net::ShardClient::Stats stats;
  std::uint64_t pulls = 0;
  std::uint64_t pushes = 0;
  bool ok = false;
};

}  // namespace

int main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  std::cout << "bench_transport: multi-process loopback shard transport"
            << (args.smoke ? " (smoke)" : "") << "\n"
            << "  servers=" << args.num_servers << " workers=" << args.workers
            << " iters=" << args.iters << " dim=" << args.dim
            << " drop=" << args.drop << " delay=" << args.delay
            << " dup=" << args.dup << "\n\n";

  // Fork every server process BEFORE any threads exist in the parent
  // (fork+threads only mix safely when the child immediately execs, which
  // these children do not).
  struct Child {
    pid_t pid = -1;
    int shutdown_wr = -1;
    std::uint16_t port = 0;
  };
  std::vector<Child> children(args.num_servers);
  std::vector<int> parent_fds;  // parent-side fds later children must close
  for (std::size_t s = 0; s < args.num_servers; ++s) {
    int port_pipe[2] = {-1, -1};
    int shutdown_pipe[2] = {-1, -1};
    SPECSYNC_CHECK_EQ(::pipe(port_pipe), 0);
    SPECSYNC_CHECK_EQ(::pipe(shutdown_pipe), 0);
    const pid_t pid = ::fork();
    SPECSYNC_CHECK_GE(pid, 0) << "fork failed: " << std::strerror(errno);
    if (pid == 0) {
      // Child: drop every parent-side descriptor, including the shutdown
      // write ends of earlier siblings (holding one would keep a sibling's
      // EOF from ever arriving).
      for (const int fd : parent_fds) ::close(fd);
      ::close(port_pipe[0]);
      ::close(shutdown_pipe[1]);
      const int rc =
          RunShardProcess(s, args, port_pipe[1], shutdown_pipe[0]);
      ::_exit(rc);
    }
    ::close(port_pipe[1]);
    ::close(shutdown_pipe[0]);
    children[s].pid = pid;
    children[s].shutdown_wr = shutdown_pipe[1];
    parent_fds.push_back(port_pipe[0]);
    parent_fds.push_back(shutdown_pipe[1]);
    if (!ReadAll(port_pipe[0], &children[s].port, sizeof(std::uint16_t))) {
      std::cerr << "bench_transport: shard " << s
                << " server failed to report a port\n";
      return 1;
    }
    ::close(port_pipe[0]);
  }

  // Endpoint table from the one canonical shard layout.
  net::ShardClientConfig client_config;
  const auto split = ParameterServer::ShardSplit(args.dim, args.num_servers);
  for (std::size_t s = 0; s < args.num_servers; ++s) {
    client_config.shards.push_back(net::ShardEndpoint{
        split[s].first, split[s].second, children[s].port});
  }
  client_config.request_timeout = std::chrono::milliseconds(100);
  client_config.max_attempts = 64;

  FaultPlanConfig fault_config;
  fault_config.data.drop_probability = args.drop;
  fault_config.data.delay_probability = args.delay;
  fault_config.data.delay_mean = Duration::Milliseconds(1.0);
  fault_config.data.duplicate_probability = args.dup;
  fault_config.seed = 1234;
  FaultPlan faults(fault_config);
  FaultPlan* fault_ptr = faults.enabled() ? &faults : nullptr;

  obs::ObsContext obs;
  const auto bench_start = std::chrono::steady_clock::now();
  std::vector<WorkerTally> tallies(args.workers);
  {
    std::vector<std::jthread> workers;
    for (std::size_t w = 0; w < args.workers; ++w) {
      workers.emplace_back([&, w] {
        try {
          net::ShardClient client(client_config, fault_ptr, &obs.metrics);
          if (!client.Connect()) {
            std::cerr << "worker " << w << ": connect failed\n";
            return;
          }
          Gradient grad = Gradient::Dense(args.dim);
          for (std::size_t i = 0; i < args.dim; ++i) {
            grad.dense()[i] = 1e-4 * static_cast<double>((i + w) % 13);
          }
          for (std::size_t it = 0; it < args.iters; ++it) {
            const PullResult snapshot = client.Pull();
            SPECSYNC_CHECK_EQ(snapshot.params.size(), args.dim);
            ++tallies[w].pulls;
            client.Push(grad, it);
            ++tallies[w].pushes;
          }
          tallies[w].stats = client.stats();
          tallies[w].ok = true;
        } catch (const CheckError& e) {
          std::cerr << "worker " << w << " failed: " << e.what() << "\n";
        }
      });
    }
  }  // join workers
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();

  bool all_ok = true;
  net::ShardClient::Stats total;
  std::uint64_t total_ops = 0;
  for (const WorkerTally& tally : tallies) {
    all_ok = all_ok && tally.ok;
    total_ops += tally.pulls + tally.pushes;
    total.requests += tally.stats.requests;
    total.retries += tally.stats.retries;
    total.timeouts += tally.stats.timeouts;
    total.reconnects += tally.stats.reconnects;
    total.stale_frames += tally.stats.stale_frames;
    total.injected_drops += tally.stats.injected_drops;
    total.injected_delays += tally.stats.injected_delays;
    total.injected_duplicates += tally.stats.injected_duplicates;
  }

  // Per-shard RTTs straight from the client-side histograms.
  Table rtt({"shard", "requests", "mean_us", "p50_us", "p95_us", "p99_us",
             "max_us"});
  const auto us = [](double seconds) { return seconds * 1e6; };
  for (std::size_t s = 0; s < args.num_servers; ++s) {
    const obs::LatencyHistogram& hist =
        obs.metrics.histogram("net.shard" + std::to_string(s) + ".rtt_s");
    rtt.AddRowValues(static_cast<unsigned long long>(s),
                     static_cast<unsigned long long>(hist.count()),
                     us(hist.mean_seconds()),
                     us(hist.ApproxQuantileSeconds(0.50)),
                     us(hist.ApproxQuantileSeconds(0.95)),
                     us(hist.ApproxQuantileSeconds(0.99)),
                     us(hist.max_seconds()));
  }
  rtt.PrintPretty(std::cout);
  std::cout << "\n";
  rtt.PrintCsv(std::cout);

  const obs::LatencyHistogram& all_rtt = obs.metrics.histogram("net.rtt_s");
  std::cout << "\nall shards: requests=" << total.requests
            << " rtt_p50_us=" << us(all_rtt.ApproxQuantileSeconds(0.50))
            << " rtt_p99_us=" << us(all_rtt.ApproxQuantileSeconds(0.99))
            << "\nreliability: retries=" << total.retries
            << " timeouts=" << total.timeouts
            << " reconnects=" << total.reconnects
            << " stale_frames=" << total.stale_frames
            << "\ninjected: drops=" << total.injected_drops
            << " delays=" << total.injected_delays
            << " duplicates=" << total.injected_duplicates << "\n"
            << "ops=" << total_ops << " wall_s=" << wall_seconds
            << " ops_per_s=" << (total_ops / std::max(wall_seconds, 1e-9))
            << "\n";

  // Self-describing metrics snapshot (the RTT histograms above plus the run
  // shape), so the smoke artifact can be validated without the stdout log.
  obs.metrics.gauge("bench.num_servers")
      .Set(static_cast<double>(args.num_servers));
  obs.metrics.gauge("bench.workers").Set(static_cast<double>(args.workers));
  obs.metrics.gauge("bench.iters").Set(static_cast<double>(args.iters));
  obs.metrics.gauge("bench.dim").Set(static_cast<double>(args.dim));
  obs.metrics.gauge("bench.drop").Set(args.drop);
  obs.metrics.gauge("bench.delay").Set(args.delay);
  obs.metrics.gauge("bench.dup").Set(args.dup);
  obs.metrics.gauge("bench.wall_s").Set(wall_seconds);
  if (!args.metrics_out.empty()) {
    if (obs::WriteMetricsJsonFile(obs, args.metrics_out)) {
      std::cout << "metrics: wrote " << args.metrics_out << "\n";
    } else {
      std::cerr << "metrics: cannot write " << args.metrics_out << "\n";
      all_ok = false;
    }
  }

  // Shutdown: closing the pipe write end is the children's EOF signal.
  for (Child& child : children) ::close(child.shutdown_wr);
  for (Child& child : children) {
    int status = 0;
    if (::waitpid(child.pid, &status, 0) != child.pid ||
        !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::cerr << "bench_transport: server pid " << child.pid
                << " exited abnormally\n";
      all_ok = false;
    }
  }
  if (!all_ok) {
    std::cerr << "bench_transport: FAILED\n";
    return 1;
  }
  std::cout << "bench_transport: OK\n";
  return 0;
}
