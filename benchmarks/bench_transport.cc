// Multi-process loopback transport bench: the sharded PS as real processes.
//
// Not a paper figure — a harness-health bench for src/net, in two phases:
//
// Phase 1 (soak): forks one server process per shard (each owning a full-dim
// ParameterServer but serving ONLY its own shard, exactly the multi-machine
// topology on loopback), then drives worker threads in the parent through
// ShardClients: every iteration is a composed Pull (all shards pipelined on
// the shared links) followed by a dense Push (per-shard slices + commits).
// Per-shard RTT histograms, retry/timeout counters, and injected-fault
// counts land in src/obs metrics, printable and exportable as metrics.json.
// The soak prints a deterministic `equivalence:` line (op counts only, no
// timings) that CI diffs across --server_model values: both models must
// complete the identical protocol work.
//
// Phase 2 (fan-in, --clients=N): one in-process server (the --server_model
// under test) serving every shard, N concurrent clients each running
// pipelined pulls against it. This is the scaling claim of the event-loop
// model: p99 RTT holds a pinned ceiling and the server's thread count stays
// 1 + pool_threads regardless of N, where thread-per-connection spawns O(N)
// threads. Both numbers are emitted into BENCH_harness.json
// (fanin_p99_rtt_us, fanin_server_threads) and gated: with
// --server_model=event_loop the bench FAILS if the server's observed thread
// count exceeds pool size + a constant, and --fanin_p99_ceiling_us=X (off by
// default) fails the run when p99 crosses the ceiling.
//
// Fault injection runs over the actual wire: --drop/--delay/--dup attach a
// FaultPlan to every soak client, so requests are really never sent (burning
// the timeout), held back, or sent twice — the bench doubles as a soak test
// that the retry protocol terminates under loss.
//
// Flags:
//   --num_servers=N   shard/server-process count        (default 4)
//   --workers=N       soak worker threads in the parent (default 4)
//   --iters=N         pull+push iterations per worker   (default 200)
//   --dim=N           parameter dimension               (default 4096)
//   --server_model=M  thread_per_conn | event_loop      (default thread_per_conn)
//   --pool_threads=N  event-loop execution pool size    (default 4)
//   --clients=N       fan-in phase client count; 0 = skip (default 0;
//                     --smoke raises it to 256 for event_loop, 32 otherwise)
//   --fanin_iters=N   pipelined pulls per fan-in client (default 20)
//   --fanin_p99_ceiling_us=X  fail if fan-in p99 RTT exceeds X (default off)
//   --drop=P --delay=P --dup=P   per-message fault probabilities (default 0)
//   --smoke           CI variant: tiny grid, and drop/delay default to 0.05
//                     so the retry path is exercised on every CI run
//   --metrics_out=P   write the metrics.json snapshot to P
//   --trace_out=P     attach a SpanRecorder to every soak process: the parent
//                     writes its client spans (one track per worker) to P and
//                     each forked shard server writes its serve spans to
//                     P.server<k>. Every file carries its own pid and
//                     CLOCK_MONOTONIC epoch ("clock_epoch_ns"), so
//                     scripts/specsync_obsctl merge can align the timelines
//                     and verify that client request spans link to server-side
//                     child spans via wire trace-context flow ids
//                     (DESIGN.md §14).
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchmarks/bench_util.h"
#include "common/check.h"
#include "common/table.h"
#include "fault/fault_plan.h"
#include "net/endpoint.h"
#include "net/shard_client.h"
#include "net/shard_server.h"
#include "obs/obs.h"
#include "obs/span_recorder.h"
#include "optim/lr_schedule.h"
#include "ps/param_store.h"

using namespace specsync;

namespace {

struct Args {
  std::size_t num_servers = 4;
  std::size_t workers = 4;
  std::size_t iters = 200;
  std::size_t dim = 4096;
  net::ServerModel server_model = net::ServerModel::kThreadPerConn;
  std::size_t pool_threads = 4;
  std::size_t clients = 0;  // 0 = skip the fan-in phase
  bool clients_set = false;
  std::size_t fanin_iters = 20;
  double fanin_p99_ceiling_us = 0.0;  // 0 = no ceiling gate
  double drop = -1.0;  // negative = unset (lets --smoke pick its default)
  double delay = -1.0;
  double dup = -1.0;
  bool smoke = false;
  std::string metrics_out;
  std::string trace_out;  // empty = no span recording
};

[[noreturn]] void Usage(const std::string& bad) {
  std::cerr << "bench_transport: bad flag '" << bad << "'\n"
            << "usage: bench_transport [--num_servers=N] [--workers=N]"
               " [--iters=N] [--dim=N]"
               " [--server_model=thread_per_conn|event_loop]"
               " [--pool_threads=N] [--clients=N] [--fanin_iters=N]"
               " [--fanin_p99_ceiling_us=X]"
               " [--drop=P] [--delay=P] [--dup=P]"
               " [--smoke] [--metrics_out=PATH] [--trace_out=PATH]\n";
  std::exit(2);
}

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    try {
      if (key == "--num_servers") {
        args.num_servers = std::stoul(value);
      } else if (key == "--workers") {
        args.workers = std::stoul(value);
      } else if (key == "--iters") {
        args.iters = std::stoul(value);
      } else if (key == "--dim") {
        args.dim = std::stoul(value);
      } else if (key == "--server_model") {
        if (value == "thread_per_conn") {
          args.server_model = net::ServerModel::kThreadPerConn;
        } else if (value == "event_loop") {
          args.server_model = net::ServerModel::kEventLoop;
        } else {
          Usage(arg);
        }
      } else if (key == "--pool_threads") {
        args.pool_threads = std::stoul(value);
      } else if (key == "--clients") {
        args.clients = std::stoul(value);
        args.clients_set = true;
      } else if (key == "--fanin_iters") {
        args.fanin_iters = std::stoul(value);
      } else if (key == "--fanin_p99_ceiling_us") {
        args.fanin_p99_ceiling_us = std::stod(value);
      } else if (key == "--drop") {
        args.drop = std::stod(value);
      } else if (key == "--delay") {
        args.delay = std::stod(value);
      } else if (key == "--dup") {
        args.dup = std::stod(value);
      } else if (key == "--smoke") {
        args.smoke = true;
      } else if (key == "--metrics_out") {
        args.metrics_out = value;
      } else if (key == "--trace_out") {
        args.trace_out = value;
      } else {
        Usage(arg);
      }
    } catch (const std::exception&) {
      Usage(arg);
    }
  }
  if (args.smoke) {
    args.num_servers = std::min<std::size_t>(args.num_servers, 3);
    args.workers = std::min<std::size_t>(args.workers, 3);
    args.iters = std::min<std::size_t>(args.iters, 30);
    args.dim = std::min<std::size_t>(args.dim, 512);
    // Smoke must exercise the retry protocol, not just the happy path.
    if (args.drop < 0.0) args.drop = 0.05;
    if (args.delay < 0.0) args.delay = 0.05;
    if (!args.clients_set) {
      // The fan-in acceptance point: >= 256 concurrent clients on one
      // event-loop server. Thread-per-conn gets a lighter load (it would
      // spawn a thread per client — the very cost the event loop removes).
      args.clients =
          args.server_model == net::ServerModel::kEventLoop ? 256 : 32;
    }
  }
  if (args.drop < 0.0) args.drop = 0.0;
  if (args.delay < 0.0) args.delay = 0.0;
  if (args.dup < 0.0) args.dup = 0.0;
  if (args.num_servers == 0 || args.workers == 0 || args.dim == 0) {
    Usage("--num_servers/--workers/--dim must be positive");
  }
  return args;
}

bool WriteAll(int fd, const void* data, std::size_t bytes) {
  const char* p = static_cast<const char*>(data);
  while (bytes > 0) {
    const ssize_t n = ::write(fd, p, bytes);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    bytes -= static_cast<std::size_t>(n);
  }
  return true;
}

bool ReadAll(int fd, void* data, std::size_t bytes) {
  char* p = static_cast<char*>(data);
  while (bytes > 0) {
    const ssize_t n = ::read(fd, p, bytes);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF before the full value
    p += n;
    bytes -= static_cast<std::size_t>(n);
  }
  return true;
}

// The server process for one shard: a full-dim store (identically
// initialized in every process, so composed pulls are coherent) behind a
// shard server (the --server_model under test) answering only for `shard`.
// Reports its ephemeral port through `port_wr`, then serves until the parent
// closes `shutdown_rd` (EOF).
int RunShardProcess(std::size_t shard, const Args& args, int port_wr,
                    int shutdown_rd) {
  auto applier = std::make_shared<SgdApplier>(
      std::make_shared<ConstantSchedule>(0.01));
  ParameterServer store(args.dim, args.num_servers, std::move(applier));
  DenseVector params(args.dim);
  for (std::size_t i = 0; i < args.dim; ++i) {
    params[i] = 0.001 * static_cast<double>(i % 97);
  }
  store.SetParams(std::move(params));

  // Each server process records its serve spans into its own file; the
  // epoch is anchored at process start so the merge tool can shift this
  // timeline onto the client's (same host ⇒ same CLOCK_MONOTONIC).
  obs::SpanRecorder spans;
  obs::SpanRecorder* spans_ptr = nullptr;
  if (!args.trace_out.empty()) {
    spans.SetProcessInfo(static_cast<std::uint32_t>(::getpid()),
                         "bench_server_shard" + std::to_string(shard));
    spans.EnsureWallEpochNanos();
    spans.SetTrackName(static_cast<std::uint32_t>(shard),
                       "serve shard " + std::to_string(shard));
    spans_ptr = &spans;
  }

  net::ShardServerConfig config;
  config.served_shards = {shard};
  config.model = args.server_model;
  config.pool_threads = args.pool_threads;
  auto server =
      net::MakeShardServer(&store, std::move(config), nullptr, spans_ptr);
  if (!server->Start()) return 1;

  const std::uint16_t port = server->port();
  if (!WriteAll(port_wr, &port, sizeof(port))) return 1;
  ::close(port_wr);

  char byte = 0;
  for (;;) {
    const ssize_t n = ::read(shutdown_rd, &byte, 1);
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF (parent closed its end) or error: shut down either way
  }
  ::close(shutdown_rd);
  server->Stop();
  if (spans_ptr != nullptr) {
    const std::string path =
        args.trace_out + ".server" + std::to_string(shard);
    if (!obs::WriteChromeTraceFile(*spans_ptr, path)) return 1;
  }
  return 0;
}

struct WorkerTally {
  net::ShardClient::Stats stats;
  std::uint64_t pulls = 0;
  std::uint64_t pushes = 0;
  bool ok = false;
};

// Phase 2: N concurrent clients against ONE in-process server holding every
// shard. Returns false when a gate (thread count, p99 ceiling) fails.
bool RunFanIn(const Args& args, bench::BenchReporter& reporter) {
  auto applier = std::make_shared<SgdApplier>(
      std::make_shared<ConstantSchedule>(0.01));
  ParameterServer store(args.dim, args.num_servers, std::move(applier));
  DenseVector params(args.dim);
  for (std::size_t i = 0; i < args.dim; ++i) {
    params[i] = 0.001 * static_cast<double>(i % 97);
  }
  store.SetParams(std::move(params));

  net::ShardServerConfig server_config;
  server_config.model = args.server_model;
  server_config.pool_threads = args.pool_threads;
  auto server = net::MakeShardServer(&store, std::move(server_config));
  if (!server->Start()) {
    std::cerr << "fan-in: cannot start server\n";
    return false;
  }

  net::ShardClientConfig client_config;
  client_config.topology = net::ClusterTopology::SingleServer(
      ParameterServer::ShardSplit(args.dim, args.num_servers),
      net::Endpoint{"127.0.0.1", server->port()});
  // Generous per-attempt deadline: under 256-way fan-in an individual pull
  // legitimately queues behind hundreds of peers.
  client_config.request_timeout = std::chrono::milliseconds(5000);
  client_config.max_attempts = 4;

  obs::ObsContext obs;  // fan-in RTTs only (kept apart from the soak's)
  std::atomic<std::size_t> failures{0};
  std::atomic<std::size_t> max_server_threads{0};
  std::atomic<bool> sampling{true};

  const auto fanin_start = std::chrono::steady_clock::now();
  {
    // Samples the server's thread count while the fan-in is live — the
    // number the event-loop model must hold constant.
    std::jthread sampler([&] {
      while (sampling.load(std::memory_order_acquire)) {
        const std::size_t now = server->thread_count();
        std::size_t seen = max_server_threads.load(std::memory_order_relaxed);
        while (now > seen && !max_server_threads.compare_exchange_weak(
                                 seen, now, std::memory_order_relaxed)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
    std::vector<std::jthread> clients;
    clients.reserve(args.clients);
    for (std::size_t c = 0; c < args.clients; ++c) {
      clients.emplace_back([&, c] {
        try {
          net::ShardClient client(client_config, nullptr, &obs.metrics);
          if (!client.Connect()) {
            failures.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          for (std::size_t it = 0; it < args.fanin_iters; ++it) {
            const PullResult snapshot = client.Pull();
            SPECSYNC_CHECK_EQ(snapshot.params.size(), args.dim);
          }
        } catch (const CheckError& e) {
          std::cerr << "fan-in client " << c << " failed: " << e.what()
                    << "\n";
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    clients.clear();  // join
    sampling.store(false, std::memory_order_release);
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    fanin_start)
          .count();

  const obs::LatencyHistogram& rtt = obs.metrics.histogram("net.rtt_s");
  const double p50_us = rtt.ApproxQuantileSeconds(0.50) * 1e6;
  const double p99_us = rtt.ApproxQuantileSeconds(0.99) * 1e6;
  const std::size_t server_threads =
      max_server_threads.load(std::memory_order_relaxed);
  server->Stop();

  std::cout << "fan-in: model=" << net::ServerModelName(args.server_model)
            << " clients=" << args.clients
            << " iters_per_client=" << args.fanin_iters
            << " pool_threads=" << args.pool_threads << "\n"
            << "  rtt_p50_us=" << p50_us << " rtt_p99_us=" << p99_us
            << " server_threads_peak=" << server_threads
            << " wall_s=" << wall_seconds << "\n";

  reporter.AddMetric("fanin_clients", static_cast<double>(args.clients));
  reporter.AddMetric("fanin_pool_threads",
                     static_cast<double>(args.pool_threads));
  reporter.AddMetric("fanin_server_threads",
                     static_cast<double>(server_threads));
  reporter.AddMetric("fanin_rtt_p50_us", p50_us);
  reporter.AddMetric("fanin_rtt_p99_us", p99_us);
  reporter.AddMetric("fanin_wall_s", wall_seconds);

  bool ok = failures.load(std::memory_order_relaxed) == 0;
  if (!ok) std::cerr << "fan-in: " << failures.load() << " clients failed\n";
  if (args.server_model == net::ServerModel::kEventLoop) {
    // The structural claim: server threads = 1 loop + pool, never O(clients).
    // +2 slack covers sampler skew around Start/Stop edges.
    const std::size_t ceiling = args.pool_threads + 1 + 2;
    if (server_threads > ceiling) {
      std::cerr << "fan-in: event-loop server used " << server_threads
                << " threads (ceiling " << ceiling << " with pool "
                << args.pool_threads << ") — O(clients) thread growth\n";
      ok = false;
    }
  }
  if (args.fanin_p99_ceiling_us > 0.0 && p99_us > args.fanin_p99_ceiling_us) {
    std::cerr << "fan-in: p99 RTT " << p99_us << "us exceeds ceiling "
              << args.fanin_p99_ceiling_us << "us\n";
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  std::cout << "bench_transport: multi-process loopback shard transport"
            << (args.smoke ? " (smoke)" : "") << "\n"
            << "  servers=" << args.num_servers << " workers=" << args.workers
            << " iters=" << args.iters << " dim=" << args.dim
            << " server_model=" << net::ServerModelName(args.server_model)
            << " drop=" << args.drop << " delay=" << args.delay
            << " dup=" << args.dup << "\n\n";

  // Fork every server process BEFORE any threads exist in the parent
  // (fork+threads only mix safely when the child immediately execs, which
  // these children do not).
  struct Child {
    pid_t pid = -1;
    int shutdown_wr = -1;
    std::uint16_t port = 0;
  };
  std::vector<Child> children(args.num_servers);
  std::vector<int> parent_fds;  // parent-side fds later children must close
  for (std::size_t s = 0; s < args.num_servers; ++s) {
    int port_pipe[2] = {-1, -1};
    int shutdown_pipe[2] = {-1, -1};
    SPECSYNC_CHECK_EQ(::pipe(port_pipe), 0);
    SPECSYNC_CHECK_EQ(::pipe(shutdown_pipe), 0);
    const pid_t pid = ::fork();
    SPECSYNC_CHECK_GE(pid, 0) << "fork failed: " << std::strerror(errno);
    if (pid == 0) {
      // Child: drop every parent-side descriptor, including the shutdown
      // write ends of earlier siblings (holding one would keep a sibling's
      // EOF from ever arriving).
      for (const int fd : parent_fds) ::close(fd);
      ::close(port_pipe[0]);
      ::close(shutdown_pipe[1]);
      const int rc =
          RunShardProcess(s, args, port_pipe[1], shutdown_pipe[0]);
      ::_exit(rc);
    }
    ::close(port_pipe[1]);
    ::close(shutdown_pipe[0]);
    children[s].pid = pid;
    children[s].shutdown_wr = shutdown_pipe[1];
    parent_fds.push_back(port_pipe[0]);
    parent_fds.push_back(shutdown_pipe[1]);
    if (!ReadAll(port_pipe[0], &children[s].port, sizeof(std::uint16_t))) {
      std::cerr << "bench_transport: shard " << s
                << " server failed to report a port\n";
      return 1;
    }
    ::close(port_pipe[0]);
  }

  // Endpoint table from the one canonical shard layout: each shard behind
  // its own server process (clients open one link per process).
  net::ShardClientConfig client_config;
  const auto split = ParameterServer::ShardSplit(args.dim, args.num_servers);
  for (std::size_t s = 0; s < args.num_servers; ++s) {
    client_config.topology.shards.push_back(net::ShardPlacement{
        split[s].first, split[s].second,
        net::Endpoint{"127.0.0.1", children[s].port}});
  }
  client_config.request_timeout = std::chrono::milliseconds(100);
  client_config.max_attempts = 64;

  FaultPlanConfig fault_config;
  fault_config.data.drop_probability = args.drop;
  fault_config.data.delay_probability = args.delay;
  fault_config.data.delay_mean = Duration::Milliseconds(1.0);
  fault_config.data.duplicate_probability = args.dup;
  fault_config.seed = 1234;
  FaultPlan faults(fault_config);
  FaultPlan* fault_ptr = faults.enabled() ? &faults : nullptr;

  obs::ObsContext obs;
  // Client-side request spans: one recorder for the parent process, one
  // track per worker so each worker's pipelined pulls/pushes read as a
  // timeline. Flow ids stitch these to the serve spans the forked server
  // processes record on the far side of the wire.
  obs::SpanRecorder client_spans;
  obs::SpanRecorder* client_spans_ptr = nullptr;
  if (!args.trace_out.empty()) {
    client_spans.SetProcessInfo(static_cast<std::uint32_t>(::getpid()),
                                "bench_client");
    client_spans.EnsureWallEpochNanos();
    for (std::size_t w = 0; w < args.workers; ++w) {
      client_spans.SetTrackName(static_cast<std::uint32_t>(w),
                                "worker " + std::to_string(w));
    }
    client_spans_ptr = &client_spans;
  }
  const auto bench_start = std::chrono::steady_clock::now();
  std::vector<WorkerTally> tallies(args.workers);
  {
    std::vector<std::jthread> workers;
    for (std::size_t w = 0; w < args.workers; ++w) {
      workers.emplace_back([&, w] {
        try {
          net::ShardClientConfig worker_config = client_config;
          worker_config.trace_track = static_cast<std::uint32_t>(w);
          net::ShardClient client(worker_config, fault_ptr, &obs.metrics,
                                  client_spans_ptr);
          if (!client.Connect()) {
            std::cerr << "worker " << w << ": connect failed\n";
            return;
          }
          Gradient grad = Gradient::Dense(args.dim);
          for (std::size_t i = 0; i < args.dim; ++i) {
            grad.dense()[i] = 1e-4 * static_cast<double>((i + w) % 13);
          }
          for (std::size_t it = 0; it < args.iters; ++it) {
            const PullResult snapshot = client.Pull();
            SPECSYNC_CHECK_EQ(snapshot.params.size(), args.dim);
            ++tallies[w].pulls;
            client.Push(grad, it);
            ++tallies[w].pushes;
          }
          tallies[w].stats = client.stats();
          tallies[w].ok = true;
        } catch (const CheckError& e) {
          std::cerr << "worker " << w << " failed: " << e.what() << "\n";
        }
      });
    }
  }  // join workers
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();

  bool all_ok = true;
  net::ShardClient::Stats total;
  std::uint64_t total_ops = 0;
  std::uint64_t total_pulls = 0;
  std::uint64_t total_pushes = 0;
  for (const WorkerTally& tally : tallies) {
    all_ok = all_ok && tally.ok;
    total_ops += tally.pulls + tally.pushes;
    total_pulls += tally.pulls;
    total_pushes += tally.pushes;
    total.requests += tally.stats.requests;
    total.retries += tally.stats.retries;
    total.timeouts += tally.stats.timeouts;
    total.reconnects += tally.stats.reconnects;
    total.stale_frames += tally.stats.stale_frames;
    total.injected_drops += tally.stats.injected_drops;
    total.injected_delays += tally.stats.injected_delays;
    total.injected_duplicates += tally.stats.injected_duplicates;
  }

  // Per-shard RTTs straight from the client-side histograms.
  Table rtt({"shard", "requests", "mean_us", "p50_us", "p95_us", "p99_us",
             "max_us"});
  const auto us = [](double seconds) { return seconds * 1e6; };
  for (std::size_t s = 0; s < args.num_servers; ++s) {
    const obs::LatencyHistogram& hist =
        obs.metrics.histogram("net.shard" + std::to_string(s) + ".rtt_s");
    rtt.AddRowValues(static_cast<unsigned long long>(s),
                     static_cast<unsigned long long>(hist.count()),
                     us(hist.mean_seconds()),
                     us(hist.ApproxQuantileSeconds(0.50)),
                     us(hist.ApproxQuantileSeconds(0.95)),
                     us(hist.ApproxQuantileSeconds(0.99)),
                     us(hist.max_seconds()));
  }
  rtt.PrintPretty(std::cout);
  std::cout << "\n";
  rtt.PrintCsv(std::cout);

  const obs::LatencyHistogram& all_rtt = obs.metrics.histogram("net.rtt_s");
  std::cout << "\nall shards: requests=" << total.requests
            << " rtt_p50_us=" << us(all_rtt.ApproxQuantileSeconds(0.50))
            << " rtt_p99_us=" << us(all_rtt.ApproxQuantileSeconds(0.99))
            << "\nreliability: retries=" << total.retries
            << " timeouts=" << total.timeouts
            << " reconnects=" << total.reconnects
            << " stale_frames=" << total.stale_frames
            << "\ninjected: drops=" << total.injected_drops
            << " delays=" << total.injected_delays
            << " duplicates=" << total.injected_duplicates << "\n"
            << "ops=" << total_ops << " wall_s=" << wall_seconds
            << " ops_per_s=" << (total_ops / std::max(wall_seconds, 1e-9))
            << "\n";
  // Timing-free summary for the cross-model CI diff: identical protocol work
  // must complete under both server models.
  std::cout << "equivalence: servers=" << args.num_servers
            << " workers=" << args.workers << " iters=" << args.iters
            << " dim=" << args.dim << " pulls=" << total_pulls
            << " pushes=" << total_pushes << " ok=" << (all_ok ? 1 : 0)
            << "\n";

  // Self-describing metrics snapshot (the RTT histograms above plus the run
  // shape), so the smoke artifact can be validated without the stdout log.
  obs.metrics.gauge("bench.num_servers")
      .Set(static_cast<double>(args.num_servers));
  obs.metrics.gauge("bench.workers").Set(static_cast<double>(args.workers));
  obs.metrics.gauge("bench.iters").Set(static_cast<double>(args.iters));
  obs.metrics.gauge("bench.dim").Set(static_cast<double>(args.dim));
  obs.metrics.gauge("bench.drop").Set(args.drop);
  obs.metrics.gauge("bench.delay").Set(args.delay);
  obs.metrics.gauge("bench.dup").Set(args.dup);
  obs.metrics.gauge("bench.wall_s").Set(wall_seconds);
  if (!args.metrics_out.empty()) {
    if (obs::WriteMetricsJsonFile(obs, args.metrics_out)) {
      std::cout << "metrics: wrote " << args.metrics_out << "\n";
    } else {
      std::cerr << "metrics: cannot write " << args.metrics_out << "\n";
      all_ok = false;
    }
  }
  if (client_spans_ptr != nullptr) {
    if (obs::WriteChromeTraceFile(*client_spans_ptr, args.trace_out)) {
      std::cout << "trace: wrote " << args.trace_out << " ("
                << client_spans_ptr->event_count() << " events; per-server "
                << "traces land in " << args.trace_out << ".server<k> — "
                << "merge with scripts/specsync_obsctl)\n";
    } else {
      std::cerr << "trace: cannot write " << args.trace_out << "\n";
      all_ok = false;
    }
  }

  // Shutdown: closing the pipe write end is the children's EOF signal.
  for (Child& child : children) ::close(child.shutdown_wr);
  for (Child& child : children) {
    int status = 0;
    if (::waitpid(child.pid, &status, 0) != child.pid ||
        !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::cerr << "bench_transport: server pid " << child.pid
                << " exited abnormally\n";
      all_ok = false;
    }
  }

  // Phase 2 — fan-in scaling on one in-process server.
  bench::BenchReporter reporter(
      std::string("bench_transport_") + net::ServerModelName(args.server_model));
  reporter.AddMetric("soak_ops_per_s",
                     total_ops / std::max(wall_seconds, 1e-9));
  reporter.AddMetric("soak_rtt_p99_us",
                     us(all_rtt.ApproxQuantileSeconds(0.99)));
  if (args.clients > 0) {
    std::cout << "\n";
    all_ok = RunFanIn(args, reporter) && all_ok;
  }
  reporter.SetRun(args.workers, wall_seconds, wall_seconds);
  reporter.WriteJson();

  if (!all_ok) {
    std::cerr << "bench_transport: FAILED\n";
    return 1;
  }
  std::cout << "bench_transport: OK\n";
  return 0;
}
