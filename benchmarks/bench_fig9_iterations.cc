// Fig. 9: loss as a function of the cumulative iteration (push) count.
//
// Paper: SpecSync needs up to 58% fewer iterations to converge — aborted
// iterations are longer but compute on fresher parameters, so each surviving
// push is worth more.
//
// Cells run through one ParallelRunner pass (--threads=N); output is
// bit-identical at any thread count.
#include <iostream>

#include "benchmarks/bench_util.h"

using namespace specsync;

namespace {

// Loss at (or before) a given cumulative push count, averaged over runs.
double MeanLossAtPushes(const std::vector<ExperimentResult>& runs,
                        std::uint64_t pushes) {
  RunningStats stats;
  for (const ExperimentResult& run : runs) {
    std::optional<double> loss;
    for (const LossSample& sample : run.sim.trace.losses()) {
      if (sample.total_iterations > pushes) break;
      loss = sample.loss;
    }
    if (loss) stats.Add(*loss);
  }
  return stats.mean();
}

// Cumulative pushes when the target is first sustainedly met.
double MeanPushesToTarget(const std::vector<ExperimentResult>& runs,
                          double target, double fallback) {
  RunningStats stats;
  for (const ExperimentResult& run : runs) {
    const auto t = TimeToTarget(run.sim.trace, target);
    if (!t.has_value()) {
      stats.Add(fallback);
      continue;
    }
    std::uint64_t pushes = 0;
    for (const LossSample& sample : run.sim.trace.losses()) {
      if (sample.time > *t) break;
      pushes = sample.total_iterations;
    }
    stats.Add(static_cast<double>(pushes));
  }
  return stats.mean();
}

struct PanelSpec {
  Workload workload;
  std::size_t workers;
  SimTime horizon;
  std::size_t replicates;
  std::vector<std::size_t> series;  // Original, Adaptive, Cherrypick
};

const std::vector<std::string> kSchemeLabels = {"Original", "Adaptive",
                                                "Cherrypick"};

void AddPanel(bench::CellBatch& batch, PanelSpec& spec) {
  const std::vector<SchemeSpec> schemes = {
      SchemeSpec::Original(),
      SchemeSpec::Adaptive(),
      SchemeSpec::Cherrypick(bench::CherryParams(spec.workload)),
  };
  for (const SchemeSpec& scheme : schemes) {
    ExperimentConfig config;
    config.cluster = ClusterSpec::Homogeneous(spec.workers);
    config.scheme = scheme;
    config.max_time = spec.horizon;
    config.stop_on_convergence = false;
    spec.series.push_back(
        batch.AddSeries(spec.workload, config, spec.replicates));
  }
}

void PrintPanel(const bench::CellBatch& batch, const PanelSpec& spec) {
  const Workload& workload = spec.workload;
  std::cout << "\n--- " << workload.name << " (" << spec.workers
            << " workers) ---\n";
  std::vector<std::vector<ExperimentResult>> runs;
  std::uint64_t max_pushes = 0;
  for (std::size_t series : spec.series) {
    runs.push_back(batch.Series(series));
    for (const auto& run : runs.back()) {
      max_pushes = std::max(max_pushes, run.sim.total_pushes);
    }
  }

  Table curve({"iterations", "Original", "Adaptive", "Cherrypick"});
  constexpr int kCheckpoints = 8;
  for (int i = 1; i <= kCheckpoints; ++i) {
    const std::uint64_t pushes = max_pushes * i / kCheckpoints;
    curve.AddRowValues(pushes, MeanLossAtPushes(runs[0], pushes),
                       MeanLossAtPushes(runs[1], pushes),
                       MeanLossAtPushes(runs[2], pushes));
  }
  curve.PrintPretty(std::cout);

  Table summary({"scheme", "iterations_to_target", "reduction_vs_original"});
  const double fallback = static_cast<double>(max_pushes);
  const double base =
      MeanPushesToTarget(runs[0], workload.loss_target, fallback);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const double pushes =
        MeanPushesToTarget(runs[i], workload.loss_target, fallback);
    summary.AddRowValues(kSchemeLabels[i], pushes,
                         base > 0.0 ? 1.0 - pushes / base : 0.0);
  }
  summary.PrintPretty(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t threads = bench::ParseThreads(argc, argv);
  bench::PrintHeader(
      "Fig. 9 — loss vs cumulative iteration count",
      "SpecSync converges in up to 58% fewer iterations than Original");

  std::vector<PanelSpec> panels;
  panels.push_back(
      {MakeMfWorkload(1), 40, SimTime::FromSeconds(1200.0), 3, {}});
  panels.push_back(
      {MakeCifar10Workload(1), 20, SimTime::FromSeconds(2400.0), 2, {}});

  bench::CellBatch batch;
  for (PanelSpec& panel : panels) AddPanel(batch, panel);
  batch.Run(threads);
  for (const PanelSpec& panel : panels) PrintPanel(batch, panel);

  bench::BenchReporter reporter("bench_fig9_iterations");
  reporter.AddBatch(batch);
  reporter.WriteJson();
  return 0;
}
