// Fig. 9: loss as a function of the cumulative iteration (push) count.
//
// Paper: SpecSync needs up to 58% fewer iterations to converge — aborted
// iterations are longer but compute on fresher parameters, so each surviving
// push is worth more.
#include <iostream>

#include "benchmarks/bench_util.h"

using namespace specsync;

namespace {

// Loss at (or before) a given cumulative push count, averaged over runs.
double MeanLossAtPushes(const std::vector<ExperimentResult>& runs,
                        std::uint64_t pushes) {
  RunningStats stats;
  for (const ExperimentResult& run : runs) {
    std::optional<double> loss;
    for (const LossSample& sample : run.sim.trace.losses()) {
      if (sample.total_iterations > pushes) break;
      loss = sample.loss;
    }
    if (loss) stats.Add(*loss);
  }
  return stats.mean();
}

// Cumulative pushes when the target is first sustainedly met.
double MeanPushesToTarget(const std::vector<ExperimentResult>& runs,
                          double target, double fallback) {
  RunningStats stats;
  for (const ExperimentResult& run : runs) {
    const auto t = TimeToTarget(run.sim.trace, target);
    if (!t.has_value()) {
      stats.Add(fallback);
      continue;
    }
    std::uint64_t pushes = 0;
    for (const LossSample& sample : run.sim.trace.losses()) {
      if (sample.time > *t) break;
      pushes = sample.total_iterations;
    }
    stats.Add(static_cast<double>(pushes));
  }
  return stats.mean();
}

void Panel(const Workload& workload, std::size_t workers, SimTime horizon,
           const bench::SeedSweep& sweep) {
  std::cout << "\n--- " << workload.name << " (" << workers
            << " workers) ---\n";
  struct Entry {
    std::string label;
    SchemeSpec scheme;
  };
  const std::vector<Entry> entries = {
      {"Original", SchemeSpec::Original()},
      {"Adaptive", SchemeSpec::Adaptive()},
      {"Cherrypick", SchemeSpec::Cherrypick(bench::CherryParams(workload))},
  };
  std::vector<std::vector<ExperimentResult>> runs;
  std::uint64_t max_pushes = 0;
  for (const Entry& entry : entries) {
    ExperimentConfig config;
    config.cluster = ClusterSpec::Homogeneous(workers);
    config.scheme = entry.scheme;
    config.max_time = horizon;
    config.stop_on_convergence = false;
    runs.push_back(bench::RunSeeds(workload, config, sweep));
    for (const auto& run : runs.back()) {
      max_pushes = std::max(max_pushes, run.sim.total_pushes);
    }
  }

  Table curve({"iterations", "Original", "Adaptive", "Cherrypick"});
  constexpr int kCheckpoints = 8;
  for (int i = 1; i <= kCheckpoints; ++i) {
    const std::uint64_t pushes = max_pushes * i / kCheckpoints;
    curve.AddRowValues(pushes, MeanLossAtPushes(runs[0], pushes),
                       MeanLossAtPushes(runs[1], pushes),
                       MeanLossAtPushes(runs[2], pushes));
  }
  curve.PrintPretty(std::cout);

  Table summary({"scheme", "iterations_to_target", "reduction_vs_original"});
  const double fallback = static_cast<double>(max_pushes);
  const double base =
      MeanPushesToTarget(runs[0], workload.loss_target, fallback);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const double pushes =
        MeanPushesToTarget(runs[i], workload.loss_target, fallback);
    summary.AddRowValues(entries[i].label, pushes,
                         base > 0.0 ? 1.0 - pushes / base : 0.0);
  }
  summary.PrintPretty(std::cout);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig. 9 — loss vs cumulative iteration count",
      "SpecSync converges in up to 58% fewer iterations than Original");

  Panel(MakeMfWorkload(1), 40, SimTime::FromSeconds(1200.0),
        bench::SeedSweep{{7, 8, 9}});
  Panel(MakeCifar10Workload(1), 20, SimTime::FromSeconds(2400.0),
        bench::SeedSweep{{7, 8}});
  return 0;
}
