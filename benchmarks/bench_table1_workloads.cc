// Table I: workload summary — the paper's numbers next to this repo's
// scaled-down proxies.
#include <iostream>

#include "benchmarks/bench_util.h"

using namespace specsync;

int main() {
  bench::PrintHeader("Table I — workloads",
                     "MF/MovieLens 4.2M params 3s; CIFAR-10/ResNet-110 2.5M "
                     "params 14s; ImageNet/ResNet-18 5.9M params 70s");

  Table table({"workload", "paper #params", "proxy #params", "paper dataset",
               "paper size", "proxy size", "iteration time", "batch"});
  for (const Workload& w : MakeAllWorkloads(1)) {
    table.AddRowValues(w.name, w.paper_num_params,
                       static_cast<unsigned long>(w.model->param_dim()),
                       w.paper_dataset, w.paper_dataset_size,
                       static_cast<unsigned long>(w.model->dataset_size()),
                       w.paper_iteration_time,
                       static_cast<unsigned long>(w.batch_size));
  }
  table.PrintPretty(std::cout);
  std::cout << "Proxy sizes are scaled ~500x down so the full evaluation runs "
               "on one core; iteration *times* are simulated at paper scale, "
               "which is what every timing-sensitive result depends on.\n";
  return 0;
}
