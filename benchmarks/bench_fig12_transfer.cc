// Fig. 12: accumulated data transfer over time, Original vs SpecSync-Adaptive.
//
// Paper: the two curves track each other closely (SpecSync adds negligible
// bandwidth); because SpecSync finishes sooner, its total transfer is lower —
// CIFAR-10: 3.17 TB (Original) vs 2.00 TB (SpecSync), ~40% less.
//
// With the sharded transfer model every data-plane message is charged against
// the server shard it moved to/from, so each panel also prints a per-server
// breakdown (pull/push bytes per shard). Contiguous sharding splits the
// parameter vector near-equally, so the shares should be near-uniform — a
// built-in sanity check on the routing. --num_servers=N picks the shard count
// (default 4, the paper-like testbed).
#include <iostream>
#include <string>

#include "benchmarks/bench_util.h"

using namespace specsync;

namespace {

void PerServerBreakdown(const char* scheme, const TransferAccountant& t) {
  std::cout << scheme << " per-server bytes:\n";
  Table table({"server", "pull(MB)", "push(MB)", "total(MB)", "share"});
  const double total = static_cast<double>(t.total_bytes());
  for (std::size_t s = 0; s < t.num_shards_seen(); ++s) {
    const double shard_total = static_cast<double>(t.shard_total_bytes(s));
    table.AddRowValues(
        static_cast<unsigned long>(s),
        static_cast<double>(t.shard_bytes(TransferCategory::kPullParams, s)) /
            1e6,
        static_cast<double>(t.shard_bytes(TransferCategory::kPushGrads, s)) /
            1e6,
        shard_total / 1e6, total > 0.0 ? shard_total / total : 0.0);
  }
  table.PrintPretty(std::cout);
  std::cout << "  control-plane (unsharded): "
            << static_cast<double>(t.unsharded_bytes()) / 1e6 << " MB\n";
}

void Panel(const Workload& workload, std::size_t workers,
           std::size_t num_servers, SimTime horizon,
           const bench::CompressionSelection& compression) {
  ExperimentConfig config;
  config.cluster = ClusterSpec::Homogeneous(workers);
  config.cluster.num_servers = num_servers;
  config.max_time = horizon;
  config.stop_on_convergence = true;  // run-to-convergence totals
  config.seed = 7;
  compression.Apply(config);

  config.scheme = SchemeSpec::Original();
  const ExperimentResult original = RunExperiment(workload, config);
  config.scheme = SchemeSpec::Adaptive();
  const ExperimentResult spec = RunExperiment(workload, config);

  std::cout << "\n--- " << workload.name << " (" << workers << " workers, "
            << num_servers << " servers, run to target "
            << workload.loss_target << ") ---\n";
  const SimTime end =
      std::max(original.sim.end_time, spec.sim.end_time);
  const auto original_curve = original.sim.transfers.Timeline(end, 9);
  const auto spec_curve = spec.sim.transfers.Timeline(end, 9);
  Table table({"time(s)", "Original(MB)", "SpecSync(MB)"});
  for (std::size_t i = 1; i < original_curve.size(); ++i) {
    table.AddRowValues(
        original_curve[i].time.seconds(),
        static_cast<double>(original_curve[i].cumulative_bytes) / 1e6,
        static_cast<double>(spec_curve[i].cumulative_bytes) / 1e6);
  }
  table.PrintPretty(std::cout);

  const double ob = static_cast<double>(original.sim.transfers.total_bytes());
  const double sb = static_cast<double>(spec.sim.transfers.total_bytes());
  std::cout << "total transfer: Original=" << ob / 1e6 << " MB over "
            << original.sim.end_time.seconds()
            << "s, SpecSync=" << sb / 1e6 << " MB over "
            << spec.sim.end_time.seconds() << "s ("
            << (1.0 - sb / ob) * 100.0 << "% less; paper CIFAR-10: ~40%)\n";
  if (compression.set) {
    std::cout << "codec " << compression.Label() << " bytes saved: Original="
              << static_cast<double>(
                     original.sim.transfers.total_saved_bytes()) /
                     1e6
              << " MB, SpecSync="
              << static_cast<double>(spec.sim.transfers.total_saved_bytes()) /
                     1e6
              << " MB (on top of the charged totals above)\n";
  }
  PerServerBreakdown("Original", original.sim.transfers);
  PerServerBreakdown("SpecSync", spec.sim.transfers);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::PrintHeader(
      "Fig. 12 — accumulated data transfer over time",
      "SpecSync's rate matches Original's; earlier convergence makes its "
      "total smaller (CIFAR-10: 3.17 TB vs 2.00 TB)");
  std::cout << "num_servers=" << args.num_servers << "\n";
  if (args.compression.set) {
    std::cout << "(gradient wire codec: " << args.compression.Label()
              << " for every run)\n";
  }

  Panel(MakeMfWorkload(1), 40, args.num_servers,
        SimTime::FromSeconds(1500.0), args.compression);
  Panel(MakeCifar10Workload(1), 20, args.num_servers,
        SimTime::FromSeconds(2800.0), args.compression);
  Panel(MakeImageNetWorkload(1, /*scale=*/0.6), 12, args.num_servers,
        SimTime::FromSeconds(7000.0), args.compression);
  return 0;
}
