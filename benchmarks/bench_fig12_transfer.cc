// Fig. 12: accumulated data transfer over time, Original vs SpecSync-Adaptive.
//
// Paper: the two curves track each other closely (SpecSync adds negligible
// bandwidth); because SpecSync finishes sooner, its total transfer is lower —
// CIFAR-10: 3.17 TB (Original) vs 2.00 TB (SpecSync), ~40% less.
#include <iostream>

#include "benchmarks/bench_util.h"

using namespace specsync;

namespace {

void Panel(const Workload& workload, std::size_t workers, SimTime horizon) {
  ExperimentConfig config;
  config.cluster = ClusterSpec::Homogeneous(workers);
  config.max_time = horizon;
  config.stop_on_convergence = true;  // run-to-convergence totals
  config.seed = 7;

  config.scheme = SchemeSpec::Original();
  const ExperimentResult original = RunExperiment(workload, config);
  config.scheme = SchemeSpec::Adaptive();
  const ExperimentResult spec = RunExperiment(workload, config);

  std::cout << "\n--- " << workload.name << " (" << workers
            << " workers, run to target " << workload.loss_target << ") ---\n";
  const SimTime end =
      std::max(original.sim.end_time, spec.sim.end_time);
  const auto original_curve = original.sim.transfers.Timeline(end, 9);
  const auto spec_curve = spec.sim.transfers.Timeline(end, 9);
  Table table({"time(s)", "Original(MB)", "SpecSync(MB)"});
  for (std::size_t i = 1; i < original_curve.size(); ++i) {
    table.AddRowValues(
        original_curve[i].time.seconds(),
        static_cast<double>(original_curve[i].cumulative_bytes) / 1e6,
        static_cast<double>(spec_curve[i].cumulative_bytes) / 1e6);
  }
  table.PrintPretty(std::cout);

  const double ob = static_cast<double>(original.sim.transfers.total_bytes());
  const double sb = static_cast<double>(spec.sim.transfers.total_bytes());
  std::cout << "total transfer: Original=" << ob / 1e6 << " MB over "
            << original.sim.end_time.seconds()
            << "s, SpecSync=" << sb / 1e6 << " MB over "
            << spec.sim.end_time.seconds() << "s ("
            << (1.0 - sb / ob) * 100.0 << "% less; paper CIFAR-10: ~40%)\n";
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig. 12 — accumulated data transfer over time",
      "SpecSync's rate matches Original's; earlier convergence makes its "
      "total smaller (CIFAR-10: 3.17 TB vs 2.00 TB)");

  Panel(MakeMfWorkload(1), 40, SimTime::FromSeconds(1500.0));
  Panel(MakeCifar10Workload(1), 20, SimTime::FromSeconds(2800.0));
  Panel(MakeImageNetWorkload(1, /*scale=*/0.6), 12,
        SimTime::FromSeconds(7000.0));
  return 0;
}
