// Straggler scenario — static vs per-shard vs dynamic staleness bounds.
//
// Not a paper figure: this bench evaluates the repo's SSP-family extension
// (DSSP-style epoch retuning, arXiv:1908.11848 / arXiv:2301.08895) under the
// scenario it exists for. FaultPlan slowdown windows supply the stragglers:
// repeated transient 5x hiccups on *rotating* victims (background load
// spikes, GC pauses). Rotation is what makes retuning pay: against a single
// persistent straggler every policy's fleet rides clamped at victim+s and
// widening is zero-sum (the stall it avoids is repaid when the bound
// re-tightens and the victim closes the extra gap), but when the next
// episode hits a *different* worker the banked progress is never reclaimed.
// All schemes run the same fixed horizon; the headline is that DSSP turns
// gate stall into extra (staler but still productive) pushes at equal final
// loss, versus the identical per-shard gate with the bound frozen.
//
// With --metrics_out the DSSP cell is re-run instrumented, so the snapshot's
// decision-audit section carries one staleness retune record per adjustment.
#include <iostream>

#include "benchmarks/bench_util.h"

using namespace specsync;

namespace {

struct SchemeRow {
  std::string label;
  SchemeSpec scheme;
  std::size_t series = 0;
};

// A quiet cluster: the ambient contention / transient-straggler machinery is
// off so the FaultPlan windows are the only slowdown source and the measured
// stall difference is attributable to the bound policy alone.
ClusterSpec CleanCluster(std::size_t num_workers, std::size_t num_servers) {
  ClusterSpec cluster = ClusterSpec::Homogeneous(num_workers);
  cluster.num_servers = num_servers;
  cluster.straggler_probability = 0.0;
  cluster.enable_contention = false;
  cluster.enable_stalls = false;
  return cluster;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::PrintHeader(
      "Extension — staleness bounds under transient stragglers",
      "a dynamically retuned SSP bound stalls less than a static bound of "
      "equal starting tightness, at equal final loss");

  const Workload workload = MakeMfWorkload(1);
  const SimTime horizon =
      SimTime::FromSeconds(args.smoke ? 900.0 : 2400.0);
  const double loss_target = args.smoke ? 0.12 : 0.085;
  const std::size_t num_workers = args.smoke ? 8 : 16;
  const std::size_t replicates = args.smoke ? 1 : 2;

  // Straggler plan: a bursty phase — every 60s one of workers 0/1/2 takes a
  // 36s hiccup at 5x, so hiccups cover more than half of wall time and the
  // victim rotates every episode. At MF's 3s iterations a static s=2 bound
  // gives the fleet only ~6s of headroom into each episode before it stalls
  // behind the victim (who now needs 15s/iteration); the retuned bound keeps
  // the fleet computing through the episode instead.
  FaultPlanConfig faults;
  int hiccup = 0;
  for (double t = 30.0; t + 36.0 <= horizon.seconds(); t += 60.0) {
    faults.slowdowns.push_back(SlowdownWindow{
        static_cast<WorkerId>(hiccup++ % 3), SimTime::FromSeconds(t),
        SimTime::FromSeconds(t + 36.0), 5.0});
  }

  // Equal starting tightness: the dynamic bound starts at — and is floored
  // at — the static comparator's s=2, so it can only ever *loosen* during a
  // straggler episode. Without the floor, healthy-phase ratios near 1 would
  // retune the bound below the static one and the comparison would measure
  // the decay rule, not the episode response. The fast EWMA widens the bound
  // within an epoch or two of a hiccup landing; headroom 2 opens enough gap
  // (~2*(ratio-1) iterations) to absorb most of a 36s episode.
  DynamicSspConfig dssp;
  dssp.initial_staleness = 2;
  dssp.min_staleness = 2;
  dssp.ewma = 0.7;
  dssp.headroom = 2.0;
  std::vector<SchemeRow> rows = {
      {"SSP(s=2)", SchemeSpec::Ssp(2)},
      {"PSSP(s=2)", SchemeSpec::PerShardSsp(2)},
      {"DSSP(s0=2)", SchemeSpec::DynamicSsp(dssp)},
  };

  bench::CellBatch batch;
  for (SchemeRow& row : rows) {
    ExperimentConfig config;
    config.cluster = CleanCluster(num_workers, args.num_servers);
    config.cluster.faults = faults;
    config.scheme = row.scheme;
    config.max_time = horizon;
    config.stop_on_convergence = false;
    row.series = batch.AddSeries(workload, config, replicates, row.label);
  }
  batch.Run(args.threads);

  const Duration fallback = horizon - SimTime::Zero();
  Table table({"scheme", "pushes", "gate_blocks", "stall(s)",
               "time_to_target(s)", "retunes", "final_bound", "final_loss"});
  double static_stall = 0.0;   // PSSP: the same gate with a frozen bound
  double dynamic_stall = 0.0;
  double static_time = 0.0;
  double dynamic_time = 0.0;
  for (const SchemeRow& row : rows) {
    const auto& runs = batch.Series(row.series);
    RunningStats pushes, blocks, stall, retunes, bound, loss;
    for (const ExperimentResult& run : runs) {
      pushes.Add(static_cast<double>(run.sim.total_pushes));
      blocks.Add(static_cast<double>(run.sim.consistency.blocks));
      stall.Add(run.sim.consistency.blocked_seconds);
      retunes.Add(static_cast<double>(run.sim.consistency.retunes));
      bound.Add(static_cast<double>(run.sim.consistency.final_staleness));
      loss.Add(run.final_loss);
    }
    const double to_target =
        bench::MeanTimeToTarget(runs, loss_target, fallback);
    table.AddRowValues(row.label, pushes.mean(), blocks.mean(), stall.mean(),
                       to_target, retunes.mean(), bound.mean(), loss.mean());
    if (row.label.rfind("PSSP", 0) == 0) {
      static_stall = stall.mean();
      static_time = to_target;
    }
    if (row.label.rfind("DSSP", 0) == 0) {
      dynamic_stall = stall.mean();
      dynamic_time = to_target;
    }
  }
  table.PrintPretty(std::cout);
  // Headline: dynamic retuning vs the identical per-shard gate with the
  // bound frozen — the only difference between the two rows is the retune
  // rule. (The global-SSP row is reference only: its scalar controller takes
  // a different event trajectory, so stalls are not directly comparable.)
  if (static_stall > 0.0) {
    std::cout << "DSSP stall vs static per-shard SSP (same horizon, equal "
              << "final loss): " << dynamic_stall << "s vs " << static_stall
              << "s (" << 100.0 * (1.0 - dynamic_stall / static_stall)
              << "% reduction); time to loss " << loss_target << ": "
              << dynamic_time << "s vs " << static_time << "s\n";
  }

  bench::BenchReporter reporter("bench_straggler_consistency");
  reporter.AddBatch(batch);
  reporter.WriteJson();

  // --metrics_out/--trace_out: one instrumented DSSP run; the metrics.json
  // audit section then lists every staleness retune of the run.
  {
    ExperimentConfig obs_config;
    obs_config.cluster = CleanCluster(num_workers, args.num_servers);
    obs_config.cluster.faults = faults;
    obs_config.scheme = SchemeSpec::DynamicSsp(dssp);
    obs_config.max_time = horizon;
    obs_config.stop_on_convergence = false;
    obs_config.seed = bench::kBenchRootSeed;
    bench::EmitObsArtifacts(args, workload, obs_config);
  }
  return 0;
}
