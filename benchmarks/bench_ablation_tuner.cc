// Ablation: Algorithm 1's objective vs wider-window variants.
//
// DESIGN.md calls out two design choices worth ablating:
//  1. The freshness-loss estimate assumes uniform pull arrivals (Eq. 6).
//     Under near-uniform arrivals the gain and loss terms cancel to first
//     order, so the argmax is noise-driven and tends to tiny windows that
//     cannot cover delivery bursts. Down-weighting the loss term
//     (loss_weight < 1) widens the window.
//  2. Candidate enumeration (pairwise push-time differences) vs a dense grid:
//     the step-function argument says the optimum right-aligns a push, so the
//     enumeration should match the grid's best value.
#include <iostream>

#include "benchmarks/bench_util.h"
#include "core/adaptive_tuner.h"

using namespace specsync;

int main() {
  bench::PrintHeader(
      "Ablation — adaptive tuner objective and candidate enumeration",
      "(beyond the paper) how the Eq. 7 objective's loss weight changes the "
      "chosen window, abort behaviour, and staleness");

  const Workload workload = MakeMfWorkload(1);
  const SimTime horizon = SimTime::FromSeconds(900.0);

  Table table({"policy", "abort_time(s)", "abort_rate", "aborts", "pushes",
               "mean_staleness", "final_loss"});
  struct Entry {
    std::string label;
    SchemeSpec scheme;
  };
  std::vector<Entry> entries;
  entries.push_back({"Adaptive (paper, w=1.0)", SchemeSpec::Adaptive()});
  for (double weight : {0.7, 0.4}) {
    AdaptiveTunerConfig config;
    config.loss_weight = weight;
    entries.push_back({"Adaptive (w=" + Table::Format(weight) + ")",
                       SchemeSpec::Adaptive(config)});
  }
  {
    AdaptiveTunerConfig config;
    config.per_worker_rate = true;
    entries.push_back({"Adaptive (per-worker rate)",
                       SchemeSpec::Adaptive(config)});
  }
  entries.push_back(
      {"Cherrypick (0.35T, 0.22)",
       SchemeSpec::Cherrypick(bench::CherryParams(workload))});
  entries.push_back({"ASP (no speculation)", SchemeSpec::Original()});

  for (const Entry& entry : entries) {
    ExperimentConfig config;
    config.cluster = ClusterSpec::Homogeneous(40);
    config.scheme = entry.scheme;
    config.max_time = horizon;
    config.stop_on_convergence = false;
    const auto runs = bench::RunSeeds(workload, config, bench::SeedSweep{{7, 8}});
    RunningStats aborts, pushes, final_loss;
    for (const auto& run : runs) {
      aborts.Add(static_cast<double>(run.sim.total_aborts));
      pushes.Add(static_cast<double>(run.sim.total_pushes));
      final_loss.Add(run.final_loss);
    }
    table.AddRowValues(entry.label, runs[0].sim.final_params.abort_time.seconds(),
                       runs[0].sim.final_params.abort_rate, aborts.mean(),
                       pushes.mean(), bench::MeanStaleness(runs),
                       final_loss.mean());
  }
  table.PrintPretty(std::cout);

  // Part 2: candidate enumeration vs dense grid on a recorded epoch.
  std::cout << "\nCandidate-enumeration optimality check (one recorded epoch, "
               "Eq. 7 values):\n";
  TuningInputs inputs;
  inputs.num_workers = 8;
  Rng rng(5);
  SimTime t = SimTime::Zero();
  for (int i = 0; i < 32; ++i) {
    t += Duration::Seconds(rng.Exponential(1.0));
    inputs.pushes.emplace_back(t, static_cast<WorkerId>(i % 8));
  }
  inputs.last_pull.assign(8, SimTime::Zero());
  for (WorkerId w = 0; w < 8; ++w) {
    inputs.last_pull[w] = SimTime::FromSeconds(rng.Uniform(0.0, 10.0));
  }
  inputs.iteration_span.assign(8, Duration::Seconds(4.0));

  const auto candidates = AdaptiveTuner::CandidateDeltas(
      inputs, Duration::Seconds(4.0), 0);
  double best_enumerated = 0.0;
  for (Duration delta : candidates) {
    best_enumerated =
        std::max(best_enumerated, AdaptiveTuner::EstimateImprovement(inputs, delta));
  }
  double best_grid = 0.0;
  for (double d = 0.001; d <= 4.0; d += 0.001) {
    best_grid = std::max(best_grid, AdaptiveTuner::EstimateImprovement(
                                        inputs, Duration::Seconds(d)));
  }
  std::cout << "best F~ over " << candidates.size()
            << " enumerated candidates: " << best_enumerated
            << "; best over 4000-point dense grid: " << best_grid << " ("
            << (best_enumerated >= best_grid - 1e-9 ? "enumeration optimal"
                                                    : "MISMATCH")
            << ")\n";
  return 0;
}
