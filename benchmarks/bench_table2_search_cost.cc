// Table II: cost of hyperparameter search — Cherrypick's exhaustive grid vs
// the adaptive tuner's closed-form retune.
//
// Paper: Cherrypick needs 5-10 ABORT_TIME trials x 10 ABORT_RATE trials at
// 1.33-8+ cluster-hours per trial (40-800+ hours total); Adaptive needs no
// profiling runs at all.
//
// The grid trials fan across the ParallelRunner (--threads=N); the selected
// optimum and every printed number are bit-identical at any thread count.
#include <iostream>

#include "benchmarks/bench_util.h"
#include "harness/grid_search.h"

using namespace specsync;

int main(int argc, char** argv) {
  const std::size_t threads = bench::ParseThreads(argc, argv);
  bench::PrintHeader(
      "Table II — hyperparameter search cost",
      "Cherrypick: 50-100 profiling trials, 40 to >800 cluster-hours; "
      "Adaptive: closed-form retuning from logged pushes, no extra runs");

  Table table({"workload", "time_trials", "rate_trials", "trial_hours(sim)",
               "total_search_hours(sim)", "adaptive_extra_runs",
               "adaptive_retune_ms(wall)"});

  struct PanelSpec {
    Workload workload;
    GridSearchConfig grid;
    std::size_t workers;
  };
  std::vector<PanelSpec> panels;
  {
    PanelSpec mf{MakeMfWorkload(1, /*scale=*/0.4), {}, 16};
    mf.grid.time_fractions = {0.1, 0.2, 0.35, 0.5};
    mf.grid.rates = {0.1, 0.22, 0.4};
    mf.grid.trial_max_time = SimTime::FromSeconds(400.0);
    panels.push_back(std::move(mf));
  }
  {
    PanelSpec cifar{MakeCifar10Workload(1, /*scale=*/0.3), {}, 12};
    cifar.grid.time_fractions = {0.1, 0.35};
    cifar.grid.rates = {0.1, 0.22, 0.4};
    cifar.grid.trial_max_time = SimTime::FromSeconds(900.0);
    panels.push_back(std::move(cifar));
  }

  bench::BenchReporter reporter("bench_table2_search_cost");
  for (PanelSpec& panel : panels) {
    const ClusterSpec cluster = ClusterSpec::Homogeneous(panel.workers);
    panel.grid.threads = threads;
    const GridSearchResult search =
        CherrypickSearch(panel.workload, cluster, panel.grid);
    for (std::size_t i = 0; i < search.cells.size(); ++i) {
      const ExperimentCell& cell = search.cells[i];
      const CellResult& result = search.cell_results[i];
      bench::BenchReporter::CellRecord record;
      record.workload = cell.workload.name;
      record.scheme = cell.config.scheme.DisplayName();
      record.label = cell.label;
      record.seed = result.seed;
      record.wall_seconds = result.wall_seconds;
      record.sim_events = result.sim_events;
      record.pushes = result.result.sim.total_pushes;
      record.sim_end_seconds = result.result.sim.end_time.seconds();
      record.final_loss = result.result.final_loss;
      record.trace_digest = result.trace_digest;
      reporter.Add(record);
    }
    reporter.SetRun(threads, search.wall_seconds,
                    search.serial_wall_estimate);

    // Adaptive: measure the wall-clock cost of one full training run's worth
    // of retunes (the only "cost" the adaptive scheme has). One cell through
    // the same engine, so its wall time lands in the telemetry too.
    bench::CellBatch adaptive_batch;
    ExperimentConfig config;
    config.cluster = cluster;
    config.scheme = SchemeSpec::Adaptive();
    config.max_time = panel.grid.trial_max_time;
    config.stop_on_convergence = false;
    const std::size_t series =
        adaptive_batch.AddSeries(panel.workload, config, 1, "adaptive-cost");
    adaptive_batch.Run(/*threads=*/1);
    const ExperimentResult& adaptive = adaptive_batch.Series(series)[0];
    const double wall_ms = adaptive_batch.results()[0].wall_seconds * 1e3;
    const double retunes =
        static_cast<double>(adaptive.sim.scheduler_stats.retunes);
    reporter.AddBatch(adaptive_batch);

    table.AddRowValues(
        panel.workload.name,
        static_cast<unsigned long>(panel.grid.time_fractions.size()),
        static_cast<unsigned long>(panel.grid.rates.size()),
        panel.grid.trial_max_time.seconds() / 3600.0,
        search.total_simulated_time.seconds() / 3600.0, 0,
        wall_ms / std::max(1.0, retunes));
  }
  table.PrintPretty(std::cout);
  std::cout << "(adaptive_retune_ms is the wall cost per retune amortized "
               "over one training run — the grid search instead re-runs "
               "training once per cell)\n";
  reporter.WriteJson();
  return 0;
}
