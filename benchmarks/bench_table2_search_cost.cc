// Table II: cost of hyperparameter search — Cherrypick's exhaustive grid vs
// the adaptive tuner's closed-form retune.
//
// Paper: Cherrypick needs 5-10 ABORT_TIME trials x 10 ABORT_RATE trials at
// 1.33-8+ cluster-hours per trial (40-800+ hours total); Adaptive needs no
// profiling runs at all.
#include <chrono>
#include <iostream>

#include "benchmarks/bench_util.h"
#include "harness/grid_search.h"

using namespace specsync;

int main() {
  bench::PrintHeader(
      "Table II — hyperparameter search cost",
      "Cherrypick: 50-100 profiling trials, 40 to >800 cluster-hours; "
      "Adaptive: closed-form retuning from logged pushes, no extra runs");

  Table table({"workload", "time_trials", "rate_trials", "trial_hours(sim)",
               "total_search_hours(sim)", "adaptive_extra_runs",
               "adaptive_retune_ms(wall)"});

  struct PanelSpec {
    Workload workload;
    GridSearchConfig grid;
    std::size_t workers;
  };
  std::vector<PanelSpec> panels;
  {
    PanelSpec mf{MakeMfWorkload(1, /*scale=*/0.4), {}, 16};
    mf.grid.time_fractions = {0.1, 0.2, 0.35, 0.5};
    mf.grid.rates = {0.1, 0.22, 0.4};
    mf.grid.trial_max_time = SimTime::FromSeconds(400.0);
    panels.push_back(std::move(mf));
  }
  {
    PanelSpec cifar{MakeCifar10Workload(1, /*scale=*/0.3), {}, 12};
    cifar.grid.time_fractions = {0.1, 0.35};
    cifar.grid.rates = {0.1, 0.22, 0.4};
    cifar.grid.trial_max_time = SimTime::FromSeconds(900.0);
    panels.push_back(std::move(cifar));
  }

  for (PanelSpec& panel : panels) {
    const ClusterSpec cluster = ClusterSpec::Homogeneous(panel.workers);
    const GridSearchResult search =
        CherrypickSearch(panel.workload, cluster, panel.grid);

    // Adaptive: measure the wall-clock cost of one full training run's worth
    // of retunes (the only "cost" the adaptive scheme has).
    ExperimentConfig config;
    config.cluster = cluster;
    config.scheme = SchemeSpec::Adaptive();
    config.max_time = panel.grid.trial_max_time;
    config.stop_on_convergence = false;
    const auto start = std::chrono::steady_clock::now();
    const ExperimentResult adaptive = RunExperiment(panel.workload, config);
    const auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    const double retunes =
        static_cast<double>(adaptive.sim.scheduler_stats.retunes);

    table.AddRowValues(
        panel.workload.name,
        static_cast<unsigned long>(panel.grid.time_fractions.size()),
        static_cast<unsigned long>(panel.grid.rates.size()),
        panel.grid.trial_max_time.seconds() / 3600.0,
        search.total_simulated_time.seconds() / 3600.0, 0,
        static_cast<double>(wall.count()) / std::max(1.0, retunes));
  }
  table.PrintPretty(std::cout);
  std::cout << "(adaptive_retune_ms is the wall cost per retune amortized "
               "over one training run — the grid search instead re-runs "
               "training once per cell)\n";
  return 0;
}
