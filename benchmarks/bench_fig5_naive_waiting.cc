// Fig. 5: learning curves under naive waiting with different fixed delays.
//
// Paper: on CIFAR-10, delaying every pull by 1 s improves over stock ASP;
// 3 s yields little benefit; 5 s does more harm than good. MF similar.
#include <iostream>

#include "benchmarks/bench_util.h"

using namespace specsync;

namespace {

void Panel(const Workload& workload, const std::vector<double>& delays,
           SimTime horizon, std::size_t checkpoints) {
  std::cout << "\n--- " << workload.name << " (20 workers) ---\n";
  std::vector<std::vector<ExperimentResult>> runs;
  std::vector<std::string> labels;
  for (double delay : delays) {
    ExperimentConfig config;
    config.cluster = ClusterSpec::Homogeneous(20);
    config.scheme = delay == 0.0
                        ? SchemeSpec::Original()
                        : SchemeSpec::NaiveWaiting(Duration::Seconds(delay));
    config.max_time = horizon;
    config.stop_on_convergence = false;
    runs.push_back(bench::RunSeeds(workload, config, bench::SeedSweep{}));
    labels.push_back(delay == 0.0 ? "ASP(0s)"
                                  : "wait " + Table::Format(delay) + "s");
  }
  std::vector<std::string> headers{"time(s)"};
  headers.insert(headers.end(), labels.begin(), labels.end());
  Table table(std::move(headers));
  for (std::size_t i = 1; i <= checkpoints; ++i) {
    const SimTime t = SimTime::FromSeconds(
        horizon.seconds() * static_cast<double>(i) /
        static_cast<double>(checkpoints));
    std::vector<std::string> row{Table::Format(t.seconds())};
    for (const auto& schemes : runs) {
      row.push_back(Table::Format(bench::MeanLossAt(schemes, t)));
    }
    table.AddRow(std::move(row));
  }
  table.PrintPretty(std::cout);

  // Push throughput shows the duty-cycle cost of waiting.
  std::cout << "mean pushes per run:";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    RunningStats pushes;
    for (const auto& run : runs[i]) {
      pushes.Add(static_cast<double>(run.sim.total_pushes));
    }
    std::cout << "  " << labels[i] << "=" << pushes.mean();
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig. 5 — naive waiting with fixed pull delays",
      "1 s delay helps, 3 s ~ breaks even, 5 s hurts (CIFAR-10, 14 s "
      "iterations); the right delay is workload-dependent");

  Panel(MakeCifar10Workload(1), {0.0, 1.0, 3.0, 5.0},
        SimTime::FromSeconds(1400.0), 7);
  Panel(MakeMfWorkload(1), {0.0, 0.2, 0.7, 1.2}, SimTime::FromSeconds(360.0),
        6);
  return 0;
}
