// Fig. 10: robustness to cluster heterogeneity.
//
// Paper: on Cluster 2 (four EC2 instance types, 10 nodes each),
// SpecSync-Adaptive still outperforms Original, though by less than on the
// homogeneous cluster — the tuner's uniform-arrival assumption degrades.
//
// The four (cluster, scheme) cells run through one ParallelRunner pass
// (--threads=N); output is bit-identical at any thread count. The cluster
// shape is part of each cell's seed key (label "homo"/"hetero").
#include <iostream>

#include "benchmarks/bench_util.h"

using namespace specsync;

namespace {

std::size_t AddCell(bench::CellBatch& batch, const Workload& workload,
                    bool heterogeneous, SchemeSpec scheme, SimTime horizon,
                    const bench::ConsistencySelection& consistency) {
  consistency.Apply(scheme);
  ExperimentConfig config;
  config.cluster = heterogeneous ? ClusterSpec::Heterogeneous(20)
                                 : ClusterSpec::Homogeneous(20);
  config.scheme = std::move(scheme);
  config.max_time = horizon;
  config.stop_on_convergence = false;
  return batch.AddSeries(workload, config, /*replicates=*/2,
                         heterogeneous ? "hetero" : "homo");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::PrintHeader(
      "Fig. 10 — heterogeneous cluster (4 instance classes)",
      "SpecSync-Adaptive beats Original on both clusters; the heterogeneous "
      "speedup is smaller than the homogeneous one");
  if (args.consistency.set) {
    std::cout << "(base consistency override: " << args.consistency.Label()
              << " for every scheme)\n";
  }

  const Workload workload = MakeCifar10Workload(1);
  const SimTime horizon = SimTime::FromSeconds(2400.0);

  bench::CellBatch batch;
  const std::size_t homo_asp = AddCell(
      batch, workload, false, SchemeSpec::Original(), horizon,
      args.consistency);
  const std::size_t homo_spec = AddCell(
      batch, workload, false, SchemeSpec::Adaptive(), horizon,
      args.consistency);
  const std::size_t hetero_asp = AddCell(
      batch, workload, true, SchemeSpec::Original(), horizon,
      args.consistency);
  const std::size_t hetero_spec = AddCell(
      batch, workload, true, SchemeSpec::Adaptive(), horizon,
      args.consistency);
  batch.Run(args.threads);

  const auto& ha_runs = batch.Series(homo_asp);
  const auto& hs_runs = batch.Series(homo_spec);
  const auto& ea_runs = batch.Series(hetero_asp);
  const auto& es_runs = batch.Series(hetero_spec);

  Table curve({"time(s)", "homo/ASP", "homo/SpecSync", "hetero/ASP",
               "hetero/SpecSync"});
  for (int i = 1; i <= 8; ++i) {
    const SimTime t = SimTime::FromSeconds(horizon.seconds() * i / 8.0);
    curve.AddRowValues(t.seconds(), bench::MeanLossAt(ha_runs, t),
                       bench::MeanLossAt(hs_runs, t),
                       bench::MeanLossAt(ea_runs, t),
                       bench::MeanLossAt(es_runs, t));
  }
  curve.PrintPretty(std::cout);

  const Duration fallback = horizon - SimTime::Zero();
  const double target = workload.loss_target;
  Table summary({"cluster", "ASP_time(s)", "SpecSync_time(s)", "speedup"});
  const double ha = bench::MeanTimeToTarget(ha_runs, target, fallback);
  const double hs = bench::MeanTimeToTarget(hs_runs, target, fallback);
  const double ea = bench::MeanTimeToTarget(ea_runs, target, fallback);
  const double es = bench::MeanTimeToTarget(es_runs, target, fallback);
  summary.AddRowValues("homogeneous", ha, hs, hs > 0 ? ha / hs : 0.0);
  summary.AddRowValues("heterogeneous", ea, es, es > 0 ? ea / es : 0.0);
  summary.PrintPretty(std::cout);

  std::cout << "staleness (missed updates/push): homo ASP="
            << bench::MeanStaleness(ha_runs)
            << " homo Spec=" << bench::MeanStaleness(hs_runs)
            << " hetero ASP=" << bench::MeanStaleness(ea_runs)
            << " hetero Spec=" << bench::MeanStaleness(es_runs) << "\n";

  if (args.consistency.set) {
    const auto stall = [](const std::vector<ExperimentResult>& runs) {
      RunningStats stats;
      for (const ExperimentResult& run : runs) {
        stats.Add(run.sim.consistency.blocked_seconds);
      }
      return stats.mean();
    };
    std::cout << "consistency stall (mean blocked s/run, "
              << args.consistency.Label() << "): homo ASP=" << stall(ha_runs)
              << " homo Spec=" << stall(hs_runs)
              << " hetero ASP=" << stall(ea_runs)
              << " hetero Spec=" << stall(es_runs) << "\n";
  }

  bench::BenchReporter reporter("bench_fig10_heterogeneity");
  reporter.AddBatch(batch);
  reporter.WriteJson();

  // --metrics_out/--trace_out: one instrumented heterogeneous Adaptive run
  // (the cell with the widest straggler ratios). With --consistency=dssp:N
  // the snapshot's decision-audit section lists every staleness retune.
  {
    ExperimentConfig obs_config;
    obs_config.cluster = ClusterSpec::Heterogeneous(20);
    obs_config.scheme = SchemeSpec::Adaptive();
    args.consistency.Apply(obs_config.scheme);
    obs_config.max_time = horizon;
    obs_config.stop_on_convergence = false;
    obs_config.seed = bench::kBenchRootSeed;
    bench::EmitObsArtifacts(args, workload, obs_config);
  }
  return 0;
}
