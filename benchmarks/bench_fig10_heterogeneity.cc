// Fig. 10: robustness to cluster heterogeneity.
//
// Paper: on Cluster 2 (four EC2 instance types, 10 nodes each),
// SpecSync-Adaptive still outperforms Original, though by less than on the
// homogeneous cluster — the tuner's uniform-arrival assumption degrades.
#include <iostream>

#include "benchmarks/bench_util.h"

using namespace specsync;

namespace {

struct Cell {
  std::vector<ExperimentResult> runs;
};

Cell Run(const Workload& workload, bool heterogeneous, SchemeSpec scheme,
         SimTime horizon) {
  ExperimentConfig config;
  config.cluster = heterogeneous ? ClusterSpec::Heterogeneous(20)
                                 : ClusterSpec::Homogeneous(20);
  config.scheme = std::move(scheme);
  config.max_time = horizon;
  config.stop_on_convergence = false;
  return {bench::RunSeeds(workload, config, bench::SeedSweep{{7, 8}})};
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig. 10 — heterogeneous cluster (4 instance classes)",
      "SpecSync-Adaptive beats Original on both clusters; the heterogeneous "
      "speedup is smaller than the homogeneous one");

  const Workload workload = MakeCifar10Workload(1);
  const SimTime horizon = SimTime::FromSeconds(2400.0);

  const Cell homo_asp = Run(workload, false, SchemeSpec::Original(), horizon);
  const Cell homo_spec = Run(workload, false, SchemeSpec::Adaptive(), horizon);
  const Cell hetero_asp = Run(workload, true, SchemeSpec::Original(), horizon);
  const Cell hetero_spec = Run(workload, true, SchemeSpec::Adaptive(), horizon);

  Table curve({"time(s)", "homo/ASP", "homo/SpecSync", "hetero/ASP",
               "hetero/SpecSync"});
  for (int i = 1; i <= 8; ++i) {
    const SimTime t = SimTime::FromSeconds(horizon.seconds() * i / 8.0);
    curve.AddRowValues(t.seconds(), bench::MeanLossAt(homo_asp.runs, t),
                       bench::MeanLossAt(homo_spec.runs, t),
                       bench::MeanLossAt(hetero_asp.runs, t),
                       bench::MeanLossAt(hetero_spec.runs, t));
  }
  curve.PrintPretty(std::cout);

  const Duration fallback = horizon - SimTime::Zero();
  const double target = workload.loss_target;
  Table summary({"cluster", "ASP_time(s)", "SpecSync_time(s)", "speedup"});
  const double ha = bench::MeanTimeToTarget(homo_asp.runs, target, fallback);
  const double hs = bench::MeanTimeToTarget(homo_spec.runs, target, fallback);
  const double ea = bench::MeanTimeToTarget(hetero_asp.runs, target, fallback);
  const double es = bench::MeanTimeToTarget(hetero_spec.runs, target, fallback);
  summary.AddRowValues("homogeneous", ha, hs, hs > 0 ? ha / hs : 0.0);
  summary.AddRowValues("heterogeneous", ea, es, es > 0 ? ea / es : 0.0);
  summary.PrintPretty(std::cout);

  std::cout << "staleness (missed updates/push): homo ASP="
            << bench::MeanStaleness(homo_asp.runs)
            << " homo Spec=" << bench::MeanStaleness(homo_spec.runs)
            << " hetero ASP=" << bench::MeanStaleness(hetero_asp.runs)
            << " hetero Spec=" << bench::MeanStaleness(hetero_spec.runs)
            << "\n";
  return 0;
}
