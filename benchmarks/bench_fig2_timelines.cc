// Figures 2 / 4 / 6: the didactic 4-worker timelines.
//
// Fig. 2 (ASP): a worker that pulls early misses the pushes landing right
// after its pull. Fig. 4 (naive waiting): a fixed pull delay exposes them.
// Fig. 6 (SpecSync): the scheduler aborts workers whose speculation window
// saw enough pushes; they restart on fresher parameters.
#include <iomanip>
#include <iostream>

#include "benchmarks/bench_util.h"
#include "data/synthetic.h"
#include "models/softmax_regression.h"
#include "sim/cluster.h"

using namespace specsync;

namespace {

std::shared_ptr<const Model> TinyModel() {
  Rng rng(1);
  ClassificationSpec spec;
  spec.num_examples = 200;
  spec.feature_dim = 8;
  spec.num_classes = 2;
  auto data = std::make_shared<ClassificationDataset>(
      GenerateClassification(spec, rng));
  return std::make_shared<SoftmaxRegressionModel>(std::move(data),
                                                  SoftmaxRegressionConfig{});
}

void PrintTimeline(const char* title, const SimResult& result,
                   double horizon) {
  std::cout << "\n--- " << title << " (first " << horizon << "s) ---\n";
  for (WorkerId w = 0; w < result.trace.num_workers(); ++w) {
    std::cout << "worker-" << (w + 1) << ": ";
    struct Mark {
      double t;
      char kind;
    };
    std::vector<Mark> marks;
    for (const PullEvent& e : result.trace.pulls()) {
      if (e.worker == w && e.time.seconds() <= horizon) {
        marks.push_back({e.time.seconds(), 'P'});
      }
    }
    for (const PushEvent& e : result.trace.pushes()) {
      if (e.worker == w && e.time.seconds() <= horizon) {
        marks.push_back({e.time.seconds(), 'U'});
      }
    }
    for (const AbortEvent& e : result.trace.aborts()) {
      if (e.worker == w && e.time.seconds() <= horizon) {
        marks.push_back({e.time.seconds(), 'A'});
      }
    }
    std::sort(marks.begin(), marks.end(),
              [](const Mark& a, const Mark& b) { return a.t < b.t; });
    for (const Mark& mark : marks) {
      std::cout << mark.kind << "@" << std::fixed << std::setprecision(2)
                << mark.t << "s ";
    }
    std::cout << "\n";
  }
  std::cout << "(P = pull, U = push/update, A = abort-and-refresh; "
            << "aborts=" << result.total_aborts << ")\n";
}

SimResult Run(SchemeSpec scheme) {
  ClusterSimConfig config;
  config.num_workers = 4;
  config.num_servers = 1;
  config.batch_size = 8;
  config.scheme = std::move(scheme);
  config.eval_interval = Duration::Seconds(50.0);
  config.max_time = SimTime::FromSeconds(40.0);
  config.seed = 3;
  // Distinct deterministic speeds so the interleaving is legible, mirroring
  // the staggered workers of the paper's Fig. 2.
  auto speed = std::make_unique<HeterogeneousSpeedModel>(
      Duration::Seconds(4.0), std::vector<double>{1.0, 1.15, 0.85, 1.3}, 0.02);
  ClusterSim sim(TinyModel(), std::make_shared<ConstantSchedule>(0.1),
                 std::move(speed), config);
  return sim.Run();
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig. 2 / 4 / 6 — synchronization timelines (4 workers)",
      "ASP hides pushes-after-pull; naive waiting uncovers some at a fixed "
      "delay; SpecSync aborts and refreshes only when enough pushes landed");

  PrintTimeline("Fig. 2: ASP", Run(SchemeSpec::Original()), 20.0);
  PrintTimeline("Fig. 4: naive waiting (1s)",
                Run(SchemeSpec::NaiveWaiting(Duration::Seconds(1.0))), 20.0);

  SpeculationParams params;
  params.abort_time = Duration::Seconds(1.5);
  params.abort_rate = 0.5;  // 2 of 4 workers
  PrintTimeline("Fig. 6: SpecSync (ABORT_TIME=1.5s, ABORT_RATE=0.5)",
                Run(SchemeSpec::Cherrypick(params)), 20.0);
  return 0;
}
