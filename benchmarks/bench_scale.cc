// bench_scale: datacenter-scale engine benchmark (DESIGN.md §12).
//
// The ROADMAP's north star is "what does SpecSync do at datacenter scale";
// BENCH_harness.json named the two engine blockers: the Adaptive tuner's
// O(pushes²) Algorithm-1 replay and DES throughput collapse once sharding
// multiplies events. This bench tracks both after the calendar-queue /
// incremental-tuner rewrite, in three sections:
//
//  1. DES-core hold model — the classic queue benchmark (pop the minimum,
//     push a successor at popped_time + jitter) at simulator-like occupancy,
//     run A/B/C over three engines: the *legacy* seed engine reconstructed
//     verbatim (std::priority_queue of heap-allocating std::function events —
//     what src/sim/simulator.h shipped before the rewrite), the pooled
//     binary heap, and the calendar queue. The ≥3× events/sec acceptance
//     claim is calendar vs legacy at 16-server occupancy, printed and
//     recorded per engine in BENCH_scale.json.
//  2. End-to-end engine cells — a 16-server transfer-bound convex run (the
//     shape BENCH_harness.json flagged at 7 s/sim-second) and the MF
//     SpecSync-Adaptive cell whose tuner cost motivated the incremental
//     replay (4.8 s/cell before; ≥2× better now).
//  3. workers=1000 — a thousand-worker, 16-shard transfer-bound run, the
//     scale the old engines could not reach interactively. Under --smoke
//     this run is a CI gate: a pinned events/sec floor and wall-time ceiling
//     fail the job (nonzero exit) on regression.
//
// Telemetry lands in BENCH_scale.json (override with SPECSYNC_BENCH_JSON);
// the hold-model rows use sim_events = hold operations so the JSON's
// per-cell events/sec is directly the engine's pop+push throughput.
//
// Regenerate: build/bench/bench_scale            (full, ~1 min)
//             build/bench/bench_scale --smoke    (CI gate, seconds)
#include <chrono>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "benchmarks/bench_util.h"
#include "common/rng.h"
#include "sim/calendar_queue.h"
#include "sim/event_fn.h"

using namespace specsync;

namespace {

// --- section 1: DES-core hold model -----------------------------------------

// The seed event core, reconstructed for an honest A/B: a std::priority_queue
// of (time, sequence, std::function) entries, each callback heap-allocated by
// std::function and copied through the heap's sift operations. Kept verbatim
// so the baseline in BENCH_scale.json stays the engine the ISSUE measured.
struct LegacyEvent {
  SimTime time;
  std::uint64_t sequence = 0;
  std::function<void()> fn;
};
struct LegacyLater {
  bool operator()(const LegacyEvent& a, const LegacyEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.sequence > b.sequence;
  }
};
using LegacyQueue =
    std::priority_queue<LegacyEvent, std::vector<LegacyEvent>, LegacyLater>;

struct HoldResult {
  double wall_seconds = 0.0;
  std::uint64_t events = 0;  // pop+push pairs executed
  double EventsPerSec() const {
    return wall_seconds > 0.0 ? static_cast<double>(events) / wall_seconds
                              : 0.0;
  }
};

// Successor jitter: the classic hold model pushes each popped event's
// follow-up U(0.1, 1.9) seconds ahead, so the live set keeps a ~2 s spread
// at every occupancy — the "bounded lookahead past now" regime the DES
// steady state lives in.
double NextDelta(Rng& rng) { return rng.Uniform(0.1, 1.9); }

// Simulator callbacks capture several words of context (worker id, version,
// arrival time, the cluster Impl pointer), which overflows std::function's
// small-buffer inline storage — that per-event heap allocation is exactly
// what the legacy engine paid and EventFn's 64-byte inline buffer does not.
// The hold payload reproduces that footprint.
struct HoldPayload {
  std::uint64_t* sink = nullptr;
  std::uint64_t worker = 0;
  std::uint64_t version = 0;
  double arrival = 0.0;
};

HoldResult HoldLegacy(std::size_t occupancy, std::uint64_t ops,
                      std::uint64_t* sink) {
  Rng rng(bench::kBenchRootSeed);
  LegacyQueue queue;
  std::uint64_t seq = 0;
  const auto make = [sink](std::uint64_t i, double t) {
    const HoldPayload payload{sink, i, i ^ 0x9e37u, t};
    return [payload] { *payload.sink += 1 + (payload.version & 0); };
  };
  for (std::size_t i = 0; i < occupancy; ++i) {
    const double t = rng.Uniform(0.0, 1.0);
    queue.push({SimTime::FromSeconds(t), seq++, make(i, t)});
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    // The seed Simulator::Step, verbatim: "priority_queue::top() is const;
    // the event is copied out" — one std::function clone per pop.
    LegacyEvent event = queue.top();
    queue.pop();
    event.fn();
    const SimTime at = event.time + Duration::Seconds(NextDelta(rng));
    queue.push({at, seq++, make(i, at.seconds())});
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - t0;
  return {wall.count(), ops};
}

template <typename Queue>
HoldResult HoldPooled(std::size_t occupancy, std::uint64_t ops,
                      std::uint64_t* sink) {
  Rng rng(bench::kBenchRootSeed);
  Queue queue;
  const auto make = [sink](std::uint64_t i, double t) {
    const HoldPayload payload{sink, i, i ^ 0x9e37u, t};
    return EventFn([payload] { *payload.sink += 1 + (payload.version & 0); });
  };
  for (std::size_t i = 0; i < occupancy; ++i) {
    const double t = rng.Uniform(0.0, 1.0);
    queue.Push(SimTime::FromSeconds(t), make(i, t));
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    SimTime at;
    EventFn fn = queue.PopMin(&at);
    fn();
    const SimTime next = at + Duration::Seconds(NextDelta(rng));
    queue.Push(next, make(i, next.seconds()));
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - t0;
  return {wall.count(), ops};
}

void RecordHoldCell(bench::BenchReporter& reporter, const std::string& engine,
                    std::size_t occupancy, const HoldResult& result) {
  bench::BenchReporter::CellRecord record;
  record.workload = "hold-model";
  record.scheme = engine;
  record.label = "occupancy=" + std::to_string(occupancy);
  record.seed = occupancy;
  record.wall_seconds = result.wall_seconds;
  record.sim_events = result.events;
  reporter.Add(record);
}

// Runs the three engines at one occupancy; returns calendar-vs-legacy ratio.
double HoldSection(bench::BenchReporter& reporter, std::size_t occupancy,
                   std::uint64_t ops) {
  std::uint64_t sink = 0;
  // Best of two passes per engine: the classic defense against host noise
  // (the slower pass ate a scheduler hiccup, not a queue cost).
  const auto best = [](HoldResult a, HoldResult b) {
    return a.wall_seconds <= b.wall_seconds ? a : b;
  };
  const HoldResult legacy = best(HoldLegacy(occupancy, ops, &sink),
                                 HoldLegacy(occupancy, ops, &sink));
  const HoldResult heap =
      best(HoldPooled<BinaryHeapQueue<EventFn>>(occupancy, ops, &sink),
           HoldPooled<BinaryHeapQueue<EventFn>>(occupancy, ops, &sink));
  const HoldResult calendar =
      best(HoldPooled<CalendarQueue<EventFn>>(occupancy, ops, &sink),
           HoldPooled<CalendarQueue<EventFn>>(occupancy, ops, &sink));
  if (sink != 6 * ops) std::abort();  // keeps the callbacks observable
  RecordHoldCell(reporter, "legacy-heap", occupancy, legacy);
  RecordHoldCell(reporter, "pooled-heap", occupancy, heap);
  RecordHoldCell(reporter, "calendar", occupancy, calendar);
  const double ratio =
      legacy.EventsPerSec() > 0.0
          ? calendar.EventsPerSec() / legacy.EventsPerSec()
          : 0.0;
  Table table({"engine", "events/sec", "vs legacy"});
  table.AddRowValues("legacy-heap", legacy.EventsPerSec(), 1.0);
  table.AddRowValues("pooled-heap", heap.EventsPerSec(),
                     heap.EventsPerSec() / legacy.EventsPerSec());
  table.AddRowValues("calendar", calendar.EventsPerSec(), ratio);
  std::cout << "\nhold model, occupancy=" << occupancy << ", " << ops
            << " ops:\n";
  table.PrintPretty(std::cout);
  return ratio;
}

}  // namespace

int main(int argc, char** argv) {
  // This bench owns its own artifact; figure benches keep BENCH_harness.json.
  setenv("SPECSYNC_BENCH_JSON", "BENCH_scale.json", /*overwrite=*/0);
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::PrintHeader(
      "scale — calendar-queue DES core + incremental Adaptive tuner",
      "engine throughput at datacenter scale: >=3x DES events/sec at "
      "16-server occupancy, >=2x MF Adaptive cell, workers=1000 viable");

  bench::BenchReporter reporter("bench_scale");
  const auto run_t0 = std::chrono::steady_clock::now();

  // 1. DES-core hold model. occupancy 1024 ~ a 16-server sim's resident
  // events (per-shard arrivals + worker timers); 16384 ~ the 1000-worker
  // cluster below. The acceptance ratio is the 1024-occupancy row.
  const std::uint64_t hold_ops = args.smoke ? 300'000 : 2'000'000;
  const double core_ratio = HoldSection(reporter, 1024, hold_ops);
  const double thousand_worker_ratio = HoldSection(reporter, 16384, hold_ops);
  std::cout << "des-core speedup at 16-server occupancy: " << core_ratio
            << "x (acceptance floor 3x)\n";
  reporter.AddMetric("des_core_speedup_16server", core_ratio);
  reporter.AddMetric("des_core_speedup_1000worker", thousand_worker_ratio);

  // 2. End-to-end engine cells through the deterministic runner.
  bench::CellBatch batch;
  const Workload convex = MakeConvexWorkload(/*seed=*/1, /*scale=*/0.2);
  ExperimentConfig transfer16;
  transfer16.cluster = ClusterSpec::Homogeneous(40);
  transfer16.cluster.num_servers = 16;
  transfer16.scheme = SchemeSpec::Adaptive();
  transfer16.max_time = SimTime::FromSeconds(args.smoke ? 60.0 : 240.0);
  transfer16.stop_on_convergence = false;
  const std::size_t transfer_series =
      batch.AddSeries(convex, transfer16, /*replicates=*/1, "transfer16");

  // 3. workers=1000, 16 shards: every pull and push fans out per shard, so
  // this is the transfer-bound regime where the old engines collapsed.
  ExperimentConfig thousand;
  thousand.cluster = ClusterSpec::Homogeneous(1000);
  thousand.cluster.num_servers = 16;
  thousand.scheme = SchemeSpec::Adaptive();
  thousand.max_time = SimTime::FromSeconds(args.smoke ? 8.0 : 30.0);
  thousand.stop_on_convergence = false;
  const std::size_t thousand_series =
      batch.AddSeries(convex, thousand, /*replicates=*/1, "workers=1000");

  batch.Run(args.threads);
  reporter.AddBatch(batch);

  // 4. Tuner replay A/B — its own *serial* batch, because a wall-time ratio
  // measured inside a contended thread pool compares scheduler luck, not
  // replay engines. Both cells pin one explicit seed so the A/B replays the
  // exact same history (label-derived seeding would hand each series its own
  // world); "mf-full-replay" runs the retained full Algorithm-1 loop (the
  // seed's O(pushes²) replay, kept behind incremental=false as the
  // equivalence reference).
  bench::CellBatch tuner_batch;
  const Workload mf = MakeMfWorkload(/*seed=*/1);
  ExperimentConfig mf_adaptive;
  // 64 workers: enough pushes per epoch (~100+) that the full replay's
  // O(pushes²) term dominates the cell — the regime the ROADMAP flagged.
  // At 40 workers the quadratic term only matches the base sim cost and the
  // ratio sits uselessly near the noise floor.
  mf_adaptive.cluster = ClusterSpec::Homogeneous(64);
  mf_adaptive.cluster.num_servers = 4;
  mf_adaptive.scheme = SchemeSpec::Adaptive();
  mf_adaptive.max_time = SimTime::FromSeconds(args.smoke ? 400.0 : 1500.0);
  mf_adaptive.stop_on_convergence = false;
  constexpr std::uint64_t kMfSeed = 41;
  const std::size_t mf_series = tuner_batch.AddSeries(
      mf, mf_adaptive, /*replicates=*/1, "mf-adaptive", kMfSeed);
  AdaptiveTunerConfig full_replay;
  full_replay.incremental = false;
  ExperimentConfig mf_full = mf_adaptive;
  mf_full.scheme = SchemeSpec::Adaptive(full_replay);
  const std::size_t mf_full_series = tuner_batch.AddSeries(
      mf, mf_full, /*replicates=*/1, "mf-full-replay", kMfSeed);
  tuner_batch.Run(/*threads=*/1);
  reporter.AddBatch(tuner_batch);

  (void)transfer_series;
  (void)mf_series;
  (void)mf_full_series;
  (void)thousand_series;
  Table cells({"cell", "wall(s)", "sim events", "events/sec"});
  double thousand_wall = 0.0;
  double thousand_rate = 0.0;
  double mf_incremental_wall = 0.0;
  double mf_full_wall = 0.0;
  std::uint64_t mf_incremental_digest = 0;
  std::uint64_t mf_full_digest = 0;
  const auto scan = [&](const bench::CellBatch& b) {
    for (std::size_t i = 0; i < b.cells().size(); ++i) {
      const CellResult& cell = b.results()[i];
      const double rate =
          cell.wall_seconds > 0.0
              ? static_cast<double>(cell.sim_events) / cell.wall_seconds
              : 0.0;
      cells.AddRowValues(b.cells()[i].label, cell.wall_seconds,
                         static_cast<unsigned long>(cell.sim_events), rate);
      if (b.cells()[i].label == "workers=1000") {
        thousand_wall = cell.wall_seconds;
        thousand_rate = rate;
      } else if (b.cells()[i].label == "mf-adaptive") {
        mf_incremental_wall = cell.wall_seconds;
        mf_incremental_digest = cell.trace_digest;
      } else if (b.cells()[i].label == "mf-full-replay") {
        mf_full_wall = cell.wall_seconds;
        mf_full_digest = cell.trace_digest;
      }
    }
  };
  scan(batch);
  scan(tuner_batch);
  std::cout << "\nend-to-end cells (threads=" << args.threads
            << ", tuner A/B serial):\n";
  cells.PrintPretty(std::cout);

  // Equivalence-by-construction, checked where the money is: the two replay
  // engines must have produced the identical event history.
  if (mf_incremental_digest != mf_full_digest) {
    std::cout << "FATAL: incremental and full tuner replays diverged ("
              << mf_incremental_digest << " vs " << mf_full_digest << ")\n";
    return 1;
  }
  const double tuner_speedup =
      mf_incremental_wall > 0.0 ? mf_full_wall / mf_incremental_wall : 0.0;
  std::cout << "tuner replay speedup (full / incremental) on MF: "
            << tuner_speedup << "x (acceptance floor 2x)\n";
  reporter.AddMetric("tuner_replay_speedup_mf", tuner_speedup);

  // AddBatch already accounted both batches' walls; only the hold-model
  // sections still need folding into the run total (serial by construction,
  // so they add to both wall and the serial estimate equally).
  const std::chrono::duration<double> run_wall =
      std::chrono::steady_clock::now() - run_t0;
  const double hold_wall =
      run_wall.count() - batch.wall_seconds() - tuner_batch.wall_seconds();
  reporter.SetRun(args.threads, hold_wall, hold_wall);
  reporter.AddMetric("workers1000_events_per_sec", thousand_rate);
  reporter.AddMetric("workers1000_wall_seconds", thousand_wall);
  reporter.WriteJson();

  if (args.smoke) {
    // CI gate: pinned floor/ceiling for the workers=1000 smoke cell, set ~4x
    // below/above the measured dev-container numbers (~5.5-7k events/sec,
    // ~2.5-3 s wall under a threads=4 contended batch) so only a real engine
    // regression — not host noise — trips them.
    constexpr double kEventsPerSecFloor = 1'500.0;
    constexpr double kWallCeilingSeconds = 12.0;
    bool ok = true;
    if (thousand_rate < kEventsPerSecFloor) {
      std::cout << "SMOKE FAIL: workers=1000 events/sec " << thousand_rate
                << " < floor " << kEventsPerSecFloor << "\n";
      ok = false;
    }
    if (thousand_wall > kWallCeilingSeconds) {
      std::cout << "SMOKE FAIL: workers=1000 wall " << thousand_wall
                << "s > ceiling " << kWallCeilingSeconds << "s\n";
      ok = false;
    }
    // Canary only: wall-clock ratios on shared CI hosts are too noisy to
    // gate the full 3x acceptance claim (that is the full run's number in
    // BENCH_scale.json); 1.5x still catches a calendar-engine regression.
    if (core_ratio < 1.5) {
      std::cout << "SMOKE FAIL: des-core speedup " << core_ratio
                << "x < 1.5x regression canary\n";
      ok = false;
    }
    // Same idea for the tuner A/B (measured ~3.6x; anything under 1.5x
    // means the incremental replay lost its asymptotic edge).
    if (tuner_speedup < 1.5) {
      std::cout << "SMOKE FAIL: tuner replay speedup " << tuner_speedup
                << "x < 1.5x regression canary\n";
      ok = false;
    }
    std::cout << (ok ? "SMOKE OK" : "SMOKE FAILED") << "\n";
    return ok ? 0 : 1;
  }
  return 0;
}
