// Fig. 8: effectiveness of SpecSync — loss-over-time and runtime to
// convergence for the three workloads under Original (ASP),
// SpecSync-Cherrypick, and SpecSync-Adaptive.
//
// Paper: speedups up to 2.97x (MF), 2.25x (CIFAR-10), 3x (ImageNet); the
// adaptive tuner comes close to the cherry-picked hyperparameters.
#include <iostream>

#include "benchmarks/bench_util.h"

using namespace specsync;

namespace {

struct PanelSpec {
  Workload workload;
  std::size_t num_workers;
  SimTime horizon;
  bench::SeedSweep sweep;
};

void Panel(const PanelSpec& spec) {
  const Workload& workload = spec.workload;
  std::cout << "\n--- " << workload.name << " (" << spec.num_workers
            << " workers, target loss " << workload.loss_target << ") ---\n";

  struct Entry {
    std::string label;
    SchemeSpec scheme;
  };
  const std::vector<Entry> entries = {
      {"Original", SchemeSpec::Original()},
      {"Cherrypick", SchemeSpec::Cherrypick(bench::CherryParams(workload))},
      {"Adaptive", SchemeSpec::Adaptive()},
  };

  std::vector<std::vector<ExperimentResult>> runs;
  for (const Entry& entry : entries) {
    ExperimentConfig config;
    config.cluster = ClusterSpec::Homogeneous(spec.num_workers);
    config.scheme = entry.scheme;
    config.max_time = spec.horizon;
    config.stop_on_convergence = false;  // full curves
    runs.push_back(bench::RunSeeds(workload, config, spec.sweep));
  }

  Table curve({"time(s)", "Original", "Cherrypick", "Adaptive"});
  constexpr int kCheckpoints = 8;
  for (int i = 1; i <= kCheckpoints; ++i) {
    const SimTime t =
        SimTime::FromSeconds(spec.horizon.seconds() * i / kCheckpoints);
    curve.AddRowValues(t.seconds(), bench::MeanLossAt(runs[0], t),
                       bench::MeanLossAt(runs[1], t),
                       bench::MeanLossAt(runs[2], t));
  }
  curve.PrintPretty(std::cout);

  Table summary({"scheme", "runtime_to_target(s)", "converged_frac",
                 "mean_staleness", "speedup_vs_original"});
  const double base_time = bench::MeanTimeToTarget(
      runs[0], workload.loss_target, spec.horizon - SimTime::Zero());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const double t = bench::MeanTimeToTarget(runs[i], workload.loss_target,
                                             spec.horizon - SimTime::Zero());
    summary.AddRowValues(entries[i].label, t,
                         bench::ConvergedFraction(runs[i], workload.loss_target),
                         bench::MeanStaleness(runs[i]),
                         t > 0.0 ? base_time / t : 0.0);
  }
  summary.PrintPretty(std::cout);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig. 8 — SpecSync effectiveness (loss vs time, runtime to target)",
      "up to 2.97x (MF) / 2.25x (CIFAR-10) / 3x (ImageNet) speedup over "
      "MXNet ASP; Adaptive ~ Cherrypick");

  Panel({MakeMfWorkload(1), 40, SimTime::FromSeconds(1200.0),
         bench::SeedSweep{{7, 8, 9}}});
  Panel({MakeCifar10Workload(1), 20, SimTime::FromSeconds(2400.0),
         bench::SeedSweep{{7, 8}}});
  Panel({MakeImageNetWorkload(1, /*scale=*/0.6), 24,
         SimTime::FromSeconds(6300.0), bench::SeedSweep{{7}}});
  return 0;
}
