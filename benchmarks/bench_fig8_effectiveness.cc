// Fig. 8: effectiveness of SpecSync — loss-over-time and runtime to
// convergence for the three workloads under Original (ASP),
// SpecSync-Cherrypick, and SpecSync-Adaptive.
//
// Paper: speedups up to 2.97x (MF), 2.25x (CIFAR-10), 3x (ImageNet); the
// adaptive tuner comes close to the cherry-picked hyperparameters.
//
// All panels' cells run through one ParallelRunner pass (--threads=N); the
// printed tables are bit-identical at any thread count.
#include <iostream>

#include "benchmarks/bench_util.h"

using namespace specsync;

namespace {

struct PanelSpec {
  Workload workload;
  std::size_t num_workers;
  SimTime horizon;
  std::size_t replicates;
  // Series handles, filled while building the batch (Original, Cherrypick,
  // Adaptive — the scheme order of the printed tables).
  std::vector<std::size_t> series;
};

const std::vector<std::string> kSchemeLabels = {"Original", "Cherrypick",
                                                "Adaptive"};

void AddPanel(bench::CellBatch& batch, PanelSpec& spec,
              const bench::ConsistencySelection& consistency,
              const bench::CompressionSelection& compression) {
  const std::vector<SchemeSpec> schemes = {
      SchemeSpec::Original(),
      SchemeSpec::Cherrypick(bench::CherryParams(spec.workload)),
      SchemeSpec::Adaptive(),
  };
  for (SchemeSpec scheme : schemes) {
    consistency.Apply(scheme);
    ExperimentConfig config;
    config.cluster = ClusterSpec::Homogeneous(spec.num_workers);
    config.scheme = scheme;
    config.max_time = spec.horizon;
    config.stop_on_convergence = false;  // full curves
    compression.Apply(config);
    spec.series.push_back(
        batch.AddSeries(spec.workload, config, spec.replicates));
  }
}

void PrintPanel(const bench::CellBatch& batch, const PanelSpec& spec) {
  const Workload& workload = spec.workload;
  std::cout << "\n--- " << workload.name << " (" << spec.num_workers
            << " workers, target loss " << workload.loss_target << ") ---\n";

  std::vector<std::vector<ExperimentResult>> runs;
  for (std::size_t series : spec.series) runs.push_back(batch.Series(series));

  Table curve({"time(s)", "Original", "Cherrypick", "Adaptive"});
  constexpr int kCheckpoints = 8;
  for (int i = 1; i <= kCheckpoints; ++i) {
    const SimTime t =
        SimTime::FromSeconds(spec.horizon.seconds() * i / kCheckpoints);
    curve.AddRowValues(t.seconds(), bench::MeanLossAt(runs[0], t),
                       bench::MeanLossAt(runs[1], t),
                       bench::MeanLossAt(runs[2], t));
  }
  curve.PrintPretty(std::cout);

  Table summary({"scheme", "runtime_to_target(s)", "converged_frac",
                 "mean_staleness", "speedup_vs_original"});
  const double base_time = bench::MeanTimeToTarget(
      runs[0], workload.loss_target, spec.horizon - SimTime::Zero());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const double t = bench::MeanTimeToTarget(runs[i], workload.loss_target,
                                             spec.horizon - SimTime::Zero());
    summary.AddRowValues(kSchemeLabels[i], t,
                         bench::ConvergedFraction(runs[i], workload.loss_target),
                         bench::MeanStaleness(runs[i]),
                         t > 0.0 ? base_time / t : 0.0);
  }
  summary.PrintPretty(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  const std::size_t threads = args.threads;
  bench::PrintHeader(
      "Fig. 8 — SpecSync effectiveness (loss vs time, runtime to target)",
      "up to 2.97x (MF) / 2.25x (CIFAR-10) / 3x (ImageNet) speedup over "
      "MXNet ASP; Adaptive ~ Cherrypick");
  if (args.consistency.set) {
    std::cout << "(base consistency override: " << args.consistency.Label()
              << " for every scheme)\n";
  }
  if (args.compression.set) {
    std::cout << "(gradient wire codec: " << args.compression.Label()
              << " for every cell)\n";
  }

  std::vector<PanelSpec> panels;
  panels.push_back(
      {MakeMfWorkload(1), 40, SimTime::FromSeconds(1200.0), 3, {}});
  panels.push_back(
      {MakeCifar10Workload(1), 20, SimTime::FromSeconds(2400.0), 2, {}});
  panels.push_back({MakeImageNetWorkload(1, /*scale=*/0.6), 24,
                    SimTime::FromSeconds(6300.0), 1, {}});

  bench::CellBatch batch;
  for (PanelSpec& panel : panels) {
    AddPanel(batch, panel, args.consistency, args.compression);
  }
  batch.Run(threads);
  for (const PanelSpec& panel : panels) PrintPanel(batch, panel);

  bench::BenchReporter reporter("bench_fig8_effectiveness");
  reporter.AddBatch(batch);
  reporter.WriteJson();

  // --metrics_out/--trace_out: one instrumented Adaptive run of the MF panel.
  {
    ExperimentConfig obs_config;
    obs_config.cluster = ClusterSpec::Homogeneous(panels[0].num_workers);
    obs_config.scheme = SchemeSpec::Adaptive();
    args.consistency.Apply(obs_config.scheme);
    obs_config.max_time = panels[0].horizon;
    obs_config.stop_on_convergence = false;
    obs_config.seed = bench::kBenchRootSeed;
    args.compression.Apply(obs_config);
    bench::EmitObsArtifacts(args, panels[0].workload, obs_config);
  }
  return 0;
}
