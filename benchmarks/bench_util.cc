#include "benchmarks/bench_util.h"

namespace specsync::bench {

double MeanLossAt(const std::vector<ExperimentResult>& runs, SimTime time) {
  RunningStats stats;
  for (const ExperimentResult& run : runs) {
    if (auto loss = LossAtTime(run.sim.trace, time)) stats.Add(*loss);
  }
  return stats.mean();
}

double MeanTimeToTarget(const std::vector<ExperimentResult>& runs,
                        double target, Duration fallback) {
  RunningStats stats;
  for (const ExperimentResult& run : runs) {
    if (auto t = TimeToTarget(run.sim.trace, target)) {
      stats.Add(t->seconds());
    } else {
      stats.Add(fallback.seconds());
    }
  }
  return stats.mean();
}

double ConvergedFraction(const std::vector<ExperimentResult>& runs,
                         double target) {
  if (runs.empty()) return 0.0;
  std::size_t converged = 0;
  for (const ExperimentResult& run : runs) {
    if (TimeToTarget(run.sim.trace, target).has_value()) ++converged;
  }
  return static_cast<double>(converged) / static_cast<double>(runs.size());
}

double MeanStaleness(const std::vector<ExperimentResult>& runs) {
  RunningStats stats;
  for (const ExperimentResult& run : runs) {
    for (const PushEvent& push : run.sim.trace.pushes()) {
      stats.Add(static_cast<double>(push.missed_updates));
    }
  }
  return stats.mean();
}

std::vector<ExperimentResult> RunSeeds(const Workload& workload,
                                       ExperimentConfig config,
                                       const SeedSweep& sweep) {
  std::vector<ExperimentResult> runs;
  runs.reserve(sweep.seeds.size());
  for (std::uint64_t seed : sweep.seeds) {
    config.seed = seed;
    runs.push_back(RunExperiment(workload, config));
  }
  return runs;
}

void PrintHeader(const std::string& figure, const std::string& paper_claim) {
  std::cout << "==================================================\n"
            << figure << "\n"
            << "Paper: " << paper_claim << "\n"
            << "==================================================\n";
}

}  // namespace specsync::bench
