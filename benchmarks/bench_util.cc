#include "benchmarks/bench_util.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/check.h"
#include "common/thread_pool.h"
#include "obs/obs.h"

namespace specsync::bench {

double MeanLossAt(const std::vector<ExperimentResult>& runs, SimTime time) {
  RunningStats stats;
  for (const ExperimentResult& run : runs) {
    if (auto loss = LossAtTime(run.sim.trace, time)) stats.Add(*loss);
  }
  return stats.mean();
}

double MeanTimeToTarget(const std::vector<ExperimentResult>& runs,
                        double target, Duration fallback) {
  RunningStats stats;
  for (const ExperimentResult& run : runs) {
    if (auto t = TimeToTarget(run.sim.trace, target)) {
      stats.Add(t->seconds());
    } else {
      stats.Add(fallback.seconds());
    }
  }
  return stats.mean();
}

double ConvergedFraction(const std::vector<ExperimentResult>& runs,
                         double target) {
  if (runs.empty()) return 0.0;
  std::size_t converged = 0;
  for (const ExperimentResult& run : runs) {
    if (TimeToTarget(run.sim.trace, target).has_value()) ++converged;
  }
  return static_cast<double>(converged) / static_cast<double>(runs.size());
}

double MeanStaleness(const std::vector<ExperimentResult>& runs) {
  RunningStats stats;
  for (const ExperimentResult& run : runs) {
    for (const PushEvent& push : run.sim.trace.pushes()) {
      stats.Add(static_cast<double>(push.missed_updates));
    }
  }
  return stats.mean();
}

std::vector<ExperimentResult> RunSeeds(const Workload& workload,
                                       ExperimentConfig config,
                                       const SeedSweep& sweep) {
  std::vector<ExperimentResult> runs;
  runs.reserve(sweep.seeds.size());
  for (std::uint64_t seed : sweep.seeds) {
    config.seed = seed;
    runs.push_back(RunExperiment(workload, config));
  }
  return runs;
}

void PrintHeader(const std::string& figure, const std::string& paper_claim) {
  std::cout << "==================================================\n"
            << figure << "\n"
            << "Paper: " << paper_claim << "\n"
            << "==================================================\n";
}

namespace {

// Parses the value of a `--flag=N` argument; exits with usage when malformed.
std::size_t ParsePositiveFlag(const std::string& arg, std::size_t prefix_len,
                              const char* program, const char* usage) {
  char* end = nullptr;
  const long value = std::strtol(arg.c_str() + prefix_len, &end, 10);
  if (end == nullptr || *end != '\0' || value < 1) {
    std::cerr << "usage: " << program << " " << usage << "\n";
    std::exit(2);
  }
  return static_cast<std::size_t>(value);
}

constexpr const char* kBenchUsage =
    "[--threads=N] [--num_servers=N] [--smoke] [--metrics_out=PATH] "
    "[--trace_out=PATH] [--consistency=asp|bsp|ssp[:s]|pssp[:s]|dssp[:s0]] "
    "[--compression=none|topk[:F]|int8|fp16|delta]  (N >= 1)";

// Parses "--consistency=" values: a scheme name with an optional ":<bound>"
// suffix (ssp/pssp: the staleness bound; dssp: the initial bound).
ConsistencySelection ParseConsistencyFlag(const std::string& value,
                                          const char* program) {
  ConsistencySelection sel;
  sel.set = true;
  std::string name = value;
  std::optional<std::uint64_t> bound;
  if (const std::size_t colon = value.find(':'); colon != std::string::npos) {
    name = value.substr(0, colon);
    char* end = nullptr;
    const long parsed = std::strtol(value.c_str() + colon + 1, &end, 10);
    if (end == nullptr || *end != '\0' || parsed < 0) {
      std::cerr << "usage: " << program << " " << kBenchUsage << "\n";
      std::exit(2);
    }
    bound = static_cast<std::uint64_t>(parsed);
  }
  if (name == "asp") {
    sel.base = BaseScheme::kAsp;
  } else if (name == "bsp") {
    sel.base = BaseScheme::kBsp;
  } else if (name == "ssp") {
    sel.base = BaseScheme::kSsp;
  } else if (name == "pssp") {
    sel.base = BaseScheme::kPssp;
  } else if (name == "dssp") {
    sel.base = BaseScheme::kDssp;
  } else {
    std::cerr << "usage: " << program << " " << kBenchUsage << "\n";
    std::exit(2);
  }
  if (bound.has_value()) {
    sel.staleness = *bound;
    sel.dssp.initial_staleness = *bound;
  }
  // The bench flag's dssp is "never tighter than the named bound": floor the
  // dynamic range at the initial bound so dssp:s compares against ssp:s as
  // the same starting tightness that can only loosen under stragglers (a
  // free-floating minimum would let healthy-phase ratios retune the bound
  // below the static comparator and conflate decay with episode response).
  sel.dssp.min_staleness = sel.dssp.initial_staleness;
  return sel;
}

// Parses "--compression=" values via CompressionSpec::Parse; exits with
// usage on a malformed codec.
CompressionSelection ParseCompressionFlag(const std::string& value,
                                          const char* program) {
  CompressionSelection sel;
  if (auto spec = CompressionSpec::Parse(value)) {
    sel.set = true;
    sel.spec = *spec;
    return sel;
  }
  std::cerr << "usage: " << program << " " << kBenchUsage << "\n";
  std::exit(2);
}

// Parses the value of a `--flag=PATH` argument; exits with usage when empty.
std::string ParsePathFlag(const std::string& arg, std::size_t prefix_len,
                          const char* program, const char* usage) {
  std::string path = arg.substr(prefix_len);
  if (path.empty()) {
    std::cerr << "usage: " << program << " " << usage << "\n";
    std::exit(2);
  }
  return path;
}

}  // namespace

void ConsistencySelection::Apply(SchemeSpec& scheme) const {
  if (!set) return;
  scheme.base = base;
  scheme.ssp_staleness = staleness;
  scheme.dssp = dssp;
}

std::string ConsistencySelection::Label() const {
  if (!set) return "";
  switch (base) {
    case BaseScheme::kAsp:
      return "asp";
    case BaseScheme::kBsp:
      return "bsp";
    case BaseScheme::kSsp:
      return "ssp:" + std::to_string(staleness);
    case BaseScheme::kPssp:
      return "pssp:" + std::to_string(staleness);
    case BaseScheme::kDssp:
      return "dssp:" + std::to_string(dssp.initial_staleness);
  }
  return "";
}

BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  std::size_t threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      threads = ParsePositiveFlag(arg, 10, argv[0], kBenchUsage);
    } else if (arg.rfind("--num_servers=", 0) == 0) {
      args.num_servers = ParsePositiveFlag(arg, 14, argv[0], kBenchUsage);
    } else if (arg == "--smoke") {
      args.smoke = true;
    } else if (arg.rfind("--metrics_out=", 0) == 0) {
      args.metrics_out = ParsePathFlag(arg, 14, argv[0], kBenchUsage);
    } else if (arg.rfind("--trace_out=", 0) == 0) {
      args.trace_out = ParsePathFlag(arg, 12, argv[0], kBenchUsage);
    } else if (arg.rfind("--consistency=", 0) == 0) {
      args.consistency = ParseConsistencyFlag(arg.substr(14), argv[0]);
    } else if (arg.rfind("--compression=", 0) == 0) {
      args.compression = ParseCompressionFlag(arg.substr(14), argv[0]);
    } else {
      std::cerr << "warning: ignoring unknown argument '" << arg << "'\n";
    }
  }
  if (threads == 0) {
    if (const char* env = std::getenv("SPECSYNC_BENCH_THREADS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed >= 1) threads = static_cast<std::size_t>(parsed);
    }
  }
  args.threads = threads > 0 ? threads : ThreadPool::DefaultThreadCount();
  return args;
}

std::size_t ParseThreads(int argc, char** argv) {
  return ParseBenchArgs(argc, argv).threads;
}

void EmitObsArtifacts(const BenchArgs& args, const Workload& workload,
                      ExperimentConfig config) {
  if (args.metrics_out.empty() && args.trace_out.empty()) return;
  obs::ObsContext ctx;
  config.obs = &ctx;
  (void)RunExperiment(workload, config);
  if (!args.metrics_out.empty() &&
      obs::WriteMetricsJsonFile(ctx, args.metrics_out)) {
    std::cout << "[obs] metrics snapshot -> " << args.metrics_out << "\n";
  }
  if (!args.trace_out.empty() &&
      obs::WriteChromeTraceFile(ctx.spans, args.trace_out)) {
    std::cout << "[obs] Chrome trace (" << ctx.spans.event_count()
              << " events) -> " << args.trace_out << "\n";
  }
}

std::size_t CellBatch::AddSeries(const Workload& workload,
                                 ExperimentConfig config,
                                 std::size_t replicates, std::string label,
                                 std::optional<std::uint64_t> explicit_seed) {
  SPECSYNC_CHECK_GT(replicates, 0u);
  SPECSYNC_CHECK(results_.empty()) << "AddSeries after Run";
  std::vector<std::size_t> indices;
  indices.reserve(replicates);
  for (std::uint64_t r = 0; r < replicates; ++r) {
    ExperimentCell cell;
    cell.workload = workload;
    cell.config = config;
    cell.label = label;
    cell.replicate = r;
    cell.explicit_seed = explicit_seed;
    indices.push_back(cells_.size());
    cells_.push_back(std::move(cell));
  }
  series_.push_back(std::move(indices));
  return series_.size() - 1;
}

void CellBatch::Run(std::size_t threads) {
  SPECSYNC_CHECK(results_.empty()) << "Run called twice";
  threads_ = threads;
  ParallelRunnerOptions options;
  options.threads = threads;
  options.root_seed = kBenchRootSeed;
  const auto start = std::chrono::steady_clock::now();
  results_ = ParallelRunner(options).Run(cells_);
  wall_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  series_results_.reserve(series_.size());
  for (const std::vector<std::size_t>& indices : series_) {
    std::vector<ExperimentResult> runs;
    runs.reserve(indices.size());
    for (std::size_t i : indices) runs.push_back(results_[i].result);
    series_results_.push_back(std::move(runs));
  }
}

const std::vector<ExperimentResult>& CellBatch::Series(
    std::size_t series) const {
  SPECSYNC_CHECK(!series_results_.empty()) << "Series before Run";
  SPECSYNC_CHECK_LT(series, series_results_.size());
  return series_results_[series];
}

double CellBatch::serial_wall_estimate() const {
  double total = 0.0;
  for (const CellResult& r : results_) total += r.wall_seconds;
  return total;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  // JSON has no NaN/Infinity literals; a diverged loss (the MF proxy can
  // blow up at high worker counts) must serialize as null, not "-nan".
  if (!std::isfinite(v)) return "null";
  std::ostringstream out;
  out << std::setprecision(12) << v;
  return out.str();
}

std::string HexDigest(std::uint64_t digest) {
  std::ostringstream out;
  out << std::hex << std::setw(16) << std::setfill('0') << digest;
  return out.str();
}

}  // namespace

BenchReporter::BenchReporter(std::string bench_name, std::string json_path)
    : bench_name_(std::move(bench_name)), json_path_(std::move(json_path)) {}

void BenchReporter::Add(const CellRecord& record) {
  cells_.push_back(record);
}

void BenchReporter::AddBatch(const CellBatch& batch) {
  for (std::size_t i = 0; i < batch.cells().size(); ++i) {
    const ExperimentCell& cell = batch.cells()[i];
    const CellResult& result = batch.results()[i];
    CellRecord record;
    record.workload = cell.workload.name;
    record.scheme = cell.config.scheme.DisplayName();
    record.label = cell.label;
    record.replicate = cell.replicate;
    record.seed = result.seed;
    record.wall_seconds = result.wall_seconds;
    record.sim_events = result.sim_events;
    record.pushes = result.result.sim.total_pushes;
    record.sim_end_seconds = result.result.sim.end_time.seconds();
    record.final_loss = result.result.final_loss;
    record.trace_digest = result.trace_digest;
    Add(record);
  }
  SetRun(batch.threads(), batch.wall_seconds(), batch.serial_wall_estimate());
}

// Accumulates across batches (a bench may run several); the recorded thread
// count is the widest pass.
void BenchReporter::SetRun(std::size_t threads, double wall_seconds,
                           double serial_wall_estimate) {
  threads_ = std::max(threads_, threads);
  wall_seconds_ += wall_seconds;
  serial_wall_estimate_ += serial_wall_estimate;
}

void BenchReporter::AddMetric(const std::string& name, double value) {
  for (auto& [existing, slot] : metrics_) {
    if (existing == name) {
      slot = value;
      return;
    }
  }
  metrics_.emplace_back(name, value);
}

Table BenchReporter::CellTable() const {
  Table table({"workload", "scheme", "label", "replicate", "seed",
               "wall_seconds", "sim_events", "sim_events_per_sec", "pushes",
               "sim_end_s", "final_loss", "trace_digest"});
  for (const CellRecord& c : cells_) {
    const double events_per_sec =
        c.wall_seconds > 0.0
            ? static_cast<double>(c.sim_events) / c.wall_seconds
            : 0.0;
    table.AddRowValues(c.workload, c.scheme, c.label,
                       static_cast<unsigned long long>(c.replicate),
                       static_cast<unsigned long long>(c.seed), c.wall_seconds,
                       static_cast<unsigned long long>(c.sim_events),
                       events_per_sec,
                       static_cast<unsigned long long>(c.pushes),
                       c.sim_end_seconds, c.final_loss, HexDigest(c.trace_digest));
  }
  return table;
}

std::string BenchReporter::JsonPath() {
  if (const char* env = std::getenv("SPECSYNC_BENCH_JSON")) return env;
  return "BENCH_harness.json";
}

void BenchReporter::WriteJson() const {
  std::uint64_t total_events = 0;
  std::uint64_t total_pushes = 0;
  for (const CellRecord& c : cells_) {
    total_events += c.sim_events;
    total_pushes += c.pushes;
  }
  std::ostringstream record;
  record << "{\"bench\":\"" << JsonEscape(bench_name_) << "\""
         << ",\"threads\":" << threads_
         << ",\"cells\":" << cells_.size()
         << ",\"parallel_wall_seconds\":" << JsonNumber(wall_seconds_)
         << ",\"serial_wall_seconds_estimate\":"
         << JsonNumber(serial_wall_estimate_)
         << ",\"speedup_vs_serial\":"
         << JsonNumber(wall_seconds_ > 0.0
                           ? serial_wall_estimate_ / wall_seconds_
                           : 0.0)
         << ",\"total_sim_events\":" << total_events
         << ",\"des_events_per_wall_second\":"
         << JsonNumber(wall_seconds_ > 0.0
                           ? static_cast<double>(total_events) / wall_seconds_
                           : 0.0)
         << ",\"sim_pushes_per_wall_second\":"
         << JsonNumber(wall_seconds_ > 0.0
                           ? static_cast<double>(total_pushes) / wall_seconds_
                           : 0.0);
  if (!metrics_.empty()) {
    record << ",\"metrics\":{";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      if (i > 0) record << ",";
      record << "\"" << JsonEscape(metrics_[i].first)
             << "\":" << JsonNumber(metrics_[i].second);
    }
    record << "}";
  }
  record << ",\"per_cell\":[";
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const CellRecord& c = cells_[i];
    if (i > 0) record << ",";
    record << "{\"workload\":\"" << JsonEscape(c.workload) << "\""
           << ",\"scheme\":\"" << JsonEscape(c.scheme) << "\""
           << ",\"label\":\"" << JsonEscape(c.label) << "\""
           << ",\"replicate\":" << c.replicate << ",\"seed\":" << c.seed
           << ",\"wall_seconds\":" << JsonNumber(c.wall_seconds)
           << ",\"sim_events\":" << c.sim_events
           << ",\"sim_events_per_sec\":"
           << JsonNumber(c.wall_seconds > 0.0
                             ? static_cast<double>(c.sim_events) /
                                   c.wall_seconds
                             : 0.0)
           << ",\"pushes\":" << c.pushes
           << ",\"sim_end_seconds\":" << JsonNumber(c.sim_end_seconds)
           << ",\"final_loss\":" << JsonNumber(c.final_loss)
           << ",\"trace_digest\":\"" << HexDigest(c.trace_digest) << "\"}";
  }
  record << "]}";

  // Merge: the file is a JSON array, one single-line record per bench. Keep
  // every other bench's line, replace (or append) our own.
  const std::string path = json_path_.empty() ? JsonPath() : json_path_;
  const std::string marker = "\"bench\":\"" + JsonEscape(bench_name_) + "\"";
  std::vector<std::string> records;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t begin = line.find('{');
      if (begin == std::string::npos) continue;  // brackets / blank lines
      std::size_t end = line.find_last_of('}');
      if (end == std::string::npos || end < begin) continue;
      std::string body = line.substr(begin, end - begin + 1);
      if (body.find(marker) != std::string::npos) continue;  // ours: replace
      records.push_back(std::move(body));
    }
  }
  records.push_back(record.str());

  std::ofstream out(path, std::ios::trunc);
  out << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    out << records[i] << (i + 1 < records.size() ? ",\n" : "\n");
  }
  out << "]\n";
  std::cout << "[bench telemetry] threads=" << threads_ << " wall="
            << JsonNumber(wall_seconds_) << "s serial_estimate="
            << JsonNumber(serial_wall_estimate_) << "s speedup_vs_serial="
            << JsonNumber(wall_seconds_ > 0.0
                              ? serial_wall_estimate_ / wall_seconds_
                              : 0.0)
            << "x -> " << path << "\n";
}

}  // namespace specsync::bench
