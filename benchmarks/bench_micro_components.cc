// Microbenchmarks (google-benchmark): event-queue throughput, parameter-server
// push/pull, gradient kernels, and the O(m^3) adaptive tuner.
#include <benchmark/benchmark.h>

#include <numeric>

#include "core/adaptive_tuner.h"
#include "data/synthetic.h"
#include "models/mlp.h"
#include "ps/param_store.h"
#include "sim/simulator.h"

namespace specsync {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    std::uint64_t fired = 0;
    for (std::size_t i = 0; i < events; ++i) {
      sim.ScheduleAt(SimTime::FromSeconds(static_cast<double>(i % 97)),
                     [&fired] { ++fired; });
    }
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ParamServerPushPull(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  auto applier =
      std::make_shared<SgdApplier>(std::make_shared<ConstantSchedule>(0.1));
  ParameterServer server(dim, 8, applier);
  Gradient grad = Gradient::Dense(dim);
  for (std::size_t i = 0; i < dim; ++i) grad.dense()[i] = 0.001;
  for (auto _ : state) {
    server.Push(grad, 0);
    benchmark::DoNotOptimize(server.Pull().version);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim) * 16);
}
BENCHMARK(BM_ParamServerPushPull)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_MlpGradient(benchmark::State& state) {
  const auto batch_size = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  ClassificationSpec spec;
  spec.num_examples = 512;
  spec.feature_dim = 48;
  spec.num_classes = 10;
  auto data = std::make_shared<ClassificationDataset>(
      GenerateClassification(spec, rng));
  MlpClassifierModel model(data, {.hidden = {48}});
  std::vector<double> params(model.param_dim());
  model.InitParams(params, rng);
  std::vector<std::size_t> batch(batch_size);
  std::iota(batch.begin(), batch.end(), 0u);
  Gradient grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.LossAndGradient(params, batch, grad));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_MlpGradient)->Arg(16)->Arg(64)->Arg(128);

// Algorithm 1 is O(m^3): candidate deltas O(m^2) x evaluation O(m).
void BM_AdaptiveTunerRetune(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  TuningInputs inputs;
  inputs.num_workers = m;
  Rng rng(2);
  SimTime t = SimTime::Zero();
  for (std::size_t i = 0; i < m; ++i) {
    t += Duration::Seconds(rng.Exponential(static_cast<double>(m)));
    inputs.pushes.emplace_back(t, static_cast<WorkerId>(i));
  }
  inputs.last_pull.assign(m, SimTime::Zero());
  inputs.iteration_span.assign(m, Duration::Seconds(1.0));
  AdaptiveTuner tuner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tuner.OnEpochEnd(inputs));
  }
  state.SetComplexityN(static_cast<std::int64_t>(m));
}
BENCHMARK(BM_AdaptiveTunerRetune)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Arg(80)
    ->Complexity(benchmark::oNCubed);

}  // namespace
}  // namespace specsync

BENCHMARK_MAIN();
