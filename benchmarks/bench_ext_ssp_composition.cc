// Extension experiment (paper Sec. IV-A, benefit 2): SpecSync composed with
// SSP instead of ASP.
//
// "With SpecSync implemented in the SSP model, workers can actively seek
// opportunities to restart computation with fresher parameters, before the
// staleness bound is reached." The paper describes but does not evaluate this
// composition; this bench does. Expected shape: SSP alone bounds the
// iteration-count skew but not within-iteration staleness; layering
// speculation on top reduces measured staleness further without violating the
// SSP bound, at a modest throughput cost.
#include <iostream>

#include "benchmarks/bench_util.h"

using namespace specsync;

int main() {
  bench::PrintHeader(
      "Extension — SpecSync over SSP (paper Sec. IV, not evaluated there)",
      "speculation composes with bounded staleness: fresher parameters "
      "inside the SSP bound");

  const Workload workload = MakeMfWorkload(1);
  const SimTime horizon = SimTime::FromSeconds(900.0);

  struct Entry {
    std::string label;
    SchemeSpec scheme;
  };
  std::vector<Entry> entries;
  entries.push_back({"ASP", SchemeSpec::Original()});
  for (std::uint64_t s : {1u, 3u}) {
    entries.push_back({"SSP(s=" + std::to_string(s) + ")", SchemeSpec::Ssp(s)});
    SchemeSpec composed = SchemeSpec::Ssp(s);
    composed.speculation = SpeculationMode::kFixed;
    composed.fixed_params = bench::CherryParams(workload);
    entries.push_back(
        {"SSP(s=" + std::to_string(s) + ")+SpecSync", composed});
  }
  {
    SchemeSpec asp_spec = SchemeSpec::Cherrypick(bench::CherryParams(workload));
    entries.push_back({"ASP+SpecSync", asp_spec});
  }

  Table table({"scheme", "pushes", "aborts", "mean_staleness", "final_loss",
               "time_to_target(s)"});
  for (const Entry& entry : entries) {
    ExperimentConfig config;
    config.cluster = ClusterSpec::Homogeneous(40);
    config.scheme = entry.scheme;
    config.max_time = horizon;
    config.stop_on_convergence = false;
    const auto runs =
        bench::RunSeeds(workload, config, bench::SeedSweep{{7, 8}});
    RunningStats pushes, aborts, final_loss;
    for (const auto& run : runs) {
      pushes.Add(static_cast<double>(run.sim.total_pushes));
      aborts.Add(static_cast<double>(run.sim.total_aborts));
      final_loss.Add(run.final_loss);
    }
    table.AddRowValues(
        entry.label, pushes.mean(), aborts.mean(), bench::MeanStaleness(runs),
        final_loss.mean(),
        bench::MeanTimeToTarget(runs, workload.loss_target,
                                horizon - SimTime::Zero()));
  }
  table.PrintPretty(std::cout);
  std::cout << "(time_to_target capped at the " << horizon.seconds()
            << "s horizon when a scheme never reaches the target)\n";
  return 0;
}
