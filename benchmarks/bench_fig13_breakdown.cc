// Fig. 13: breakdown of SpecSync-Adaptive's data transfer by message type.
//
// Paper: parameter pulls and gradient pushes dominate; the notify/re-sync
// control traffic added by speculative synchronization is negligible.
#include <iostream>

#include "benchmarks/bench_util.h"

using namespace specsync;

int main() {
  bench::PrintHeader(
      "Fig. 13 — transfer breakdown for SpecSync-Adaptive",
      "pull/push dominate; notify and re-sync messages are a negligible "
      "fraction of total bytes");

  Table table({"workload", "pull(MB)", "push(MB)", "notify(KB)", "resync(KB)",
               "control_fraction"});
  struct PanelSpec {
    Workload workload;
    std::size_t workers;
    SimTime horizon;
  };
  std::vector<PanelSpec> panels;
  panels.push_back({MakeMfWorkload(1), 40, SimTime::FromSeconds(900.0)});
  panels.push_back({MakeCifar10Workload(1), 20, SimTime::FromSeconds(1800.0)});
  panels.push_back(
      {MakeImageNetWorkload(1, 0.6), 12, SimTime::FromSeconds(4200.0)});

  for (const PanelSpec& panel : panels) {
    ExperimentConfig config;
    config.cluster = ClusterSpec::Homogeneous(panel.workers);
    config.scheme = SchemeSpec::Adaptive();
    config.max_time = panel.horizon;
    config.stop_on_convergence = false;
    config.seed = 7;
    const ExperimentResult run = RunExperiment(panel.workload, config);
    const auto& transfers = run.sim.transfers;
    const double control_fraction =
        transfers.fraction(TransferCategory::kNotify) +
        transfers.fraction(TransferCategory::kReSync);
    table.AddRowValues(
        panel.workload.name,
        static_cast<double>(transfers.bytes(TransferCategory::kPullParams)) /
            1e6,
        static_cast<double>(transfers.bytes(TransferCategory::kPushGrads)) /
            1e6,
        static_cast<double>(transfers.bytes(TransferCategory::kNotify)) / 1e3,
        static_cast<double>(transfers.bytes(TransferCategory::kReSync)) / 1e3,
        control_fraction);
  }
  table.PrintPretty(std::cout);
  return 0;
}
