// Shared helpers for the figure/table regenerators.
//
// Every bench prints (a) the paper's claim for the figure it regenerates and
// (b) the measured rows/series, so EXPERIMENTS.md can be assembled directly
// from bench output. Constants are sized so the full bench suite runs in a
// few minutes on one core; raise kSeeds / horizons for tighter error bars.
#pragma once

#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "harness/experiment.h"
#include "harness/workload.h"

namespace specsync::bench {

// The fixed SpecSync-Cherrypick operating point used across benches: a window
// wide enough to catch delivery bursts (0.35 iterations) with a threshold a
// bit below the uniform-arrival expectation for that window.
inline SpeculationParams CherryParams(const Workload& workload) {
  SpeculationParams params;
  params.abort_time = workload.iteration_time * 0.35;
  params.abort_rate = 0.22;
  return params;
}

struct SeedSweep {
  std::vector<std::uint64_t> seeds{7, 8, 9};
};

// Mean loss at `time` across runs (runs lacking a sample by then are skipped).
double MeanLossAt(const std::vector<ExperimentResult>& runs, SimTime time);

// Mean time-to-target across runs; unconverged runs are counted at the
// horizon `fallback` (conservative, keeps means defined).
double MeanTimeToTarget(const std::vector<ExperimentResult>& runs,
                        double target, Duration fallback);

// Fraction of runs that reached the target.
double ConvergedFraction(const std::vector<ExperimentResult>& runs,
                         double target);

// Mean staleness (missed updates per push) across runs.
double MeanStaleness(const std::vector<ExperimentResult>& runs);

// Runs one (workload, scheme) over the sweep's seeds.
std::vector<ExperimentResult> RunSeeds(const Workload& workload,
                                       ExperimentConfig config,
                                       const SeedSweep& sweep);

// Prints the standard bench header.
void PrintHeader(const std::string& figure, const std::string& paper_claim);

}  // namespace specsync::bench
