// Shared helpers for the figure/table regenerators.
//
// Every bench prints (a) the paper's claim for the figure it regenerates and
// (b) the measured rows/series, so EXPERIMENTS.md can be assembled directly
// from bench output. Constants are sized so the full bench suite runs in a
// few minutes; raise replicate counts / horizons for tighter error bars.
//
// The sweep-style benches (Figs. 8-11, Table II) run their cells through the
// deterministic ParallelRunner: pass --threads=N (or set
// SPECSYNC_BENCH_THREADS) to fan cells across cores — the printed numbers are
// bit-identical at any thread count. Each such bench also records per-cell
// telemetry (wall time, DES events/sec, trace digest) into the shared
// BENCH_harness.json via BenchReporter, seeding the repo's perf trajectory.
#pragma once

#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "harness/experiment.h"
#include "harness/parallel_runner.h"
#include "harness/workload.h"
#include "ps/compression.h"

namespace specsync::bench {

// Root seed all figure benches fork their per-cell seeds from.
inline constexpr std::uint64_t kBenchRootSeed = 7;

// The fixed SpecSync-Cherrypick operating point used across benches: a window
// wide enough to catch delivery bursts (0.35 iterations) with a threshold a
// bit below the uniform-arrival expectation for that window.
inline SpeculationParams CherryParams(const Workload& workload) {
  SpeculationParams params;
  params.abort_time = workload.iteration_time * 0.35;
  params.abort_rate = 0.22;
  return params;
}

struct SeedSweep {
  std::vector<std::uint64_t> seeds{7, 8, 9};
};

// Mean loss at `time` across runs (runs lacking a sample by then are skipped).
double MeanLossAt(const std::vector<ExperimentResult>& runs, SimTime time);

// Mean time-to-target across runs; unconverged runs are counted at the
// horizon `fallback` (conservative, keeps means defined).
double MeanTimeToTarget(const std::vector<ExperimentResult>& runs,
                        double target, Duration fallback);

// Fraction of runs that reached the target.
double ConvergedFraction(const std::vector<ExperimentResult>& runs,
                         double target);

// Mean staleness (missed updates per push) across runs.
double MeanStaleness(const std::vector<ExperimentResult>& runs);

// Runs one (workload, scheme) over the sweep's seeds, serially. The
// sweep-style benches use CellBatch instead; this remains for the small
// mechanism benches (timelines, PAP) that want literal pinned seeds.
std::vector<ExperimentResult> RunSeeds(const Workload& workload,
                                       ExperimentConfig config,
                                       const SeedSweep& sweep);

// Prints the standard bench header.
void PrintHeader(const std::string& figure, const std::string& paper_claim);

// Base consistency-model override, parsed from --consistency (below). When
// set, Apply() replaces a scheme's base model — including its staleness bound
// or dynamic-SSP config — while keeping the scheme's speculation settings, so
// a figure's Original/Cherrypick/Adaptive grid can be re-run on top of SSP,
// per-shard SSP, or the dynamic bound.
struct ConsistencySelection {
  bool set = false;
  BaseScheme base = BaseScheme::kAsp;
  std::uint64_t staleness = 3;  // kSsp / kPssp bound, kDssp initial bound
  DynamicSspConfig dssp;

  void Apply(SchemeSpec& scheme) const;
  // "" when unset, else the flag value back (e.g. "ssp:2", "dssp").
  std::string Label() const;
};

// Gradient wire-compression override, parsed from --compression (below).
// When set, Apply() installs the codec on an experiment's sim config; the
// bench's scheme grid is otherwise untouched, so any figure can be re-run
// with compressed transfers for an apples-to-apples convergence-cost
// comparison against its uncompressed baseline.
struct CompressionSelection {
  bool set = false;
  CompressionSpec spec;

  void Apply(ExperimentConfig& config) const {
    if (set) config.compression = spec;
  }
  // "" when unset, else the codec label (e.g. "topk:0.01", "int8").
  std::string Label() const { return set ? spec.Label() : ""; }
};

// Common bench flags.
//  --threads=N        worker threads for the cell grid (default: env
//                     SPECSYNC_BENCH_THREADS, else hardware concurrency)
//  --num_servers=N    parameter-server shard count for the simulated cluster
//                     (default: 4, the paper-like testbed shape)
//  --smoke            shrink the grid for a seconds-long CI sanity pass
//  --metrics_out=P    write an observability snapshot (metrics.json schema,
//                     see EXPERIMENTS.md) from one instrumented run
//  --trace_out=P      write a Chrome/Perfetto trace from the same run
//  --consistency=C    base consistency model override for the bench's scheme
//                     grid: asp | bsp | ssp[:s] | pssp[:s] | dssp[:s0]
//  --compression=C    gradient wire codec for every cell:
//                     none | topk[:F] | int8 | fp16 | delta (F a fraction
//                     like 0.01 or a percentage like 1%; bare topk = 1%)
struct BenchArgs {
  std::size_t threads = 1;
  std::size_t num_servers = 4;
  bool smoke = false;
  std::string metrics_out;
  std::string trace_out;
  ConsistencySelection consistency;
  CompressionSelection compression;
};

// Parses the flags above; exits with usage on a malformed flag and warns on
// unknown ones.
BenchArgs ParseBenchArgs(int argc, char** argv);

// Thread count for a bench binary: --threads=N beats SPECSYNC_BENCH_THREADS
// beats the host's hardware concurrency. Exits with usage on a bad flag.
std::size_t ParseThreads(int argc, char** argv);

// When --metrics_out/--trace_out was given, re-runs one representative
// (workload, config) cell with a full ObsContext attached and writes the
// requested artifacts: a metrics.json snapshot (counters, gauges, latency
// histograms, scheduler decision-audit log) and/or a Chrome trace-event JSON
// loadable in Perfetto / chrome://tracing. A no-op when neither flag is set,
// so benches can call it unconditionally. The instrumented run is separate
// from the bench's measured cells — bench numbers stay untouched.
void EmitObsArtifacts(const BenchArgs& args, const Workload& workload,
                      ExperimentConfig config);

// A bench's full grid of cells, keyed into series. Build every series first,
// Run() once (one ParallelRunner pass over the whole grid maximizes
// parallelism), then read each series' results back for aggregation.
class CellBatch {
 public:
  // Adds `replicates` cells of (workload, config) under a semantic label
  // (part of the per-cell seed key); returns the series handle. Pass
  // `explicit_seed` to pin every replicate to one seed instead of the
  // label-derived key — the tool for A/B series that must replay the exact
  // same history under two engine configs.
  std::size_t AddSeries(const Workload& workload, ExperimentConfig config,
                        std::size_t replicates, std::string label = "",
                        std::optional<std::uint64_t> explicit_seed = {});

  // Runs all cells across `threads` threads (root seed kBenchRootSeed).
  void Run(std::size_t threads);

  const std::vector<ExperimentResult>& Series(std::size_t series) const;
  const std::vector<ExperimentCell>& cells() const { return cells_; }
  const std::vector<CellResult>& results() const { return results_; }
  std::size_t threads() const { return threads_; }
  // Wall time of the Run() call vs the sum of per-cell walls (what a serial
  // pass would have cost) — the speedup-vs-serial numerator/denominator.
  double wall_seconds() const { return wall_seconds_; }
  double serial_wall_estimate() const;

 private:
  std::vector<ExperimentCell> cells_;
  std::vector<std::vector<std::size_t>> series_;  // series -> cell indices
  std::vector<CellResult> results_;
  std::vector<std::vector<ExperimentResult>> series_results_;
  std::size_t threads_ = 1;
  double wall_seconds_ = 0.0;
};

// Machine-readable perf telemetry: one record per bench binary, merged into
// a shared JSON file (SPECSYNC_BENCH_JSON, default "BENCH_harness.json" in
// the working directory). The file is a JSON array with each record on one
// line; re-running a bench replaces its own record and leaves the others.
class BenchReporter {
 public:
  // `json_path` overrides the shared JsonPath() target for benches that own
  // a dedicated artifact (e.g. bench_compression -> BENCH_compression.json).
  explicit BenchReporter(std::string bench_name, std::string json_path = "");

  struct CellRecord {
    std::string workload;
    std::string scheme;
    std::string label;
    std::uint64_t replicate = 0;
    std::uint64_t seed = 0;
    double wall_seconds = 0.0;
    std::uint64_t sim_events = 0;
    std::uint64_t pushes = 0;
    double sim_end_seconds = 0.0;
    double final_loss = 0.0;
    std::uint64_t trace_digest = 0;
  };

  void Add(const CellRecord& record);
  // Records every cell of a finished batch plus its run-level telemetry.
  void AddBatch(const CellBatch& batch);
  // Run-level telemetry when not using AddBatch (e.g. grid search).
  void SetRun(std::size_t threads, double wall_seconds,
              double serial_wall_estimate);
  // Named headline number serialized under "metrics" in the bench's JSON
  // record (e.g. an acceptance-claim speedup ratio). Last value per name
  // wins; names keep insertion order.
  void AddMetric(const std::string& name, double value);

  // Per-cell telemetry as a Table — the same rows the JSON serializes.
  // CSV output goes through Table::PrintCsv (src/common/table), not a
  // bench-private writer.
  Table CellTable() const;

  // Merges this bench's record into the shared JSON file and prints the path.
  void WriteJson() const;

  static std::string JsonPath();

 private:
  std::string bench_name_;
  std::string json_path_;  // "" -> JsonPath()
  std::vector<CellRecord> cells_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::size_t threads_ = 1;
  double wall_seconds_ = 0.0;
  double serial_wall_estimate_ = 0.0;
};

}  // namespace specsync::bench
