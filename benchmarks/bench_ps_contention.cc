// Parameter-store contention and shard-parallel transfer: does sharding buy
// anything measurable?
//
// Not a paper figure — a harness-health bench for the sharded ParameterServer,
// in two parts:
//
//  1. Lock contention (threaded, wall time): a fixed set of worker threads
//     hammers one store with Pull/Push cycles while the shard count sweeps
//     {1, 4, 16}. At 1 shard every operation serializes on a single mutex
//     (the pre-sharding behavior); with more shards pulls and pushes
//     interleave on disjoint slices. NOTE: this needs real cores — on a
//     single-CPU host threads never overlap, there is no lock-wait to
//     eliminate, and the sweep measures pure locking overhead instead (the
//     bench prints the host's concurrency so the numbers read correctly).
//
//  2. Shard-parallel transfers (simulated, deterministic): the DES models a
//     pull/push as num_servers concurrent per-shard messages, each
//     base_latency + bytes/bandwidth, the iteration resuming at the max
//     arrival. On a transfer-bound workload (big model, short compute) the
//     per-shard fan-out shortens the transfer phase, so a fixed sim horizon
//     completes more pushes as the server count grows. This holds on any
//     host, single-core included.
//
// Flags: --threads=N (hammer threads, default hardware concurrency),
// --smoke (seconds-long CI variant). Results land in BENCH_harness.json under
// "bench_ps_contention" with labels "shards=K" / "servers=K".
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "benchmarks/bench_util.h"
#include "common/thread_pool.h"
#include "data/synthetic.h"
#include "models/softmax_regression.h"
#include "optim/lr_schedule.h"
#include "ps/param_store.h"

using namespace specsync;

namespace {

struct HammerResult {
  double wall_seconds = 0.0;
  std::uint64_t pushes = 0;
};

// `threads` workers each run `iters` Pull+Push cycles against one store.
HammerResult Hammer(std::size_t dim, std::size_t num_shards,
                    std::size_t threads, std::size_t iters, bool sparse) {
  auto schedule = std::make_shared<ConstantSchedule>(0.001);
  auto applier = std::make_shared<SgdApplier>(schedule);
  ParameterServer server(dim, num_shards, applier);

  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        Gradient grad;
        if (sparse) {
          // A narrow per-thread index band: distinct threads mostly route to
          // distinct shards, the best case for per-shard locking.
          grad = Gradient::Sparse();
          const std::size_t band = dim / threads;
          const std::size_t base = t * band;
          for (std::size_t i = 0; i < 64; ++i) {
            grad.sparse().Add(base + (i * band) / 64, 1e-4);
          }
        } else {
          grad = Gradient::Dense(dim);
          for (double& g : grad.dense()) g = 1e-4;
        }
        for (std::size_t i = 0; i < iters; ++i) {
          const PullResult snapshot = server.Pull();
          (void)snapshot;
          server.Push(grad, /*epoch=*/0);
        }
      });
    }
  }  // join
  HammerResult result;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.pushes = server.version();
  return result;
}

// Transfer-bound workload for the sim sweep: a big softmax model (~100k
// params, ~800 KB per full pull) with a compute span of the same order as the
// single-server transfer time, so shortening the transfer phase is visible in
// iteration throughput.
Workload MakeTransferBoundWorkload(bool smoke) {
  Rng rng(3);
  ClassificationSpec spec;
  spec.num_examples = smoke ? 512 : 2048;
  spec.feature_dim = 2000;
  spec.num_classes = 50;
  spec.class_separation = 2.0;
  spec.noise_stddev = 1.0;
  auto data = std::make_shared<ClassificationDataset>(
      GenerateClassification(spec, rng));

  Workload w;
  w.name = "TransferBound";
  w.model = std::make_shared<SoftmaxRegressionModel>(std::move(data),
                                                     SoftmaxRegressionConfig{});
  w.schedule = std::make_shared<ConstantSchedule>(0.05);
  w.batch_size = 16;
  w.iteration_time = Duration::Milliseconds(2.0);
  w.loss_target = 0.0;  // fixed-horizon run, no convergence stop
  w.eval_subsample = 200;
  w.eval_interval = Duration::Milliseconds(250.0);
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::PrintHeader(
      "PS contention — shard-count sweep",
      "per-shard mutexes let concurrent Pull/Push interleave, and per-shard "
      "transfer fan-out shortens the pull/push phases of an iteration");

  bench::BenchReporter reporter("bench_ps_contention");
  double total_wall = 0.0;

  // --- part 1: lock contention (threaded, wall time) ------------------------
  // Cache-resident parameter vector: at a few MB per op the hammer saturates
  // memory bandwidth and lock granularity stops mattering — the quantity
  // under test here is mutex contention, so keep the copies cheap.
  const std::size_t dim = args.smoke ? (1u << 13) : (1u << 14);
  const std::size_t iters = args.smoke ? 50 : 500;
  // More than 8 hammer threads adds scheduler noise, not signal.
  const std::size_t threads = std::min<std::size_t>(args.threads, 8);
  const std::vector<std::size_t> shard_counts = {1, 4, 16};
  std::cout << "hammer: dim=" << dim << " threads=" << threads
            << " iters=" << iters << " host_cores="
            << ThreadPool::DefaultThreadCount()
            << (args.smoke ? " (smoke)" : "") << "\n";
  if (ThreadPool::DefaultThreadCount() < 2) {
    std::cout << "  [single-CPU host: threads cannot overlap, so the sweep "
                 "measures locking overhead, not contention relief]\n";
  }

  for (const bool sparse : {false, true}) {
    const char* workload = sparse ? "ps_hammer_sparse" : "ps_hammer_dense";
    Table table({"shards", "wall(s)", "pushes/s", "speedup_vs_1_shard"});
    double base_wall = 0.0;
    for (std::size_t shards : shard_counts) {
      const HammerResult r = Hammer(dim, shards, threads, iters, sparse);
      if (shards == 1) base_wall = r.wall_seconds;
      total_wall += r.wall_seconds;
      table.AddRowValues(
          static_cast<unsigned long>(shards), r.wall_seconds,
          r.wall_seconds > 0.0
              ? static_cast<double>(r.pushes) / r.wall_seconds
              : 0.0,
          r.wall_seconds > 0.0 ? base_wall / r.wall_seconds : 0.0);

      bench::BenchReporter::CellRecord record;
      record.workload = workload;
      record.scheme = "direct";
      record.label = "shards=" + std::to_string(shards);
      record.wall_seconds = r.wall_seconds;
      record.sim_events = static_cast<std::uint64_t>(threads) * iters * 2;
      record.pushes = r.pushes;
      reporter.Add(record);
    }
    std::cout << "\n--- " << workload << " ---\n";
    table.PrintPretty(std::cout);
  }

  // --- part 2: shard-parallel transfers (simulated, deterministic) ----------
  const Workload workload = MakeTransferBoundWorkload(args.smoke);
  const SimTime horizon =
      args.smoke ? SimTime::FromSeconds(0.25) : SimTime::FromSeconds(1.0);
  std::cout << "\n--- sim_transfer_bound (" << workload.model->param_dim()
            << " params, " << workload.model->param_dim() * sizeof(double)
            << " B/pull, compute " << workload.iteration_time.seconds() * 1e3
            << " ms, horizon " << horizon.seconds() << " s sim) ---\n";
  Table sim_table({"servers", "pushes", "pushes/sim_s", "gain_vs_1_server"});
  double base_pushes = 0.0;
  for (std::size_t servers : shard_counts) {
    ExperimentConfig config;
    config.cluster = ClusterSpec::Homogeneous(8);
    config.cluster.num_servers = servers;
    config.max_time = horizon;
    config.stop_on_convergence = false;
    config.seed = 7;
    const auto start = std::chrono::steady_clock::now();
    const ExperimentResult result = RunExperiment(workload, config);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    total_wall += wall;
    const double pushes = static_cast<double>(result.sim.total_pushes);
    if (servers == 1) base_pushes = pushes;
    sim_table.AddRowValues(
        static_cast<unsigned long>(servers),
        static_cast<unsigned long long>(result.sim.total_pushes),
        pushes / horizon.seconds(),
        base_pushes > 0.0 ? pushes / base_pushes : 0.0);

    bench::BenchReporter::CellRecord record;
    record.workload = "sim_transfer_bound";
    record.scheme = "ASP";
    record.label = "servers=" + std::to_string(servers);
    record.seed = 7;
    record.wall_seconds = wall;
    record.sim_events = result.sim.sim_events;
    record.pushes = result.sim.total_pushes;
    record.sim_end_seconds = result.sim.end_time.seconds();
    record.final_loss = result.final_loss;
    reporter.Add(record);
  }
  sim_table.PrintPretty(std::cout);
  std::cout << "per-shard fan-out splits an 800 KB transfer into "
               "concurrent slices, so the iteration's transfer phase "
               "approaches the latency floor as servers grow\n";

  // Serial estimate == wall: the sweeps themselves are sequential; the
  // parallelism under test is inside each cell.
  reporter.SetRun(threads, total_wall, total_wall);
  reporter.WriteJson();

  // --metrics_out/--trace_out: one instrumented SpecSync-Adaptive run on the
  // same workload (speculation on, so the audit log and abort spans are
  // populated), separate from the measured sweeps above.
  {
    ExperimentConfig obs_config;
    obs_config.cluster = ClusterSpec::Homogeneous(8);
    obs_config.cluster.num_servers = args.num_servers;
    obs_config.scheme = SchemeSpec::Adaptive();
    obs_config.max_time = horizon;
    obs_config.stop_on_convergence = false;
    obs_config.seed = 7;
    bench::EmitObsArtifacts(args, workload, obs_config);
  }
  return 0;
}
