// Fig. 11: scalability with cluster size.
//
// Paper: on CIFAR-10 with 20/30/40 workers, (left) SpecSync-Adaptive's
// speedup over Original in runtime-to-target grows with cluster size, and
// (right) so does its loss improvement at a fixed time budget.
//
// The 12 (workers, scheme, replicate) cells run through one ParallelRunner
// pass (--threads=N, default hardware concurrency); output is bit-identical
// at any thread count. The worker count is part of each cell's seed key
// (label "workers=N"). BENCH_harness.json records the speedup-vs-serial this
// parallel pass achieved.
#include <iostream>
#include <string>

#include "benchmarks/bench_util.h"

using namespace specsync;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  bench::PrintHeader(
      "Fig. 11 — scalability with cluster size",
      "speedup over Original and fixed-budget loss improvement both grow "
      "with the worker count (20/30/40 in the paper)");
  std::cout << "num_servers=" << args.num_servers << "\n";

  const Workload workload = MakeCifar10Workload(1);
  const SimTime horizon = SimTime::FromSeconds(2100.0);
  const SimTime budget = SimTime::FromSeconds(1400.0);  // fixed-cost scenario
  const Duration fallback = horizon - SimTime::Zero();
  const std::vector<std::size_t> worker_counts = {10, 20, 30};

  bench::CellBatch batch;
  std::vector<std::size_t> asp_series;
  std::vector<std::size_t> spec_series;
  for (std::size_t workers : worker_counts) {
    ExperimentConfig config;
    config.cluster = ClusterSpec::Homogeneous(workers);
    config.cluster.num_servers = args.num_servers;
    config.max_time = horizon;
    config.stop_on_convergence = false;
    const std::string label = "workers=" + std::to_string(workers) +
                              ",servers=" + std::to_string(args.num_servers);
    config.scheme = SchemeSpec::Original();
    asp_series.push_back(batch.AddSeries(workload, config, 2, label));
    config.scheme = SchemeSpec::Adaptive();
    spec_series.push_back(batch.AddSeries(workload, config, 2, label));
  }
  batch.Run(args.threads);

  Table table({"workers", "ASP_time(s)", "Spec_time(s)", "speedup",
               "ASP_loss@budget", "Spec_loss@budget", "loss_improvement"});
  for (std::size_t i = 0; i < worker_counts.size(); ++i) {
    const auto& asp = batch.Series(asp_series[i]);
    const auto& spec = batch.Series(spec_series[i]);
    const double asp_time =
        bench::MeanTimeToTarget(asp, workload.loss_target, fallback);
    const double spec_time =
        bench::MeanTimeToTarget(spec, workload.loss_target, fallback);
    const double asp_loss = bench::MeanLossAt(asp, budget);
    const double spec_loss = bench::MeanLossAt(spec, budget);
    table.AddRowValues(
        static_cast<unsigned long>(worker_counts[i]), asp_time, spec_time,
        spec_time > 0 ? asp_time / spec_time : 0.0, asp_loss, spec_loss,
        asp_loss > 0 ? (asp_loss - spec_loss) / asp_loss : 0.0);
  }
  table.PrintPretty(std::cout);

  bench::BenchReporter reporter("bench_fig11_scalability");
  reporter.AddBatch(batch);
  reporter.WriteJson();
  return 0;
}
