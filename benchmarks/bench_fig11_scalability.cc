// Fig. 11: scalability with cluster size.
//
// Paper: on CIFAR-10 with 20/30/40 workers, (left) SpecSync-Adaptive's
// speedup over Original in runtime-to-target grows with cluster size, and
// (right) so does its loss improvement at a fixed time budget.
#include <iostream>

#include "benchmarks/bench_util.h"

using namespace specsync;

int main() {
  using namespace specsync::bench;
  PrintHeader(
      "Fig. 11 — scalability with cluster size",
      "speedup over Original and fixed-budget loss improvement both grow "
      "with the worker count (20/30/40 in the paper)");

  const Workload workload = MakeCifar10Workload(1);
  const SimTime horizon = SimTime::FromSeconds(2100.0);
  const SimTime budget = SimTime::FromSeconds(1400.0);  // fixed-cost scenario
  const Duration fallback = horizon - SimTime::Zero();

  Table table({"workers", "ASP_time(s)", "Spec_time(s)", "speedup",
               "ASP_loss@budget", "Spec_loss@budget", "loss_improvement"});
  for (std::size_t workers : {10u, 20u, 30u}) {
    ExperimentConfig config;
    config.cluster = ClusterSpec::Homogeneous(workers);
    config.max_time = horizon;
    config.stop_on_convergence = false;
    config.scheme = SchemeSpec::Original();
    const auto asp = RunSeeds(workload, config, SeedSweep{{7, 8}});
    config.scheme = SchemeSpec::Adaptive();
    const auto spec = RunSeeds(workload, config, SeedSweep{{7, 8}});

    const double asp_time =
        MeanTimeToTarget(asp, workload.loss_target, fallback);
    const double spec_time =
        MeanTimeToTarget(spec, workload.loss_target, fallback);
    const double asp_loss = MeanLossAt(asp, budget);
    const double spec_loss = MeanLossAt(spec, budget);
    table.AddRowValues(workers, asp_time, spec_time,
                       spec_time > 0 ? asp_time / spec_time : 0.0, asp_loss,
                       spec_loss,
                       asp_loss > 0 ? (asp_loss - spec_loss) / asp_loss : 0.0);
  }
  table.PrintPretty(std::cout);
  return 0;
}
