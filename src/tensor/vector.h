// Dense numeric vector.
//
// The parameter payloads exchanged between workers and servers are flat
// double vectors; models view slices of them as weights. Kernels are written
// plainly (no BLAS dependency) — model sizes in this repro are small enough
// that memory bandwidth, not FLOPs, dominates.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace specsync {

using DenseVector = std::vector<double>;

// y += alpha * x  (sizes must match).
void Axpy(double alpha, std::span<const double> x, std::span<double> y);

// x *= alpha.
void Scale(double alpha, std::span<double> x);

double Dot(std::span<const double> a, std::span<const double> b);

// Euclidean norm.
double Norm2(std::span<const double> x);

double SumOfSquares(std::span<const double> x);

// Fills with zeros.
void Zero(std::span<double> x);

// Clips x elementwise into [-bound, bound]; bound must be positive.
void ClipInPlace(std::span<double> x, double bound);

// out = a - b (sizes must match; out may alias a).
void Sub(std::span<const double> a, std::span<const double> b,
         std::span<double> out);

// Returns true if every element is finite.
bool AllFinite(std::span<const double> x);

}  // namespace specsync
