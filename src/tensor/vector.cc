#include "tensor/vector.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace specsync {

void Axpy(double alpha, std::span<const double> x, std::span<double> y) {
  SPECSYNC_CHECK_EQ(x.size(), y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void Scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

double Dot(std::span<const double> a, std::span<const double> b) {
  SPECSYNC_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double SumOfSquares(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc += v * v;
  return acc;
}

double Norm2(std::span<const double> x) { return std::sqrt(SumOfSquares(x)); }

void Zero(std::span<double> x) { std::fill(x.begin(), x.end(), 0.0); }

void ClipInPlace(std::span<double> x, double bound) {
  SPECSYNC_CHECK_GT(bound, 0.0);
  for (double& v : x) v = std::clamp(v, -bound, bound);
}

void Sub(std::span<const double> a, std::span<const double> b,
         std::span<double> out) {
  SPECSYNC_CHECK_EQ(a.size(), b.size());
  SPECSYNC_CHECK_EQ(a.size(), out.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
}

bool AllFinite(std::span<const double> x) {
  return std::all_of(x.begin(), x.end(),
                     [](double v) { return std::isfinite(v); });
}

}  // namespace specsync
