#include "tensor/matrix.h"

namespace specsync {

void Gemv(ConstMatrixView w, std::span<const double> x, std::span<double> y) {
  SPECSYNC_CHECK_EQ(x.size(), w.cols());
  SPECSYNC_CHECK_EQ(y.size(), w.rows());
  for (std::size_t r = 0; r < w.rows(); ++r) {
    double acc = 0.0;
    const std::span<const double> row = w.row(r);
    for (std::size_t c = 0; c < w.cols(); ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

void GemvTransposed(ConstMatrixView w, std::span<const double> x,
                    std::span<double> y) {
  SPECSYNC_CHECK_EQ(x.size(), w.rows());
  SPECSYNC_CHECK_EQ(y.size(), w.cols());
  for (std::size_t c = 0; c < w.cols(); ++c) y[c] = 0.0;
  for (std::size_t r = 0; r < w.rows(); ++r) {
    const std::span<const double> row = w.row(r);
    const double xr = x[r];
    for (std::size_t c = 0; c < w.cols(); ++c) y[c] += row[c] * xr;
  }
}

void AddOuterProduct(MatrixView w, double alpha, std::span<const double> u,
                     std::span<const double> v) {
  SPECSYNC_CHECK_EQ(u.size(), w.rows());
  SPECSYNC_CHECK_EQ(v.size(), w.cols());
  for (std::size_t r = 0; r < w.rows(); ++r) {
    std::span<double> row = w.row(r);
    const double au = alpha * u[r];
    for (std::size_t c = 0; c < w.cols(); ++c) row[c] += au * v[c];
  }
}

}  // namespace specsync
