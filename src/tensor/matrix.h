// Row-major dense matrix view and owning matrix.
//
// Models store their weights inside flat parameter vectors; MatrixView lets a
// model treat a slice of that flat storage as a (rows x cols) matrix without
// copying — essential because the parameter server owns the flat layout.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/check.h"

namespace specsync {

template <typename T>
class MatrixViewT {
 public:
  MatrixViewT(std::span<T> data, std::size_t rows, std::size_t cols)
      : data_(data), rows_(rows), cols_(cols) {
    SPECSYNC_CHECK_EQ(data.size(), rows * cols);
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  T& at(std::size_t r, std::size_t c) const {
    SPECSYNC_CHECK(r < rows_ && c < cols_)
        << "(" << r << "," << c << ") out of " << rows_ << "x" << cols_;
    return data_[r * cols_ + c];
  }

  // Unchecked fast path for kernels.
  T& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::span<T> row(std::size_t r) const {
    SPECSYNC_CHECK_LT(r, rows_);
    return data_.subspan(r * cols_, cols_);
  }

  std::span<T> flat() const { return data_; }

 private:
  std::span<T> data_;
  std::size_t rows_;
  std::size_t cols_;
};

using MatrixView = MatrixViewT<double>;
using ConstMatrixView = MatrixViewT<const double>;

// y = W * x   (W: rows x cols, x: cols, y: rows).
void Gemv(ConstMatrixView w, std::span<const double> x, std::span<double> y);

// y = W^T * x (W: rows x cols, x: rows, y: cols).
void GemvTransposed(ConstMatrixView w, std::span<const double> x,
                    std::span<double> y);

// W += alpha * outer(u, v)   (u: rows, v: cols).
void AddOuterProduct(MatrixView w, double alpha, std::span<const double> u,
                     std::span<const double> v);

}  // namespace specsync
