#include "tensor/sparse.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace specsync {

void SparseUpdate::Coalesce() {
  if (indices_.size() < 2) return;
  std::vector<std::size_t> order(indices_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return indices_[a] < indices_[b];
  });
  std::vector<std::uint64_t> new_indices;
  std::vector<double> new_values;
  new_indices.reserve(indices_.size());
  new_values.reserve(values_.size());
  for (std::size_t pos : order) {
    if (!new_indices.empty() && new_indices.back() == indices_[pos]) {
      new_values.back() += values_[pos];
    } else {
      new_indices.push_back(indices_[pos]);
      new_values.push_back(values_[pos]);
    }
  }
  indices_ = std::move(new_indices);
  values_ = std::move(new_values);
}

void SparseUpdate::ScatterAdd(double alpha, std::span<double> dest) const {
  for (std::size_t i = 0; i < indices_.size(); ++i) {
    SPECSYNC_CHECK_LT(indices_[i], dest.size());
    dest[indices_[i]] += alpha * values_[i];
  }
}

void SparseUpdate::ScaleValues(double alpha) {
  for (double& v : values_) v *= alpha;
}

std::vector<double> ToDense(const SparseUpdate& update, std::size_t size) {
  std::vector<double> dense(size, 0.0);
  update.ScatterAdd(1.0, dense);
  return dense;
}

}  // namespace specsync
