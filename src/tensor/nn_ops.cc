#include "tensor/nn_ops.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace specsync {

void SoftmaxInPlace(std::span<double> x) {
  SPECSYNC_CHECK(!x.empty());
  const double max = *std::max_element(x.begin(), x.end());
  double sum = 0.0;
  for (double& v : x) {
    v = std::exp(v - max);
    sum += v;
  }
  for (double& v : x) v /= sum;
}

void Relu(std::span<const double> x, std::span<double> out) {
  SPECSYNC_CHECK_EQ(x.size(), out.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = std::max(0.0, x[i]);
}

void ReluBackward(std::span<const double> x, std::span<const double> grad_out,
                  std::span<double> grad_in) {
  SPECSYNC_CHECK_EQ(x.size(), grad_out.size());
  SPECSYNC_CHECK_EQ(x.size(), grad_in.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    grad_in[i] = x[i] > 0.0 ? grad_out[i] : 0.0;
  }
}

double CrossEntropy(std::span<const double> probabilities, std::size_t label) {
  SPECSYNC_CHECK_LT(label, probabilities.size());
  // Floor keeps the loss finite if a class probability underflows.
  constexpr double kFloor = 1e-12;
  return -std::log(std::max(probabilities[label], kFloor));
}

std::size_t ArgMax(std::span<const double> x) {
  SPECSYNC_CHECK(!x.empty());
  return static_cast<std::size_t>(
      std::distance(x.begin(), std::max_element(x.begin(), x.end())));
}

}  // namespace specsync
