// Sparse update vector.
//
// Matrix-factorization gradients touch only the rows of the user/item factor
// matrices that appear in the mini-batch (paper Sec. VI-A: "input data of MF
// are user ratings represented by sparse vectors"). A SparseUpdate carries
// (index, value) pairs against a dense destination and knows its own wire
// size so the transfer accounting (Figs. 12-13) can charge it correctly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace specsync {

class SparseUpdate {
 public:
  SparseUpdate() = default;

  void Reserve(std::size_t n) {
    indices_.reserve(n);
    values_.reserve(n);
  }

  void Add(std::uint64_t index, double value) {
    indices_.push_back(index);
    values_.push_back(value);
  }

  std::size_t nnz() const { return indices_.size(); }
  bool empty() const { return indices_.empty(); }
  std::span<const std::uint64_t> indices() const { return indices_; }
  std::span<const double> values() const { return values_; }
  // In-place value rewrites (the gradient codec quantizes without changing
  // the support); indices stay immutable through this accessor.
  std::span<double> mutable_values() { return values_; }

  void Clear() {
    indices_.clear();
    values_.clear();
  }

  // Sorts by index and sums duplicate entries (canonical form).
  void Coalesce();

  // dest[index] += alpha * value for each entry; indices must be < dest size.
  void ScatterAdd(double alpha, std::span<double> dest) const;

  // Multiplies every stored value by alpha.
  void ScaleValues(double alpha);

  // Approximate wire size: 8-byte index + 8-byte value per entry.
  std::size_t wire_bytes() const { return nnz() * 16; }

 private:
  std::vector<std::uint64_t> indices_;
  std::vector<double> values_;
};

// Densifies into a vector of the given size (entries outside are an error).
std::vector<double> ToDense(const SparseUpdate& update, std::size_t size);

}  // namespace specsync
