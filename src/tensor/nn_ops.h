// Elementwise / reduction kernels used by the neural-network models.
#pragma once

#include <span>

namespace specsync {

// In-place numerically stable softmax over x.
void SoftmaxInPlace(std::span<double> x);

// out = relu(x); out may alias x.
void Relu(std::span<const double> x, std::span<double> out);

// grad_in = grad_out where x > 0, else 0; grad_in may alias grad_out.
void ReluBackward(std::span<const double> x, std::span<const double> grad_out,
                  std::span<double> grad_in);

// Cross-entropy loss -log(probabilities[label]); probabilities must sum to ~1.
double CrossEntropy(std::span<const double> probabilities, std::size_t label);

// Index of the maximum element (first one on ties); x must be non-empty.
std::size_t ArgMax(std::span<const double> x);

}  // namespace specsync
