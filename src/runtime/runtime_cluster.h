// Threaded in-process cluster: the SpecSync protocol under real concurrency.
//
// The discrete-event simulator (src/sim) drives the experiments; this runtime
// exists to demonstrate the identical scheduler logic working in a real
// system: worker threads genuinely compute gradients, a scheduler thread
// handles notify messages and arms wall-clock speculation timers, and aborts
// interrupt in-flight computation between batch chunks. Time is wall time
// mapped onto SimTime, so SpecSyncScheduler is reused verbatim.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <vector>

#include "core/scheduler.h"
#include "core/speculation.h"
#include "fault/fault_plan.h"
#include "models/model.h"
#include "net/endpoint.h"
#include "optim/lr_schedule.h"
#include "ps/compression.h"
#include "ps/consistency.h"
#include "ps/param_store.h"

namespace specsync {

// How workers reach the parameter store.
//   kInProcess   — direct calls into the shared ParameterServer (the
//                  pre-transport behavior, bit-identical by construction).
//   kTcpLoopback — the store sits behind a net::ShardServer on 127.0.0.1 and
//                  every worker gets its own net::ShardClient: pulls and
//                  pushes pay real serialization and kernel round trips, and
//                  data-link fault injection (drop / delay / duplicate)
//                  happens on the wire with timeout + bounded retry.
enum class RuntimeTransport { kInProcess, kTcpLoopback };

// Consistency model gating worker iteration starts (mirrors the sim's
// BaseScheme). kAsp installs no gate at all — the pre-consistency runtime
// loop, bit-identical by construction. The SSP-family schemes wrap a
// controller in a ConsistencyGate: worker threads block in WaitToStart until
// the bound admits their next iteration.
//
// Unlike the sim (whose static SSP keeps the pinned legacy no-crash-handling
// behavior and simply runs out its virtual-time budget when a corpse pins the
// minimum), the runtime has no clock to run out — a deadlocked gate hangs the
// process. All runtime SSP-family schemes therefore run on the per-shard
// controller, which excuses crashed workers from the progress minimum:
// kBsp / kSsp use write sets frozen to every shard (dense per-shard SSP is
// exactly global SSP, see PerShardSspController), kPssp learns write sets
// from observed pushes, kDssp additionally retunes the bound each epoch.
enum class RuntimeConsistency { kAsp, kBsp, kSsp, kPssp, kDssp };

struct RuntimeConsistencyConfig {
  RuntimeConsistency scheme = RuntimeConsistency::kAsp;
  std::uint64_t staleness = 3;  // kSsp / kPssp
  DynamicSspConfig dssp;        // kDssp
};

struct RuntimeConfig {
  std::size_t num_workers = 4;
  std::size_t iterations_per_worker = 20;
  std::size_t batch_size = 32;
  // The mini-batch is split into this many chunks; abort requests are honored
  // at chunk boundaries (an in-flight chunk always completes).
  std::size_t compute_chunks = 4;
  // Optional artificial per-chunk delay to stretch iterations so speculation
  // windows are meaningful on small machines.
  std::chrono::microseconds chunk_delay{0};
  // Speculation setup: fixed parameters (enabled() == false disables
  // speculation entirely) or adaptive tuning.
  bool adaptive = false;
  SpeculationParams fixed_params;
  std::size_t num_servers = 4;
  // Iteration-start gating (default: ungated ASP, the original loop).
  RuntimeConsistencyConfig consistency;
  // Threads used to pull shards concurrently (one in-process pool shared by
  // all workers). 0 = auto: min(num_servers, hardware threads). 1 = pull
  // shards inline on the worker thread.
  std::size_t pull_threads = 0;
  double sgd_clip = 0.0;
  std::uint64_t seed = 123;
  RuntimeTransport transport = RuntimeTransport::kInProcess;
  // tcp_loopback only: which server model fronts the store. Training results
  // must be equivalent under both (the golden-digest test pins this); the
  // event-loop model holds its thread count constant in worker count.
  net::ServerModel server_model = net::ServerModel::kThreadPerConn;
  // tcp_loopback only: per-request response deadline and total attempts
  // before a shard is declared unreachable (which fails the run loudly).
  std::chrono::milliseconds net_timeout{250};
  std::size_t net_attempts = 16;
  // Gradient wire compression (ps/compression.h). topk/int8/fp16 transform
  // each worker's merged gradient (with per-worker error-feedback residuals
  // for topk) before it is pushed — on both transports, so in-process and
  // tcp_loopback stay bit-identical per the codec's determinism contract.
  // delta additionally makes tcp_loopback pulls conditional. kNone leaves
  // every path byte-for-byte untouched.
  CompressionSpec compression;
  // End-of-run evaluation: final_eval=false skips FullLoss entirely
  // (RuntimeResult::final_loss stays 0 — transport benches that only care
  // about wire behavior can spend nothing here); otherwise
  // final_eval_samples examples are evaluated (0 = the full dataset).
  bool final_eval = true;
  std::size_t final_eval_samples = 2000;
  // Fault injection: control-link faults apply to the scheduler mailbox and
  // re-sync delivery, slowdown windows scale chunk_delay, and crash events
  // kill (and optionally rejoin) worker threads. Default = disabled, which
  // leaves the runtime's behavior untouched.
  FaultPlanConfig faults;
  // Optional observability context (src/obs), not owned; must outlive the
  // cluster. Worker threads record pull/compute/push/abort spans on the
  // wall-clock SimTime axis, the scheduler thread records its decision audit,
  // and the parameter store its lock/latency histograms.
  obs::ObsContext* obs = nullptr;
};

struct RuntimeResult {
  double final_loss = 0.0;
  std::uint64_t total_pushes = 0;
  std::uint64_t total_aborts = 0;
  SchedulerStats scheduler_stats;
  std::chrono::milliseconds elapsed{0};
  DenseVector final_weights;
  FaultStats fault_stats;
  // Workers that died permanently (crash with no rejoin).
  std::uint64_t workers_killed = 0;
  // Consistency-gate telemetry (all zero under kAsp): block transitions,
  // wall time worker threads spent blocked, DSSP bound adjustments, and the
  // bound in force at run end.
  std::uint64_t consistency_blocks = 0;
  double consistency_blocked_s = 0.0;
  std::uint64_t consistency_retunes = 0;
  std::uint64_t final_staleness = 0;
};

class RuntimeCluster {
 public:
  RuntimeCluster(std::shared_ptr<const Model> model,
                 std::shared_ptr<const LearningRateSchedule> schedule,
                 RuntimeConfig config);
  ~RuntimeCluster();

  RuntimeCluster(const RuntimeCluster&) = delete;
  RuntimeCluster& operator=(const RuntimeCluster&) = delete;

  // Runs the full training to completion (blocking).
  RuntimeResult Run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace specsync
