// Maps wall time onto the SimTime axis the scheduler expects.
//
// The runtime reuses SpecSyncScheduler verbatim by treating seconds since
// cluster start as SimTime. ToTimePoint is the inverse map used to arm
// wall-clock timers for scheduler deadlines.
#pragma once

#include <chrono>

#include "common/sim_time.h"

namespace specsync {

class WallClock {
 public:
  WallClock() : start_(std::chrono::steady_clock::now()) {}
  // Fixed-origin construction (tests exercising the conversion round trip).
  explicit WallClock(std::chrono::steady_clock::time_point start)
      : start_(start) {}

  SimTime Now() const {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    return SimTime::FromSeconds(
        std::chrono::duration<double>(elapsed).count());
  }

  // Rounds UP to the steady clock's tick. Truncation (duration_cast) would
  // produce a time point fractionally before `t`, so a timer sleeping until
  // ToTimePoint(t) could wake with Now() < t still true and spin through its
  // "deadline not reached" path; with ceil, once the returned time point is
  // reached, Now() >= t is guaranteed.
  std::chrono::steady_clock::time_point ToTimePoint(SimTime t) const {
    return start_ + std::chrono::ceil<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(t.seconds()));
  }

  std::chrono::steady_clock::time_point start() const { return start_; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace specsync
