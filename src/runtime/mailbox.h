// Bounded-blocking mailbox for inter-thread message passing.
//
// Per the Core Guidelines' concurrency advice (CP.mess), runtime nodes never
// share mutable state directly: workers, the scheduler, and the driver
// exchange owned messages through mailboxes. Close() releases all blocked
// receivers — the shutdown path needs no sentinel messages.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace specsync {

// Result of a non-blocking mailbox poll. Distinguishes the two reasons a
// poll can come back empty: an open mailbox that is merely empty right now
// (kEmpty — more may arrive, keep polling) versus one that is closed AND
// fully drained (kDrained — nothing will ever arrive again, stop). A plain
// optional cannot express the difference, which is exactly what a drain
// loop needs to terminate correctly. FaultMailbox reports kEmpty also while
// only delay-injected (not yet deliverable) messages are pending.
enum class MailboxPoll { kMessage, kEmpty, kDrained };

template <typename T>
class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  // Enqueues a message; returns false if the mailbox is closed.
  bool Send(T message) {
    {
      std::scoped_lock lock(mutex_);
      if (closed_) return false;
      queue_.push_back(std::move(message));
    }
    available_.notify_one();
    return true;
  }

  // Blocks until a message arrives or the mailbox closes; nullopt on close
  // with an empty queue (messages sent before Close() are still delivered).
  std::optional<T> Receive() {
    std::unique_lock lock(mutex_);
    available_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    return TakeLocked();
  }

  // As Receive(), but also returns nullopt once `deadline` passes.
  template <typename Clock, typename Dur>
  std::optional<T> ReceiveUntil(std::chrono::time_point<Clock, Dur> deadline) {
    std::unique_lock lock(mutex_);
    available_.wait_until(lock, deadline,
                          [this] { return closed_ || !queue_.empty(); });
    return TakeLocked();
  }

  // Non-blocking receive. nullopt conflates "empty" and "closed" — drain
  // loops that must terminate should use the status overload below or check
  // drained().
  std::optional<T> TryReceive() {
    std::scoped_lock lock(mutex_);
    return TakeLocked();
  }

  // Non-blocking receive with a drain-aware status: kMessage fills `out`.
  MailboxPoll TryReceive(T& out) {
    std::scoped_lock lock(mutex_);
    if (!queue_.empty()) {
      out = std::move(queue_.front());
      queue_.pop_front();
      return MailboxPoll::kMessage;
    }
    return closed_ ? MailboxPoll::kDrained : MailboxPoll::kEmpty;
  }

  // Closed with nothing left to deliver: no receive will ever succeed again.
  bool drained() const {
    std::scoped_lock lock(mutex_);
    return closed_ && queue_.empty();
  }

  void Close() {
    {
      std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    available_.notify_all();
  }

  bool closed() const {
    std::scoped_lock lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::scoped_lock lock(mutex_);
    return queue_.size();
  }

 private:
  // Requires mutex_ held.
  std::optional<T> TakeLocked() {
    if (queue_.empty()) return std::nullopt;
    T message = std::move(queue_.front());
    queue_.pop_front();
    return message;
  }

  mutable std::mutex mutex_;
  std::condition_variable available_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace specsync
