#include "runtime/runtime_cluster.h"

#include <algorithm>
#include <queue>
#include <thread>
#include <variant>

#include "common/check.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/adaptive_tuner.h"
#include "data/sharding.h"
#include "net/shard_client.h"
#include "net/shard_server.h"
#include "obs/obs.h"
#include "ps/consistency_gate.h"
#include "runtime/fault_mailbox.h"
#include "runtime/mailbox.h"
#include "runtime/wall_clock.h"

namespace specsync {

namespace {

// Messages workers send to the scheduler thread.
struct NotifyMsg {
  WorkerId worker;
  IterationId iteration;
};
struct PullMsg {
  WorkerId worker;
};
// Lifecycle events (reliable failure detection, sent via SendReliable).
struct WorkerDownMsg {
  WorkerId worker;
};
struct WorkerUpMsg {
  WorkerId worker;
};
using SchedulerMsg =
    std::variant<NotifyMsg, PullMsg, WorkerDownMsg, WorkerUpMsg>;

// Merges per-chunk gradients (each a mean over its chunk) into their average.
Gradient MergeChunks(std::vector<Gradient> chunks) {
  SPECSYNC_CHECK(!chunks.empty());
  const double weight = 1.0 / static_cast<double>(chunks.size());
  if (!chunks.front().is_sparse()) {
    Gradient merged = Gradient::Dense(chunks.front().dense().size());
    for (const Gradient& chunk : chunks) {
      Axpy(weight, chunk.dense(), merged.dense());
    }
    return merged;
  }
  Gradient merged = Gradient::Sparse();
  for (Gradient& chunk : chunks) {
    chunk.sparse().ScaleValues(weight);
    const auto indices = chunk.sparse().indices();
    const auto values = chunk.sparse().values();
    for (std::size_t i = 0; i < indices.size(); ++i) {
      merged.sparse().Add(indices[i], values[i]);
    }
  }
  merged.sparse().Coalesce();
  return merged;
}

}  // namespace

struct RuntimeCluster::Impl {
  std::shared_ptr<const Model> model;
  std::shared_ptr<const LearningRateSchedule> schedule;
  RuntimeConfig config;

  std::unique_ptr<ParameterServer> server;
  // Shared pool for shard-concurrent pulls (null when shards or pull_threads
  // make the inline path the right one). Pull() scopes its wait with a latch,
  // so workers can fan out pulls through the same pool concurrently.
  std::unique_ptr<ThreadPool> pull_pool;
  // tcp_loopback transport: the store behind a loopback socket plus one
  // client per worker (empty clients vector = in-process direct calls).
  std::unique_ptr<net::ShardServerBase> shard_server;
  std::vector<std::unique_ptr<net::ShardClient>> shard_clients;
  WallClock clock;
  FaultPlan faults;
  FaultMailbox<SchedulerMsg> scheduler_mailbox;

  // Worker -> iteration index the scheduler wants aborted (-1 = none).
  std::vector<std::atomic<std::int64_t>> abort_target;
  std::vector<std::atomic<std::uint64_t>> completed;
  std::atomic<std::uint64_t> total_aborts{0};
  std::atomic<std::uint64_t> workers_killed{0};

  // Scheduler state (owned by the scheduler thread after Run() starts).
  std::unique_ptr<SpecSyncScheduler> scheduler;
  SchedulerStats final_stats;

  // Iteration-start gating (null under kAsp: no gate, no admission checks —
  // the pre-consistency loop). Typed views into the gated controller for
  // end-of-run stats; `runtime_dssp` implies `runtime_pssp`.
  std::unique_ptr<ConsistencyGate> gate;
  PerShardSspController* runtime_pssp = nullptr;
  DynamicSspController* runtime_dssp = nullptr;

  // Gradient wire codec (null = codec off, every path untouched). Transform
  // is safe for concurrent distinct workers — each worker thread only ever
  // touches its own error-feedback residual.
  std::unique_ptr<GradientCodec> codec;

  // Observability (null = off). Resolved once at construction; workers
  // record concurrently (SpanRecorder appends under its own mutex).
  obs::ObsContext* obs = nullptr;
  obs::Counter* pull_counter = nullptr;
  obs::Counter* push_counter = nullptr;
  obs::Counter* abort_counter = nullptr;
  obs::LatencyHistogram* iteration_hist = nullptr;

  Impl(std::shared_ptr<const Model> model_in,
       std::shared_ptr<const LearningRateSchedule> schedule_in,
       RuntimeConfig config_in)
      : model(std::move(model_in)),
        schedule(std::move(schedule_in)),
        config(std::move(config_in)),
        faults(config.faults),
        scheduler_mailbox(&faults, LinkClass::kControl),
        abort_target(config.num_workers),
        completed(config.num_workers) {
    SPECSYNC_CHECK(model != nullptr);
    SPECSYNC_CHECK(schedule != nullptr);
    SPECSYNC_CHECK_GT(config.num_workers, 0u);
    SPECSYNC_CHECK_GT(config.compute_chunks, 0u);
    SPECSYNC_CHECK_LE(config.compute_chunks, config.batch_size);
    for (const CrashEvent& event : config.faults.crashes) {
      SPECSYNC_CHECK_LT(event.worker, config.num_workers);
    }
    for (const SlowdownWindow& window : config.faults.slowdowns) {
      SPECSYNC_CHECK_LT(window.worker, config.num_workers);
    }
    for (auto& a : abort_target) a.store(-1, std::memory_order_relaxed);
    for (auto& c : completed) c.store(0, std::memory_order_relaxed);

    auto applier =
        std::make_shared<SgdApplier>(schedule, SgdConfig{config.sgd_clip});
    server = std::make_unique<ParameterServer>(
        model->param_dim(), config.num_servers, std::move(applier));
    Rng init_rng(config.seed);
    server->Initialize(*model, init_rng);

    if (config.compression.transforms_pushes()) {
      codec = std::make_unique<GradientCodec>(
          config.compression, config.num_workers,
          ParameterServer::ShardSplit(model->param_dim(),
                                      config.num_servers));
    }

    std::size_t pull_threads = config.pull_threads;
    if (pull_threads == 0) {
      pull_threads =
          std::min(config.num_servers, ThreadPool::DefaultThreadCount());
    }
    if (pull_threads > 1 && config.num_servers > 1) {
      pull_pool = std::make_unique<ThreadPool>(pull_threads);
    }

    if (config.transport == RuntimeTransport::kTcpLoopback) {
      obs::MetricsRegistry* metrics =
          config.obs != nullptr ? &config.obs->metrics : nullptr;
      obs::SpanRecorder* spans =
          config.obs != nullptr ? &config.obs->spans : nullptr;
      net::ShardServerConfig server_config;
      server_config.model = config.server_model;
      // Serve spans get their own tracks past the worker tracks and the
      // scheduler track (see the track naming in the obs block below).
      server_config.trace_track_base =
          static_cast<std::uint32_t>(config.num_workers) + 1;
      shard_server = net::MakeShardServer(server.get(),
                                          std::move(server_config), metrics,
                                          spans);
      SPECSYNC_CHECK(shard_server->Start())
          << "tcp_loopback transport: cannot start "
          << net::ServerModelName(config.server_model) << " shard server";
      net::ShardClientConfig client_config;
      client_config.request_timeout = config.net_timeout;
      client_config.max_attempts = config.net_attempts;
      client_config.compression = config.compression;
      const net::Endpoint endpoint{"127.0.0.1", shard_server->port()};
      for (std::size_t s = 0; s < server->num_shards(); ++s) {
        const ShardInfo info = server->shard(s);
        client_config.topology.shards.push_back(
            net::ShardPlacement{info.offset, info.length, endpoint});
      }
      for (WorkerId w = 0; w < config.num_workers; ++w) {
        // Client request spans share the worker's track, so wire activity
        // nests visually under the worker that caused it.
        client_config.trace_track = w;
        auto client = std::make_unique<net::ShardClient>(
            client_config, faults.enabled() ? &faults : nullptr, metrics,
            spans);
        SPECSYNC_CHECK(client->Connect())
            << "tcp_loopback transport: worker " << w << " cannot connect";
        shard_clients.push_back(std::move(client));
      }
    }

    if (config.consistency.scheme != RuntimeConsistency::kAsp) {
      const std::size_t shards = server->num_shards();
      std::unique_ptr<PerShardSspController> controller;
      switch (config.consistency.scheme) {
        case RuntimeConsistency::kBsp:
          controller = std::make_unique<PerShardSspController>(
              config.num_workers, shards, 0);
          break;
        case RuntimeConsistency::kSsp:
          controller = std::make_unique<PerShardSspController>(
              config.num_workers, shards, config.consistency.staleness);
          break;
        case RuntimeConsistency::kPssp:
          controller = std::make_unique<PerShardSspController>(
              config.num_workers, shards, config.consistency.staleness);
          break;
        case RuntimeConsistency::kDssp: {
          auto dynamic = std::make_unique<DynamicSspController>(
              config.num_workers, shards, config.consistency.dssp);
          runtime_dssp = dynamic.get();
          controller = std::move(dynamic);
          break;
        }
        case RuntimeConsistency::kAsp:
          break;  // unreachable
      }
      // kBsp / kSsp mean *global* bounds: freeze every write set to all
      // shards so the per-shard controller degenerates to exact SSP while
      // keeping its crash-excusal (see RuntimeConsistency).
      if (config.consistency.scheme == RuntimeConsistency::kBsp ||
          config.consistency.scheme == RuntimeConsistency::kSsp) {
        std::vector<std::size_t> all(shards);
        for (std::size_t s = 0; s < shards; ++s) all[s] = s;
        for (WorkerId w = 0; w < config.num_workers; ++w) {
          controller->SetWriteSet(w, all);
        }
      }
      runtime_pssp = controller.get();
      gate = std::make_unique<ConsistencyGate>(std::move(controller));
    }

    const bool speculation_on = config.adaptive || config.fixed_params.enabled();
    if (speculation_on) {
      SchedulerConfig sched_config;
      sched_config.num_workers = config.num_workers;
      sched_config.initial_params = config.fixed_params;
      sched_config.default_span = Duration::Milliseconds(10.0);
      std::unique_ptr<SpeculationPolicy> policy;
      if (config.adaptive) {
        policy = std::make_unique<AdaptiveTuner>();
      } else {
        policy = std::make_unique<FixedSpeculationPolicy>(config.fixed_params);
      }
      scheduler = std::make_unique<SpecSyncScheduler>(sched_config,
                                                      std::move(policy));
    }

    obs = config.obs;
    if (obs != nullptr) {
      pull_counter = &obs->metrics.counter("runtime.pulls");
      push_counter = &obs->metrics.counter("runtime.pushes");
      abort_counter = &obs->metrics.counter("runtime.aborts");
      iteration_hist = &obs->metrics.histogram("runtime.iteration_s");
      for (WorkerId w = 0; w < config.num_workers; ++w) {
        obs->spans.SetTrackName(w, "worker " + std::to_string(w));
      }
      const auto sched_track = static_cast<std::uint32_t>(config.num_workers);
      obs->spans.SetTrackName(sched_track, "scheduler");
      // Anchor span wall mapping on the run clock so client/server wire spans
      // (recorded against WallNanos) share the axis with worker spans
      // (recorded against clock.Now()). Overrides the fallback epoch the
      // transport constructors may have pinned moments earlier.
      obs->spans.SetWallEpochNanos(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              clock.start().time_since_epoch())
              .count()));
      if (config.transport == RuntimeTransport::kTcpLoopback) {
        for (std::size_t s = 0; s < server->num_shards(); ++s) {
          obs->spans.SetTrackName(
              sched_track + 1 + static_cast<std::uint32_t>(s),
              "server shard " + std::to_string(s));
        }
      }
      if (scheduler) scheduler->AttachObservability(obs, sched_track);
      // DecisionAuditLog is internally locked: DSSP retunes from worker
      // threads interleave safely with the scheduler thread's records.
      if (runtime_dssp) runtime_dssp->AttachAudit(&obs->audit);
      server->AttachMetrics(&obs->metrics);
    }
  }

  // Transport dispatch: direct store calls by default, per-worker wire
  // clients under tcp_loopback. The in-process path is untouched code, so
  // the default transport stays bit-identical to the pre-transport runtime.
  PullResult PullParams(WorkerId w) {
    if (shard_clients.empty()) return server->Pull(pull_pool.get());
    return shard_clients[w]->Pull(pull_pool.get());
  }

  void PushGradient(WorkerId w, const Gradient& grad, EpochId epoch) {
    if (shard_clients.empty()) {
      server->Push(grad, epoch);
    } else {
      shard_clients[w]->Push(grad, epoch, pull_pool.get());
    }
  }

  EpochId GlobalEpoch() const {
    std::uint64_t min_completed = completed[0].load(std::memory_order_relaxed);
    for (const auto& c : completed) {
      min_completed =
          std::min(min_completed, c.load(std::memory_order_relaxed));
    }
    return min_completed;
  }

  // --- scheduler thread -----------------------------------------------------

  void SchedulerLoop() {
    struct Timer {
      SimTime deadline;
      WorkerId worker;
      std::uint64_t token;
      IterationId iteration;
      bool operator>(const Timer& other) const {
        return deadline > other.deadline;
      }
    };
    std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers;

    for (;;) {
      // Fire due timers first.
      while (!timers.empty() && timers.top().deadline <= clock.Now()) {
        const Timer timer = timers.top();
        timers.pop();
        if (scheduler->HandleCheckTimer(timer.worker, timer.token,
                                        clock.Now())) {
          // "Send" the re-sync: target the iteration after the notify. The
          // re-sync rides the control link, so it too can be lost.
          const bool lost =
              faults.enabled() && faults.OnMessage(LinkClass::kControl).drop;
          if (!lost) {
            abort_target[timer.worker].store(
                static_cast<std::int64_t>(timer.iteration + 1),
                std::memory_order_release);
          }
        }
      }
      std::optional<SchedulerMsg> msg;
      if (timers.empty()) {
        msg = scheduler_mailbox.Receive();
      } else {
        msg = scheduler_mailbox.ReceiveUntil(
            clock.ToTimePoint(timers.top().deadline));
      }
      if (!msg.has_value()) {
        // drained(), not closed(): messages sent before Close() must still
        // be dispatched — the loop only ends once nothing can arrive again.
        if (scheduler_mailbox.drained()) break;
        continue;  // timer deadline reached (or spurious wake): fire timers
      }
      if (const auto* pull = std::get_if<PullMsg>(&*msg)) {
        scheduler->HandlePull(pull->worker, clock.Now());
        continue;
      }
      if (const auto* down = std::get_if<WorkerDownMsg>(&*msg)) {
        scheduler->OnWorkerDown(down->worker, clock.Now());
        continue;
      }
      if (const auto* up = std::get_if<WorkerUpMsg>(&*msg)) {
        scheduler->OnWorkerUp(up->worker, clock.Now());
        continue;
      }
      const auto& notify = std::get<NotifyMsg>(*msg);
      auto request = scheduler->HandleNotify(notify.worker, notify.iteration,
                                             clock.Now());
      if (request.has_value()) {
        timers.push(Timer{clock.Now() + request->delay, notify.worker,
                          request->token, notify.iteration});
      }
    }
    final_stats = scheduler->stats();
  }

  // --- worker threads --------------------------------------------------------

  void WorkerLoop(WorkerId w, std::vector<std::size_t> shard) {
    Rng rng(config.seed * 7919 + w + 1);
    BatchSampler sampler(std::move(shard), config.batch_size, rng.Fork());
    const std::size_t chunk_size =
        std::max<std::size_t>(1, config.batch_size / config.compute_chunks);

    // Injected crash: honored at iteration start and chunk boundaries (like
    // aborts, an in-flight chunk always completes). One lifecycle event per
    // worker; the down/up messages ride the reliable failure-detection path.
    const CrashEvent* crash = faults.CrashFor(w);
    bool crash_pending = crash != nullptr;
    const auto crash_due = [&] {
      return crash_pending && clock.Now() >= crash->at;
    };
    // Returns true when the death is permanent (worker thread exits).
    const auto handle_crash = [&] {
      crash_pending = false;
      faults.CountCrash();
      // Excuse this worker from the consistency minimum before going dark,
      // or every SSP-gated peer deadlocks on the corpse (the runtime has no
      // virtual-time budget to run out — see RuntimeConsistency).
      if (gate) gate->OnWorkerDown(w);
      if (scheduler) {
        // The mailbox closes only after all workers have joined, so a failed
        // send here means a shutdown-ordering bug — fail loudly, not by
        // silently losing a lifecycle event the scheduler depends on.
        SPECSYNC_CHECK(
            scheduler_mailbox.SendReliable(SchedulerMsg{WorkerDownMsg{w}}))
            << "worker " << w << ": scheduler mailbox closed before join";
      }
      if (!crash->rejoin.has_value()) {
        workers_killed.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      std::this_thread::sleep_until(clock.ToTimePoint(*crash->rejoin));
      faults.CountRejoin();
      if (gate) gate->OnWorkerUp(w);
      if (scheduler) {
        SPECSYNC_CHECK(
            scheduler_mailbox.SendReliable(SchedulerMsg{WorkerUpMsg{w}}))
            << "worker " << w << ": scheduler mailbox closed before join";
      }
      return false;  // in-flight work is discarded; re-pull and restart
    };

    for (IterationId iteration = 0; iteration < config.iterations_per_worker;
         ++iteration) {
      bool pushed = false;
      while (!pushed) {
        if (crash_due() && handle_crash()) return;
        if (gate) {
          // Block until the bound admits this iteration. Re-entry after an
          // abort or rejoin re-checks; admission is monotone in peers'
          // progress, so a re-check of an admitted iteration is cheap (DSSP
          // may have tightened the bound meanwhile, which legally re-blocks).
          const SimTime gate_begin = obs != nullptr ? clock.Now() : SimTime();
          if (!gate->WaitToStart(w, iteration)) return;  // shutdown
          if (obs != nullptr) {
            const SimTime gate_end = clock.Now();
            if (gate_end > gate_begin) {
              obs->spans.AddSpan("gated", "consistency", w, gate_begin,
                                 gate_end,
                                 {{"iteration", std::to_string(iteration)}});
            }
          }
          if (crash_due() && handle_crash()) return;  // crash fired mid-wait
        }
        obs::ScopedTimer iteration_timer(iteration_hist);
        // Shard pulls fan out across the shared pool (a real worker requests
        // every server concurrently and resumes when the slowest responds).
        const SimTime pull_begin = obs != nullptr ? clock.Now() : SimTime();
        PullResult snapshot = PullParams(w);
        if (obs != nullptr) {
          pull_counter->Increment();
          obs->spans.AddSpan("pull", "pull", w, pull_begin, clock.Now(),
                             {{"version", std::to_string(snapshot.version)}});
        }
        if (scheduler) {
          // Send() may drop/delay under fault injection but only returns
          // false on a closed mailbox, which cannot happen before join.
          SPECSYNC_CHECK(scheduler_mailbox.Send(SchedulerMsg{PullMsg{w}}))
              << "worker " << w << ": scheduler mailbox closed before join";
        }

        const SimTime compute_begin = obs != nullptr ? clock.Now() : SimTime();
        const std::vector<std::size_t> batch = sampler.NextBatch();
        std::vector<Gradient> chunks;
        bool aborted = false;
        bool crashed = false;
        for (std::size_t begin = 0; begin < batch.size();
             begin += chunk_size) {
          const std::size_t end = std::min(begin + chunk_size, batch.size());
          std::span<const std::size_t> chunk(batch.data() + begin,
                                             end - begin);
          Gradient grad;
          model->LossAndGradient(snapshot.params, chunk, grad);
          chunks.push_back(std::move(grad));
          if (config.chunk_delay.count() > 0) {
            // Injected slowdown stretches the artificial per-chunk delay.
            const double factor = faults.SlowdownFactor(w, clock.Now());
            if (factor != 1.0) {
              std::this_thread::sleep_for(
                  std::chrono::duration_cast<std::chrono::microseconds>(
                      config.chunk_delay * factor));
            } else {
              std::this_thread::sleep_for(config.chunk_delay);
            }
          }
          if (crash_due()) {
            crashed = true;
            break;
          }
          // Honor a re-sync aimed at this iteration (abort-and-refresh).
          std::int64_t expected = static_cast<std::int64_t>(iteration);
          if (abort_target[w].compare_exchange_strong(
                  expected, -1, std::memory_order_acq_rel)) {
            aborted = true;
            total_aborts.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
        if (crashed) {
          if (handle_crash()) return;
          continue;  // rejoined: discard the iteration and re-pull
        }
        if (aborted) {
          if (obs != nullptr) {
            abort_counter->Increment();
            obs->spans.AddSpan("aborted_compute", "abort", w, compute_begin,
                               clock.Now(),
                               {{"iteration", std::to_string(iteration)}});
          }
          continue;  // re-pull fresher parameters and start over
        }
        if (obs != nullptr) {
          obs->spans.AddSpan("compute", "compute", w, compute_begin,
                             clock.Now(),
                             {{"iteration", std::to_string(iteration)}});
        }

        const SimTime push_begin = obs != nullptr ? clock.Now() : SimTime();
        Gradient merged = MergeChunks(std::move(chunks));
        // Codec transform happens before BOTH the push and the gate's write
        // set below, so consistency tracking sees the gradient that actually
        // shipped (top-k may shrink the touched-shard set).
        if (codec) codec->Transform(w, merged);
        PushGradient(w, merged, GlobalEpoch());
        completed[w].fetch_add(1, std::memory_order_relaxed);
        if (gate) {
          // The push's write set is whatever shards its gradient routed to
          // (RouteGradient is a pure read of the static shard table).
          const auto routes = server->RouteGradient(merged);
          std::vector<std::size_t> touched;
          touched.reserve(routes.size());
          for (const ParameterServer::ShardRoute& route : routes) {
            touched.push_back(route.shard);
          }
          gate->OnPush(w, iteration, clock.Now(), touched);
        }
        if (obs != nullptr) {
          push_counter->Increment();
          obs->spans.AddSpan("push", "push", w, push_begin, clock.Now(),
                             {{"iteration", std::to_string(iteration)}});
          obs->spans.AddInstant("notify", "control", w, clock.Now(),
                                {{"iteration", std::to_string(iteration)}});
        }
        if (scheduler) {
          SPECSYNC_CHECK(
              scheduler_mailbox.Send(SchedulerMsg{NotifyMsg{w, iteration}}))
              << "worker " << w << ": scheduler mailbox closed before join";
        }
        pushed = true;
      }
    }
  }

  RuntimeResult Run() {
    const auto start = std::chrono::steady_clock::now();
    auto shards = ShardIndices(model->dataset_size(), config.num_workers);

    std::jthread scheduler_thread;
    if (scheduler) {
      scheduler_thread = std::jthread([this] { SchedulerLoop(); });
    }
    {
      std::vector<std::jthread> workers;
      workers.reserve(config.num_workers);
      for (WorkerId w = 0; w < config.num_workers; ++w) {
        workers.emplace_back(
            [this, w, shard = std::move(shards[w])]() mutable {
              WorkerLoop(w, std::move(shard));
            });
      }
    }  // join workers
    scheduler_mailbox.Close();
    if (scheduler_thread.joinable()) scheduler_thread.join();
    // Quiesce the wire before reading results: no in-flight push may race
    // the final snapshot. Clients disconnect first so the server's handler
    // threads see clean EOFs rather than resets.
    shard_clients.clear();
    if (shard_server) shard_server->Stop();

    RuntimeResult result;
    result.final_weights = server->Snapshot();
    if (config.final_eval) {
      result.final_loss =
          model->FullLoss(result.final_weights, config.final_eval_samples);
    }
    result.total_pushes = server->version();
    result.total_aborts = total_aborts.load(std::memory_order_relaxed);
    result.scheduler_stats = final_stats;
    result.fault_stats = faults.stats();
    result.workers_killed = workers_killed.load(std::memory_order_relaxed);
    if (gate) {
      result.consistency_blocks = gate->blocks();
      result.consistency_blocked_s = gate->blocked_wall_seconds();
      // Workers have joined: the controller is quiescent and safe to read.
      if (runtime_dssp) result.consistency_retunes = runtime_dssp->retunes();
      result.final_staleness = runtime_pssp->staleness();
    }
    result.elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    if (obs != nullptr) {
      obs->metrics.gauge("runtime.elapsed_s")
          .Set(static_cast<double>(result.elapsed.count()) / 1000.0);
      obs->metrics.gauge("runtime.total_pushes")
          .Set(static_cast<double>(result.total_pushes));
      obs->metrics.gauge("runtime.total_aborts")
          .Set(static_cast<double>(result.total_aborts));
      obs->metrics.gauge("runtime.final_loss").Set(result.final_loss);
      if (gate) {
        obs->metrics.gauge("runtime.consistency_blocks")
            .Set(static_cast<double>(result.consistency_blocks));
        obs->metrics.gauge("runtime.consistency_blocked_s")
            .Set(result.consistency_blocked_s);
        obs->metrics.gauge("runtime.consistency_final_staleness")
            .Set(static_cast<double>(result.final_staleness));
      }
    }
    return result;
  }
};

RuntimeCluster::RuntimeCluster(
    std::shared_ptr<const Model> model,
    std::shared_ptr<const LearningRateSchedule> schedule, RuntimeConfig config)
    : impl_(std::make_unique<Impl>(std::move(model), std::move(schedule),
                                   std::move(config))) {}

RuntimeCluster::~RuntimeCluster() = default;

RuntimeResult RuntimeCluster::Run() { return impl_->Run(); }

}  // namespace specsync
