// Fault-injecting mailbox: Mailbox's contract with a FaultPlan in the wire.
//
// Same interface as Mailbox<T> (Send / Receive / ReceiveUntil / TryReceive /
// Close), but each Send consults the plan's control-link decision: dropped
// messages are swallowed, duplicated messages are enqueued twice, and delayed
// messages become visible to receivers only after their extra delay elapses.
// With a null or inert plan every message is ready immediately and (ready,
// seq) ordering degenerates to FIFO — behaviorally identical to Mailbox.
//
// Close() releases all blocked receivers and makes still-delayed messages
// deliverable immediately (the shutdown path must drain, not wait out,
// injected latency).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <queue>
#include <tuple>
#include <utility>
#include <vector>

#include "fault/fault_plan.h"
#include "runtime/mailbox.h"  // MailboxPoll

namespace specsync {

template <typename T>
class FaultMailbox {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  // `plan` may be null (no fault injection); if non-null it must outlive the
  // mailbox. All sends are treated as traffic on `link`.
  explicit FaultMailbox(FaultPlan* plan = nullptr,
                        LinkClass link = LinkClass::kControl)
      : plan_(plan), link_(link) {}

  FaultMailbox(const FaultMailbox&) = delete;
  FaultMailbox& operator=(const FaultMailbox&) = delete;

  // Enqueues a message subject to fault injection; returns false if the
  // mailbox is closed. A dropped message still returns true — the sender
  // cannot tell a swallowed message from a delivered one.
  bool Send(T message) {
    FaultDecision decision;
    if (plan_ != nullptr && plan_->enabled()) {
      decision = plan_->OnMessage(link_);
    }
    return Enqueue(std::move(message), decision);
  }

  // Enqueues bypassing fault injection. For lifecycle/control-plane events
  // (worker down/up) modeled as reliable failure detection, not as messages
  // on the lossy link.
  bool SendReliable(T message) { return Enqueue(std::move(message), {}); }

  // Blocks until a ready message arrives or the mailbox closes; nullopt on
  // close with an empty queue.
  std::optional<T> Receive() { return ReceiveUntil(TimePoint::max()); }

  // As Receive(), but also returns nullopt once `deadline` passes.
  std::optional<T> ReceiveUntil(TimePoint deadline) {
    std::unique_lock lock(mutex_);
    for (;;) {
      const TimePoint now = std::chrono::steady_clock::now();
      if (!queue_.empty() && (closed_ || queue_.top().ready <= now)) {
        return PopLocked();
      }
      if (closed_ && queue_.empty()) return std::nullopt;
      if (now >= deadline) return std::nullopt;
      TimePoint wake = deadline;
      if (!queue_.empty() && queue_.top().ready < wake) {
        wake = queue_.top().ready;
      }
      if (wake == TimePoint::max()) {
        available_.wait(lock);
      } else {
        available_.wait_until(lock, wake);
      }
    }
  }

  // Non-blocking receive of an already-ready message. nullopt conflates
  // "nothing ready" and "closed"; see the status overload / drained().
  std::optional<T> TryReceive() {
    std::scoped_lock lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    if (!closed_ && queue_.top().ready > std::chrono::steady_clock::now()) {
      return std::nullopt;
    }
    return PopLocked();
  }

  // Non-blocking receive with a drain-aware status. kEmpty covers both a
  // truly empty open mailbox and one holding only delay-injected messages
  // whose extra latency has not yet elapsed.
  MailboxPoll TryReceive(T& out) {
    std::scoped_lock lock(mutex_);
    if (queue_.empty()) {
      return closed_ ? MailboxPoll::kDrained : MailboxPoll::kEmpty;
    }
    if (!closed_ && queue_.top().ready > std::chrono::steady_clock::now()) {
      return MailboxPoll::kEmpty;
    }
    out = *PopLocked();
    return MailboxPoll::kMessage;
  }

  // Closed with nothing left to deliver (delayed messages become deliverable
  // on close, so closed + empty queue really is the end of the stream).
  bool drained() const {
    std::scoped_lock lock(mutex_);
    return closed_ && queue_.empty();
  }

  void Close() {
    {
      std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    available_.notify_all();
  }

  bool closed() const {
    std::scoped_lock lock(mutex_);
    return closed_;
  }

  // Messages in flight, including ones whose delay has not yet elapsed.
  std::size_t size() const {
    std::scoped_lock lock(mutex_);
    return queue_.size();
  }

 private:
  struct Entry {
    TimePoint ready;
    std::uint64_t seq;
    T message;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return std::tie(a.ready, a.seq) > std::tie(b.ready, b.seq);
    }
  };

  bool Enqueue(T message, const FaultDecision& decision) {
    {
      std::scoped_lock lock(mutex_);
      if (closed_) return false;
      if (decision.drop) return true;
      const TimePoint ready =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(decision.extra_delay.seconds()));
      if (decision.duplicate) queue_.push(Entry{ready, next_seq_++, message});
      queue_.push(Entry{ready, next_seq_++, std::move(message)});
    }
    // A new front entry may move a receiver's wake-up earlier; duplicates
    // can satisfy two receivers at once.
    available_.notify_all();
    return true;
  }

  // Requires mutex_ held and queue_ non-empty.
  std::optional<T> PopLocked() {
    T message = std::move(const_cast<Entry&>(queue_.top()).message);
    queue_.pop();
    return message;
  }

  FaultPlan* plan_;
  LinkClass link_;
  mutable std::mutex mutex_;
  std::condition_variable available_;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::uint64_t next_seq_ = 0;
  bool closed_ = false;
};

}  // namespace specsync
