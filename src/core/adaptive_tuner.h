// SpecSync-Adaptive hyperparameter tuning (paper Sec. IV-B, Algorithm 1).
//
// At each epoch boundary the tuner replays the finished epoch's push history:
//  - gain estimate  ũ_i(Δ) = pushes by others in (last_pull_i, last_pull_i+Δ]
//    (Eq. 5: "refer back to the previous epoch"),
//  - loss estimate  l̃_i(Δ) = (m-1)·Δ/T_i, assuming uniform pull arrivals
//    (Eq. 6),
//  - objective      F̃(Δ)  = Σ_i [ũ_i(Δ) − l̃_i(Δ)] (Eq. 7).
// ũ_i is a step function of Δ and l̃_i is linear, so F̃ is maximized where a
// speculation window right-aligns with some push: it suffices to enumerate the
// O(m²) pairwise push-time differences as candidate Δ and take the best
// (Algorithm 1, overall O(m³)).
//
// ABORT_RATE is then set so a restart is triggered only when the observed
// gain covers the estimated loss: Γ = Δ*(m−1)/(T·m) with T the mean iteration
// span (Algorithm 1 line 7), or per-worker Γ_i = l̃_i(Δ*)/m when
// per_worker_rate is enabled.
#pragma once

#include "core/speculation.h"

namespace specsync {

struct AdaptiveTunerConfig {
  // Upper bound on candidate Δ (guards against pathological epochs where a
  // huge pairwise difference would stall workers); expressed as a multiple of
  // the mean iteration span. The paper's cherry-pick search uses half the
  // batch time as its upper bound — we default to a full span for headroom.
  double max_delta_spans = 1.0;
  // Emit per-worker thresholds Γ_i instead of the pooled Algorithm-1 rate.
  bool per_worker_rate = false;
  // Cap on candidate Δ values actually evaluated (keeps retuning cheap when
  // an epoch saw an unusually large number of pushes). 0 = unlimited.
  std::size_t max_candidates = 4096;
  // Weight on the freshness-loss term of Eq. 7. 1.0 is the paper's objective.
  // Under uniform arrivals gain and loss cancel to first order, so the
  // argmax is noise-driven and lands on tiny Δ; a weight < 1 biases the
  // tuner toward windows wide enough to catch real bursts (see the
  // bench_ablation_tuner study).
  double loss_weight = 1.0;
};

class AdaptiveTuner final : public SpeculationPolicy {
 public:
  explicit AdaptiveTuner(AdaptiveTunerConfig config = {});

  std::string name() const override { return "adaptive"; }
  SpeculationParams OnEpochEnd(const TuningInputs& inputs) override;

  // Eq. 7 for a specific Δ — exposed for tests and the ablation bench.
  // `loss_weight` scales the l̃ term (1.0 = the paper's objective).
  static double EstimateImprovement(const TuningInputs& inputs, Duration delta,
                                    double loss_weight = 1.0);

  // The candidate set Algorithm 1 enumerates (positive pairwise differences,
  // deduplicated, capped at max_delta). Exposed for tests/ablation.
  static std::vector<Duration> CandidateDeltas(const TuningInputs& inputs,
                                               Duration max_delta,
                                               std::size_t max_candidates);

 private:
  AdaptiveTunerConfig config_;
};

// Mean of the per-worker iteration spans.
Duration MeanSpan(const TuningInputs& inputs);

}  // namespace specsync
