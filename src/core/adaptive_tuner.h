// SpecSync-Adaptive hyperparameter tuning (paper Sec. IV-B, Algorithm 1).
//
// At each epoch boundary the tuner replays the finished epoch's push history:
//  - gain estimate  ũ_i(Δ) = pushes by others in (last_pull_i, last_pull_i+Δ]
//    (Eq. 5: "refer back to the previous epoch"),
//  - loss estimate  l̃_i(Δ) = (m-1)·Δ/T_i, assuming uniform pull arrivals
//    (Eq. 6),
//  - objective      F̃(Δ)  = Σ_i [ũ_i(Δ) − l̃_i(Δ)] (Eq. 7).
// ũ_i is a step function of Δ and l̃_i is linear, so F̃ is maximized where a
// speculation window right-aligns with some push: it suffices to enumerate the
// O(m²) pairwise push-time differences as candidate Δ and take the best
// (Algorithm 1, overall O(m³)).
//
// Two replay engines produce that argmax:
//  - the full replay (incremental = false): the literal Algorithm-1 loop,
//    EstimateImprovement() per candidate — O(C·W·P). Retained as the
//    executable specification.
//  - the incremental replay (default): one pass per worker that buckets each
//    push event into the first candidate window covering it (binary search
//    over the sorted thresholds pull_i + Δ_c) and turns the buckets into
//    per-candidate gains by prefix sum, plus a saturation prune that drops
//    candidates provably never selected — O(W·(P·log C + C)).
// The engines are bit-identical by construction (DESIGN.md §12 states the
// invariant; tests/core/tuner_equivalence_test.cc enforces it): the
// incremental sweep accumulates per-candidate values worker-by-worker with
// the exact same floating-point expressions and summation order as the
// reference, so the per-epoch ABORT_TIME sequence and every audit retune
// record match to the bit.
//
// ABORT_RATE is then set so a restart is triggered only when the observed
// gain covers the estimated loss: Γ = Δ*(m−1)/(T·m) with T the mean iteration
// span (Algorithm 1 line 7), or per-worker Γ_i = l̃_i(Δ*)/m when
// per_worker_rate is enabled.
#pragma once

#include <cstdint>
#include <vector>

#include "core/speculation.h"

namespace specsync {

struct AdaptiveTunerConfig {
  // Upper bound on candidate Δ (guards against pathological epochs where a
  // huge pairwise difference would stall workers); expressed as a multiple of
  // the mean iteration span. The paper's cherry-pick search uses half the
  // batch time as its upper bound — we default to a full span for headroom.
  double max_delta_spans = 1.0;
  // Emit per-worker thresholds Γ_i instead of the pooled Algorithm-1 rate.
  bool per_worker_rate = false;
  // Cap on candidate Δ values actually evaluated (keeps retuning cheap when
  // an epoch saw an unusually large number of pushes). 0 = unlimited.
  std::size_t max_candidates = 4096;
  // Weight on the freshness-loss term of Eq. 7. 1.0 is the paper's objective.
  // Under uniform arrivals gain and loss cancel to first order, so the
  // argmax is noise-driven and lands on tiny Δ; a weight < 1 biases the
  // tuner toward windows wide enough to catch real bursts (see the
  // bench_ablation_tuner study).
  double loss_weight = 1.0;
  // Replay engine (see the header note). false = the retained full replay;
  // never changes a decision, only the per-epoch wall time.
  bool incremental = true;
};

class AdaptiveTuner final : public SpeculationPolicy {
 public:
  explicit AdaptiveTuner(AdaptiveTunerConfig config = {});

  std::string name() const override { return "adaptive"; }
  SpeculationParams OnEpochEnd(const TuningInputs& inputs) override;

  // Eq. 7 for a specific Δ — exposed for tests and the ablation bench. This
  // is the reference evaluation the incremental sweep must match bitwise.
  // `loss_weight` scales the l̃ term (1.0 = the paper's objective).
  static double EstimateImprovement(const TuningInputs& inputs, Duration delta,
                                    double loss_weight = 1.0);

  // The candidate set Algorithm 1 enumerates (positive pairwise differences,
  // deduplicated, capped at max_delta). Exposed for tests/ablation.
  static std::vector<Duration> CandidateDeltas(const TuningInputs& inputs,
                                               Duration max_delta,
                                               std::size_t max_candidates);

  // F̃ for every candidate via the incremental sweep; element c equals
  // EstimateImprovement(inputs, candidates[c], loss_weight) to the bit.
  // `candidates` must be sorted ascending (CandidateDeltas output is).
  // Exposed for the equivalence battery; the member path reuses scratch.
  static std::vector<double> EvaluateCandidates(
      const TuningInputs& inputs, const std::vector<Duration>& candidates,
      double loss_weight);

  // First candidate index at which every pulled worker's window
  // (last_pull_i, last_pull_i + Δ_c] already covers the epoch's last push.
  // Beyond it gains are constant and losses non-decreasing, so the
  // first-maximum argmax can never select a later candidate — candidates
  // after this index are dominated and safely pruned. Returns
  // candidates.size() - 1 when no such index exists (prune disabled).
  // Exposed so the planted-bug test can demonstrate a wrong prune is caught.
  static std::size_t SaturationIndex(const TuningInputs& inputs,
                                     const std::vector<Duration>& candidates);

 private:
  // Incremental engine behind EvaluateCandidates, writing into reusable
  // scratch buffers. Evaluates candidates [0, eval_count).
  static void EvaluateCandidatesInto(const TuningInputs& inputs,
                                     const std::vector<Duration>& candidates,
                                     double loss_weight,
                                     std::size_t eval_count,
                                     std::vector<double>& values,
                                     std::vector<double>& thresholds,
                                     std::vector<std::uint32_t>& buckets);

  AdaptiveTunerConfig config_;
  // Scratch reused across epochs (OnEpochEnd runs once per epoch per run);
  // capacity persists, so steady-state retunes allocate nothing.
  std::vector<double> values_;
  std::vector<double> thresholds_;
  std::vector<std::uint32_t> buckets_;
};

// Mean of the per-worker iteration spans.
Duration MeanSpan(const TuningInputs& inputs);

}  // namespace specsync
