#include "core/scheduler.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/logging.h"
#include "obs/obs.h"

namespace specsync {

SpecSyncScheduler::SpecSyncScheduler(SchedulerConfig config,
                                     std::unique_ptr<SpeculationPolicy> policy)
    : config_(std::move(config)),
      policy_(std::move(policy)),
      params_(config_.initial_params),
      history_(config_.num_workers),
      pushes_this_epoch_(config_.num_workers, 0),
      spans_(config_.num_workers, config_.default_span),
      last_push_time_(config_.num_workers, SimTime::Zero()),
      has_pushed_(config_.num_workers, false),
      active_(config_.num_workers, true),
      pending_(config_.num_workers) {
  SPECSYNC_CHECK_GT(config_.num_workers, 0u);
  SPECSYNC_CHECK(policy_ != nullptr);
  SPECSYNC_CHECK(config_.span_ewma_alpha > 0.0 &&
                 config_.span_ewma_alpha <= 1.0);
  SPECSYNC_CHECK_GT(config_.default_span.seconds(), 0.0);
  SPECSYNC_CHECK_GE(config_.late_check_slack.seconds(), 0.0);
}

void SpecSyncScheduler::AttachObservability(obs::ObsContext* obs,
                                            std::uint32_t span_track) {
  obs_ = obs;
  obs_track_ = span_track;
  if (obs_ == nullptr) {
    notify_counter_ = duplicate_counter_ = check_counter_ = stale_counter_ =
        resync_counter_ = retune_counter_ = nullptr;
    return;
  }
  notify_counter_ = &obs_->metrics.counter("scheduler.notifies");
  duplicate_counter_ = &obs_->metrics.counter("scheduler.duplicate_notifies");
  check_counter_ = &obs_->metrics.counter("scheduler.checks");
  stale_counter_ = &obs_->metrics.counter("scheduler.stale_checks");
  resync_counter_ = &obs_->metrics.counter("scheduler.resyncs");
  retune_counter_ = &obs_->metrics.counter("scheduler.retunes");
}

std::optional<SpecSyncScheduler::CheckRequest> SpecSyncScheduler::HandleNotify(
    WorkerId worker, IterationId iteration, SimTime now) {
  SPECSYNC_CHECK_LT(worker, config_.num_workers);
  ++stats_.notifies_received;
  if (notify_counter_ != nullptr) notify_counter_->Increment();

  // Faulty links may replay or reorder notifies. Each worker's iterations
  // are monotone, so anything at or below its highest recorded iteration is
  // a duplicate: ignore it without touching the ledger, the span estimate,
  // or the pending speculation window.
  const std::optional<IterationId> last = history_.LastIteration(worker);
  if (last.has_value() && iteration <= *last) {
    ++stats_.duplicate_notifies;
    if (duplicate_counter_ != nullptr) duplicate_counter_->Increment();
    return std::nullopt;
  }
  history_.RecordPush(worker, iteration, now);

  // Update the iteration-span estimate from the gap between this worker's
  // consecutive pushes.
  if (has_pushed_[worker]) {
    const Duration gap = now - last_push_time_[worker];
    if (gap > Duration::Zero()) {
      const double alpha = config_.span_ewma_alpha;
      spans_[worker] = spans_[worker] * (1.0 - alpha) + gap * alpha;
    }
  }
  has_pushed_[worker] = true;
  last_push_time_[worker] = now;
  ++pushes_this_epoch_[worker];

  MaybeFinishEpoch(now);

  if (!params_.enabled() || !active_[worker]) {
    pending_[worker].active = false;
    return std::nullopt;
  }
  // Kick off the speculation window for this worker's *next* iteration
  // (which it starts immediately after this push, per ASP).
  PendingCheck& check = pending_[worker];
  check.token = next_token_++;
  check.window_begin = now;
  check.deadline = now + params_.abort_time;
  check.active = true;
  return CheckRequest{check.token, params_.abort_time};
}

void SpecSyncScheduler::HandlePull(WorkerId worker, SimTime now) {
  SPECSYNC_CHECK_LT(worker, config_.num_workers);
  history_.RecordPull(worker, now);
}

bool SpecSyncScheduler::HandleCheckTimer(WorkerId worker, std::uint64_t token,
                                         SimTime now) {
  SPECSYNC_CHECK_LT(worker, config_.num_workers);
  PendingCheck& check = pending_[worker];
  if (!check.active || check.token != token) {
    // The worker has since pushed again (window superseded) or speculation
    // was disabled — "too late" (Sec. IV-A).
    ++stats_.stale_checks_skipped;
    if (obs_ != nullptr) {
      stale_counter_->Increment();
      obs::CheckRecord rec;
      rec.worker = worker;
      rec.token = token;
      rec.fired_at = now;
      rec.outcome = obs::CheckOutcome::kStale;
      obs_->audit.RecordCheck(rec);
    }
    return false;
  }
  check.active = false;
  ++stats_.checks_performed;

  // Count pushes from others within the speculation window (Algorithm 2,
  // CheckResync). Under exact timers `now` equals the armed deadline; a
  // delayed timer (jittery wall clock, fault-injected control link) is
  // clamped back to the deadline so pushes landing after the intended
  // window can never trigger a re-sync for a stale window.
  bool late = false;
  SimTime window_end = now;
  if (now > check.deadline) {
    window_end = check.deadline;
    if (now - check.deadline > config_.late_check_slack) {
      ++stats_.late_checks;
      late = true;
    }
  }
  const std::size_t active_workers = ActiveWorkerCount();
  const double abort_rate = params_.RateFor(worker);
  const std::size_t count =
      history_.CountPushesInWindow(check.window_begin, window_end, worker);
  const double threshold = static_cast<double>(active_workers) * abort_rate;
  const bool resync = static_cast<double>(count) >= threshold;
  if (resync) ++stats_.resyncs_issued;

  if (obs_ != nullptr) {
    check_counter_->Increment();
    if (resync) resync_counter_->Increment();
    obs::CheckRecord rec;
    rec.worker = worker;
    rec.token = token;
    rec.fired_at = now;
    rec.outcome =
        resync ? obs::CheckOutcome::kResync : obs::CheckOutcome::kKeep;
    rec.window_begin = check.window_begin;
    rec.window_end = window_end;
    rec.armed_deadline = check.deadline;
    rec.pushes_seen = count;
    rec.abort_time = check.deadline - check.window_begin;
    rec.abort_rate = abort_rate;
    rec.threshold = threshold;
    rec.active_workers = active_workers;
    rec.late = late;
    obs_->audit.RecordCheck(rec);
    if (resync) {
      obs_->spans.AddInstant(
          "resync_decision", "scheduler", obs_track_, now,
          {{"worker", std::to_string(worker)},
           {"pushes_seen", std::to_string(count)},
           {"threshold", std::to_string(threshold)}});
    }
  }
  return resync;
}

void SpecSyncScheduler::OnWorkerDown(WorkerId worker, SimTime now) {
  SPECSYNC_CHECK_LT(worker, config_.num_workers);
  if (!active_[worker]) return;
  active_[worker] = false;
  pending_[worker].active = false;
  ++stats_.worker_departures;
  // If this worker was the last epoch holdout, finish the epoch now instead
  // of deadlocking on a push that will never come.
  MaybeFinishEpoch(now);
}

void SpecSyncScheduler::OnWorkerUp(WorkerId worker, SimTime now) {
  SPECSYNC_CHECK_LT(worker, config_.num_workers);
  (void)now;
  if (active_[worker]) return;
  active_[worker] = true;
  ++stats_.worker_rejoins;
  // Reset the span anchor: the next push gap would otherwise fold the whole
  // dead period into the EWMA.
  has_pushed_[worker] = false;
}

std::size_t SpecSyncScheduler::ActiveWorkerCount() const {
  return static_cast<std::size_t>(
      std::count(active_.begin(), active_.end(), true));
}

void SpecSyncScheduler::MaybeFinishEpoch(SimTime now) {
  // An epoch ends once every *active* worker has pushed since it began.
  // Departed workers that never pushed this epoch are excused; departed
  // workers that did push still contribute their update.
  bool any_active = false;
  bool all_pushed = true;
  bool excused = false;
  for (WorkerId w = 0; w < config_.num_workers; ++w) {
    if (active_[w]) {
      any_active = true;
      if (pushes_this_epoch_[w] == 0) all_pushed = false;
    } else if (pushes_this_epoch_[w] == 0) {
      excused = true;
    }
  }
  if (!any_active || !all_pushed) return;
  if (excused) ++stats_.lost_worker_epochs_unblocked;

  TuningInputs inputs = BuildTuningInputs(now);
  params_ = policy_->OnEpochEnd(inputs);
  ++stats_.retunes;
  SPECSYNC_LOG(kDebug) << "epoch " << epoch_ << " finished at " << now
                       << "; retuned abort_time=" << params_.abort_time
                       << " abort_rate=" << params_.abort_rate;
  if (obs_ != nullptr) {
    retune_counter_->Increment();
    obs::RetuneRecord rec;
    rec.epoch = epoch_;
    rec.at = now;
    rec.abort_time = params_.abort_time;
    rec.abort_rate = params_.abort_rate;
    rec.epoch_pushes = inputs.pushes.size();
    obs_->audit.RecordRetune(rec);
    obs_->spans.AddInstant(
        "retune", "scheduler", obs_track_, now,
        {{"epoch", std::to_string(epoch_)},
         {"abort_time_s", std::to_string(params_.abort_time.seconds())},
         {"abort_rate", std::to_string(params_.abort_rate)}});
  }

  ++epoch_;
  epoch_begin_ = now;
  std::fill(pushes_this_epoch_.begin(), pushes_this_epoch_.end(), 0u);

  // Bound ledger growth: keep a generous multiple of the slowest worker.
  const Duration max_span =
      *std::max_element(spans_.begin(), spans_.end());
  history_.Trim(now, max_span * config_.history_horizon_spans);
}

TuningInputs SpecSyncScheduler::BuildTuningInputs(SimTime epoch_end) const {
  TuningInputs inputs;
  inputs.num_workers = config_.num_workers;
  inputs.finished_epoch = epoch_;
  inputs.epoch_begin = epoch_begin_;
  inputs.epoch_end = epoch_end;
  for (const PushRecord& rec :
       history_.PushesInWindow(epoch_begin_, epoch_end)) {
    inputs.pushes.emplace_back(rec.time, rec.worker);
  }
  inputs.last_pull.resize(config_.num_workers);
  for (WorkerId w = 0; w < config_.num_workers; ++w) {
    inputs.last_pull[w] = history_.LastPullBefore(w, epoch_end);
  }
  inputs.iteration_span = spans_;
  return inputs;
}

}  // namespace specsync
