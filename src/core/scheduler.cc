#include "core/scheduler.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/logging.h"

namespace specsync {

SpecSyncScheduler::SpecSyncScheduler(SchedulerConfig config,
                                     std::unique_ptr<SpeculationPolicy> policy)
    : config_(std::move(config)),
      policy_(std::move(policy)),
      params_(config_.initial_params),
      history_(config_.num_workers),
      pushes_this_epoch_(config_.num_workers, 0),
      spans_(config_.num_workers, config_.default_span),
      last_push_time_(config_.num_workers, SimTime::Zero()),
      has_pushed_(config_.num_workers, false),
      pending_(config_.num_workers) {
  SPECSYNC_CHECK_GT(config_.num_workers, 0u);
  SPECSYNC_CHECK(policy_ != nullptr);
  SPECSYNC_CHECK(config_.span_ewma_alpha > 0.0 &&
                 config_.span_ewma_alpha <= 1.0);
  SPECSYNC_CHECK_GT(config_.default_span.seconds(), 0.0);
}

std::optional<SpecSyncScheduler::CheckRequest> SpecSyncScheduler::HandleNotify(
    WorkerId worker, IterationId iteration, SimTime now) {
  SPECSYNC_CHECK_LT(worker, config_.num_workers);
  ++stats_.notifies_received;
  history_.RecordPush(worker, iteration, now);

  // Update the iteration-span estimate from the gap between this worker's
  // consecutive pushes.
  if (has_pushed_[worker]) {
    const Duration gap = now - last_push_time_[worker];
    if (gap > Duration::Zero()) {
      const double alpha = config_.span_ewma_alpha;
      spans_[worker] = spans_[worker] * (1.0 - alpha) + gap * alpha;
    }
  }
  has_pushed_[worker] = true;
  last_push_time_[worker] = now;
  ++pushes_this_epoch_[worker];

  MaybeFinishEpoch(now);

  if (!params_.enabled()) {
    pending_[worker].active = false;
    return std::nullopt;
  }
  // Kick off the speculation window for this worker's *next* iteration
  // (which it starts immediately after this push, per ASP).
  PendingCheck& check = pending_[worker];
  check.token = next_token_++;
  check.window_begin = now;
  check.active = true;
  return CheckRequest{check.token, params_.abort_time};
}

void SpecSyncScheduler::HandlePull(WorkerId worker, SimTime now) {
  SPECSYNC_CHECK_LT(worker, config_.num_workers);
  history_.RecordPull(worker, now);
}

bool SpecSyncScheduler::HandleCheckTimer(WorkerId worker, std::uint64_t token,
                                         SimTime now) {
  SPECSYNC_CHECK_LT(worker, config_.num_workers);
  PendingCheck& check = pending_[worker];
  if (!check.active || check.token != token) {
    // The worker has since pushed again (window superseded) or speculation
    // was disabled — "too late" (Sec. IV-A).
    ++stats_.stale_checks_skipped;
    return false;
  }
  check.active = false;
  ++stats_.checks_performed;

  // Count pushes from others within the speculation window (Algorithm 2,
  // CheckResync). `now` is window_begin + ABORT_TIME under exact timers; we
  // count up to `now` so drivers with jittery timers still see a full window.
  const std::size_t count =
      history_.CountPushesInWindow(check.window_begin, now, worker);
  const double threshold =
      static_cast<double>(config_.num_workers) * params_.RateFor(worker);
  if (static_cast<double>(count) >= threshold) {
    ++stats_.resyncs_issued;
    return true;
  }
  return false;
}

void SpecSyncScheduler::MaybeFinishEpoch(SimTime now) {
  const bool all_pushed =
      std::all_of(pushes_this_epoch_.begin(), pushes_this_epoch_.end(),
                  [](std::uint64_t c) { return c > 0; });
  if (!all_pushed) return;

  TuningInputs inputs = BuildTuningInputs(now);
  params_ = policy_->OnEpochEnd(inputs);
  ++stats_.retunes;
  SPECSYNC_LOG(kDebug) << "epoch " << epoch_ << " finished at " << now
                       << "; retuned abort_time=" << params_.abort_time
                       << " abort_rate=" << params_.abort_rate;

  ++epoch_;
  epoch_begin_ = now;
  std::fill(pushes_this_epoch_.begin(), pushes_this_epoch_.end(), 0u);

  // Bound ledger growth: keep a generous multiple of the slowest worker.
  const Duration max_span =
      *std::max_element(spans_.begin(), spans_.end());
  history_.Trim(now, max_span * config_.history_horizon_spans);
}

TuningInputs SpecSyncScheduler::BuildTuningInputs(SimTime epoch_end) const {
  TuningInputs inputs;
  inputs.num_workers = config_.num_workers;
  inputs.finished_epoch = epoch_;
  inputs.epoch_begin = epoch_begin_;
  inputs.epoch_end = epoch_end;
  for (const PushRecord& rec :
       history_.PushesInWindow(epoch_begin_, epoch_end)) {
    inputs.pushes.emplace_back(rec.time, rec.worker);
  }
  inputs.last_pull.resize(config_.num_workers);
  for (WorkerId w = 0; w < config_.num_workers; ++w) {
    inputs.last_pull[w] = history_.LastPullBefore(w, epoch_end);
  }
  inputs.iteration_span = spans_;
  return inputs;
}

}  // namespace specsync
