// The centralized SpecSync scheduler (paper Sec. V, Algorithm 2).
//
// Engine-agnostic: the scheduler holds no timers and sends no messages. The
// driver (discrete-event simulator actor or threaded runtime node) feeds it
// notify/pull events with timestamps and asks it two questions:
//   HandleNotify  -> "schedule a speculation check this far in the future"
//   HandleCheckTimer -> "should this worker re-synchronize now?"
// so the identical protocol logic runs under virtual and real time.
//
// The scheduler also owns epoch bookkeeping: an epoch ends once every worker
// has pushed at least once since it began (paper Sec. II-B), at which point
// the SpeculationPolicy retunes ABORT_TIME / ABORT_RATE from the finished
// epoch's push history.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/push_history.h"
#include "core/speculation.h"

namespace specsync {

namespace obs {
struct ObsContext;
class Counter;
}  // namespace obs

struct SchedulerConfig {
  std::size_t num_workers = 0;
  // Parameters in force before the first epoch finishes (no history yet).
  SpeculationParams initial_params;
  // EWMA smoothing for per-worker iteration-span estimates across epochs
  // (1.0 = use only the latest epoch's measurement).
  double span_ewma_alpha = 0.5;
  // Fallback iteration span until a worker has two pushes.
  Duration default_span = Duration::Seconds(1.0);
  // History retention multiple (in units of the longest span estimate).
  double history_horizon_spans = 50.0;
  // A check timer firing later than its armed deadline plus this slack is
  // counted as late (drivers with slightly jittery wall-clock timers stay
  // under it; fault-injected delays exceed it). The counting window is
  // always clamped to the armed deadline regardless.
  Duration late_check_slack = Duration::Milliseconds(10.0);
};

struct SchedulerStats {
  std::uint64_t notifies_received = 0;
  std::uint64_t checks_performed = 0;
  std::uint64_t resyncs_issued = 0;
  std::uint64_t stale_checks_skipped = 0;
  std::uint64_t retunes = 0;
  // Fault tolerance: notifies recognized as replayed/reordered and ignored.
  std::uint64_t duplicate_notifies = 0;
  // Check timers that fired past their armed deadline (plus slack).
  std::uint64_t late_checks = 0;
  // Epochs that could finish only because departed workers were excused.
  std::uint64_t lost_worker_epochs_unblocked = 0;
  std::uint64_t worker_departures = 0;
  std::uint64_t worker_rejoins = 0;
};

class SpecSyncScheduler {
 public:
  SpecSyncScheduler(SchedulerConfig config,
                    std::unique_ptr<SpeculationPolicy> policy);

  // A speculation check the driver must schedule `delay` after `now`.
  struct CheckRequest {
    std::uint64_t token = 0;
    Duration delay = Duration::Zero();
  };

  // Attaches observability instruments (src/obs): every HandleCheckTimer call
  // appends one structured record to the context's DecisionAuditLog (the
  // recorded ABORT_TIME is the armed window length, i.e. what the decision
  // actually used), epoch retunes append RetuneRecords plus an instant event
  // on SpanRecorder track `span_track`, and protocol counters mirror
  // SchedulerStats into the MetricsRegistry. Null detaches. Attach before
  // driving events; the scheduler only ever records — observability on or
  // off never changes a decision.
  void AttachObservability(obs::ObsContext* obs, std::uint32_t span_track = 0);

  // Worker finished an iteration and pushed (Algorithm 2 HandleNotification).
  // Returns a check request when speculation is currently enabled.
  std::optional<CheckRequest> HandleNotify(WorkerId worker,
                                           IterationId iteration, SimTime now);

  // Worker pulled fresh parameters at `now` (start of an iteration). The
  // tuner replays these pull times when estimating ũ_i(Δ).
  void HandlePull(WorkerId worker, SimTime now);

  // A previously requested check timer fired (Algorithm 2 CheckResync).
  // Returns true when the worker should abort and re-synchronize.
  // Token-idempotent: replaying a token (duplicated timer message) or firing
  // a superseded one is a counted no-op. A timer firing past its armed
  // deadline has its counting window clamped to the deadline, so a late
  // check never issues a re-sync for pushes outside its intended window.
  bool HandleCheckTimer(WorkerId worker, std::uint64_t token, SimTime now);

  // Worker departure/rejoin (crash injection, node loss). A departed worker
  // stops being required for epoch completion — the epoch it would otherwise
  // deadlock is finished on the spot if it was the last holdout — and its
  // pending speculation window is cancelled. A rejoining worker must push
  // again before the current epoch can end, and its span EWMA anchor is
  // reset so the dead period is not folded into the estimate.
  void OnWorkerDown(WorkerId worker, SimTime now);
  void OnWorkerUp(WorkerId worker, SimTime now);

  const SpeculationParams& params() const { return params_; }
  EpochId epoch() const { return epoch_; }
  const SchedulerStats& stats() const { return stats_; }
  const PushHistory& history() const { return history_; }
  std::size_t num_workers() const { return config_.num_workers; }
  // Per-worker smoothed iteration spans (tests / diagnostics).
  const std::vector<Duration>& iteration_spans() const { return spans_; }
  // Per-worker membership (false after OnWorkerDown until OnWorkerUp).
  const std::vector<bool>& active_workers() const { return active_; }

 private:
  void MaybeFinishEpoch(SimTime now);
  TuningInputs BuildTuningInputs(SimTime epoch_end) const;
  std::size_t ActiveWorkerCount() const;

  SchedulerConfig config_;
  std::unique_ptr<SpeculationPolicy> policy_;
  SpeculationParams params_;
  PushHistory history_;
  SchedulerStats stats_;

  EpochId epoch_ = 0;
  SimTime epoch_begin_ = SimTime::Zero();
  std::vector<std::uint64_t> pushes_this_epoch_;
  std::vector<Duration> spans_;          // smoothed T_i
  std::vector<SimTime> last_push_time_;  // per worker
  std::vector<bool> has_pushed_;         // per worker, ever
  std::vector<bool> active_;             // per worker, membership

  // Speculation-window state per worker.
  struct PendingCheck {
    std::uint64_t token = 0;
    SimTime window_begin;
    SimTime deadline;  // window_begin + abort_time at arm time
    bool active = false;
  };
  std::vector<PendingCheck> pending_;
  std::uint64_t next_token_ = 1;

  // Observability (null = off). Counters are resolved once at attach so the
  // per-event cost is one branch plus a relaxed atomic increment.
  obs::ObsContext* obs_ = nullptr;
  std::uint32_t obs_track_ = 0;
  obs::Counter* notify_counter_ = nullptr;
  obs::Counter* duplicate_counter_ = nullptr;
  obs::Counter* check_counter_ = nullptr;
  obs::Counter* stale_counter_ = nullptr;
  obs::Counter* resync_counter_ = nullptr;
  obs::Counter* retune_counter_ = nullptr;
};

}  // namespace specsync
