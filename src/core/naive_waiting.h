// Naive waiting (paper Sec. III-B).
//
// The strawman SpecSync improves upon: every pull request is simply deferred
// by a fixed delay so the worker's snapshot includes pushes made during the
// wait. Beneficial for small delays, harmful past the sweet spot (Fig. 5) —
// which is exactly what motivates speculation. Modeled as a worker-side knob:
// the worker sleeps `delay` between finishing an iteration and pulling.
#pragma once

#include "common/sim_time.h"

namespace specsync {

struct NaiveWaitingConfig {
  Duration delay = Duration::Zero();
  bool enabled() const { return delay > Duration::Zero(); }
};

}  // namespace specsync
