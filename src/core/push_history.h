// Push/pull ledger maintained by the SpecSync scheduler.
//
// The scheduler is the only component with a global view of pushes (paper
// Sec. V-A: centralizing this information avoids all-to-all broadcast and
// per-worker storage redundancy). The ledger answers the two questions the
// protocol needs: "how many pushes landed in this window?" (the speculation
// check) and "what did last epoch's push/pull sequence look like?" (the
// adaptive tuner's replay).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"

namespace specsync {

struct PushRecord {
  SimTime time;
  WorkerId worker = kInvalidWorker;
  IterationId iteration = 0;
};

struct PullRecord {
  SimTime time;
  WorkerId worker = kInvalidWorker;
};

class PushHistory {
 public:
  explicit PushHistory(std::size_t num_workers);

  void RecordPush(WorkerId worker, IterationId iteration, SimTime time);
  void RecordPull(WorkerId worker, SimTime time);

  std::size_t num_workers() const { return num_workers_; }
  std::size_t push_count() const { return pushes_.size(); }
  std::span<const PushRecord> pushes() const { return pushes_; }

  // Pushes in the half-open window (begin, end], optionally excluding one
  // worker's own pushes (the speculator cannot benefit from its own update).
  std::size_t CountPushesInWindow(SimTime begin, SimTime end,
                                  WorkerId exclude = kInvalidWorker) const;

  // All pushes with time in (begin, end].
  std::vector<PushRecord> PushesInWindow(SimTime begin, SimTime end) const;

  // Most recent pull by `worker` at or before `time` (nullopt if none).
  std::optional<SimTime> LastPullBefore(WorkerId worker, SimTime time) const;

  // Most recent pull by `worker` overall.
  std::optional<SimTime> LastPull(WorkerId worker) const;

  // Highest iteration ever recorded for `worker` (nullopt before its first
  // push). Survives Trim — the scheduler uses it to recognize duplicated or
  // reordered notifies from faulty links.
  std::optional<IterationId> LastIteration(WorkerId worker) const;

  // Mean time between consecutive pushes of `worker` within (begin, end];
  // nullopt with fewer than two pushes in the window.
  std::optional<Duration> MeanIterationSpan(WorkerId worker, SimTime begin,
                                            SimTime end) const;

  // Drops records older than `horizon` before `now` (bounds memory over long
  // runs; the tuner only ever replays the previous epoch).
  void Trim(SimTime now, Duration horizon);

 private:
  std::size_t num_workers_;
  std::vector<PushRecord> pushes_;              // append-only, time-ordered
  std::vector<std::vector<SimTime>> pulls_;     // per worker, time-ordered
  // Highest iteration recorded per worker; not affected by Trim.
  std::vector<std::optional<IterationId>> last_iteration_;
};

}  // namespace specsync
