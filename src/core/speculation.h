// Speculation hyperparameters and the policy interface that tunes them.
//
// The paper's scheme is governed by two knobs (Sec. IV-A):
//  - ABORT_TIME: how long after an iteration starts the scheduler speculates,
//  - ABORT_RATE: the push-rate threshold (fraction of m) beyond which the
//    ongoing iteration is aborted and restarted on fresher parameters.
// A SpeculationPolicy recomputes them at every epoch boundary.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"

namespace specsync {

struct SpeculationParams {
  // Length of the speculation window; Zero() disables speculation.
  Duration abort_time = Duration::Zero();
  // Threshold as a fraction of the worker count m: abort when the number of
  // pushes observed in the window is >= m * abort_rate.
  double abort_rate = 0.0;
  // Optional per-worker thresholds (Sec. IV-B derives Γ_i = l̃_i(Δ*)/m per
  // worker; Algorithm 1 collapses them with the mean span). When non-empty,
  // entry i overrides abort_rate for worker i.
  std::vector<double> per_worker_rate;

  bool enabled() const { return abort_time > Duration::Zero(); }

  double RateFor(WorkerId worker) const {
    if (worker < per_worker_rate.size()) return per_worker_rate[worker];
    return abort_rate;
  }
};

// Everything a policy may look at when retuning at an epoch boundary —
// assembled by the scheduler from its PushHistory.
struct TuningInputs {
  std::size_t num_workers = 0;
  EpochId finished_epoch = 0;
  // Time window covered by the finished epoch.
  SimTime epoch_begin;
  SimTime epoch_end;
  // All pushes in (epoch_begin, epoch_end], time-ordered: (time, worker).
  std::vector<std::pair<SimTime, WorkerId>> pushes;
  // Each worker's last pull time within the finished epoch (its last
  // iteration start), if any.
  std::vector<std::optional<SimTime>> last_pull;
  // Estimated iteration span T_i per worker (always positive).
  std::vector<Duration> iteration_span;
};

class SpeculationPolicy {
 public:
  virtual ~SpeculationPolicy() = default;
  virtual std::string name() const = 0;
  // Recomputes the hyperparameters given the finished epoch's history.
  virtual SpeculationParams OnEpochEnd(const TuningInputs& inputs) = 0;
};

// Fixed hyperparameters — the SpecSync-Cherrypick configuration (values found
// by the harness's grid search) or hand-set values.
class FixedSpeculationPolicy final : public SpeculationPolicy {
 public:
  explicit FixedSpeculationPolicy(SpeculationParams params)
      : params_(std::move(params)) {}
  std::string name() const override { return "fixed"; }
  SpeculationParams OnEpochEnd(const TuningInputs&) override { return params_; }

 private:
  SpeculationParams params_;
};

// A policy that always disables speculation (plain ASP/SSP behaviour).
class DisabledSpeculationPolicy final : public SpeculationPolicy {
 public:
  std::string name() const override { return "disabled"; }
  SpeculationParams OnEpochEnd(const TuningInputs&) override { return {}; }
};

}  // namespace specsync
