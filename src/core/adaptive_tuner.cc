#include "core/adaptive_tuner.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace specsync {

AdaptiveTuner::AdaptiveTuner(AdaptiveTunerConfig config) : config_(config) {
  SPECSYNC_CHECK_GT(config_.max_delta_spans, 0.0);
}

Duration MeanSpan(const TuningInputs& inputs) {
  SPECSYNC_CHECK(!inputs.iteration_span.empty());
  Duration total = Duration::Zero();
  for (Duration span : inputs.iteration_span) {
    SPECSYNC_CHECK_GT(span.seconds(), 0.0) << "iteration span must be positive";
    total += span;
  }
  return total / static_cast<double>(inputs.iteration_span.size());
}

double AdaptiveTuner::EstimateImprovement(const TuningInputs& inputs,
                                          Duration delta, double loss_weight) {
  const double m = static_cast<double>(inputs.num_workers);
  double improvement = 0.0;
  for (WorkerId i = 0; i < inputs.num_workers; ++i) {
    if (!inputs.last_pull[i].has_value()) continue;  // no pull observed
    const SimTime pull = *inputs.last_pull[i];
    // Gain: pushes by others in (pull, pull + delta].
    std::size_t uncovered = 0;
    for (const auto& [time, worker] : inputs.pushes) {
      if (worker == i) continue;
      if (time > pull && time <= pull + delta) ++uncovered;
      if (time > pull + delta) break;  // pushes are time-ordered
    }
    // Loss: expected missed peers under uniform pull arrivals (Eq. 6).
    const double loss =
        loss_weight * (delta / inputs.iteration_span[i]) * (m - 1.0);
    improvement += static_cast<double>(uncovered) - loss;
  }
  return improvement;
}

std::vector<Duration> AdaptiveTuner::CandidateDeltas(
    const TuningInputs& inputs, Duration max_delta,
    std::size_t max_candidates) {
  std::vector<double> diffs;
  const auto& pushes = inputs.pushes;
  diffs.reserve(pushes.size() * (pushes.size() - 1) / 2 + 1);
  for (std::size_t a = 0; a < pushes.size(); ++a) {
    for (std::size_t b = a + 1; b < pushes.size(); ++b) {
      const double d = (pushes[b].first - pushes[a].first).seconds();
      if (d > 0.0 && d <= max_delta.seconds()) diffs.push_back(d);
    }
  }
  std::sort(diffs.begin(), diffs.end());
  diffs.erase(std::unique(diffs.begin(), diffs.end()), diffs.end());
  if (max_candidates != 0 && diffs.size() > max_candidates) {
    // Keep an evenly strided subset — preserves the range of the candidate
    // set while bounding tuning cost.
    std::vector<double> strided;
    strided.reserve(max_candidates);
    const double stride = static_cast<double>(diffs.size()) /
                          static_cast<double>(max_candidates);
    for (std::size_t i = 0; i < max_candidates; ++i) {
      strided.push_back(diffs[static_cast<std::size_t>(
          static_cast<double>(i) * stride)]);
    }
    diffs = std::move(strided);
  }
  std::vector<Duration> out;
  out.reserve(diffs.size());
  for (double d : diffs) out.push_back(Duration::Seconds(d));
  return out;
}

SpeculationParams AdaptiveTuner::OnEpochEnd(const TuningInputs& inputs) {
  if (inputs.num_workers < 2) return {};  // speculation is meaningless solo
  SPECSYNC_CHECK_EQ(inputs.last_pull.size(), inputs.num_workers);
  SPECSYNC_CHECK_EQ(inputs.iteration_span.size(), inputs.num_workers);

  if (inputs.pushes.size() < 2) return {};  // nothing to enumerate

  const Duration mean_span = MeanSpan(inputs);
  const Duration max_delta = mean_span * config_.max_delta_spans;
  const std::vector<Duration> candidates =
      CandidateDeltas(inputs, max_delta, config_.max_candidates);
  if (candidates.empty()) return {};

  Duration best_delta = Duration::Zero();
  double best_value = 0.0;  // Δ=0 yields F̃=0; only positive improvements win
  for (Duration delta : candidates) {
    const double value = EstimateImprovement(inputs, delta, config_.loss_weight);
    if (value > best_value) {
      best_value = value;
      best_delta = delta;
    }
  }
  if (best_delta == Duration::Zero()) return {};  // speculation not worth it

  SpeculationParams params;
  params.abort_time = best_delta;
  const double m = static_cast<double>(inputs.num_workers);
  // Algorithm 1 line 7: ABORT_RATE <- Δ(m-1)/(T·m).
  params.abort_rate = best_delta / mean_span * (m - 1.0) / m;
  if (config_.per_worker_rate) {
    params.per_worker_rate.resize(inputs.num_workers);
    for (WorkerId i = 0; i < inputs.num_workers; ++i) {
      // Γ_i = l̃_i(Δ*)/m (Sec. IV-B).
      params.per_worker_rate[i] =
          best_delta / inputs.iteration_span[i] * (m - 1.0) / m;
    }
  }
  return params;
}

}  // namespace specsync
