#include "core/adaptive_tuner.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace specsync {

AdaptiveTuner::AdaptiveTuner(AdaptiveTunerConfig config) : config_(config) {
  SPECSYNC_CHECK_GT(config_.max_delta_spans, 0.0);
}

Duration MeanSpan(const TuningInputs& inputs) {
  SPECSYNC_CHECK(!inputs.iteration_span.empty());
  Duration total = Duration::Zero();
  for (Duration span : inputs.iteration_span) {
    SPECSYNC_CHECK_GT(span.seconds(), 0.0) << "iteration span must be positive";
    total += span;
  }
  return total / static_cast<double>(inputs.iteration_span.size());
}

double AdaptiveTuner::EstimateImprovement(const TuningInputs& inputs,
                                          Duration delta, double loss_weight) {
  const double m = static_cast<double>(inputs.num_workers);
  double improvement = 0.0;
  for (WorkerId i = 0; i < inputs.num_workers; ++i) {
    if (!inputs.last_pull[i].has_value()) continue;  // no pull observed
    const SimTime pull = *inputs.last_pull[i];
    // Gain: pushes by others in (pull, pull + delta].
    std::size_t uncovered = 0;
    for (const auto& [time, worker] : inputs.pushes) {
      if (worker == i) continue;
      if (time > pull && time <= pull + delta) ++uncovered;
      if (time > pull + delta) break;  // pushes are time-ordered
    }
    // Loss: expected missed peers under uniform pull arrivals (Eq. 6).
    const double loss =
        loss_weight * (delta / inputs.iteration_span[i]) * (m - 1.0);
    improvement += static_cast<double>(uncovered) - loss;
  }
  return improvement;
}

std::vector<Duration> AdaptiveTuner::CandidateDeltas(
    const TuningInputs& inputs, Duration max_delta,
    std::size_t max_candidates) {
  std::vector<double> diffs;
  const auto& pushes = inputs.pushes;
  diffs.reserve(pushes.size() * 4 + 1);
  const double max_d = max_delta.seconds();
  for (std::size_t a = 0; a < pushes.size(); ++a) {
    for (std::size_t b = a + 1; b < pushes.size(); ++b) {
      const double d = (pushes[b].first - pushes[a].first).seconds();
      // Pushes are time-ordered, so d is non-decreasing in b (floating-point
      // subtraction is monotone in the minuend): once past max_delta the rest
      // of the row is too. This window break prunes the O(P²) enumeration to
      // the pairs the legacy full filter would keep — exactly.
      if (d > max_d) break;
      if (d > 0.0) diffs.push_back(d);
    }
  }
  std::sort(diffs.begin(), diffs.end());
  diffs.erase(std::unique(diffs.begin(), diffs.end()), diffs.end());
  if (max_candidates != 0 && diffs.size() > max_candidates) {
    // Keep an evenly strided subset — preserves the range of the candidate
    // set while bounding tuning cost.
    std::vector<double> strided;
    strided.reserve(max_candidates);
    const double stride = static_cast<double>(diffs.size()) /
                          static_cast<double>(max_candidates);
    for (std::size_t i = 0; i < max_candidates; ++i) {
      strided.push_back(diffs[static_cast<std::size_t>(
          static_cast<double>(i) * stride)]);
    }
    diffs = std::move(strided);
  }
  std::vector<Duration> out;
  out.reserve(diffs.size());
  for (double d : diffs) out.push_back(Duration::Seconds(d));
  return out;
}

std::size_t AdaptiveTuner::SaturationIndex(
    const TuningInputs& inputs, const std::vector<Duration>& candidates) {
  SPECSYNC_CHECK(!candidates.empty());
  const double t_last = inputs.pushes.back().first.seconds();
  std::size_t saturation = 0;
  for (WorkerId i = 0; i < inputs.num_workers; ++i) {
    if (!inputs.last_pull[i].has_value()) continue;
    const double pull = inputs.last_pull[i]->seconds();
    // First c with pull + Δ_c >= t_last; pull + Δ is monotone non-decreasing
    // in Δ, so binary search over the sorted candidates is exact.
    const auto it = std::partition_point(
        candidates.begin(), candidates.end(),
        [pull, t_last](Duration d) { return pull + d.seconds() < t_last; });
    if (it == candidates.end()) return candidates.size() - 1;  // no prune
    const auto sat_i = static_cast<std::size_t>(it - candidates.begin());
    saturation = std::max(saturation, sat_i);
  }
  return saturation;
}

// The incremental Algorithm-1 sweep. For worker i the gain ũ_i(Δ_c) counts
// pushes by others in (pull_i, pull_i + Δ_c]; since pull_i + Δ_c is monotone
// non-decreasing in c, each push is counted for exactly the suffix of
// candidates starting at the first window that covers it. So: binary-search
// each in-range push into that first candidate (a bucket), then prefix-sum
// the buckets — giving every ũ_i(Δ_c) from one O(P·log C) pass instead of C
// scans. Bit-identity with the reference comes from using the *same*
// floating-point expressions (the `pull + Δ` threshold, the Eq. 6 loss term,
// `value += double(gain) - loss`) applied in the *same* order (workers
// ascending, one accumulation per worker per candidate).
void AdaptiveTuner::EvaluateCandidatesInto(
    const TuningInputs& inputs, const std::vector<Duration>& candidates,
    double loss_weight, std::size_t eval_count, std::vector<double>& values,
    std::vector<double>& thresholds, std::vector<std::uint32_t>& buckets) {
  SPECSYNC_CHECK_LE(eval_count, candidates.size());
  const double m = static_cast<double>(inputs.num_workers);
  const auto& pushes = inputs.pushes;
  values.assign(eval_count, 0.0);
  if (eval_count == 0) return;
  thresholds.resize(eval_count);
  for (WorkerId i = 0; i < inputs.num_workers; ++i) {
    if (!inputs.last_pull[i].has_value()) continue;  // no pull observed
    const double pull = inputs.last_pull[i]->seconds();
    // thresholds[c] = pull + Δ_c — the exact right edge the reference
    // compares against, non-decreasing in c.
    for (std::size_t c = 0; c < eval_count; ++c) {
      thresholds[c] = pull + candidates[c].seconds();
    }
    buckets.assign(eval_count, 0);
    // First push strictly after the pull (the window's open left edge).
    const auto begin = std::partition_point(
        pushes.begin(), pushes.end(),
        [pull](const auto& push) { return push.first.seconds() <= pull; });
    const double widest = thresholds[eval_count - 1];
    for (auto it = begin; it != pushes.end(); ++it) {
      const double time = it->first.seconds();
      if (time > widest) break;  // beyond every window; pushes time-ordered
      if (it->second == i) continue;
      // First candidate whose window covers this push.
      const auto slot = std::partition_point(
          thresholds.begin(), thresholds.end(),
          [time](double threshold) { return threshold < time; });
      ++buckets[static_cast<std::size_t>(slot - thresholds.begin())];
    }
    const double span = inputs.iteration_span[i].seconds();
    std::uint32_t gain = 0;
    for (std::size_t c = 0; c < eval_count; ++c) {
      gain += buckets[c];  // prefix sum: pushes covered by window c
      const double loss = loss_weight * (candidates[c].seconds() / span) *
                          (m - 1.0);
      values[c] += static_cast<double>(gain) - loss;
    }
  }
}

std::vector<double> AdaptiveTuner::EvaluateCandidates(
    const TuningInputs& inputs, const std::vector<Duration>& candidates,
    double loss_weight) {
  std::vector<double> values;
  std::vector<double> thresholds;
  std::vector<std::uint32_t> buckets;
  EvaluateCandidatesInto(inputs, candidates, loss_weight, candidates.size(),
                         values, thresholds, buckets);
  return values;
}

SpeculationParams AdaptiveTuner::OnEpochEnd(const TuningInputs& inputs) {
  if (inputs.num_workers < 2) return {};  // speculation is meaningless solo
  SPECSYNC_CHECK_EQ(inputs.last_pull.size(), inputs.num_workers);
  SPECSYNC_CHECK_EQ(inputs.iteration_span.size(), inputs.num_workers);

  if (inputs.pushes.size() < 2) return {};  // nothing to enumerate

  const Duration mean_span = MeanSpan(inputs);
  const Duration max_delta = mean_span * config_.max_delta_spans;
  const std::vector<Duration> candidates =
      CandidateDeltas(inputs, max_delta, config_.max_candidates);
  if (candidates.empty()) return {};

  Duration best_delta = Duration::Zero();
  double best_value = 0.0;  // Δ=0 yields F̃=0; only positive improvements win
  if (config_.incremental) {
    // Candidates past the saturation index are dominated (constant gain,
    // non-decreasing loss) and the argmax keeps the first maximum, so
    // evaluating [0, saturation] cannot change the decision.
    const std::size_t eval_count = SaturationIndex(inputs, candidates) + 1;
    EvaluateCandidatesInto(inputs, candidates, config_.loss_weight, eval_count,
                           values_, thresholds_, buckets_);
    for (std::size_t c = 0; c < eval_count; ++c) {
      if (values_[c] > best_value) {
        best_value = values_[c];
        best_delta = candidates[c];
      }
    }
  } else {
    for (Duration delta : candidates) {
      const double value =
          EstimateImprovement(inputs, delta, config_.loss_weight);
      if (value > best_value) {
        best_value = value;
        best_delta = delta;
      }
    }
  }
  if (best_delta == Duration::Zero()) return {};  // speculation not worth it

  SpeculationParams params;
  params.abort_time = best_delta;
  const double m = static_cast<double>(inputs.num_workers);
  // Algorithm 1 line 7: ABORT_RATE <- Δ(m-1)/(T·m).
  params.abort_rate = best_delta / mean_span * (m - 1.0) / m;
  if (config_.per_worker_rate) {
    params.per_worker_rate.resize(inputs.num_workers);
    for (WorkerId i = 0; i < inputs.num_workers; ++i) {
      // Γ_i = l̃_i(Δ*)/m (Sec. IV-B).
      params.per_worker_rate[i] =
          best_delta / inputs.iteration_span[i] * (m - 1.0) / m;
    }
  }
  return params;
}

}  // namespace specsync
