#include "core/push_history.h"

#include <algorithm>

#include "common/check.h"

namespace specsync {

PushHistory::PushHistory(std::size_t num_workers)
    : num_workers_(num_workers),
      pulls_(num_workers),
      last_iteration_(num_workers) {
  SPECSYNC_CHECK_GT(num_workers, 0u);
}

void PushHistory::RecordPush(WorkerId worker, IterationId iteration,
                             SimTime time) {
  SPECSYNC_CHECK_LT(worker, num_workers_);
  SPECSYNC_CHECK(pushes_.empty() || pushes_.back().time <= time)
      << "pushes must be recorded in time order";
  pushes_.push_back(PushRecord{time, worker, iteration});
  std::optional<IterationId>& last = last_iteration_[worker];
  if (!last.has_value() || iteration > *last) last = iteration;
}

void PushHistory::RecordPull(WorkerId worker, SimTime time) {
  SPECSYNC_CHECK_LT(worker, num_workers_);
  SPECSYNC_CHECK(pulls_[worker].empty() || pulls_[worker].back() <= time)
      << "pulls must be recorded in time order";
  pulls_[worker].push_back(time);
}

namespace {

// Iterator to the first push with time > t.
auto FirstAfter(const std::vector<PushRecord>& pushes, SimTime t) {
  return std::upper_bound(
      pushes.begin(), pushes.end(), t,
      [](SimTime time, const PushRecord& rec) { return time < rec.time; });
}

}  // namespace

std::size_t PushHistory::CountPushesInWindow(SimTime begin, SimTime end,
                                             WorkerId exclude) const {
  std::size_t count = 0;
  for (auto it = FirstAfter(pushes_, begin); it != pushes_.end(); ++it) {
    if (it->time > end) break;
    if (it->worker != exclude) ++count;
  }
  return count;
}

std::vector<PushRecord> PushHistory::PushesInWindow(SimTime begin,
                                                    SimTime end) const {
  std::vector<PushRecord> out;
  for (auto it = FirstAfter(pushes_, begin); it != pushes_.end(); ++it) {
    if (it->time > end) break;
    out.push_back(*it);
  }
  return out;
}

std::optional<SimTime> PushHistory::LastPullBefore(WorkerId worker,
                                                   SimTime time) const {
  SPECSYNC_CHECK_LT(worker, num_workers_);
  const auto& pulls = pulls_[worker];
  auto it = std::upper_bound(pulls.begin(), pulls.end(), time);
  if (it == pulls.begin()) return std::nullopt;
  return *std::prev(it);
}

std::optional<SimTime> PushHistory::LastPull(WorkerId worker) const {
  SPECSYNC_CHECK_LT(worker, num_workers_);
  if (pulls_[worker].empty()) return std::nullopt;
  return pulls_[worker].back();
}

std::optional<IterationId> PushHistory::LastIteration(WorkerId worker) const {
  SPECSYNC_CHECK_LT(worker, num_workers_);
  return last_iteration_[worker];
}

std::optional<Duration> PushHistory::MeanIterationSpan(WorkerId worker,
                                                       SimTime begin,
                                                       SimTime end) const {
  SPECSYNC_CHECK_LT(worker, num_workers_);
  SimTime prev = SimTime::Infinite();
  bool have_prev = false;
  Duration total = Duration::Zero();
  std::size_t gaps = 0;
  for (const PushRecord& rec : pushes_) {
    if (rec.worker != worker) continue;
    if (rec.time <= begin || rec.time > end) continue;
    if (have_prev) {
      total += rec.time - prev;
      ++gaps;
    }
    prev = rec.time;
    have_prev = true;
  }
  if (gaps == 0) return std::nullopt;
  return total / static_cast<double>(gaps);
}

void PushHistory::Trim(SimTime now, Duration horizon) {
  const SimTime cutoff = now - horizon;
  auto first_kept = std::partition_point(
      pushes_.begin(), pushes_.end(),
      [cutoff](const PushRecord& rec) { return rec.time < cutoff; });
  pushes_.erase(pushes_.begin(), first_kept);
  for (auto& pulls : pulls_) {
    auto kept = std::lower_bound(pulls.begin(), pulls.end(), cutoff);
    pulls.erase(pulls.begin(), kept);
  }
}

}  // namespace specsync
