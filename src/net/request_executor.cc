#include "net/request_executor.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"

namespace specsync::net {

RequestExecutor::RequestExecutor(ParameterServer* store,
                                 std::vector<std::size_t> served_shards,
                                 obs::MetricsRegistry* metrics,
                                 std::chrono::microseconds service_delay)
    : store_(store),
      served_shards_(std::move(served_shards)),
      service_delay_(service_delay) {
  SPECSYNC_CHECK(store_ != nullptr);
  for (std::size_t s : served_shards_) {
    SPECSYNC_CHECK_LT(s, store_->num_shards());
  }
  if (metrics != nullptr) {
    pull_hist_ = &metrics->histogram("net.server.pull_s");
    push_hist_ = &metrics->histogram("net.server.push_s");
  }
}

bool RequestExecutor::ServesShard(std::size_t shard) const {
  if (shard >= store_->num_shards()) return false;
  if (served_shards_.empty()) return true;
  return std::find(served_shards_.begin(), served_shards_.end(), shard) !=
         served_shards_.end();
}

WireMessage RequestExecutor::Execute(const WireMessage& request) {
  if (service_delay_.count() > 0) {
    std::this_thread::sleep_for(service_delay_);
  }
  if (const auto* pull = std::get_if<PullShardReq>(&request)) {
    if (!ServesShard(pull->shard)) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return AckResp{kAckBadShard, pull->shard};
    }
    obs::ScopedTimer timer(pull_hist_);
    ShardPullResult result = store_->PullShard(pull->shard);
    pulls_.fetch_add(1, std::memory_order_relaxed);
    PullShardResp resp;
    resp.shard = pull->shard;
    resp.offset = result.offset;
    resp.shard_version = result.shard_version;
    resp.global_version = result.version;
    resp.params = std::move(result.params);
    return resp;
  }
  if (const auto* push = std::get_if<PushShardReq>(&request)) {
    if (!ServesShard(push->shard)) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return AckResp{kAckBadShard, push->shard};
    }
    if (push->sparse) {
      obs::ScopedTimer timer(push_hist_);
      Gradient grad = Gradient::Sparse();
      grad.sparse().Reserve(push->indices.size());
      for (std::size_t i = 0; i < push->indices.size(); ++i) {
        grad.sparse().Add(push->indices[i], push->values[i]);
      }
      const bool touched = store_->PushShard(push->shard, grad, push->epoch);
      pushes_.fetch_add(1, std::memory_order_relaxed);
      return AckResp{kAckOk, touched ? 1u : 0u};
    }
    const ShardInfo info = store_->shard(push->shard);
    if (push->dense_offset != info.offset || push->dense.size() != info.length) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return AckResp{kAckBadRequest, push->shard};
    }
    obs::ScopedTimer timer(push_hist_);
    const bool touched =
        store_->PushShardDenseSlice(push->shard, push->dense, push->epoch);
    pushes_.fetch_add(1, std::memory_order_relaxed);
    return AckResp{kAckOk, touched ? 1u : 0u};
  }
  if (std::holds_alternative<CommitPushReq>(request)) {
    const std::uint64_t version = store_->CommitPush();
    commits_.fetch_add(1, std::memory_order_relaxed);
    return AckResp{kAckOk, version};
  }
  // A response type arriving at the server is a confused peer.
  rejected_.fetch_add(1, std::memory_order_relaxed);
  return AckResp{kAckBadRequest, 0};
}

ServerStats RequestExecutor::stats() const {
  ServerStats out;
  out.pulls = pulls_.load(std::memory_order_relaxed);
  out.pushes = pushes_.load(std::memory_order_relaxed);
  out.commits = commits_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace specsync::net
