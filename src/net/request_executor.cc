#include "net/request_executor.h"

#include <algorithm>
#include <string>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/sim_time.h"
#include "obs/metrics.h"
#include "obs/span_recorder.h"

namespace specsync::net {

namespace {

std::string TraceIdHex(std::uint64_t id) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out = "0x";
  bool started = false;
  for (int shift = 60; shift >= 0; shift -= 4) {
    const unsigned nibble = (id >> shift) & 0xf;
    if (!started && nibble == 0 && shift != 0) continue;
    started = true;
    out += kHex[nibble];
  }
  return out;
}

}  // namespace

RequestExecutor::RequestExecutor(ParameterServer* store,
                                 std::vector<std::size_t> served_shards,
                                 obs::MetricsRegistry* metrics,
                                 std::chrono::microseconds service_delay,
                                 obs::SpanRecorder* spans,
                                 std::uint32_t span_track_base)
    : store_(store),
      served_shards_(std::move(served_shards)),
      service_delay_(service_delay),
      spans_(spans),
      span_track_base_(span_track_base) {
  SPECSYNC_CHECK(store_ != nullptr);
  for (std::size_t s : served_shards_) {
    SPECSYNC_CHECK_LT(s, store_->num_shards());
  }
  if (metrics != nullptr) {
    pull_hist_ = &metrics->histogram("net.server.pull_s");
    push_hist_ = &metrics->histogram("net.server.push_s");
  }
}

bool RequestExecutor::ServesShard(std::size_t shard) const {
  if (shard >= store_->num_shards()) return false;
  if (served_shards_.empty()) return true;
  return std::find(served_shards_.begin(), served_shards_.end(), shard) !=
         served_shards_.end();
}

WireMessage RequestExecutor::Execute(const WireMessage& request,
                                     const TraceContext* trace) {
  if (spans_ == nullptr || trace == nullptr || !trace->valid()) {
    return ExecuteInner(request);
  }
  // The serve span covers everything the client's RTT contains on this side:
  // the injected service delay, shard-lock wait inside the store, and the
  // store work itself. flow_in ties it under the client span whose trace_id
  // the frame carried.
  const std::uint64_t epoch = spans_->EnsureWallEpochNanos();
  const std::uint64_t begin_ns = obs::WallNanos();
  WireMessage response = ExecuteInner(request);
  const std::uint64_t end_ns = obs::WallNanos();
  const char* name = "serve.commit";
  std::uint32_t shard = 0;
  if (const auto* pull = std::get_if<PullShardReq>(&request)) {
    name = "serve.pull";
    shard = pull->shard;
  } else if (const auto* push = std::get_if<PushShardReq>(&request)) {
    name = "serve.push";
    shard = push->shard;
  } else if (const auto* delta = std::get_if<PullShardDeltaReq>(&request)) {
    name = "serve.pull";
    shard = delta->shard;
  } else if (!std::holds_alternative<CommitPushReq>(request)) {
    name = "serve.reject";
  }
  const double begin_s =
      begin_ns > epoch ? (begin_ns - epoch) * 1e-9 : 0.0;
  const double end_s = end_ns > epoch ? (end_ns - epoch) * 1e-9 : 0.0;
  spans_->AddSpanWithFlow(name, "net.server", span_track_base_ + shard,
                          SimTime::FromSeconds(begin_s),
                          SimTime::FromSeconds(end_s), /*flow_out=*/0,
                          /*flow_in=*/trace->trace_id,
                          {{"trace_id", TraceIdHex(trace->trace_id)},
                           {"shard", std::to_string(shard)}});
  return response;
}

WireMessage RequestExecutor::ExecuteInner(const WireMessage& request) {
  if (service_delay_.count() > 0) {
    std::this_thread::sleep_for(service_delay_);
  }
  if (const auto* pull = std::get_if<PullShardReq>(&request)) {
    if (!ServesShard(pull->shard)) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return AckResp{kAckBadShard, pull->shard};
    }
    obs::ScopedTimer timer(pull_hist_);
    ShardPullResult result = store_->PullShard(pull->shard);
    pulls_.fetch_add(1, std::memory_order_relaxed);
    PullShardResp resp;
    resp.shard = pull->shard;
    resp.offset = result.offset;
    resp.shard_version = result.shard_version;
    resp.global_version = result.version;
    resp.params = std::move(result.params);
    return resp;
  }
  if (const auto* delta = std::get_if<PullShardDeltaReq>(&request)) {
    if (!ServesShard(delta->shard)) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return AckResp{kAckBadShard, delta->shard};
    }
    obs::ScopedTimer timer(pull_hist_);
    // One full snapshot either way: the version check and the slice copy
    // happen under the same shard lock, so a "not modified" answer can never
    // race a concurrent push into staleness.
    ShardPullResult result = store_->PullShard(delta->shard);
    pulls_.fetch_add(1, std::memory_order_relaxed);
    if (result.shard_version == delta->known_version) {
      delta_not_modified_.fetch_add(1, std::memory_order_relaxed);
      return PullShardNotModified{delta->shard, result.shard_version,
                                  result.version};
    }
    PullShardResp resp;
    resp.shard = delta->shard;
    resp.offset = result.offset;
    resp.shard_version = result.shard_version;
    resp.global_version = result.version;
    resp.params = std::move(result.params);
    return resp;
  }
  if (const auto* push = std::get_if<PushShardReq>(&request)) {
    if (!ServesShard(push->shard)) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return AckResp{kAckBadShard, push->shard};
    }
    if (push->coded != 0) {
      coded_pushes_.fetch_add(1, std::memory_order_relaxed);
      // Values were dequantized into doubles by the wire decoder; from here
      // a coded push is an ordinary sparse/dense push.
    }
    if (push->sparse) {
      obs::ScopedTimer timer(push_hist_);
      Gradient grad = Gradient::Sparse();
      grad.sparse().Reserve(push->indices.size());
      for (std::size_t i = 0; i < push->indices.size(); ++i) {
        grad.sparse().Add(push->indices[i], push->values[i]);
      }
      const bool touched = store_->PushShard(push->shard, grad, push->epoch);
      pushes_.fetch_add(1, std::memory_order_relaxed);
      return AckResp{kAckOk, touched ? 1u : 0u};
    }
    const ShardInfo info = store_->shard(push->shard);
    if (push->dense_offset != info.offset || push->dense.size() != info.length) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return AckResp{kAckBadRequest, push->shard};
    }
    obs::ScopedTimer timer(push_hist_);
    const bool touched =
        store_->PushShardDenseSlice(push->shard, push->dense, push->epoch);
    pushes_.fetch_add(1, std::memory_order_relaxed);
    return AckResp{kAckOk, touched ? 1u : 0u};
  }
  if (std::holds_alternative<CommitPushReq>(request)) {
    const std::uint64_t version = store_->CommitPush();
    commits_.fetch_add(1, std::memory_order_relaxed);
    return AckResp{kAckOk, version};
  }
  // A response type arriving at the server is a confused peer.
  rejected_.fetch_add(1, std::memory_order_relaxed);
  return AckResp{kAckBadRequest, 0};
}

ServerStats RequestExecutor::stats() const {
  ServerStats out;
  out.pulls = pulls_.load(std::memory_order_relaxed);
  out.pushes = pushes_.load(std::memory_order_relaxed);
  out.commits = commits_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.delta_not_modified = delta_not_modified_.load(std::memory_order_relaxed);
  out.coded_pushes = coded_pushes_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace specsync::net
