// EventLoopServer: the epoll-based shard server (ServerModel::kEventLoop).
//
// One loop thread multiplexes every connection with level-triggered epoll;
// request execution runs on a bounded ThreadPool. Total thread count is
// 1 + pool_threads regardless of how many clients connect — the property the
// fan-in bench pins (thread-per-connection collapses at ~hundreds of
// clients; this model holds p99 RTT with a constant thread count).
//
// Data flow per connection:
//   readable → RecvSome() until EAGAIN into the connection's reassembly
//   buffer → peel complete frames (header validated on the loop thread; a
//   malformed header or payload kills only that connection) → each decoded
//   request is handed to the pool → the pool task runs
//   RequestExecutor::Execute and appends the encoded response to the
//   connection's outbound queue → an eventfd wake tells the loop the
//   connection is dirty → the loop flushes, registering EPOLLOUT only while
//   a partial write is outstanding.
//
// Because pool tasks finish in any order, responses naturally leave
// out-of-order relative to arrival — the wire v2 pipelining contract
// (request_id matching) is what makes that legal.
//
// Ownership and shutdown: connections are shared_ptr'd between the loop
// (fd → conn map) and in-flight pool tasks, so a connection dropped by the
// loop stays alive until its last task retires (the task appends to a dead
// queue that is simply never flushed). Stop() runs in strict order:
//   1. set stopping, wake the loop via eventfd;
//   2. join the loop thread (nobody touches epoll after this);
//   3. destroy the pool (drains in-flight Execute calls — the eventfd stays
//      open so their wake writes hit a live descriptor);
//   4. drop connections, listener, epoll fd, eventfd.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/shard_server.h"

namespace specsync {
class ThreadPool;
}  // namespace specsync

namespace specsync::net {

class EventLoopServer : public ShardServerBase {
 public:
  // `store` is not owned and must outlive the server. `config.model` is
  // ignored (callers go through MakeShardServer; constructing this class
  // directly always yields the event-loop model). `metrics` (optional)
  // additionally darks the loop internals: "net.eloop.epoll_wait_s" /
  // "net.eloop.dispatch_s" / "net.eloop.pool_wait_s" / "net.eloop.out_queue_s"
  // histograms, "net.eloop.reassembly_bytes" / "net.eloop.out_queue_bytes" /
  // "net.eloop.conns" gauges, and "net.eloop.accepts" / "net.eloop.drops"
  // counters. `spans` (optional) records trace-linked serve spans.
  EventLoopServer(ParameterServer* store, ShardServerConfig config,
                  obs::MetricsRegistry* metrics = nullptr,
                  obs::SpanRecorder* spans = nullptr);
  ~EventLoopServer() override;

  EventLoopServer(const EventLoopServer&) = delete;
  EventLoopServer& operator=(const EventLoopServer&) = delete;

  bool Start() override;
  void Stop() override;
  std::uint16_t port() const override { return port_; }
  ServerStats stats() const override;
  // 1 loop thread + pool_threads while running; never a function of the
  // number of connected clients.
  std::size_t thread_count() const override;

 private:
  struct Conn;

  void Loop();
  void AcceptNew();
  // Reads until EAGAIN and peels/dispatches complete frames. False = the
  // connection must be dropped (EOF, error, malformed input).
  bool ReadAndDispatch(const std::shared_ptr<Conn>& conn);
  // Flushes the outbound queue until empty or EAGAIN; manages EPOLLOUT
  // registration. False = the connection must be dropped. Loop thread only.
  bool FlushOut(const std::shared_ptr<Conn>& conn);
  void DropConn(int fd);
  // Pool-thread side: queue `frame` on `conn` and wake the loop.
  void QueueResponse(const std::shared_ptr<Conn>& conn,
                     std::vector<std::uint8_t> frame);
  bool UpdateEpoll(Conn* conn, bool want_write);
  // Flushes every connection freshly marked dirty by pool threads.
  void DrainDirty();
  // Signals the eventfd so epoll_wait returns.
  void Wake();
  // Releases listener/epoll/eventfd descriptors.
  void Cleanup();

  ParameterServer* store_;
  ShardServerConfig config_;
  RequestExecutor executor_;
  std::unique_ptr<TcpListener> listener_;
  std::uint16_t port_ = 0;

  // Loop telemetry (all null when no registry was given; every use is
  // pointer-guarded so the un-instrumented server pays nothing).
  obs::LatencyHistogram* epoll_wait_hist_ = nullptr;  // time blocked in epoll
  obs::LatencyHistogram* dispatch_hist_ = nullptr;    // one event batch
  obs::LatencyHistogram* pool_wait_hist_ = nullptr;   // submit → task start
  obs::LatencyHistogram* out_queue_hist_ = nullptr;   // queue → fully sent
  obs::Gauge* reassembly_gauge_ = nullptr;  // Σ per-conn `in` bytes
  obs::Gauge* out_bytes_gauge_ = nullptr;   // Σ per-conn queued out bytes
  obs::Gauge* conns_gauge_ = nullptr;       // live connection count
  obs::Counter* accepts_counter_ = nullptr;
  obs::Counter* drops_counter_ = nullptr;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: dirty-connection + stop notifications
  std::unique_ptr<ThreadPool> pool_;
  std::thread loop_thread_;

  // Loop-thread state.
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;

  // Connections with freshly queued responses, handed from pool threads to
  // the loop thread.
  std::mutex dirty_mutex_;
  std::vector<std::shared_ptr<Conn>> dirty_;

  mutable std::mutex lifecycle_mutex_;
  bool started_ = false;  // guarded by lifecycle_mutex_
  std::atomic<bool> stopping_{false};

  std::atomic<std::uint64_t> bad_frames_{0};
};

}  // namespace specsync::net
