#include "net/event_loop_server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <deque>
#include <span>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace specsync::net {

namespace {
// Per-recv chunk. Frames larger than this reassemble across reads; the
// fuzz suite drives exactly that path.
constexpr std::size_t kRecvChunk = 64 * 1024;
}  // namespace

struct EventLoopServer::Conn {
  TcpConnection connection;
  // Reassembly buffer: bytes received but not yet peeled into frames.
  // Loop thread only.
  std::vector<std::uint8_t> in;
  // Encoded response frames waiting to go out, and how much of the front
  // frame already left. Pool threads append; the loop thread flushes.
  // queued_ns stamps when the frame entered the queue so the flush side can
  // record the full queue → wire residency ("net.eloop.out_queue_s").
  struct OutFrame {
    std::vector<std::uint8_t> bytes;
    std::uint64_t queued_ns = 0;
  };
  std::mutex out_mutex;
  std::deque<OutFrame> out;    // guarded by out_mutex
  std::size_t out_offset = 0;  // guarded by out_mutex
  bool want_write = false;  // EPOLLOUT registered; loop thread only
  // Set when the loop drops the connection; in-flight pool tasks still hold
  // shared_ptrs and may queue responses, which are simply never flushed.
  std::atomic<bool> dead{false};
};

EventLoopServer::EventLoopServer(ParameterServer* store,
                                 ShardServerConfig config,
                                 obs::MetricsRegistry* metrics,
                                 obs::SpanRecorder* spans)
    : store_(store),
      config_(std::move(config)),
      executor_(store, config_.served_shards, metrics, config_.service_delay,
                spans, config_.trace_track_base) {
  if (metrics != nullptr) {
    epoll_wait_hist_ = &metrics->histogram("net.eloop.epoll_wait_s");
    dispatch_hist_ = &metrics->histogram("net.eloop.dispatch_s");
    pool_wait_hist_ = &metrics->histogram("net.eloop.pool_wait_s");
    out_queue_hist_ = &metrics->histogram("net.eloop.out_queue_s");
    reassembly_gauge_ = &metrics->gauge("net.eloop.reassembly_bytes");
    out_bytes_gauge_ = &metrics->gauge("net.eloop.out_queue_bytes");
    conns_gauge_ = &metrics->gauge("net.eloop.conns");
    accepts_counter_ = &metrics->counter("net.eloop.accepts");
    drops_counter_ = &metrics->counter("net.eloop.drops");
  }
}

EventLoopServer::~EventLoopServer() { Stop(); }

bool EventLoopServer::Start() {
  std::scoped_lock lock(lifecycle_mutex_);
  SPECSYNC_CHECK(!started_);
  listener_ = TcpListener::Bind(config_.bind);
  if (listener_ == nullptr || !listener_->SetNonBlocking()) {
    SPECSYNC_LOG(kWarning) << "EventLoopServer: cannot bind "
                          << ToString(config_.bind);
    listener_.reset();
    return false;
  }
  port_ = listener_->port();
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listener_->listen_fd();
  if (epoll_fd_ < 0 || wake_fd_ < 0 ||
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_->listen_fd(), &ev) != 0) {
    Cleanup();
    return false;
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    Cleanup();
    return false;
  }
  stopping_.store(false, std::memory_order_release);
  pool_ = std::make_unique<ThreadPool>(
      std::max<std::size_t>(1, config_.pool_threads));
  loop_thread_ = std::thread([this] { Loop(); });
  started_ = true;
  return true;
}

void EventLoopServer::Stop() {
  std::scoped_lock lock(lifecycle_mutex_);
  if (!started_) return;
  // Strict order (documented in the header): stop flag → wake → join loop →
  // drain pool → release descriptors. The eventfd must outlive the pool so
  // in-flight tasks' wake writes hit a live descriptor.
  stopping_.store(true, std::memory_order_release);
  Wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  pool_.reset();
  conns_.clear();
  {
    std::scoped_lock dirty_lock(dirty_mutex_);
    dirty_.clear();
  }
  // The byte gauges track live per-conn buffers; with every connection gone
  // they must read zero rather than whatever the last drop left behind.
  if (conns_gauge_ != nullptr) conns_gauge_->Set(0.0);
  if (reassembly_gauge_ != nullptr) reassembly_gauge_->Set(0.0);
  if (out_bytes_gauge_ != nullptr) out_bytes_gauge_->Set(0.0);
  Cleanup();
  started_ = false;
}

void EventLoopServer::Cleanup() {
  listener_.reset();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  epoll_fd_ = -1;
  wake_fd_ = -1;
}

void EventLoopServer::Wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoopServer::Loop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    // Time blocked in epoll (loop idleness) and time spent on the batch
    // (loop busyness) are the two halves of the loop's duty cycle; their
    // histograms together show whether the loop or the pool is the
    // bottleneck at fan-in scale.
    const std::uint64_t wait_begin_ns =
        epoll_wait_hist_ != nullptr ? obs::WallNanos() : 0;
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (epoll_wait_hist_ != nullptr) {
      epoll_wait_hist_->Record((obs::WallNanos() - wait_begin_ns) * 1e-9);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    const std::uint64_t dispatch_begin_ns =
        dispatch_hist_ != nullptr ? obs::WallNanos() : 0;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &drained, sizeof(drained));
        DrainDirty();
        continue;
      }
      if (listener_ != nullptr && fd == listener_->listen_fd()) {
        AcceptNew();
        continue;
      }
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // dropped earlier in this batch
      const std::shared_ptr<Conn> conn = it->second;
      if ((events[i].events & EPOLLIN) != 0 && !ReadAndDispatch(conn)) {
        DropConn(fd);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0 && !FlushOut(conn)) {
        DropConn(fd);
        continue;
      }
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 &&
          (events[i].events & (EPOLLIN | EPOLLOUT)) == 0) {
        DropConn(fd);
      }
    }
    if (dispatch_hist_ != nullptr) {
      dispatch_hist_->Record((obs::WallNanos() - dispatch_begin_ns) * 1e-9);
    }
  }
}

void EventLoopServer::AcceptNew() {
  for (;;) {
    TcpConnection client = listener_->TryAccept();
    if (!client.valid()) return;
    if (!client.SetNonBlocking()) continue;
    auto conn = std::make_shared<Conn>();
    conn->connection = std::move(client);
    const int fd = conn->connection.fd();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) continue;
    conns_.emplace(fd, std::move(conn));
    if (accepts_counter_ != nullptr) accepts_counter_->Increment();
    if (conns_gauge_ != nullptr) conns_gauge_->Add(1.0);
  }
}

bool EventLoopServer::ReadAndDispatch(const std::shared_ptr<Conn>& conn) {
  for (;;) {
    std::size_t got = 0;
    const auto status = conn->connection.RecvSome(conn->in, kRecvChunk, got);
    if (reassembly_gauge_ != nullptr && got > 0) {
      reassembly_gauge_->Add(static_cast<double>(got));
    }
    if (status == TcpConnection::IoStatus::kWouldBlock) return true;
    if (status != TcpConnection::IoStatus::kOk) return false;  // EOF or error

    // Peel every complete frame out of the reassembly buffer. The header is
    // validated here on the loop thread — before its payload_bytes can grow
    // the buffer — so a corrupt length field can never demand a huge read.
    std::size_t consumed = 0;
    const std::span<const std::uint8_t> buf(conn->in);
    for (;;) {
      const std::size_t avail = conn->in.size() - consumed;
      if (avail < kHeaderBytes) break;
      FrameHeader header;
      if (DecodeHeader(buf.subspan(consumed, kHeaderBytes), header) !=
          WireStatus::kOk) {
        bad_frames_.fetch_add(1, std::memory_order_relaxed);
        return false;  // framing is lost; only this connection dies
      }
      const std::size_t total = kHeaderBytes + header.payload_bytes;
      if (avail < total) break;
      WireMessage request;
      TraceContext trace;
      if (DecodePayload(header,
                        buf.subspan(consumed + kHeaderBytes,
                                    header.payload_bytes),
                        request, &trace) != WireStatus::kOk) {
        bad_frames_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      consumed += total;
      // submit_ns measures the submit → task-start gap on the pool side:
      // under fan-in pressure this histogram is the queueing delay a request
      // spends waiting for an execution slot.
      const std::uint64_t submit_ns =
          pool_wait_hist_ != nullptr ? obs::WallNanos() : 0;
      pool_->Submit([this, conn, id = header.request_id, trace, submit_ns,
                     request = std::move(request)]() mutable {
        if (pool_wait_hist_ != nullptr) {
          pool_wait_hist_->Record((obs::WallNanos() - submit_ns) * 1e-9);
        }
        WireMessage response = executor_.Execute(request, &trace);
        QueueResponse(conn, EncodeFrame(response, id));
      });
    }
    if (consumed > 0) {
      conn->in.erase(conn->in.begin(),
                     conn->in.begin() + static_cast<std::ptrdiff_t>(consumed));
      if (reassembly_gauge_ != nullptr) {
        reassembly_gauge_->Add(-static_cast<double>(consumed));
      }
    }
  }
}

void EventLoopServer::QueueResponse(const std::shared_ptr<Conn>& conn,
                                    std::vector<std::uint8_t> frame) {
  {
    std::scoped_lock lock(conn->out_mutex);
    // A dead connection's queue is never flushed; dropping the frame here
    // (instead of parking it forever) keeps the out-bytes gauge honest —
    // DropConn already zeroed this conn's contribution under the same lock.
    if (conn->dead.load(std::memory_order_acquire)) return;
    if (out_bytes_gauge_ != nullptr) {
      out_bytes_gauge_->Add(static_cast<double>(frame.size()));
    }
    Conn::OutFrame entry;
    entry.bytes = std::move(frame);
    entry.queued_ns = out_queue_hist_ != nullptr ? obs::WallNanos() : 0;
    conn->out.push_back(std::move(entry));
  }
  {
    std::scoped_lock lock(dirty_mutex_);
    dirty_.push_back(conn);
  }
  Wake();
}

void EventLoopServer::DrainDirty() {
  std::vector<std::shared_ptr<Conn>> dirty;
  {
    std::scoped_lock lock(dirty_mutex_);
    dirty.swap(dirty_);
  }
  for (const std::shared_ptr<Conn>& conn : dirty) {
    if (conn->dead.load(std::memory_order_acquire)) continue;
    if (!FlushOut(conn)) DropConn(conn->connection.fd());
  }
}

bool EventLoopServer::FlushOut(const std::shared_ptr<Conn>& conn) {
  std::scoped_lock lock(conn->out_mutex);
  while (!conn->out.empty()) {
    const Conn::OutFrame& front = conn->out.front();
    std::size_t sent = 0;
    const auto status = conn->connection.SendSome(
        std::span(front.bytes).subspan(conn->out_offset), sent);
    if (status == TcpConnection::IoStatus::kWouldBlock) {
      // Kernel buffer full mid-frame: lean on EPOLLOUT until it drains.
      return conn->want_write || UpdateEpoll(conn.get(), true);
    }
    if (status != TcpConnection::IoStatus::kOk) return false;
    conn->out_offset += sent;
    if (conn->out_offset == front.bytes.size()) {
      if (out_queue_hist_ != nullptr && front.queued_ns != 0) {
        out_queue_hist_->Record((obs::WallNanos() - front.queued_ns) * 1e-9);
      }
      if (out_bytes_gauge_ != nullptr) {
        out_bytes_gauge_->Add(-static_cast<double>(front.bytes.size()));
      }
      conn->out.pop_front();
      conn->out_offset = 0;
    }
  }
  return !conn->want_write || UpdateEpoll(conn.get(), false);
}

bool EventLoopServer::UpdateEpoll(Conn* conn, bool want_write) {
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn->connection.fd();
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->connection.fd(), &ev) != 0) {
    return false;
  }
  conn->want_write = want_write;
  return true;
}

void EventLoopServer::DropConn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  const std::shared_ptr<Conn> conn = it->second;
  conn->dead.store(true, std::memory_order_release);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  // Make the close visible to the peer now; the descriptor itself lives
  // until the last in-flight task releases its shared_ptr.
  conn->connection.ShutdownBoth();
  // Retire this connection's contribution to the byte gauges. Taking
  // out_mutex here serializes with QueueResponse: any append that won the
  // lock first is subtracted below; any that loses sees `dead` and drops
  // its frame without counting it.
  if (reassembly_gauge_ != nullptr && !conn->in.empty()) {
    reassembly_gauge_->Add(-static_cast<double>(conn->in.size()));
  }
  if (out_bytes_gauge_ != nullptr) {
    std::scoped_lock lock(conn->out_mutex);
    std::size_t queued = 0;
    for (const Conn::OutFrame& frame : conn->out) queued += frame.bytes.size();
    if (queued > 0) out_bytes_gauge_->Add(-static_cast<double>(queued));
    conn->out.clear();
    conn->out_offset = 0;
  }
  if (drops_counter_ != nullptr) drops_counter_->Increment();
  if (conns_gauge_ != nullptr) conns_gauge_->Add(-1.0);
  conns_.erase(it);
}

ServerStats EventLoopServer::stats() const {
  ServerStats out = executor_.stats();
  out.bad_frames = bad_frames_.load(std::memory_order_relaxed);
  return out;
}

std::size_t EventLoopServer::thread_count() const {
  std::scoped_lock lock(lifecycle_mutex_);
  if (!started_) return 0;
  return 1 + pool_->num_threads();
}

}  // namespace specsync::net
