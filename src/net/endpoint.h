// Transport configuration seam: endpoints, topology, and server model.
//
// PR-5's transport hard-coded 127.0.0.1 into every socket call, so "the
// servers are other machines" was a simulation convention, not a config
// choice. This header is the seam that removes that assumption:
//
//   Endpoint        — a (host, port) pair. Loopback stays the tested default
//                     (an empty or "localhost" host resolves to 127.0.0.1),
//                     but nothing downstream bakes the address in: a topology
//                     naming real remote hosts flows through the same code.
//   ShardPlacement  — one shard's slice of the parameter vector plus the
//                     endpoint of the server that owns it.
//   ClusterTopology — the full shard → endpoint map a client needs. Shards
//                     must tile the vector contiguously from offset 0
//                     (ParameterServer::ShardSplit produces the canonical
//                     layout); several shards may share one endpoint, in
//                     which case the client multiplexes them over a single
//                     connection (see shard_client.h).
//   ServerModel     — which ShardServer implementation fronts a store:
//                     kThreadPerConn (PR-5's thread-per-connection server,
//                     kept for A/B equivalence) or kEventLoop (the epoll
//                     server that holds thousands of clients on a bounded
//                     thread count).
//
// This header is deliberately dependency-light (strings and integers only)
// so config surfaces — RuntimeConfig, bench flags — can include it without
// pulling in sockets.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace specsync::net {

struct Endpoint {
  // "" and "localhost" mean 127.0.0.1; otherwise an IPv4 dotted quad or a
  // resolvable host name (resolution happens at connect/bind time).
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

// "host:port" (the canonical loopback host prints as "127.0.0.1:port").
std::string ToString(const Endpoint& endpoint);

// Which server implementation answers on an endpoint.
enum class ServerModel {
  kThreadPerConn,  // one accept thread + one handler thread per connection
  kEventLoop,      // epoll loop + bounded execution pool (see
                   // event_loop_server.h)
};

const char* ServerModelName(ServerModel model);

struct ShardPlacement {
  std::size_t offset = 0;
  std::size_t length = 0;
  Endpoint endpoint;
};

struct ClusterTopology {
  // Shard id = index. Offsets must be contiguous ascending from 0.
  std::vector<ShardPlacement> shards;

  // Total parameter dimension (sum of shard lengths).
  std::size_t dim() const;

  // True when the placement tiles [0, dim) contiguously and every endpoint
  // has a nonzero port. On failure, `error` (if given) names the bad shard.
  bool Validate(std::string* error = nullptr) const;

  // Endpoints in first-appearance order, deduplicated — the set of physical
  // links a client opens (one multiplexed connection each).
  std::vector<Endpoint> DistinctEndpoints() const;

  // Shard index -> index into DistinctEndpoints().
  std::vector<std::size_t> ShardLinkIndex() const;

  // All shards of `split` (ParameterServer::ShardSplit layout) behind one
  // endpoint — the runtime's loopback default.
  static ClusterTopology SingleServer(
      const std::vector<std::pair<std::size_t, std::size_t>>& split,
      const Endpoint& endpoint);
};

}  // namespace specsync::net
