// Shard servers: one or more ParameterServer shards behind a listening
// socket, in either of two concurrency models.
//
// Both models serve the shards of an existing ParameterServer (the single
// source of truth for layout and versions) over the wire protocol in
// net/wire.h, share one RequestExecutor (so request semantics are identical
// by construction), and answer requests for shards they do not own with
// kAckBadShard — misrouting is a client bug and must be loud, not silent.
//
//   ServerModel::kThreadPerConn → ShardServer (this file): one accept thread
//     plus one handler thread per connection. Simple, strictly serial per
//     connection, and kept as the A/B-equivalence reference — but one thread
//     per client collapses at fan-in scale.
//   ServerModel::kEventLoop → EventLoopServer (event_loop_server.h): one
//     epoll loop plus a bounded execution pool; thousands of concurrent
//     clients on a constant thread count, with pipelined (v2) out-of-order
//     responses.
//
// MakeShardServer() is the seam callers use; the concrete classes exist for
// tests that pin model-specific behavior.
//
// Failure semantics (both models): requests are processed at-most-once per
// received frame, but the transport as a whole is at-least-once — a client
// that times out retries, and a retried PushShard re-applies its slice (see
// shard_client.h). A malformed frame kills only its connection; the server
// keeps serving.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/endpoint.h"
#include "net/request_executor.h"
#include "ps/param_store.h"

namespace specsync::obs {
class MetricsRegistry;
class Counter;
class Gauge;
class SpanRecorder;
}  // namespace specsync::obs

namespace specsync::net {

class TcpListener;
class TcpConnection;

struct ShardServerConfig {
  // Address to bind. port 0 = pick an ephemeral port (read it back via
  // port() after Start()). The default binds loopback; a topology naming a
  // real interface flows through the same field.
  Endpoint bind{"127.0.0.1", 0};
  // Shard ids this server answers for; empty = all shards of the store.
  std::vector<std::size_t> served_shards;
  // Which concurrency model fronts the store.
  ServerModel model = ServerModel::kThreadPerConn;
  // kEventLoop only: bounded execution pool size. Requests run on this pool
  // so a slow shard lock never stalls the loop; total server threads =
  // 1 (loop) + pool_threads, independent of client count.
  std::size_t pool_threads = 4;
  // Test/bench injection: artificial per-request service time (see
  // RequestExecutor). Zero = off.
  std::chrono::microseconds service_delay{0};
  // Serve spans (when a SpanRecorder is attached) land on track
  // `trace_track_base + shard`; set a base when the recorder is shared with
  // other span sources so server tracks do not collide with theirs.
  std::uint32_t trace_track_base = 0;
};

// Common surface of both server models.
class ShardServerBase {
 public:
  virtual ~ShardServerBase() = default;

  // Binds and starts serving. False if the endpoint cannot be bound.
  virtual bool Start() = 0;

  // Stops accepting, drops every open connection, joins all threads.
  // Idempotent and safe to call from multiple threads; also run by the
  // destructor.
  virtual void Stop() = 0;

  // Listening port (valid after a successful Start()).
  virtual std::uint16_t port() const = 0;

  virtual ServerStats stats() const = 0;

  // Threads the server currently owns (accept/loop + handlers/pool). The
  // fan-in bench pins this: kEventLoop must stay constant in client count.
  virtual std::size_t thread_count() const = 0;
};

// Builds the server named by `config.model`. `spans` (optional) gives the
// executor a recorder for trace-context serve spans (DESIGN.md §14).
std::unique_ptr<ShardServerBase> MakeShardServer(
    ParameterServer* store, ShardServerConfig config,
    obs::MetricsRegistry* metrics = nullptr,
    obs::SpanRecorder* spans = nullptr);

// The thread-per-connection model.
class ShardServer : public ShardServerBase {
 public:
  // `store` is not owned and must outlive the server. `metrics` (optional)
  // receives service-time histograms "net.server.pull_s" / "net.server.push_s",
  // request counters, plus "net.server.accepts" / "net.server.reaped"
  // counters and the "net.server.live_handlers" gauge. `spans` (optional)
  // records trace-linked serve spans.
  ShardServer(ParameterServer* store, ShardServerConfig config,
              obs::MetricsRegistry* metrics = nullptr,
              obs::SpanRecorder* spans = nullptr);
  ~ShardServer() override;

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  bool Start() override;
  void Stop() override;
  std::uint16_t port() const override { return port_; }
  using Stats = ServerStats;
  ServerStats stats() const override;
  // 1 accept thread + live handler threads (grows with clients — the model's
  // structural cost, measured rather than hidden).
  std::size_t thread_count() const override;

 private:
  struct Conn;

  void AcceptLoop();
  void HandleConnection(Conn* conn);
  void ServeConnection(Conn* conn);
  // Joins and erases connections whose handlers have finished (accept-loop
  // thread only, called between accepts so a long-lived server with many
  // short connections does not accumulate dead threads).
  void ReapFinishedLocked();

  ParameterServer* store_;
  ShardServerConfig config_;
  RequestExecutor executor_;
  std::unique_ptr<TcpListener> listener_;
  std::uint16_t port_ = 0;

  // Start/Stop lifecycle. `lifecycle_mutex_` makes Stop() safe against
  // concurrent Stop()/destructor calls (the join-while-accepting audit:
  // Stop() must join the accept thread *before* touching conns_, so the
  // accept loop can never register a handler that Stop() has already missed,
  // and only one stopper may run the join sequence at all).
  mutable std::mutex lifecycle_mutex_;
  std::thread accept_thread_;
  std::mutex conns_mutex_;
  std::vector<std::unique_ptr<Conn>> conns_;  // guarded by conns_mutex_
  std::atomic<bool> stopping_{false};
  bool started_ = false;  // guarded by lifecycle_mutex_

  std::atomic<std::uint64_t> bad_frames_{0};
  std::atomic<std::size_t> live_handlers_{0};

  obs::Counter* accepts_counter_ = nullptr;
  obs::Counter* reaped_counter_ = nullptr;
  obs::Gauge* handlers_gauge_ = nullptr;
};

}  // namespace specsync::net
