// ShardServer: one or more ParameterServer shards behind a listening socket.
//
// The server side of the tcp_loopback transport. It owns no parameters
// itself — it serves the shards of an existing ParameterServer (the single
// source of truth for layout and versions) over the wire protocol in
// net/wire.h. `served_shards` restricts which shard ids this server answers
// for: the runtime's loopback mode runs one server serving every shard, the
// multi-process bench runs one server process per shard, each serving only
// its own (requests for a shard a server does not own are answered with
// kAckBadShard — misrouting is a client bug and must be loud, not silent).
//
// Concurrency: one accept thread plus one handler thread per connection.
// Handlers call straight into the ParameterServer, whose per-shard locks are
// the real serialization point, so concurrent clients contend exactly like
// in-process pullers/pushers.
//
// Failure semantics: requests are processed at-most-once per received frame,
// but the transport as a whole is at-least-once — a client that times out
// retries, and a retried PushShard re-applies its slice (see shard_client.h).
// A malformed frame kills only its connection; the server keeps serving.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ps/param_store.h"

namespace specsync::obs {
class MetricsRegistry;
class LatencyHistogram;
}  // namespace specsync::obs

namespace specsync::net {

class TcpListener;
class TcpConnection;

struct ShardServerConfig {
  // 0 = pick an ephemeral port (read it back via port() after Start()).
  std::uint16_t port = 0;
  // Shard ids this server answers for; empty = all shards of the store.
  std::vector<std::size_t> served_shards;
};

class ShardServer {
 public:
  // `store` is not owned and must outlive the server. `metrics` (optional)
  // receives service-time histograms "net.server.pull_s" / "net.server.push_s"
  // and request counters.
  ShardServer(ParameterServer* store, ShardServerConfig config,
              obs::MetricsRegistry* metrics = nullptr);
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  // Binds and starts the accept loop. False if the port cannot be bound.
  bool Start();

  // Stops accepting, drops every open connection, joins all threads.
  // Idempotent; also run by the destructor.
  void Stop();

  // Listening port (valid after a successful Start()).
  std::uint16_t port() const { return port_; }

  struct Stats {
    std::uint64_t pulls = 0;
    std::uint64_t pushes = 0;
    std::uint64_t commits = 0;
    // Requests answered with an error ack (bad shard / bad request).
    std::uint64_t rejected = 0;
    // Connections dropped on malformed frames or socket errors.
    std::uint64_t bad_frames = 0;
  };
  Stats stats() const;

 private:
  struct Conn;

  void AcceptLoop();
  void HandleConnection(Conn* conn);
  void ServeConnection(Conn* conn);
  bool ServesShard(std::size_t shard) const;

  ParameterServer* store_;
  ShardServerConfig config_;
  std::unique_ptr<TcpListener> listener_;
  std::uint16_t port_ = 0;

  std::thread accept_thread_;
  std::mutex conns_mutex_;
  std::vector<std::unique_ptr<Conn>> conns_;  // guarded by conns_mutex_
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::atomic<std::uint64_t> pulls_{0};
  std::atomic<std::uint64_t> pushes_{0};
  std::atomic<std::uint64_t> commits_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> bad_frames_{0};

  obs::LatencyHistogram* pull_hist_ = nullptr;
  obs::LatencyHistogram* push_hist_ = nullptr;
};

}  // namespace specsync::net
