// ShardClient: the worker side of the tcp_loopback transport.
//
// Replaces the runtime's direct ParameterServer calls with real per-shard
// requests: Pull() fans one PullShardReq out to every shard concurrently
// (over an optional ThreadPool, exactly like ParameterServer::Pull's
// in-process fan-out) and Push() routes a gradient to its owning shards —
// dense gradients ship each shard only its slice, sparse gradients ship each
// owning shard only its entries — followed by one CommitPushReq per distinct
// server touched.
//
// Reliability: every request is timeout + bounded retry. An attempt that
// times out is retried with a fresh request id; late or duplicated responses
// from earlier attempts are discarded by id match. The protocol is therefore
// at-least-once: a retried pull is harmless (idempotent read), a retried
// push may re-apply its slice if the original was executed but its ack was
// lost — the asynchronous-SGD tolerance the paper's protocol already assumes
// for duplicated gradient messages. A shard still unreachable after
// `max_attempts` is a cluster failure and fails loudly (SPECSYNC_CHECK).
//
// Fault injection: when a FaultPlan is attached, every attempt draws one
// data-link decision. Drop = the request is never sent (the attempt burns
// its timeout, then retries), delay = the send is held back by the injected
// extra delay, duplicate = the frame is sent twice (exercising the server's
// double-execution path and the client's stale-frame discard).
//
// Thread safety: each shard has its own connection guarded by its own mutex,
// so concurrent requests to different shards proceed in parallel; concurrent
// requests to the same shard serialize (give each worker its own client to
// model independent machines).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "fault/fault_plan.h"
#include "net/wire.h"
#include "ps/param_store.h"

namespace specsync {
class ThreadPool;
namespace obs {
class MetricsRegistry;
class LatencyHistogram;
class Counter;
}  // namespace obs
}  // namespace specsync

namespace specsync::net {

// One shard's placement: its slice of the parameter vector and the loopback
// port of the server process that owns it. Shard id = index in the config's
// vector; offsets must be contiguous ascending (ParameterServer::ShardSplit
// produces the canonical layout).
struct ShardEndpoint {
  std::size_t offset = 0;
  std::size_t length = 0;
  std::uint16_t port = 0;
};

struct ShardClientConfig {
  std::vector<ShardEndpoint> shards;
  // Per-attempt response deadline.
  std::chrono::milliseconds request_timeout{250};
  // Total attempts per request before declaring the shard unreachable.
  std::size_t max_attempts = 16;
  // Startup grace for connecting (covers the server racing its Start()).
  std::chrono::milliseconds connect_timeout{2000};
};

class ShardClient {
 public:
  // `faults` (optional, not owned) injects data-link faults per attempt.
  // `metrics` (optional, not owned) receives RTT histograms "net.rtt_s" and
  // "net.shard<k>.rtt_s" plus retry/timeout counters.
  ShardClient(ShardClientConfig config, FaultPlan* faults = nullptr,
              obs::MetricsRegistry* metrics = nullptr);
  ~ShardClient();

  ShardClient(const ShardClient&) = delete;
  ShardClient& operator=(const ShardClient&) = delete;

  // Connects to every endpoint (retrying within connect_timeout). False if
  // any endpoint stays unreachable.
  bool Connect();

  // Composed full-vector snapshot assembled from per-shard responses; with a
  // pool the shard requests fly concurrently. Like the in-process store's
  // composed Pull, the cross-shard snapshot may be torn under concurrent
  // pushes; `version` is the largest global version any response reported.
  PullResult Pull(ThreadPool* pool = nullptr);

  // One shard's snapshot over the wire.
  ShardPullResult PullShard(std::size_t s);

  // Routes `grad` to its owning shards (PushShardReq each, concurrently over
  // `pool` when given), then commits once per distinct server touched.
  // Returns the largest committed global version reported.
  std::uint64_t Push(const Gradient& grad, EpochId epoch,
                     ThreadPool* pool = nullptr);

  std::size_t dim() const { return dim_; }
  std::size_t num_shards() const { return config_.shards.size(); }

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t retries = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t reconnects = 0;
    // Frames discarded because their id belonged to an abandoned attempt.
    std::uint64_t stale_frames = 0;
    std::uint64_t injected_drops = 0;
    std::uint64_t injected_delays = 0;
    std::uint64_t injected_duplicates = 0;
  };
  Stats stats() const;

 private:
  struct Conn;

  // Sends `request` on shard `s`'s connection and returns the matching
  // response (retry loop lives here). Fatal after max_attempts.
  WireMessage Call(std::size_t s, const WireMessage& request);
  std::size_t ShardOf(std::size_t index) const;

  ShardClientConfig config_;
  FaultPlan* faults_;
  std::size_t dim_ = 0;
  std::vector<std::unique_ptr<Conn>> conns_;

  obs::LatencyHistogram* rtt_hist_ = nullptr;
  std::vector<obs::LatencyHistogram*> shard_rtt_;
  obs::Counter* retry_counter_ = nullptr;
  obs::Counter* timeout_counter_ = nullptr;
};

}  // namespace specsync::net
