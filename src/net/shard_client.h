// ShardClient: the worker side of the tcp transport, multiplexed and
// pipelined (wire v2).
//
// One connection per distinct server endpoint — not per shard. All shards a
// server owns share that server's link, and any number of requests may be in
// flight on it at once: Pull() issues every shard's PullShardReq back-to-back
// and only then starts awaiting responses, so N outstanding pulls cost ~1
// batched round trip instead of N serial ones (the pipelining regression test
// pins exactly this). Push() does the same for the per-shard slices, then one
// CommitPushReq per distinct server touched.
//
// Link anatomy. Each link owns a receiver thread and a pending-request table
// (request_id → caller's stack slot + deadline). A caller registers its slot,
// sends its frame, and sleeps on its slot's condition variable; the receiver
// matches each arriving frame to its slot by id and wakes exactly that
// caller. Responses may arrive in any order — that is the v2 contract. A
// frame whose id has no pending entry (late answer to a timed-out attempt,
// echo of an injected duplicate) counts as stale and is dropped.
//
// Locking. Two mutexes per link, never held together:
//   - the state mutex guards the pending table, id allocation, and link
//     up/down status;
//   - the send mutex serializes socket writes so concurrent senders
//     interleave at frame granularity.
// Senders must NOT hold the state mutex across a blocking send: when deep
// pipelining fills the kernel socket buffer, the send blocks until the
// server drains — which it can only do if our receiver keeps consuming
// responses, which it could not do if the sender sat on the one lock the
// receiver needs. Registering the pending entry first, then sending outside
// the state mutex, is what makes backpressure safe.
//
// Reliability. Unchanged at-least-once semantics: every request is timeout +
// bounded retry with a fresh id per attempt; a shard still unreachable after
// `max_attempts` fails loudly (SPECSYNC_CHECK). When a link dies (recv/send
// error, malformed frame), the receiver fails every pending slot so waiters
// retry immediately instead of burning their full timeout; the first
// retrying caller reconnects the link and respawns the receiver while the
// rest wait on the reconnect.
//
// Fault injection: with a FaultPlan attached, every attempt draws one
// data-link decision on the shared link. Drop = the frame is never sent (the
// attempt burns its timeout), delay = the send is held back, duplicate = the
// frame is sent twice (exercising the server's double-execution path and the
// stale-frame discard).
//
// Thread safety: the whole client is thread-safe; concurrent callers share
// links and pipeline naturally. Give each worker its own client to model
// independent machines.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "fault/fault_plan.h"
#include "net/endpoint.h"
#include "net/wire.h"
#include "ps/compression.h"
#include "ps/param_store.h"

namespace specsync {
class ThreadPool;
namespace obs {
class MetricsRegistry;
class LatencyHistogram;
class Counter;
class Gauge;
class SpanRecorder;
}  // namespace obs
}  // namespace specsync

namespace specsync::net {

struct ShardClientConfig {
  // Shard → endpoint map (shard id = index; ParameterServer::ShardSplit
  // produces the canonical slicing). Shards sharing an endpoint share one
  // multiplexed connection.
  ClusterTopology topology;
  // Per-attempt response deadline.
  std::chrono::milliseconds request_timeout{250};
  // Total attempts per request before declaring the shard unreachable.
  std::size_t max_attempts = 16;
  // Startup grace for connecting (covers the server racing its Start()).
  std::chrono::milliseconds connect_timeout{2000};
  // Track ("tid") client request spans are recorded on when a SpanRecorder
  // is attached — give each worker its own track so its net spans interleave
  // with its compute spans on one timeline.
  std::uint32_t trace_track = 0;
  // Wire compression (ps/compression.h). int8/fp16 make Push() ship the
  // compact kind-2 coded frames (the gradient must already be
  // codec-transformed, so the doubles re-quantize exactly); delta makes
  // Pull() send conditional PullShardDeltaReq for shards it holds a cached
  // copy of. kNone keeps every frame byte-identical to the pre-codec wire.
  CompressionSpec compression;
};

class ShardClient {
 public:
  // `faults` (optional, not owned) injects data-link faults per attempt.
  // `metrics` (optional, not owned) receives RTT histograms "net.rtt_s" and
  // "net.shard<k>.rtt_s", retry/timeout counters, and per-link labeled
  // instruments: "net.link.{reconnects,stale_frames,link_deaths}{link=...}"
  // counters plus "net.link.{in_flight,pending_depth}{link=...}" gauges.
  // `spans` (optional, not owned) records one "net.client" span per
  // completed request, stamped with a process-unique trace_id that also
  // rides every attempt's frame as the wire trace-context extension — the
  // server echoes it into its serve span, stitching the two across
  // processes (DESIGN.md §14).
  ShardClient(ShardClientConfig config, FaultPlan* faults = nullptr,
              obs::MetricsRegistry* metrics = nullptr,
              obs::SpanRecorder* spans = nullptr);
  ~ShardClient();

  ShardClient(const ShardClient&) = delete;
  ShardClient& operator=(const ShardClient&) = delete;

  // Opens one connection per distinct endpoint (retrying within
  // connect_timeout) and starts the receivers. False if any endpoint stays
  // unreachable.
  bool Connect();

  // Composed full-vector snapshot assembled from per-shard responses, all
  // shards pipelined in one batch. Like the in-process store's composed
  // Pull, the cross-shard snapshot may be torn under concurrent pushes;
  // `version` is the largest global version any response reported. `pool` is
  // accepted for call-site compatibility and unused — pipelining already
  // overlaps the shard requests without extra threads.
  PullResult Pull(ThreadPool* pool = nullptr);

  // One shard's snapshot over the wire.
  ShardPullResult PullShard(std::size_t s);

  // Routes `grad` to its owning shards (all slice messages pipelined), then
  // commits once per distinct server touched. Returns the largest committed
  // global version reported. `pool` is accepted and unused, as in Pull().
  std::uint64_t Push(const Gradient& grad, EpochId epoch,
                     ThreadPool* pool = nullptr);

  std::size_t dim() const { return dim_; }
  std::size_t num_shards() const { return config_.topology.shards.size(); }
  // Physical connections (distinct endpoints), not shards.
  std::size_t num_links() const { return links_.size(); }

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t retries = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t reconnects = 0;
    // Frames discarded because their id belonged to an abandoned attempt.
    std::uint64_t stale_frames = 0;
    std::uint64_t injected_drops = 0;
    std::uint64_t injected_delays = 0;
    std::uint64_t injected_duplicates = 0;
    // Wasted wire bytes: frames sent again for retried attempts plus the
    // second copy of injected duplicates. Kept apart from request traffic so
    // goodput accounting is not inflated by a lossy link's retry storm.
    std::uint64_t retransmit_bytes = 0;
    // Delta pulls answered from the local cache / with a fresh snapshot.
    std::uint64_t delta_hits = 0;
    std::uint64_t delta_misses = 0;
  };
  Stats stats() const;

 private:
  struct Link;
  struct PendingSlot;
  struct Ticket;

  // (Re)establishes the link if down; only one caller reconnects, the rest
  // wait for its verdict. False = the endpoint refused this round.
  bool EnsureLink(Link& link);
  void ReceiverLoop(Link* link);
  Ticket MakeTicket(std::size_t shard, const WireMessage* request);
  // One attempt: fault draw, pending registration, send. Leaves the ticket
  // in-flight on success; a failed attempt is consumed silently (the caller
  // loops).
  void IssueAttempt(Ticket& ticket);
  // Attempts until the ticket is in flight; SPECSYNC_CHECK-fails once
  // max_attempts is exhausted.
  void IssueUntilInFlight(Ticket& ticket);
  // Blocks until the ticket's response arrives, retrying timed-out and
  // link-failed attempts. Validates error acks.
  WireMessage Await(Ticket& ticket);
  // Emits the completed request's "net.client" span (spans_ attached only).
  void RecordClientSpan(const Ticket& ticket);
  // Issue + Await: one synchronous request.
  WireMessage Call(std::size_t shard, const WireMessage& request);
  std::size_t ShardOf(std::size_t index) const;

  ShardClientConfig config_;
  FaultPlan* faults_;
  obs::SpanRecorder* spans_ = nullptr;
  std::size_t dim_ = 0;
  std::vector<std::size_t> shard_link_;  // shard id → links_ index
  std::vector<std::unique_ptr<Link>> links_;

  obs::LatencyHistogram* rtt_hist_ = nullptr;
  std::vector<obs::LatencyHistogram*> shard_rtt_;
  obs::Counter* retry_counter_ = nullptr;
  obs::Counter* timeout_counter_ = nullptr;
  obs::Counter* delta_hits_counter_ = nullptr;
  obs::Counter* delta_misses_counter_ = nullptr;
  obs::Counter* pull_saved_counter_ = nullptr;
  obs::Counter* push_saved_counter_ = nullptr;

  // Delta-pull cache: last pulled copy + shard version per shard
  // (kNoCachedVersion = never pulled; 0 is a real version). Guarded by
  // cache_mutex_ — Pull() is the only reader/writer, the mutex just keeps
  // concurrent Pull() callers on one client well-defined.
  static constexpr std::uint64_t kNoCachedVersion = ~0ull;
  std::mutex cache_mutex_;
  std::vector<std::vector<double>> cached_params_;
  std::vector<std::uint64_t> cached_versions_;
  std::atomic<std::uint64_t> delta_hits_{0};
  std::atomic<std::uint64_t> delta_misses_{0};
};

}  // namespace specsync::net
