#include "net/wire.h"

#include <bit>
#include <cstring>

#include "ps/compression.h"

namespace specsync::net {

namespace {

void PutU8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void PutU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PutF64(std::vector<std::uint8_t>& out, double v) {
  PutU64(out, std::bit_cast<std::uint64_t>(v));
}

// Bounds-checked little-endian reader over one payload. Every Take sets
// `ok = false` instead of reading past the end, so decoding a truncated
// payload degrades to a single status check at the end.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t TakeU8() {
    if (!Need(1)) return 0;
    return bytes_[pos_++];
  }
  std::uint16_t TakeU16() {
    if (!Need(2)) return 0;
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v = static_cast<std::uint16_t>(v | (bytes_[pos_ + i] << (8 * i)));
    }
    pos_ += 2;
    return v;
  }
  std::uint32_t TakeU32() {
    if (!Need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::uint64_t TakeU64() {
    if (!Need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  double TakeF64() { return std::bit_cast<double>(TakeU64()); }

  void Skip(std::size_t n) {
    if (Need(n)) pos_ += n;
  }

  // True when `count` items of `item_bytes` each still fit (overflow-safe:
  // a corrupt count cannot wrap the product back into range).
  bool CanTake(std::uint64_t count, std::size_t item_bytes) const {
    return count <= (bytes_.size() - pos_) / item_bytes;
  }

  bool ok() const { return ok_; }
  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  bool Need(std::size_t n) {
    if (!ok_ || bytes_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

MsgType TypeOf(const WireMessage& message) {
  struct Visitor {
    MsgType operator()(const PullShardReq&) { return MsgType::kPullShardReq; }
    MsgType operator()(const PullShardResp&) { return MsgType::kPullShardResp; }
    MsgType operator()(const PushShardReq&) { return MsgType::kPushShardReq; }
    MsgType operator()(const CommitPushReq&) { return MsgType::kCommitPushReq; }
    MsgType operator()(const AckResp&) { return MsgType::kAck; }
    MsgType operator()(const PullShardDeltaReq&) {
      return MsgType::kPullShardDeltaReq;
    }
    MsgType operator()(const PullShardNotModified&) {
      return MsgType::kPullShardNotModified;
    }
  };
  return std::visit(Visitor{}, message);
}

// Kind-2 (coded) value payload. The doubles in the struct are already
// quantization-idempotent (produced by GradientCodec::Transform or by a
// previous decode), so re-deriving the quantized form here reproduces the
// exact bytes the original encoder emitted.
void EncodeCodedPush(const PushShardReq& m, std::vector<std::uint8_t>& out) {
  PutU8(out, 2);  // kind
  PutU8(out, m.coded);
  PutU8(out, m.sparse ? 1 : 0);
  const std::span<const double> values =
      m.sparse ? std::span<const double>(m.values)
               : std::span<const double>(m.dense);
  const bool int8 = m.coded == static_cast<std::uint8_t>(CodecKind::kInt8);
  double scale = 0.0;
  if (int8) {
    scale = Int8ScaleFor(values);
    PutF64(out, scale);
  }
  if (m.sparse) {
    PutU64(out, m.indices.size());
    for (std::uint64_t index : m.indices) PutU64(out, index);
  } else {
    PutU64(out, m.dense_offset);
    PutU64(out, m.dense.size());
  }
  for (double v : values) {
    if (int8) {
      PutU8(out, static_cast<std::uint8_t>(QuantizeInt8(v, scale)));
    } else {
      PutU16(out, EncodeFp16(v));
    }
  }
}

void EncodePayload(const WireMessage& message, std::vector<std::uint8_t>& out) {
  struct Visitor {
    std::vector<std::uint8_t>& out;
    void operator()(const PullShardReq& m) { PutU32(out, m.shard); }
    void operator()(const PullShardResp& m) {
      PutU32(out, m.shard);
      PutU64(out, m.offset);
      PutU64(out, m.shard_version);
      PutU64(out, m.global_version);
      PutU64(out, m.params.size());
      for (double v : m.params) PutF64(out, v);
    }
    void operator()(const PushShardReq& m) {
      PutU32(out, m.shard);
      PutU64(out, m.epoch);
      if (m.coded != 0) {
        EncodeCodedPush(m, out);
        return;
      }
      PutU8(out, m.sparse ? 1 : 0);
      if (m.sparse) {
        PutU64(out, m.indices.size());
        for (std::size_t i = 0; i < m.indices.size(); ++i) {
          PutU64(out, m.indices[i]);
          PutF64(out, m.values[i]);
        }
      } else {
        PutU64(out, m.dense_offset);
        PutU64(out, m.dense.size());
        for (double v : m.dense) PutF64(out, v);
      }
    }
    void operator()(const CommitPushReq&) {}
    void operator()(const AckResp& m) {
      PutU32(out, m.status);
      PutU64(out, m.value);
    }
    void operator()(const PullShardDeltaReq& m) {
      PutU32(out, m.shard);
      PutU64(out, m.known_version);
    }
    void operator()(const PullShardNotModified& m) {
      PutU32(out, m.shard);
      PutU64(out, m.shard_version);
      PutU64(out, m.global_version);
    }
  };
  std::visit(Visitor{out}, message);
}

}  // namespace

const char* WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk: return "ok";
    case WireStatus::kShortHeader: return "short_header";
    case WireStatus::kBadMagic: return "bad_magic";
    case WireStatus::kBadVersion: return "bad_version";
    case WireStatus::kBadType: return "bad_type";
    case WireStatus::kOversized: return "oversized";
    case WireStatus::kTruncated: return "truncated";
    case WireStatus::kMalformed: return "malformed";
  }
  return "unknown";
}

std::vector<std::uint8_t> EncodeFrame(const WireMessage& message,
                                      std::uint64_t request_id,
                                      const TraceContext* trace) {
  std::vector<std::uint8_t> frame;
  frame.reserve(kHeaderBytes + 64);
  PutU32(frame, kWireMagic);
  PutU16(frame, kWireVersion);
  PutU16(frame, static_cast<std::uint16_t>(TypeOf(message)));
  PutU64(frame, request_id);
  PutU32(frame, 0);  // payload_bytes, patched below
  EncodePayload(message, frame);
  if (trace != nullptr && trace->valid()) {
    PutU32(frame, kTraceExtMagic);
    PutU16(frame, kTraceExtBytes);
    PutU64(frame, trace->trace_id);
    PutU64(frame, trace->parent_span);
  }
  const std::uint64_t payload = frame.size() - kHeaderBytes;
  frame[16] = static_cast<std::uint8_t>(payload);
  frame[17] = static_cast<std::uint8_t>(payload >> 8);
  frame[18] = static_cast<std::uint8_t>(payload >> 16);
  frame[19] = static_cast<std::uint8_t>(payload >> 24);
  return frame;
}

WireStatus DecodeHeader(std::span<const std::uint8_t> bytes,
                        FrameHeader& out) {
  if (bytes.size() < kHeaderBytes) return WireStatus::kShortHeader;
  Reader r(bytes);
  const std::uint32_t magic = r.TakeU32();
  if (magic != kWireMagic) return WireStatus::kBadMagic;
  out.version = r.TakeU16();
  if (out.version != kWireVersion) return WireStatus::kBadVersion;
  const std::uint16_t type = r.TakeU16();
  if (type < static_cast<std::uint16_t>(MsgType::kPullShardReq) ||
      type > static_cast<std::uint16_t>(MsgType::kPullShardNotModified)) {
    return WireStatus::kBadType;
  }
  out.type = static_cast<MsgType>(type);
  out.request_id = r.TakeU64();
  out.payload_bytes = r.TakeU32();
  if (out.payload_bytes > kMaxPayloadBytes) return WireStatus::kOversized;
  return WireStatus::kOk;
}

namespace {

// Shared payload tail: either the payload is exhausted (no extension), or the
// remainder must be a complete trace-context extension. Anything else keeps
// the strict-decode contract: non-extension trailing bytes are kMalformed, a
// extension cut short is kTruncated. `ext_bytes` longer than the 16 bytes we
// understand is skipped for forward compatibility.
WireStatus DecodeTraceTail(Reader& r, TraceContext* trace) {
  if (trace != nullptr) *trace = TraceContext{};
  if (r.exhausted()) return WireStatus::kOk;
  TraceContext parsed;
  const std::uint32_t ext_magic = r.TakeU32();
  const std::uint16_t ext_bytes = r.TakeU16();
  if (!r.ok() || ext_magic != kTraceExtMagic || ext_bytes < kTraceExtBytes) {
    return WireStatus::kMalformed;
  }
  parsed.trace_id = r.TakeU64();
  parsed.parent_span = r.TakeU64();
  r.Skip(ext_bytes - kTraceExtBytes);
  if (!r.ok()) return WireStatus::kTruncated;
  if (!r.exhausted()) return WireStatus::kMalformed;
  if (trace != nullptr) *trace = parsed;
  return WireStatus::kOk;
}

}  // namespace

WireStatus DecodePayload(const FrameHeader& header,
                         std::span<const std::uint8_t> payload,
                         WireMessage& out, TraceContext* trace) {
  if (payload.size() < header.payload_bytes) return WireStatus::kTruncated;
  if (payload.size() > header.payload_bytes) return WireStatus::kMalformed;
  Reader r(payload);
  switch (header.type) {
    case MsgType::kPullShardReq: {
      PullShardReq m;
      m.shard = r.TakeU32();
      if (!r.ok()) return WireStatus::kTruncated;
      const WireStatus tail = DecodeTraceTail(r, trace);
      if (tail != WireStatus::kOk) return tail;
      out = std::move(m);
      return WireStatus::kOk;
    }
    case MsgType::kPullShardResp: {
      PullShardResp m;
      m.shard = r.TakeU32();
      m.offset = r.TakeU64();
      m.shard_version = r.TakeU64();
      m.global_version = r.TakeU64();
      const std::uint64_t count = r.TakeU64();
      if (!r.ok() || !r.CanTake(count, sizeof(double))) {
        return WireStatus::kTruncated;
      }
      m.params.reserve(count);
      for (std::uint64_t i = 0; i < count; ++i) m.params.push_back(r.TakeF64());
      if (!r.ok()) return WireStatus::kTruncated;
      const WireStatus tail = DecodeTraceTail(r, trace);
      if (tail != WireStatus::kOk) return tail;
      out = std::move(m);
      return WireStatus::kOk;
    }
    case MsgType::kPushShardReq: {
      PushShardReq m;
      m.shard = r.TakeU32();
      m.epoch = r.TakeU64();
      const std::uint8_t kind = r.TakeU8();
      if (!r.ok() || kind > 2) {
        return r.ok() ? WireStatus::kMalformed : WireStatus::kTruncated;
      }
      if (kind == 2) {
        const std::uint8_t codec = r.TakeU8();
        const std::uint8_t sparse = r.TakeU8();
        if (!r.ok() ||
            (codec != static_cast<std::uint8_t>(CodecKind::kInt8) &&
             codec != static_cast<std::uint8_t>(CodecKind::kFp16)) ||
            sparse > 1) {
          return r.ok() ? WireStatus::kMalformed : WireStatus::kTruncated;
        }
        m.coded = codec;
        m.sparse = sparse == 1;
        const bool int8 = codec == static_cast<std::uint8_t>(CodecKind::kInt8);
        const double scale = int8 ? r.TakeF64() : 0.0;
        const std::size_t value_bytes = int8 ? 1 : 2;
        std::uint64_t count = 0;
        if (m.sparse) {
          count = r.TakeU64();
          if (!r.ok() || !r.CanTake(count, 8 + value_bytes)) {
            return WireStatus::kTruncated;
          }
          m.indices.reserve(count);
          for (std::uint64_t i = 0; i < count; ++i) {
            m.indices.push_back(r.TakeU64());
          }
        } else {
          m.dense_offset = r.TakeU64();
          count = r.TakeU64();
          if (!r.ok() || !r.CanTake(count, value_bytes)) {
            return WireStatus::kTruncated;
          }
        }
        std::vector<double>& values = m.sparse ? m.values : m.dense;
        values.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
          if (int8) {
            values.push_back(DequantizeInt8(
                static_cast<std::int8_t>(r.TakeU8()), scale));
          } else {
            values.push_back(DecodeFp16(r.TakeU16()));
          }
        }
        if (!r.ok()) return WireStatus::kTruncated;
        const WireStatus tail = DecodeTraceTail(r, trace);
        if (tail != WireStatus::kOk) return tail;
        out = std::move(m);
        return WireStatus::kOk;
      }
      m.sparse = kind == 1;
      if (m.sparse) {
        const std::uint64_t nnz = r.TakeU64();
        if (!r.ok() || !r.CanTake(nnz, 16)) return WireStatus::kTruncated;
        m.indices.reserve(nnz);
        m.values.reserve(nnz);
        for (std::uint64_t i = 0; i < nnz; ++i) {
          m.indices.push_back(r.TakeU64());
          m.values.push_back(r.TakeF64());
        }
      } else {
        m.dense_offset = r.TakeU64();
        const std::uint64_t count = r.TakeU64();
        if (!r.ok() || !r.CanTake(count, sizeof(double))) {
          return WireStatus::kTruncated;
        }
        m.dense.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
          m.dense.push_back(r.TakeF64());
        }
      }
      if (!r.ok()) return WireStatus::kTruncated;
      const WireStatus tail = DecodeTraceTail(r, trace);
      if (tail != WireStatus::kOk) return tail;
      out = std::move(m);
      return WireStatus::kOk;
    }
    case MsgType::kCommitPushReq: {
      const WireStatus tail = DecodeTraceTail(r, trace);
      if (tail != WireStatus::kOk) return tail;
      out = CommitPushReq{};
      return WireStatus::kOk;
    }
    case MsgType::kAck: {
      AckResp m;
      m.status = r.TakeU32();
      m.value = r.TakeU64();
      if (!r.ok()) return WireStatus::kTruncated;
      const WireStatus tail = DecodeTraceTail(r, trace);
      if (tail != WireStatus::kOk) return tail;
      out = m;
      return WireStatus::kOk;
    }
    case MsgType::kPullShardDeltaReq: {
      PullShardDeltaReq m;
      m.shard = r.TakeU32();
      m.known_version = r.TakeU64();
      if (!r.ok()) return WireStatus::kTruncated;
      const WireStatus tail = DecodeTraceTail(r, trace);
      if (tail != WireStatus::kOk) return tail;
      out = m;
      return WireStatus::kOk;
    }
    case MsgType::kPullShardNotModified: {
      PullShardNotModified m;
      m.shard = r.TakeU32();
      m.shard_version = r.TakeU64();
      m.global_version = r.TakeU64();
      if (!r.ok()) return WireStatus::kTruncated;
      const WireStatus tail = DecodeTraceTail(r, trace);
      if (tail != WireStatus::kOk) return tail;
      out = m;
      return WireStatus::kOk;
    }
  }
  return WireStatus::kBadType;
}

WireStatus DecodeFrame(std::span<const std::uint8_t> frame,
                       std::uint64_t& request_id, WireMessage& out,
                       TraceContext* trace) {
  FrameHeader header;
  const WireStatus header_status = DecodeHeader(frame, header);
  if (header_status != WireStatus::kOk) return header_status;
  request_id = header.request_id;
  return DecodePayload(header, frame.subspan(kHeaderBytes), out, trace);
}

}  // namespace specsync::net
