#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace specsync::net {

namespace {

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Resolves `host` to an IPv4 address: "" / "localhost" short-circuit to
// loopback, dotted quads parse directly, anything else goes through
// getaddrinfo (the true-remote seam; never reached on the loopback paths).
bool ResolveIpv4(const std::string& host, in_addr* out) {
  if (host.empty() || host == "localhost" || host == "127.0.0.1") {
    out->s_addr = htonl(INADDR_LOOPBACK);
    return true;
  }
  if (::inet_pton(AF_INET, host.c_str(), out) == 1) return true;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  if (::getaddrinfo(host.c_str(), nullptr, &hints, &result) != 0 ||
      result == nullptr) {
    return false;
  }
  *out = reinterpret_cast<const sockaddr_in*>(result->ai_addr)->sin_addr;
  ::freeaddrinfo(result);
  return true;
}

bool EndpointAddr(const Endpoint& endpoint, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(endpoint.port);
  return ResolveIpv4(endpoint.host, &addr->sin_addr);
}

bool MakeNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// Remaining poll budget in milliseconds, clamped to int range; -1 = forever.
int PollTimeoutMs(std::chrono::steady_clock::time_point deadline) {
  if (deadline == std::chrono::steady_clock::time_point::max()) return -1;
  const auto remaining = deadline - std::chrono::steady_clock::now();
  if (remaining <= std::chrono::steady_clock::duration::zero()) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(remaining).count();
  // Round up so a sub-millisecond budget polls once instead of busy-looping.
  return static_cast<int>(std::min<long long>(ms + 1, 1 << 30));
}

}  // namespace

TcpConnection::TcpConnection(int fd) : fd_(fd) {
  if (fd_ >= 0) SetNoDelay(fd_);
}

TcpConnection::~TcpConnection() {
  if (fd_ >= 0) ::close(fd_);
}

TcpConnection::TcpConnection(TcpConnection&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

TcpConnection& TcpConnection::operator=(TcpConnection&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

TcpConnection TcpConnection::Connect(const Endpoint& endpoint) {
  sockaddr_in addr;
  if (!EndpointAddr(endpoint, &addr)) return TcpConnection();
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return TcpConnection();
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    ::close(fd);
    return TcpConnection();
  }
  return TcpConnection(fd);
}

TcpConnection TcpConnection::ConnectLoopback(std::uint16_t port) {
  return Connect(Endpoint{"127.0.0.1", port});
}

bool TcpConnection::SetNonBlocking() {
  return fd_ >= 0 && MakeNonBlocking(fd_);
}

bool TcpConnection::SendAll(std::span<const std::uint8_t> bytes) {
  if (fd_ < 0) return false;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

TcpConnection::RecvStatus TcpConnection::RecvFrame(
    std::vector<std::uint8_t>& frame,
    std::chrono::steady_clock::time_point deadline) {
  if (fd_ < 0) return RecvStatus::kError;
  frame.clear();
  frame.resize(kHeaderBytes);
  std::size_t have = 0;
  std::size_t want = kHeaderBytes;
  bool header_parsed = false;
  for (;;) {
    while (have < want) {
      pollfd pfd{fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, PollTimeoutMs(deadline));
      if (pr < 0) {
        if (errno == EINTR) continue;
        return RecvStatus::kError;
      }
      if (pr == 0) return RecvStatus::kTimeout;
      const ssize_t n = ::recv(fd_, frame.data() + have, want - have, 0);
      if (n == 0) return RecvStatus::kClosed;
      if (n < 0) {
        if (errno == EINTR) continue;
        return RecvStatus::kError;
      }
      have += static_cast<std::size_t>(n);
    }
    if (header_parsed) return RecvStatus::kFrame;
    FrameHeader header;
    if (DecodeHeader(frame, header) != WireStatus::kOk) {
      return RecvStatus::kBadFrame;
    }
    header_parsed = true;
    want = kHeaderBytes + header.payload_bytes;
    frame.resize(want);
    if (have == want) return RecvStatus::kFrame;
  }
}

TcpConnection::IoStatus TcpConnection::RecvSome(std::vector<std::uint8_t>& out,
                                                std::size_t max,
                                                std::size_t& n) {
  n = 0;
  if (fd_ < 0) return IoStatus::kError;
  // recv(fd, ptr, 0) returns 0, which the check below would misreport as
  // kClosed — a zero-byte read request must stay a no-op.
  if (max == 0) return IoStatus::kOk;
  const std::size_t old_size = out.size();
  out.resize(old_size + max);
  ssize_t got;
  do {
    got = ::recv(fd_, out.data() + old_size, max, 0);
  } while (got < 0 && errno == EINTR);
  if (got > 0) {
    n = static_cast<std::size_t>(got);
    out.resize(old_size + n);
    return IoStatus::kOk;
  }
  out.resize(old_size);
  if (got == 0) return IoStatus::kClosed;
  if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kWouldBlock;
  return IoStatus::kError;
}

TcpConnection::IoStatus TcpConnection::SendSome(
    std::span<const std::uint8_t> bytes, std::size_t& n) {
  n = 0;
  if (fd_ < 0) return IoStatus::kError;
  // An empty span may carry a null data() pointer; send(fd, nullptr, 0) is
  // unspecified, and a caller draining a fully-sent buffer must see a clean
  // no-op rather than spin on the syscall.
  if (bytes.empty()) return IoStatus::kOk;
  ssize_t sent;
  do {
    sent = ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  } while (sent < 0 && errno == EINTR);
  if (sent >= 0) {
    n = static_cast<std::size_t>(sent);
    return IoStatus::kOk;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kWouldBlock;
  return IoStatus::kError;
}

void TcpConnection::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

TcpListener::TcpListener(int listen_fd, int wake_rd, int wake_wr,
                         std::uint16_t port)
    : listen_fd_(listen_fd), wake_rd_(wake_rd), wake_wr_(wake_wr),
      port_(port) {}

TcpListener::~TcpListener() {
  Shutdown();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
}

std::unique_ptr<TcpListener> TcpListener::Bind(const Endpoint& endpoint) {
  sockaddr_in addr;
  if (!EndpointAddr(endpoint, &addr)) return nullptr;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return nullptr;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 1024) < 0) {
    ::close(fd);
    return nullptr;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return nullptr;
  }
  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_CLOEXEC) < 0) {
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<TcpListener>(new TcpListener(
      fd, pipe_fds[0], pipe_fds[1], ntohs(addr.sin_port)));
}

std::unique_ptr<TcpListener> TcpListener::BindLoopback(std::uint16_t port) {
  return Bind(Endpoint{"127.0.0.1", port});
}

bool TcpListener::SetNonBlocking() {
  return listen_fd_ >= 0 && MakeNonBlocking(listen_fd_);
}

TcpConnection TcpListener::Accept() {
  for (;;) {
    pollfd pfds[2] = {{listen_fd_, POLLIN, 0}, {wake_rd_, POLLIN, 0}};
    const int pr = ::poll(pfds, 2, -1);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return TcpConnection();
    }
    if (pfds[1].revents != 0) return TcpConnection();  // shutdown requested
    if ((pfds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return TcpConnection();
    }
    return TcpConnection(client);
  }
}

TcpConnection TcpListener::TryAccept() {
  for (;;) {
    const int client = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (client >= 0) return TcpConnection(client);
    if (errno == EINTR || errno == ECONNABORTED) continue;
    return TcpConnection();  // EAGAIN (no client) or a real error: none now
  }
}

void TcpListener::Shutdown() {
  if (wake_wr_ >= 0) {
    const std::uint8_t byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_wr_, &byte, 1);
  }
}

}  // namespace specsync::net
