#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace specsync::net {

namespace {

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in LoopbackAddr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

// Remaining poll budget in milliseconds, clamped to int range; -1 = forever.
int PollTimeoutMs(std::chrono::steady_clock::time_point deadline) {
  if (deadline == std::chrono::steady_clock::time_point::max()) return -1;
  const auto remaining = deadline - std::chrono::steady_clock::now();
  if (remaining <= std::chrono::steady_clock::duration::zero()) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(remaining).count();
  // Round up so a sub-millisecond budget polls once instead of busy-looping.
  return static_cast<int>(std::min<long long>(ms + 1, 1 << 30));
}

}  // namespace

TcpConnection::TcpConnection(int fd) : fd_(fd) {
  if (fd_ >= 0) SetNoDelay(fd_);
}

TcpConnection::~TcpConnection() {
  if (fd_ >= 0) ::close(fd_);
}

TcpConnection::TcpConnection(TcpConnection&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

TcpConnection& TcpConnection::operator=(TcpConnection&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

TcpConnection TcpConnection::ConnectLoopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return TcpConnection();
  const sockaddr_in addr = LoopbackAddr(port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    ::close(fd);
    return TcpConnection();
  }
  return TcpConnection(fd);
}

bool TcpConnection::SendAll(std::span<const std::uint8_t> bytes) {
  if (fd_ < 0) return false;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

TcpConnection::RecvStatus TcpConnection::RecvFrame(
    std::vector<std::uint8_t>& frame,
    std::chrono::steady_clock::time_point deadline) {
  if (fd_ < 0) return RecvStatus::kError;
  frame.clear();
  frame.resize(kHeaderBytes);
  std::size_t have = 0;
  std::size_t want = kHeaderBytes;
  bool header_parsed = false;
  for (;;) {
    while (have < want) {
      pollfd pfd{fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, PollTimeoutMs(deadline));
      if (pr < 0) {
        if (errno == EINTR) continue;
        return RecvStatus::kError;
      }
      if (pr == 0) return RecvStatus::kTimeout;
      const ssize_t n = ::recv(fd_, frame.data() + have, want - have, 0);
      if (n == 0) return RecvStatus::kClosed;
      if (n < 0) {
        if (errno == EINTR) continue;
        return RecvStatus::kError;
      }
      have += static_cast<std::size_t>(n);
    }
    if (header_parsed) return RecvStatus::kFrame;
    FrameHeader header;
    if (DecodeHeader(frame, header) != WireStatus::kOk) {
      return RecvStatus::kBadFrame;
    }
    header_parsed = true;
    want = kHeaderBytes + header.payload_bytes;
    frame.resize(want);
    if (have == want) return RecvStatus::kFrame;
  }
}

void TcpConnection::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

TcpListener::TcpListener(int listen_fd, int wake_rd, int wake_wr,
                         std::uint16_t port)
    : listen_fd_(listen_fd), wake_rd_(wake_rd), wake_wr_(wake_wr),
      port_(port) {}

TcpListener::~TcpListener() {
  Shutdown();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
}

std::unique_ptr<TcpListener> TcpListener::BindLoopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return nullptr;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = LoopbackAddr(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 128) < 0) {
    ::close(fd);
    return nullptr;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return nullptr;
  }
  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_CLOEXEC) < 0) {
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<TcpListener>(new TcpListener(
      fd, pipe_fds[0], pipe_fds[1], ntohs(addr.sin_port)));
}

TcpConnection TcpListener::Accept() {
  for (;;) {
    pollfd pfds[2] = {{listen_fd_, POLLIN, 0}, {wake_rd_, POLLIN, 0}};
    const int pr = ::poll(pfds, 2, -1);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return TcpConnection();
    }
    if (pfds[1].revents != 0) return TcpConnection();  // shutdown requested
    if ((pfds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return TcpConnection();
    }
    return TcpConnection(client);
  }
}

void TcpListener::Shutdown() {
  if (wake_wr_ >= 0) {
    const std::uint8_t byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_wr_, &byte, 1);
  }
}

}  // namespace specsync::net
