// RAII POSIX TCP primitives for the shard transport.
//
// Deliberately minimal: IPv4 with a resolvable-host seam (loopback remains
// the tested default — see net/endpoint.h), blocking sockets with
// poll()-bounded receives for the thread-per-connection paths, a small
// non-blocking surface (TryAccept / RecvSome / SendSome) for the epoll
// event-loop server, TCP_NODELAY on every connection (the protocol is
// request/response with small frames — Nagle would serialize the pipelined
// fan-out), and a self-pipe so Accept() can be woken for shutdown without
// racing a close().
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "net/endpoint.h"
#include "net/wire.h"

namespace specsync::net {

// One established stream. Move-only; the descriptor closes with the object.
class TcpConnection {
 public:
  TcpConnection() = default;
  explicit TcpConnection(int fd);
  ~TcpConnection();

  TcpConnection(TcpConnection&& other) noexcept;
  TcpConnection& operator=(TcpConnection&& other) noexcept;
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // Connects to `endpoint` ("" / "localhost" → 127.0.0.1). Invalid
  // connection on failure.
  static TcpConnection Connect(const Endpoint& endpoint);

  // Connects to 127.0.0.1:port (loopback convenience, equivalent to
  // Connect({"127.0.0.1", port})).
  static TcpConnection ConnectLoopback(std::uint16_t port);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Switches the socket to non-blocking mode (event-loop connections only;
  // the blocking SendAll/RecvFrame paths assume blocking sockets).
  bool SetNonBlocking();

  // Writes all of `bytes` (handles partial writes and EINTR; SIGPIPE is
  // suppressed). False on a broken connection. Blocking sockets only.
  bool SendAll(std::span<const std::uint8_t> bytes);

  enum class RecvStatus {
    kFrame,     // `frame` holds one complete header + payload
    kTimeout,   // deadline passed before a full frame arrived
    kClosed,    // peer closed the stream cleanly
    kError,     // socket error (connection reset, invalid descriptor, ...)
    kBadFrame,  // header failed wire validation; the stream is unusable
  };

  // Receives exactly one frame, blocking until `deadline` (steady clock;
  // time_point::max() blocks indefinitely). On kBadFrame the caller must
  // drop the connection: framing is lost. Blocking sockets only.
  RecvStatus RecvFrame(std::vector<std::uint8_t>& frame,
                       std::chrono::steady_clock::time_point deadline);

  // Non-blocking IO results (event-loop paths).
  enum class IoStatus {
    kOk,          // made progress (`n` bytes moved)
    kWouldBlock,  // no progress possible now (EAGAIN)
    kClosed,      // peer closed (recv only)
    kError,       // socket error; drop the connection
  };

  // Reads at most `max` bytes into `out` (appended). Non-blocking sockets.
  // max == 0 is a clean no-op (kOk, n = 0) — never misreported as kClosed
  // even though a zero-length recv() returns 0.
  IoStatus RecvSome(std::vector<std::uint8_t>& out, std::size_t max,
                    std::size_t& n);

  // Writes a prefix of `bytes`; `n` reports how much went out. Non-blocking
  // sockets. Retries EINTR internally; an empty span is a clean no-op, so a
  // caller draining a partially-sent frame (e.g. an odd-sized coded payload)
  // can loop on the remaining suffix without special cases.
  IoStatus SendSome(std::span<const std::uint8_t> bytes, std::size_t& n);

  // Half-closes both directions, waking a peer blocked in RecvFrame.
  void ShutdownBoth();

 private:
  int fd_ = -1;
};

// Listening socket with a self-pipe shutdown.
class TcpListener {
 public:
  // Binds `endpoint` and listens; port 0 picks an ephemeral port (read it
  // back via port()). Null on failure.
  static std::unique_ptr<TcpListener> Bind(const Endpoint& endpoint);

  // Binds 127.0.0.1:port (loopback convenience).
  static std::unique_ptr<TcpListener> BindLoopback(std::uint16_t port);

  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }
  int listen_fd() const { return listen_fd_; }

  // Switches the listening socket to non-blocking mode (for TryAccept from
  // an event loop; Accept() assumes blocking mode).
  bool SetNonBlocking();

  // Blocks until a client connects or Shutdown() is called (then returns an
  // invalid connection, as it does on accept errors after shutdown).
  TcpConnection Accept();

  // Non-blocking accept: invalid connection when no client is waiting (or
  // on transient accept errors). Never blocks.
  TcpConnection TryAccept();

  // Unblocks Accept(); idempotent and callable from any thread.
  void Shutdown();

 private:
  TcpListener(int listen_fd, int wake_rd, int wake_wr, std::uint16_t port);

  int listen_fd_ = -1;
  int wake_rd_ = -1;
  int wake_wr_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace specsync::net
