// RAII POSIX TCP primitives for the loopback shard transport.
//
// Deliberately minimal: IPv4 loopback only (the multi-process bench and the
// runtime's tcp_loopback transport both live on 127.0.0.1), blocking sockets
// with poll()-bounded receives, TCP_NODELAY on every connection (the protocol
// is request/response with small frames — Nagle would serialize the per-shard
// fan-out), and a self-pipe so Accept() can be woken for shutdown without
// racing a close().
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "net/wire.h"

namespace specsync::net {

// One established stream. Move-only; the descriptor closes with the object.
class TcpConnection {
 public:
  TcpConnection() = default;
  explicit TcpConnection(int fd);
  ~TcpConnection();

  TcpConnection(TcpConnection&& other) noexcept;
  TcpConnection& operator=(TcpConnection&& other) noexcept;
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // Connects to 127.0.0.1:port. Invalid connection on failure.
  static TcpConnection ConnectLoopback(std::uint16_t port);

  bool valid() const { return fd_ >= 0; }

  // Writes all of `bytes` (handles partial writes and EINTR; SIGPIPE is
  // suppressed). False on a broken connection.
  bool SendAll(std::span<const std::uint8_t> bytes);

  enum class RecvStatus {
    kFrame,     // `frame` holds one complete header + payload
    kTimeout,   // deadline passed before a full frame arrived
    kClosed,    // peer closed the stream cleanly
    kError,     // socket error (connection reset, invalid descriptor, ...)
    kBadFrame,  // header failed wire validation; the stream is unusable
  };

  // Receives exactly one frame, blocking until `deadline` (steady clock;
  // time_point::max() blocks indefinitely). On kBadFrame the caller must
  // drop the connection: framing is lost.
  RecvStatus RecvFrame(std::vector<std::uint8_t>& frame,
                       std::chrono::steady_clock::time_point deadline);

  // Half-closes both directions, waking a peer blocked in RecvFrame.
  void ShutdownBoth();

 private:
  int fd_ = -1;
};

// Listening socket on 127.0.0.1 with a self-pipe shutdown.
class TcpListener {
 public:
  // Binds and listens; port 0 picks an ephemeral port. Null on failure.
  static std::unique_ptr<TcpListener> BindLoopback(std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }

  // Blocks until a client connects or Shutdown() is called (then returns an
  // invalid connection, as it does on accept errors after shutdown).
  TcpConnection Accept();

  // Unblocks Accept(); idempotent and callable from any thread.
  void Shutdown();

 private:
  TcpListener(int listen_fd, int wake_rd, int wake_wr, std::uint16_t port);

  int listen_fd_ = -1;
  int wake_rd_ = -1;
  int wake_wr_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace specsync::net
