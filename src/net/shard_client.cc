#include "net/shard_client.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span_recorder.h"

namespace specsync::net {

namespace {

// Process-unique, nonzero trace ids: high half = pid so ids from different
// bench_transport processes never collide in a merged trace, low half = a
// per-process sequence. The same id rides every retry attempt of one logical
// request, so injected duplicates collapse onto one flow in Perfetto.
std::uint64_t NextTraceId() {
  static std::atomic<std::uint64_t> counter{1};
  const std::uint64_t seq = counter.fetch_add(1, std::memory_order_relaxed);
  return (static_cast<std::uint64_t>(::getpid()) << 32) |
         (seq & 0xffffffffull);
}

std::string TraceIdHex(std::uint64_t id) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out = "0x";
  bool started = false;
  for (int shift = 60; shift >= 0; shift -= 4) {
    const unsigned nibble = (id >> shift) & 0xf;
    if (!started && nibble == 0 && shift != 0) continue;
    started = true;
    out += kHex[nibble];
  }
  return out;
}

void RecordNetState(const char* label, std::int64_t a) {
  auto& flight = obs::FlightRecorder::Instance();
  if (flight.enabled()) flight.Record(obs::FlightKind::kNetState, label, a);
}

}  // namespace

// A caller's wait state, stack-owned by its Ticket. The receiver finds it
// through the pending table and fulfills it under the link's state mutex.
struct ShardClient::PendingSlot {
  std::condition_variable cv;
  bool done = false;    // response arrived (guarded by Link::mutex)
  bool failed = false;  // link died; retry now (guarded by Link::mutex)
  WireMessage response;
};

// One multiplexed connection to one server endpoint.
struct ShardClient::Link {
  Endpoint endpoint;

  // Send path. Serializes socket writes only; never held together with
  // `mutex` except that EnsureLink briefly takes it (alone) to swap in a
  // fresh connection, and a failed sender shuts the socket down under it so
  // shutdown cannot race that swap.
  std::mutex send_mutex;

  // State path: pending table, id allocation, link status.
  std::mutex mutex;
  std::condition_variable reconnect_cv;
  std::unordered_map<std::uint64_t, PendingSlot*> pending;  // guarded by mutex
  std::uint64_t next_id = 1;                                // guarded by mutex
  bool link_up = false;                                     // guarded by mutex
  bool reconnecting = false;                                // guarded by mutex

  // Swapped only by the single reconnecting thread after the receiver has
  // been joined; read concurrently by senders (send_mutex) and the receiver.
  TcpConnection connection;
  std::thread receiver;

  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> timeouts{0};
  std::atomic<std::uint64_t> reconnects{0};
  std::atomic<std::uint64_t> stale_frames{0};
  std::atomic<std::uint64_t> injected_drops{0};
  std::atomic<std::uint64_t> injected_delays{0};
  std::atomic<std::uint64_t> injected_duplicates{0};
  // Wire bytes that were not first-attempt goodput: retried attempts' frames
  // plus the second copy of injected duplicates. Dropped attempts never reach
  // the socket, so they add nothing here.
  std::atomic<std::uint64_t> retransmit_bytes{0};

  // Registry mirrors of the per-link state, labeled with this link's
  // endpoint; null without an attached MetricsRegistry.
  obs::Counter* reconnects_counter = nullptr;
  obs::Counter* stale_counter = nullptr;
  obs::Counter* deaths_counter = nullptr;
  obs::Counter* retransmit_counter = nullptr;
  obs::Gauge* in_flight_gauge = nullptr;
  obs::Gauge* pending_gauge = nullptr;

  // Call under `mutex` after any pending-table mutation.
  void SyncPendingGauge() {
    if (pending_gauge != nullptr) {
      pending_gauge->Set(static_cast<double>(pending.size()));
    }
  }
};

// One logical request's lifecycle across attempts. Owns the slot; the
// destructor deregisters a still-pending entry so the receiver can never
// touch a freed slot even when an exception unwinds mid-batch.
struct ShardClient::Ticket {
  Link* link = nullptr;
  std::size_t shard = 0;
  const WireMessage* request = nullptr;  // caller-owned, outlives the ticket
  std::unique_ptr<PendingSlot> slot;
  std::uint64_t id = 0;
  // Stable across retry attempts (unlike `id`); 0 = tracing off.
  std::uint64_t trace_id = 0;
  std::uint64_t started_ns = 0;
  std::chrono::steady_clock::time_point sent_at{};
  std::size_t attempts = 0;
  bool in_flight = false;

  Ticket() = default;
  Ticket(Ticket&& other) noexcept { *this = std::move(other); }
  Ticket& operator=(Ticket&& other) noexcept {
    if (this != &other) {
      Abandon();
      link = std::exchange(other.link, nullptr);
      shard = other.shard;
      request = std::exchange(other.request, nullptr);
      slot = std::move(other.slot);
      id = other.id;
      trace_id = other.trace_id;
      started_ns = other.started_ns;
      sent_at = other.sent_at;
      attempts = other.attempts;
      // Raw transfer: the in-flight gauge tracks the logical request, which
      // just changed owner, not state.
      in_flight = std::exchange(other.in_flight, false);
    }
    return *this;
  }
  Ticket(const Ticket&) = delete;
  Ticket& operator=(const Ticket&) = delete;
  ~Ticket() { Abandon(); }

  // Flips the flag and keeps the per-link in-flight gauge in step; every
  // state change (as opposed to ownership transfer) goes through here.
  void SetInFlight(bool value) {
    if (in_flight == value) return;
    in_flight = value;
    if (link != nullptr && link->in_flight_gauge != nullptr) {
      link->in_flight_gauge->Add(value ? 1.0 : -1.0);
    }
  }

  void Abandon() {
    if (link != nullptr && in_flight) {
      std::scoped_lock lock(link->mutex);
      link->pending.erase(id);
      link->SyncPendingGauge();
      SetInFlight(false);
    }
  }
};

ShardClient::ShardClient(ShardClientConfig config, FaultPlan* faults,
                         obs::MetricsRegistry* metrics,
                         obs::SpanRecorder* spans)
    : config_(std::move(config)), faults_(faults), spans_(spans) {
  std::string error;
  SPECSYNC_CHECK(config_.topology.Validate(&error)) << error;
  SPECSYNC_CHECK_GT(config_.max_attempts, 0u);
  dim_ = config_.topology.dim();
  shard_link_ = config_.topology.ShardLinkIndex();
  for (const Endpoint& endpoint : config_.topology.DistinctEndpoints()) {
    auto link = std::make_unique<Link>();
    link->endpoint = endpoint;
    links_.push_back(std::move(link));
  }
  if (metrics != nullptr) {
    rtt_hist_ = &metrics->histogram("net.rtt_s");
    shard_rtt_.reserve(num_shards());
    for (std::size_t s = 0; s < num_shards(); ++s) {
      shard_rtt_.push_back(
          &metrics->histogram("net.shard" + std::to_string(s) + ".rtt_s"));
    }
    retry_counter_ = &metrics->counter("net.retries");
    timeout_counter_ = &metrics->counter("net.timeouts");
    for (auto& link : links_) {
      // The brace block is the registry's label convention: the Prometheus
      // exporter renders it as {link="host:port"}, the JSON exporter keeps
      // the composite name verbatim.
      const std::string label = "{link=" + ToString(link->endpoint) + "}";
      link->reconnects_counter =
          &metrics->counter("net.link.reconnects" + label);
      link->stale_counter = &metrics->counter("net.link.stale_frames" + label);
      link->deaths_counter = &metrics->counter("net.link.link_deaths" + label);
      link->retransmit_counter =
          &metrics->counter("net.link.retransmit_bytes" + label);
      link->in_flight_gauge = &metrics->gauge("net.link.in_flight" + label);
      link->pending_gauge = &metrics->gauge("net.link.pending_depth" + label);
    }
    if (config_.compression.delta_pulls()) {
      delta_hits_counter_ = &metrics->counter("net.codec.delta_hits");
      delta_misses_counter_ = &metrics->counter("net.codec.delta_misses");
      pull_saved_counter_ = &metrics->counter("net.codec.pull_bytes_saved");
    }
    if (config_.compression.kind == CodecKind::kInt8 ||
        config_.compression.kind == CodecKind::kFp16) {
      push_saved_counter_ = &metrics->counter("net.codec.push_bytes_saved");
    }
  }
  // Anchor the span clock before the first request so every span maps onto
  // a defined monotonic epoch (a runtime that owns a run clock has already
  // pinned it; EnsureWallEpochNanos is then a no-op).
  if (spans_ != nullptr) spans_->EnsureWallEpochNanos();
}

ShardClient::~ShardClient() {
  for (auto& link : links_) {
    {
      std::scoped_lock lock(link->mutex);
      link->link_up = false;
    }
    link->connection.ShutdownBoth();
    if (link->receiver.joinable()) link->receiver.join();
  }
}

bool ShardClient::Connect() {
  const auto deadline =
      std::chrono::steady_clock::now() + config_.connect_timeout;
  for (std::size_t l = 0; l < links_.size(); ++l) {
    while (!EnsureLink(*links_[l])) {
      if (std::chrono::steady_clock::now() >= deadline) {
        SPECSYNC_LOG(kWarning) << "ShardClient: endpoint "
                              << ToString(links_[l]->endpoint)
                              << " unreachable";
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  return true;
}

bool ShardClient::EnsureLink(Link& link) {
  std::unique_lock lock(link.mutex);
  if (link.link_up) return true;
  if (link.reconnecting) {
    // Someone else is already reconnecting; adopt their verdict as this
    // attempt's outcome so attempts stay bounded under a dead endpoint.
    link.reconnect_cv.wait(lock, [&] { return !link.reconnecting; });
    return link.link_up;
  }
  link.reconnecting = true;
  lock.unlock();

  // The old receiver (if any) is blocked in RecvFrame on the dead
  // connection; shutdown wakes it, then the join makes the swap below safe.
  link.connection.ShutdownBoth();
  if (link.receiver.joinable()) link.receiver.join();
  TcpConnection fresh = TcpConnection::Connect(link.endpoint);
  const bool up = fresh.valid();
  if (up) {
    std::scoped_lock send_lock(link.send_mutex);
    link.connection = std::move(fresh);
  }

  lock.lock();
  link.reconnecting = false;
  link.link_up = up;
  if (up) {
    RecordNetState("link_up", link.endpoint.port);
    link.receiver = std::thread([this, &link] { ReceiverLoop(&link); });
  }
  link.reconnect_cv.notify_all();
  return up;
}

void ShardClient::ReceiverLoop(Link* link) {
  std::vector<std::uint8_t> frame;
  constexpr auto kForever = std::chrono::steady_clock::time_point::max();
  for (;;) {
    const auto status = link->connection.RecvFrame(frame, kForever);
    if (status != TcpConnection::RecvStatus::kFrame) break;
    std::uint64_t id = 0;
    WireMessage response;
    if (DecodeFrame(frame, id, response) != WireStatus::kOk) break;
    std::scoped_lock lock(link->mutex);
    const auto it = link->pending.find(id);
    if (it == link->pending.end()) {
      // Late answer to a timed-out attempt, or the echo of an injected
      // duplicate: nobody is waiting for this id any more.
      link->stale_frames.fetch_add(1, std::memory_order_relaxed);
      if (link->stale_counter != nullptr) link->stale_counter->Increment();
      continue;
    }
    PendingSlot* slot = it->second;
    link->pending.erase(it);
    link->SyncPendingGauge();
    slot->response = std::move(response);
    slot->done = true;
    slot->cv.notify_one();
  }
  // The link is dead (EOF, error, or lost framing). Fail every waiter so it
  // retries immediately instead of burning its full timeout; the first
  // retrying caller runs the reconnect.
  if (link->deaths_counter != nullptr) link->deaths_counter->Increment();
  RecordNetState("link_down", link->endpoint.port);
  std::scoped_lock lock(link->mutex);
  link->link_up = false;
  for (auto& [id, slot] : link->pending) {
    slot->failed = true;
    slot->cv.notify_one();
  }
  link->pending.clear();
  link->SyncPendingGauge();
}

ShardClient::Ticket ShardClient::MakeTicket(std::size_t shard,
                                            const WireMessage* request) {
  SPECSYNC_CHECK_LT(shard, num_shards());
  Ticket ticket;
  ticket.link = links_[shard_link_[shard]].get();
  ticket.shard = shard;
  ticket.request = request;
  ticket.slot = std::make_unique<PendingSlot>();
  ticket.link->requests.fetch_add(1, std::memory_order_relaxed);
  if (spans_ != nullptr) {
    ticket.trace_id = NextTraceId();
    ticket.started_ns = obs::WallNanos();
  }
  return ticket;
}

void ShardClient::IssueAttempt(Ticket& ticket) {
  Link& link = *ticket.link;
  if (ticket.attempts > 0) {
    link.retries.fetch_add(1, std::memory_order_relaxed);
    if (retry_counter_ != nullptr) retry_counter_->Increment();
  }
  ++ticket.attempts;

  FaultDecision decision;
  if (faults_ != nullptr && faults_->enabled()) {
    decision = faults_->OnMessage(LinkClass::kData);
  }
  if (decision.extra_delay > Duration::Zero()) {
    link.injected_delays.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(decision.extra_delay.seconds()));
  }

  // (Re)establish the link if it is down. Counted as a reconnect only when
  // an actual reconnect round ran; the attempt is consumed either way, so a
  // dead endpoint exhausts max_attempts instead of looping forever.
  bool was_down;
  {
    std::scoped_lock lock(link.mutex);
    was_down = !link.link_up;
  }
  if (was_down) {
    link.reconnects.fetch_add(1, std::memory_order_relaxed);
    if (link.reconnects_counter != nullptr) {
      link.reconnects_counter->Increment();
    }
    if (!EnsureLink(link)) return;  // attempt consumed
  }

  // Register the pending entry *before* sending: the response can race back
  // on the receiver thread before this thread even returns from SendAll.
  {
    std::scoped_lock lock(link.mutex);
    if (!link.link_up) return;  // died in the gap; next attempt reconnects
    ticket.id = link.next_id++;
    ticket.slot->done = false;
    ticket.slot->failed = false;
    link.pending.emplace(ticket.id, ticket.slot.get());
    link.SyncPendingGauge();
  }
  // The same trace context rides every attempt (the id is per-attempt, the
  // trace is per logical request), so the server's serve spans for retries
  // and duplicates all flow from one client span.
  const TraceContext trace{ticket.trace_id, ticket.trace_id};
  const std::vector<std::uint8_t> bytes = EncodeFrame(
      *ticket.request, ticket.id, ticket.trace_id != 0 ? &trace : nullptr);
  ticket.sent_at = std::chrono::steady_clock::now();

  if (decision.drop) {
    // The frame vanishes in the wire: never sent, so this attempt can only
    // time out. The retry after the timeout is the recovery path.
    link.injected_drops.fetch_add(1, std::memory_order_relaxed);
    ticket.SetInFlight(true);
    return;
  }

  bool sent;
  {
    // The send happens outside the state mutex on purpose: under deep
    // pipelining a full kernel buffer blocks this send until the server
    // drains, which requires our receiver to keep consuming — so the
    // receiver must never contend with a blocked sender for the state lock.
    std::scoped_lock send_lock(link.send_mutex);
    sent = link.connection.SendAll(bytes);
    if (sent && decision.duplicate) {
      link.injected_duplicates.fetch_add(1, std::memory_order_relaxed);
      sent = link.connection.SendAll(bytes);
      // The second copy is pure overhead — it can only become a stale frame.
      link.retransmit_bytes.fetch_add(bytes.size(),
                                      std::memory_order_relaxed);
      if (link.retransmit_counter != nullptr) {
        link.retransmit_counter->Increment(bytes.size());
      }
    }
    // Shut down under the send mutex so this cannot race EnsureLink's
    // connection swap.
    if (!sent) link.connection.ShutdownBoth();
  }
  if (sent && ticket.attempts > 1) {
    // attempts was already bumped for this attempt, so >1 means this frame
    // repeats an earlier send: its bytes are retransmission, not goodput.
    link.retransmit_bytes.fetch_add(bytes.size(), std::memory_order_relaxed);
    if (link.retransmit_counter != nullptr) {
      link.retransmit_counter->Increment(bytes.size());
    }
  }
  if (!sent) {
    std::scoped_lock lock(link.mutex);
    link.pending.erase(ticket.id);
    link.SyncPendingGauge();
    link.link_up = false;
    return;  // attempt consumed; next attempt reconnects
  }
  ticket.SetInFlight(true);
}

void ShardClient::IssueUntilInFlight(Ticket& ticket) {
  while (!ticket.in_flight) {
    SPECSYNC_CHECK(ticket.attempts < config_.max_attempts)
        << "shard " << ticket.shard << " unreachable after "
        << config_.max_attempts << " attempts";
    IssueAttempt(ticket);
  }
}

WireMessage ShardClient::Await(Ticket& ticket) {
  Link& link = *ticket.link;
  for (;;) {
    bool done = false;
    {
      std::unique_lock lock(link.mutex);
      const auto deadline = ticket.sent_at + config_.request_timeout;
      ticket.slot->cv.wait_until(lock, deadline, [&] {
        return ticket.slot->done || ticket.slot->failed;
      });
      done = ticket.slot->done;
      if (!done) {
        if (!ticket.slot->failed) {
          // Timed out: deregister so a late frame for this id counts as
          // stale instead of fulfilling a slot nobody awaits.
          link.pending.erase(ticket.id);
          link.SyncPendingGauge();
          link.timeouts.fetch_add(1, std::memory_order_relaxed);
          if (timeout_counter_ != nullptr) timeout_counter_->Increment();
        }
        // On failure the receiver already deregistered everything.
        ticket.SetInFlight(false);
      }
    }
    if (done) {
      ticket.SetInFlight(false);
      const double rtt = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - ticket.sent_at)
                             .count();
      if (rtt_hist_ != nullptr) {
        rtt_hist_->Record(rtt);
        shard_rtt_[ticket.shard]->Record(rtt);
      }
      if (spans_ != nullptr && ticket.trace_id != 0) RecordClientSpan(ticket);
      if (const auto* ack = std::get_if<AckResp>(&ticket.slot->response)) {
        // Error acks mean the client routed a request the server does not
        // own — a wiring bug, not a transient fault.
        SPECSYNC_CHECK(ack->status == kAckOk)
            << "shard " << ticket.shard << " rejected request (status "
            << ack->status << ")";
      }
      return std::move(ticket.slot->response);
    }
    IssueUntilInFlight(ticket);
  }
}

void ShardClient::RecordClientSpan(const Ticket& ticket) {
  const std::uint64_t end_ns = obs::WallNanos();
  const std::uint64_t epoch = spans_->EnsureWallEpochNanos();
  const double begin_s =
      ticket.started_ns > epoch ? (ticket.started_ns - epoch) * 1e-9 : 0.0;
  const double end_s = end_ns > epoch ? (end_ns - epoch) * 1e-9 : 0.0;
  const char* name = "commit.req";
  if (std::holds_alternative<PullShardReq>(*ticket.request)) {
    name = "pull.req";
  } else if (std::holds_alternative<PushShardReq>(*ticket.request)) {
    name = "push.req";
  }
  spans_->AddSpanWithFlow(
      name, "net.client", config_.trace_track, SimTime::FromSeconds(begin_s),
      SimTime::FromSeconds(end_s), /*flow_out=*/ticket.trace_id,
      /*flow_in=*/0,
      {{"trace_id", TraceIdHex(ticket.trace_id)},
       {"shard", std::to_string(ticket.shard)},
       {"attempts", std::to_string(ticket.attempts)}});
}

WireMessage ShardClient::Call(std::size_t shard, const WireMessage& request) {
  Ticket ticket = MakeTicket(shard, &request);
  IssueUntilInFlight(ticket);
  return Await(ticket);
}

std::size_t ShardClient::ShardOf(std::size_t index) const {
  SPECSYNC_CHECK_LT(index, dim_);
  // Mirrors ParameterServer::ShardOf over the placement table.
  const auto& shards = config_.topology.shards;
  std::size_t lo = 0;
  std::size_t hi = shards.size();
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (shards[mid].offset <= index) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

ShardPullResult ShardClient::PullShard(std::size_t s) {
  SPECSYNC_CHECK_LT(s, num_shards());
  WireMessage response = Call(s, PullShardReq{static_cast<std::uint32_t>(s)});
  auto* resp = std::get_if<PullShardResp>(&response);
  SPECSYNC_CHECK(resp != nullptr);
  SPECSYNC_CHECK_EQ(resp->offset, config_.topology.shards[s].offset);
  SPECSYNC_CHECK_EQ(resp->params.size(), config_.topology.shards[s].length);
  ShardPullResult out;
  out.offset = resp->offset;
  out.params = std::move(resp->params);
  out.shard_version = resp->shard_version;
  out.version = resp->global_version;
  return out;
}

PullResult ShardClient::Pull(ThreadPool* /*pool*/) {
  // Delta mode: shards we hold a cached copy of get a conditional
  // PullShardDeltaReq; the server answers PullShardNotModified (tiny control
  // frame) when the shard version is unchanged, and we compose that shard
  // from the cache. Delta is lossless — an unchanged shard version implies
  // unchanged content, both read under the same shard lock server-side. The
  // cache lock is held across the whole batch so concurrent Pull() callers
  // on one client see a consistent cache (workers own their clients, so this
  // serialization never bites in practice).
  const bool delta = config_.compression.delta_pulls();
  std::unique_lock<std::mutex> cache_lock;
  if (delta) {
    cache_lock = std::unique_lock<std::mutex>(cache_mutex_);
    if (cached_versions_.empty()) {
      cached_versions_.assign(num_shards(), kNoCachedVersion);
      cached_params_.resize(num_shards());
    }
  }

  // Issue every shard's pull before awaiting any: all requests ride the
  // shared links back-to-back, so the batch completes in ~one round trip
  // regardless of shard count (the v2 pipelining payoff).
  std::vector<WireMessage> requests;
  requests.reserve(num_shards());
  for (std::size_t s = 0; s < num_shards(); ++s) {
    if (delta && cached_versions_[s] != kNoCachedVersion) {
      requests.emplace_back(PullShardDeltaReq{static_cast<std::uint32_t>(s),
                                              cached_versions_[s]});
    } else {
      requests.emplace_back(PullShardReq{static_cast<std::uint32_t>(s)});
    }
  }
  std::vector<Ticket> tickets;
  tickets.reserve(num_shards());
  for (std::size_t s = 0; s < num_shards(); ++s) {
    Ticket ticket = MakeTicket(s, &requests[s]);
    IssueUntilInFlight(ticket);
    tickets.push_back(std::move(ticket));
  }

  PullResult out;
  out.params.resize(dim_);
  std::uint64_t version = 0;
  for (std::size_t s = 0; s < tickets.size(); ++s) {
    const ShardPlacement& shard = config_.topology.shards[s];
    WireMessage response = Await(tickets[s]);
    if (const auto* unchanged = std::get_if<PullShardNotModified>(&response)) {
      SPECSYNC_CHECK(delta);
      SPECSYNC_CHECK_EQ(unchanged->shard_version, cached_versions_[s]);
      const std::vector<double>& cached = cached_params_[s];
      SPECSYNC_CHECK_EQ(cached.size(), shard.length);
      std::copy(cached.begin(), cached.end(),
                out.params.begin() + static_cast<std::ptrdiff_t>(shard.offset));
      version = std::max(version, unchanged->global_version);
      delta_hits_.fetch_add(1, std::memory_order_relaxed);
      if (delta_hits_counter_ != nullptr) delta_hits_counter_->Increment();
      if (pull_saved_counter_ != nullptr) {
        // The avoided payload: the shard's parameter doubles that a full
        // PullShardResp would have carried.
        pull_saved_counter_->Increment(shard.length * sizeof(double));
      }
      continue;
    }
    auto* resp = std::get_if<PullShardResp>(&response);
    SPECSYNC_CHECK(resp != nullptr);
    SPECSYNC_CHECK_EQ(resp->offset, shard.offset);
    SPECSYNC_CHECK_EQ(resp->params.size(), shard.length);
    std::copy(resp->params.begin(), resp->params.end(),
              out.params.begin() + static_cast<std::ptrdiff_t>(resp->offset));
    version = std::max(version, resp->global_version);
    if (delta) {
      cached_params_[s].assign(resp->params.begin(), resp->params.end());
      cached_versions_[s] = resp->shard_version;
      delta_misses_.fetch_add(1, std::memory_order_relaxed);
      if (delta_misses_counter_ != nullptr) {
        delta_misses_counter_->Increment();
      }
    }
  }
  out.version = version;
  return out;
}

std::uint64_t ShardClient::Push(const Gradient& grad, EpochId epoch,
                                ThreadPool* /*pool*/) {
  // int8/fp16 ship the kind-2 coded encoding; the gradient must already be
  // codec-transformed so the doubles re-quantize to exactly the bits the
  // server will decode (ps/compression.h's idempotency contract).
  const CodecKind kind = config_.compression.kind;
  const std::uint8_t coded =
      (kind == CodecKind::kInt8 || kind == CodecKind::kFp16)
          ? static_cast<std::uint8_t>(kind)
          : 0;
  // Build the per-shard messages (the client-side half of RouteGradient).
  std::vector<std::size_t> shards;
  std::vector<WireMessage> requests;
  if (!grad.is_sparse()) {
    SPECSYNC_CHECK_EQ(grad.dense().size(), dim_);
    for (std::size_t s = 0; s < num_shards(); ++s) {
      const ShardPlacement& shard = config_.topology.shards[s];
      PushShardReq req;
      req.shard = static_cast<std::uint32_t>(s);
      req.epoch = epoch;
      req.coded = coded;
      req.dense_offset = shard.offset;
      req.dense.assign(grad.dense().begin() +
                           static_cast<std::ptrdiff_t>(shard.offset),
                       grad.dense().begin() + static_cast<std::ptrdiff_t>(
                                                  shard.offset + shard.length));
      shards.push_back(s);
      requests.emplace_back(std::move(req));
    }
  } else {
    std::vector<PushShardReq> by_shard(num_shards());
    const auto indices = grad.sparse().indices();
    const auto values = grad.sparse().values();
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const std::size_t s = ShardOf(static_cast<std::size_t>(indices[i]));
      by_shard[s].indices.push_back(indices[i]);
      by_shard[s].values.push_back(values[i]);
    }
    for (std::size_t s = 0; s < by_shard.size(); ++s) {
      if (by_shard[s].indices.empty()) continue;
      by_shard[s].shard = static_cast<std::uint32_t>(s);
      by_shard[s].epoch = epoch;
      by_shard[s].sparse = true;
      by_shard[s].coded = coded;
      shards.push_back(s);
      requests.emplace_back(std::move(by_shard[s]));
    }
    // Like RouteGradient: an empty gradient still crosses the wire as one
    // empty message, so the push protocol sees exactly one logical push.
    if (requests.empty()) {
      PushShardReq req;
      req.shard = 0;
      req.epoch = epoch;
      req.sparse = true;
      req.coded = coded;
      shards.push_back(0);
      requests.emplace_back(std::move(req));
    }
  }
  if (coded != 0 && push_saved_counter_ != nullptr) {
    // Payload delta vs the classic encoding, same model CodedRouteBytes uses
    // for the sim (indices+doubles vs indices+quantized values).
    std::uint64_t saved = 0;
    for (const WireMessage& message : requests) {
      const auto& req = std::get<PushShardReq>(message);
      const std::uint64_t raw = req.sparse ? req.indices.size() * 16
                                           : req.dense.size() * 8;
      saved += raw - std::min(raw, CodedRouteBytes(kind, req.sparse, raw));
    }
    push_saved_counter_->Increment(saved);
  }

  // Pipeline all slices, then await them all.
  std::vector<Ticket> tickets;
  tickets.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    Ticket ticket = MakeTicket(shards[i], &requests[i]);
    IssueUntilInFlight(ticket);
    tickets.push_back(std::move(ticket));
  }
  for (Ticket& ticket : tickets) Await(ticket);

  // One commit per distinct server touched (a server's global version counts
  // the logical pushes that reached it). All slices have been acked by now,
  // so the commit orders after them exactly as CommitPush does in-process —
  // which is why the commits form a second pipelined batch instead of riding
  // with the slices.
  std::vector<std::size_t> commit_shards;
  std::vector<std::size_t> committed_links;
  for (std::size_t s : shards) {
    const std::size_t l = shard_link_[s];
    if (std::find(committed_links.begin(), committed_links.end(), l) !=
        committed_links.end()) {
      continue;
    }
    committed_links.push_back(l);
    commit_shards.push_back(s);
  }
  std::vector<WireMessage> commit_requests(commit_shards.size(),
                                           WireMessage(CommitPushReq{}));
  std::vector<Ticket> commit_tickets;
  commit_tickets.reserve(commit_shards.size());
  for (std::size_t i = 0; i < commit_shards.size(); ++i) {
    Ticket ticket = MakeTicket(commit_shards[i], &commit_requests[i]);
    IssueUntilInFlight(ticket);
    commit_tickets.push_back(std::move(ticket));
  }
  std::uint64_t version = 0;
  for (Ticket& ticket : commit_tickets) {
    WireMessage response = Await(ticket);
    const auto* ack = std::get_if<AckResp>(&response);
    SPECSYNC_CHECK(ack != nullptr);
    version = std::max(version, ack->value);
  }
  return version;
}

ShardClient::Stats ShardClient::stats() const {
  Stats out;
  for (const auto& link : links_) {
    out.requests += link->requests.load(std::memory_order_relaxed);
    out.retries += link->retries.load(std::memory_order_relaxed);
    out.timeouts += link->timeouts.load(std::memory_order_relaxed);
    out.reconnects += link->reconnects.load(std::memory_order_relaxed);
    out.stale_frames += link->stale_frames.load(std::memory_order_relaxed);
    out.injected_drops += link->injected_drops.load(std::memory_order_relaxed);
    out.injected_delays +=
        link->injected_delays.load(std::memory_order_relaxed);
    out.injected_duplicates +=
        link->injected_duplicates.load(std::memory_order_relaxed);
    out.retransmit_bytes +=
        link->retransmit_bytes.load(std::memory_order_relaxed);
  }
  out.delta_hits = delta_hits_.load(std::memory_order_relaxed);
  out.delta_misses = delta_misses_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace specsync::net
