#include "net/shard_client.h"

#include <algorithm>
#include <atomic>
#include <latch>
#include <mutex>
#include <string>
#include <thread>

#include "common/check.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace specsync::net {

struct ShardClient::Conn {
  std::mutex mutex;
  TcpConnection connection;     // guarded by mutex
  std::uint64_t next_id = 1;    // guarded by mutex
  std::uint16_t port = 0;

  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> timeouts{0};
  std::atomic<std::uint64_t> reconnects{0};
  std::atomic<std::uint64_t> stale_frames{0};
  std::atomic<std::uint64_t> injected_drops{0};
  std::atomic<std::uint64_t> injected_delays{0};
  std::atomic<std::uint64_t> injected_duplicates{0};
};

ShardClient::ShardClient(ShardClientConfig config, FaultPlan* faults,
                         obs::MetricsRegistry* metrics)
    : config_(std::move(config)), faults_(faults) {
  SPECSYNC_CHECK(!config_.shards.empty());
  SPECSYNC_CHECK_GT(config_.max_attempts, 0u);
  std::size_t expected_offset = 0;
  for (const ShardEndpoint& shard : config_.shards) {
    SPECSYNC_CHECK_EQ(shard.offset, expected_offset);
    expected_offset += shard.length;
  }
  dim_ = expected_offset;
  SPECSYNC_CHECK_GT(dim_, 0u);
  conns_.reserve(config_.shards.size());
  for (const ShardEndpoint& shard : config_.shards) {
    auto conn = std::make_unique<Conn>();
    conn->port = shard.port;
    conns_.push_back(std::move(conn));
  }
  if (metrics != nullptr) {
    rtt_hist_ = &metrics->histogram("net.rtt_s");
    shard_rtt_.reserve(conns_.size());
    for (std::size_t s = 0; s < conns_.size(); ++s) {
      shard_rtt_.push_back(
          &metrics->histogram("net.shard" + std::to_string(s) + ".rtt_s"));
    }
    retry_counter_ = &metrics->counter("net.retries");
    timeout_counter_ = &metrics->counter("net.timeouts");
  }
}

ShardClient::~ShardClient() = default;

bool ShardClient::Connect() {
  const auto deadline =
      std::chrono::steady_clock::now() + config_.connect_timeout;
  for (std::size_t s = 0; s < conns_.size(); ++s) {
    Conn& conn = *conns_[s];
    std::scoped_lock lock(conn.mutex);
    while (!conn.connection.valid()) {
      conn.connection = TcpConnection::ConnectLoopback(conn.port);
      if (conn.connection.valid()) break;
      if (std::chrono::steady_clock::now() >= deadline) {
        SPECSYNC_LOG(kWarning) << "ShardClient: shard " << s
                              << " unreachable on port " << conn.port;
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  return true;
}

WireMessage ShardClient::Call(std::size_t s, const WireMessage& request) {
  Conn& conn = *conns_[s];
  std::scoped_lock lock(conn.mutex);
  conn.requests.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::uint8_t> frame;
  for (std::size_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (attempt > 0) {
      conn.retries.fetch_add(1, std::memory_order_relaxed);
      if (retry_counter_ != nullptr) retry_counter_->Increment();
    }
    // A fresh id per attempt: responses to abandoned attempts (timed out,
    // duplicated) are identifiable as stale and skipped below.
    const std::uint64_t id = conn.next_id++;
    const std::vector<std::uint8_t> bytes = EncodeFrame(request, id);

    FaultDecision decision;
    if (faults_ != nullptr && faults_->enabled()) {
      decision = faults_->OnMessage(LinkClass::kData);
    }
    if (decision.extra_delay > Duration::Zero()) {
      conn.injected_delays.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(decision.extra_delay.seconds()));
    }
    const auto sent_at = std::chrono::steady_clock::now();
    const auto deadline = sent_at + config_.request_timeout;
    if (decision.drop) {
      // The request vanishes in the wire: never sent, so this attempt can
      // only time out. The retry after the timeout is the recovery path.
      conn.injected_drops.fetch_add(1, std::memory_order_relaxed);
    } else {
      if (!conn.connection.valid() || !conn.connection.SendAll(bytes)) {
        conn.reconnects.fetch_add(1, std::memory_order_relaxed);
        conn.connection = TcpConnection::ConnectLoopback(conn.port);
        continue;
      }
      if (decision.duplicate) {
        conn.injected_duplicates.fetch_add(1, std::memory_order_relaxed);
        if (!conn.connection.SendAll(bytes)) {
          conn.reconnects.fetch_add(1, std::memory_order_relaxed);
          conn.connection = TcpConnection::ConnectLoopback(conn.port);
          continue;
        }
      }
    }

    for (;;) {
      const auto status = conn.connection.valid()
                              ? conn.connection.RecvFrame(frame, deadline)
                              : TcpConnection::RecvStatus::kError;
      if (status == TcpConnection::RecvStatus::kTimeout ||
          (decision.drop && status != TcpConnection::RecvStatus::kFrame)) {
        conn.timeouts.fetch_add(1, std::memory_order_relaxed);
        if (timeout_counter_ != nullptr) timeout_counter_->Increment();
        break;  // retry
      }
      if (status == TcpConnection::RecvStatus::kClosed ||
          status == TcpConnection::RecvStatus::kError ||
          status == TcpConnection::RecvStatus::kBadFrame) {
        conn.reconnects.fetch_add(1, std::memory_order_relaxed);
        conn.connection = TcpConnection::ConnectLoopback(conn.port);
        break;  // retry
      }
      std::uint64_t response_id = 0;
      WireMessage response;
      if (DecodeFrame(frame, response_id, response) != WireStatus::kOk) {
        conn.reconnects.fetch_add(1, std::memory_order_relaxed);
        conn.connection = TcpConnection::ConnectLoopback(conn.port);
        break;  // framing is lost; retry on a fresh stream
      }
      if (response_id != id) {
        // Late answer to an earlier attempt, or the echo of an injected
        // duplicate. Drain and keep waiting for ours.
        conn.stale_frames.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (const auto* ack = std::get_if<AckResp>(&response)) {
        // Error acks mean the client routed a request the server does not
        // own — a wiring bug, not a transient fault.
        SPECSYNC_CHECK(ack->status == kAckOk)
            << "shard " << s << " rejected request (status " << ack->status
            << ")";
      }
      const double rtt = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - sent_at)
                             .count();
      if (rtt_hist_ != nullptr) {
        rtt_hist_->Record(rtt);
        shard_rtt_[s]->Record(rtt);
      }
      return response;
    }
  }
  SPECSYNC_CHECK(false) << "shard " << s << " unreachable after "
                        << config_.max_attempts << " attempts";
  return AckResp{};
}

std::size_t ShardClient::ShardOf(std::size_t index) const {
  SPECSYNC_CHECK_LT(index, dim_);
  // Mirrors ParameterServer::ShardOf over the endpoint table.
  std::size_t lo = 0;
  std::size_t hi = config_.shards.size();
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (config_.shards[mid].offset <= index) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

ShardPullResult ShardClient::PullShard(std::size_t s) {
  SPECSYNC_CHECK_LT(s, conns_.size());
  WireMessage response = Call(s, PullShardReq{static_cast<std::uint32_t>(s)});
  auto* resp = std::get_if<PullShardResp>(&response);
  SPECSYNC_CHECK(resp != nullptr);
  SPECSYNC_CHECK_EQ(resp->offset, config_.shards[s].offset);
  SPECSYNC_CHECK_EQ(resp->params.size(), config_.shards[s].length);
  ShardPullResult out;
  out.offset = resp->offset;
  out.params = std::move(resp->params);
  out.shard_version = resp->shard_version;
  out.version = resp->global_version;
  return out;
}

PullResult ShardClient::Pull(ThreadPool* pool) {
  PullResult out;
  out.params.resize(dim_);
  std::atomic<std::uint64_t> version{0};
  const auto pull_one = [this, &out, &version](std::size_t s) {
    ShardPullResult shard = PullShard(s);
    std::copy(shard.params.begin(), shard.params.end(),
              out.params.begin() + static_cast<std::ptrdiff_t>(shard.offset));
    std::uint64_t seen = version.load(std::memory_order_relaxed);
    while (seen < shard.version &&
           !version.compare_exchange_weak(seen, shard.version,
                                          std::memory_order_relaxed)) {
    }
  };
  if (pool == nullptr || conns_.size() == 1) {
    for (std::size_t s = 0; s < conns_.size(); ++s) pull_one(s);
  } else {
    std::latch done(static_cast<std::ptrdiff_t>(conns_.size()));
    for (std::size_t s = 0; s < conns_.size(); ++s) {
      pool->Submit([&pull_one, &done, s] {
        pull_one(s);
        done.count_down();
      });
    }
    done.wait();
  }
  out.version = version.load(std::memory_order_relaxed);
  return out;
}

std::uint64_t ShardClient::Push(const Gradient& grad, EpochId epoch,
                                ThreadPool* pool) {
  // Build the per-shard messages (the client-side half of RouteGradient).
  std::vector<PushShardReq> messages;
  if (!grad.is_sparse()) {
    SPECSYNC_CHECK_EQ(grad.dense().size(), dim_);
    messages.reserve(conns_.size());
    for (std::size_t s = 0; s < conns_.size(); ++s) {
      const ShardEndpoint& shard = config_.shards[s];
      PushShardReq req;
      req.shard = static_cast<std::uint32_t>(s);
      req.epoch = epoch;
      req.dense_offset = shard.offset;
      req.dense.assign(grad.dense().begin() +
                           static_cast<std::ptrdiff_t>(shard.offset),
                       grad.dense().begin() + static_cast<std::ptrdiff_t>(
                                                  shard.offset + shard.length));
      messages.push_back(std::move(req));
    }
  } else {
    std::vector<PushShardReq> by_shard(conns_.size());
    const auto indices = grad.sparse().indices();
    const auto values = grad.sparse().values();
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const std::size_t s = ShardOf(static_cast<std::size_t>(indices[i]));
      by_shard[s].indices.push_back(indices[i]);
      by_shard[s].values.push_back(values[i]);
    }
    for (std::size_t s = 0; s < by_shard.size(); ++s) {
      if (by_shard[s].indices.empty()) continue;
      by_shard[s].shard = static_cast<std::uint32_t>(s);
      by_shard[s].epoch = epoch;
      by_shard[s].sparse = true;
      messages.push_back(std::move(by_shard[s]));
    }
    // Like RouteGradient: an empty gradient still crosses the wire as one
    // empty message, so the push protocol sees exactly one logical push.
    if (messages.empty()) {
      PushShardReq req;
      req.shard = 0;
      req.epoch = epoch;
      req.sparse = true;
      messages.push_back(std::move(req));
    }
  }

  if (pool == nullptr || messages.size() == 1) {
    for (const PushShardReq& req : messages) Call(req.shard, req);
  } else {
    std::latch done(static_cast<std::ptrdiff_t>(messages.size()));
    for (const PushShardReq& req : messages) {
      pool->Submit([this, &req, &done] {
        Call(req.shard, req);
        done.count_down();
      });
    }
    done.wait();
  }

  // One commit per distinct server touched (a server's global version counts
  // the logical pushes that reached it). All slices have landed by now, so
  // the commit orders after them exactly as CommitPush does in-process.
  std::uint64_t version = 0;
  std::vector<std::uint16_t> committed_ports;
  for (const PushShardReq& req : messages) {
    const std::uint16_t port = config_.shards[req.shard].port;
    if (std::find(committed_ports.begin(), committed_ports.end(), port) !=
        committed_ports.end()) {
      continue;
    }
    committed_ports.push_back(port);
    WireMessage response = Call(req.shard, CommitPushReq{});
    const auto* ack = std::get_if<AckResp>(&response);
    SPECSYNC_CHECK(ack != nullptr);
    version = std::max(version, ack->value);
  }
  return version;
}

ShardClient::Stats ShardClient::stats() const {
  Stats out;
  for (const auto& conn : conns_) {
    out.requests += conn->requests.load(std::memory_order_relaxed);
    out.retries += conn->retries.load(std::memory_order_relaxed);
    out.timeouts += conn->timeouts.load(std::memory_order_relaxed);
    out.reconnects += conn->reconnects.load(std::memory_order_relaxed);
    out.stale_frames += conn->stale_frames.load(std::memory_order_relaxed);
    out.injected_drops += conn->injected_drops.load(std::memory_order_relaxed);
    out.injected_delays +=
        conn->injected_delays.load(std::memory_order_relaxed);
    out.injected_duplicates +=
        conn->injected_duplicates.load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace specsync::net
