// Wire format for the parameter-server shard protocol.
//
// The sharded store's seam (PullShard / PushShard / CommitPush) becomes a
// real protocol here: five messages in a length-prefixed binary framing with
// fixed-width little-endian fields, so a ShardServer on one machine and a
// ShardClient on another agree on bytes, not on C++ object layout.
//
// Frame layout (header is kHeaderBytes = 20 bytes):
//   u32 magic          0x53505359 ("YSPS" on the wire, little-endian)
//   u16 version        kWireVersion; receivers reject anything else
//   u16 type           MsgType
//   u64 request_id     echoed verbatim in the response; lets a client match
//                      responses to requests and discard stale frames left
//                      over from timed-out or duplicated attempts
//   u32 payload_bytes  length of the payload that follows (<= kMaxPayload)
//
// Version 2 — pipelining. The framing is byte-identical to v1; what changed
// is the *contract* around request_id:
//   - A client MAY have any number of requests in flight on one connection
//     (v1 promised strict request/response lockstep per connection).
//   - A server MAY answer out of order: responses are matched to requests by
//     request_id, never by arrival position. Servers that execute requests
//     concurrently (the event-loop model's bounded pool) reply as each
//     finishes.
//   - request_id is an opaque 64-bit token chosen by the client; a server
//     echoes it verbatim and never interprets it. Clients that pipeline must
//     keep ids unique among their own in-flight requests on a connection.
// Decoders stay strict: a v1 frame (or any other version) is kBadVersion —
// mixed-version peers must fail loudly at the first frame, not renegotiate.
//
// Payloads (all integers little-endian, doubles as IEEE-754 bit patterns in
// little-endian u64):
//   PullShardReq   u32 shard
//   PullShardResp  u32 shard, u64 offset, u64 shard_version,
//                  u64 global_version, u64 count, f64[count]
//   PushShardReq   u32 shard, u64 epoch, u8 kind (0 dense, 1 sparse,
//                  2 coded);
//                  dense:  u64 offset, u64 count, f64[count]  (the shard's
//                          slice only — never the full vector)
//                  sparse: u64 nnz, nnz x (u64 index, f64 value)  (global
//                          indices, pre-routed to the owning shard)
//                  coded:  u8 codec (CodecKind: 2 int8, 3 fp16), u8 sparse,
//                          f64 scale (int8 only; 0 when all-zero);
//                          dense:  u64 offset, u64 count, count x (i8|u16)
//                          sparse: u64 nnz, nnz x u64 index, nnz x (i8|u16)
//                          Values decode back into doubles; the encoder
//                          re-derives q from the (already quantization-
//                          idempotent) doubles, so encode(decode(frame))
//                          is byte-identical. kind 0/1 frames are
//                          byte-identical to the pre-codec wire — codec=none
//                          never emits kind 2 (TRCX extension discipline).
//   CommitPushReq  (empty)
//   AckResp        u32 status, u64 value
//   PullShardDeltaReq    u32 shard, u64 known_version  (client holds a cached
//                        copy at that shard version; server answers
//                        PullShardResp when the shard moved on, else
//                        PullShardNotModified)
//   PullShardNotModified u32 shard, u64 shard_version, u64 global_version
//
// Decoding is strict: short headers, bad magic/version/type, payloads longer
// than kMaxPayload, truncated payloads, and trailing bytes are all distinct
// errors — a transport must never guess at a malformed frame.
//
// Trace-context extension (optional, length-prefixed). A frame MAY carry a
// trace context after its message fields, still inside payload_bytes:
//   u32 ext_magic   kTraceExtMagic ("TRCX" on the wire, little-endian)
//   u16 ext_bytes   length of the extension body that follows (>= 16)
//   u64 trace_id    nonzero, process-unique per logical request (stable
//                   across retry attempts so duplicates collapse in traces)
//   u64 parent_span span id of the client-side span that caused this request
//   ...             decoders skip any bytes past the first 16 (forward
//                   compatibility for future extension fields)
// Absent extension ⇒ the frame is byte-identical to a pre-extension frame,
// so golden digests over traffic stay pinned and old captures still decode.
// Trailing bytes that do not start with kTraceExtMagic remain kMalformed.
#pragma once

#include <cstdint>
#include <span>
#include <variant>
#include <vector>

namespace specsync::net {

inline constexpr std::uint32_t kWireMagic = 0x53505359u;
inline constexpr std::uint16_t kWireVersion = 2;
inline constexpr std::size_t kHeaderBytes = 20;
// Caps one frame's payload (1 GiB). A header announcing more is rejected
// before any allocation, so a corrupt length field cannot OOM the receiver.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 30;

enum class MsgType : std::uint16_t {
  kPullShardReq = 1,
  kPullShardResp = 2,
  kPushShardReq = 3,
  kCommitPushReq = 4,
  kAck = 5,
  kPullShardDeltaReq = 6,
  kPullShardNotModified = 7,
};

// Trace-context extension framing ("XCRT" bytes little-endian spell TRCX).
inline constexpr std::uint32_t kTraceExtMagic = 0x58435254u;
inline constexpr std::uint16_t kTraceExtBytes = 16;

// Cross-process trace identity carried by the extension. trace_id == 0 means
// "absent": EncodeFrame emits no extension and decoders report no context.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
  bool valid() const { return trace_id != 0; }
};

// AckResp status codes.
inline constexpr std::uint32_t kAckOk = 0;
inline constexpr std::uint32_t kAckBadShard = 1;
inline constexpr std::uint32_t kAckBadRequest = 2;

struct PullShardReq {
  std::uint32_t shard = 0;
};

struct PullShardResp {
  std::uint32_t shard = 0;
  std::uint64_t offset = 0;
  std::uint64_t shard_version = 0;
  std::uint64_t global_version = 0;
  std::vector<double> params;
};

struct PushShardReq {
  std::uint32_t shard = 0;
  std::uint64_t epoch = 0;
  bool sparse = false;
  // Quantization codec for the value payload: 0 ships raw f64 (the classic
  // kind 0/1 encodings); CodecKind::kInt8 / kFp16 (2 / 3) ship the compact
  // kind-2 encoding. Values in this struct are ALWAYS doubles — the codec
  // only changes their wire representation, and quantization idempotency
  // (ps/compression.h) guarantees the encoder can recover the exact wire
  // bits from the doubles.
  std::uint8_t coded = 0;
  // Dense: the shard's contiguous slice (offset = shard offset in the full
  // vector). Sparse: global (index, value) entries owned by the shard; an
  // empty entry list is a valid message (the empty-gradient push still
  // crosses the wire as one message).
  std::uint64_t dense_offset = 0;
  std::vector<double> dense;
  std::vector<std::uint64_t> indices;
  std::vector<double> values;
};

struct CommitPushReq {};

// Response to PushShardReq (value = whether the slice touched the shard) and
// CommitPushReq (value = new global version), and the error reply to any
// request the server cannot serve.
struct AckResp {
  std::uint32_t status = kAckOk;
  std::uint64_t value = 0;
};

// Conditional pull (delta mode): "send shard `shard` unless it is still at
// `known_version`". The reply is a full PullShardResp on change, else
// PullShardNotModified. Delta pulls are lossless — an unchanged shard
// version proves the content is unchanged, so the cached copy is exact.
struct PullShardDeltaReq {
  std::uint32_t shard = 0;
  std::uint64_t known_version = 0;
};

struct PullShardNotModified {
  std::uint32_t shard = 0;
  std::uint64_t shard_version = 0;
  std::uint64_t global_version = 0;
};

// New message types append at the end: variant indexes are load-bearing for
// std::get_if call sites and must stay stable.
using WireMessage =
    std::variant<PullShardReq, PullShardResp, PushShardReq, CommitPushReq,
                 AckResp, PullShardDeltaReq, PullShardNotModified>;

enum class WireStatus {
  kOk = 0,
  kShortHeader,   // fewer than kHeaderBytes bytes
  kBadMagic,
  kBadVersion,
  kBadType,
  kOversized,     // payload_bytes > kMaxPayloadBytes
  kTruncated,     // payload shorter than its fields claim
  kMalformed,     // trailing bytes after a complete payload
};

const char* WireStatusName(WireStatus status);

struct FrameHeader {
  std::uint16_t version = 0;
  MsgType type = MsgType::kAck;
  std::uint64_t request_id = 0;
  std::uint32_t payload_bytes = 0;
};

// Serializes one message into a complete frame (header + payload). A valid
// (nonzero trace_id) context is appended as the trace extension; null or
// invalid contexts produce a byte-identical pre-extension frame.
std::vector<std::uint8_t> EncodeFrame(const WireMessage& message,
                                      std::uint64_t request_id,
                                      const TraceContext* trace = nullptr);

// Validates and parses the 20-byte header prefix of `bytes`.
WireStatus DecodeHeader(std::span<const std::uint8_t> bytes, FrameHeader& out);

// Parses a payload previously described by a valid header. `payload` must be
// exactly header.payload_bytes long (the transport reads exactly that many).
// When `trace` is non-null it receives the frame's trace context (zeroed if
// the frame carries none); callers that pass null still decode extension
// frames correctly — the context is parsed and discarded.
WireStatus DecodePayload(const FrameHeader& header,
                         std::span<const std::uint8_t> payload,
                         WireMessage& out, TraceContext* trace = nullptr);

// Whole-buffer convenience: `frame` must hold exactly one frame.
WireStatus DecodeFrame(std::span<const std::uint8_t> frame,
                       std::uint64_t& request_id, WireMessage& out,
                       TraceContext* trace = nullptr);

}  // namespace specsync::net
