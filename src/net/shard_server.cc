#include "net/shard_server.h"

#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "net/event_loop_server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace specsync::net {

std::unique_ptr<ShardServerBase> MakeShardServer(
    ParameterServer* store, ShardServerConfig config,
    obs::MetricsRegistry* metrics, obs::SpanRecorder* spans) {
  if (config.model == ServerModel::kEventLoop) {
    return std::make_unique<EventLoopServer>(store, std::move(config), metrics,
                                             spans);
  }
  return std::make_unique<ShardServer>(store, std::move(config), metrics,
                                       spans);
}

struct ShardServer::Conn {
  TcpConnection connection;
  std::thread handler;
  // Set by the handler as its last act; the accept loop joins and erases
  // finished connections between accepts (see ReapFinishedLocked).
  std::atomic<bool> finished{false};
};

ShardServer::ShardServer(ParameterServer* store, ShardServerConfig config,
                         obs::MetricsRegistry* metrics,
                         obs::SpanRecorder* spans)
    : store_(store),
      config_(std::move(config)),
      executor_(store, config_.served_shards, metrics, config_.service_delay,
                spans, config_.trace_track_base) {
  if (metrics != nullptr) {
    accepts_counter_ = &metrics->counter("net.server.accepts");
    reaped_counter_ = &metrics->counter("net.server.reaped");
    handlers_gauge_ = &metrics->gauge("net.server.live_handlers");
  }
}

ShardServer::~ShardServer() { Stop(); }

bool ShardServer::Start() {
  std::scoped_lock lock(lifecycle_mutex_);
  SPECSYNC_CHECK(!started_);
  listener_ = TcpListener::Bind(config_.bind);
  if (listener_ == nullptr) {
    SPECSYNC_LOG(kWarning) << "ShardServer: cannot bind "
                          << ToString(config_.bind);
    return false;
  }
  port_ = listener_->port();
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return true;
}

void ShardServer::Stop() {
  std::scoped_lock lock(lifecycle_mutex_);
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  listener_->Shutdown();
  // Join the accept thread *before* draining conns_: after this join no new
  // handler can ever be registered, so the drain below cannot race a
  // concurrent push_back (the join-while-accepting window the old code
  // left open). The lifecycle mutex makes concurrent Stop() calls (e.g.
  // explicit Stop racing the destructor) queue up instead of double-joining.
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Conn>> conns;
  {
    std::scoped_lock conns_lock(conns_mutex_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    conn->connection.ShutdownBoth();
    if (conn->handler.joinable()) conn->handler.join();
  }
  listener_.reset();
  started_ = false;
}

void ShardServer::AcceptLoop() {
  for (;;) {
    TcpConnection client = listener_->Accept();
    const bool stopping = stopping_.load(std::memory_order_acquire);
    if (!client.valid() || stopping) {
      // A client accepted in the same instant Stop() fired still gets an
      // active close instead of a silently leaked socket.
      if (client.valid()) client.ShutdownBoth();
      return;
    }
    std::scoped_lock lock(conns_mutex_);
    ReapFinishedLocked();
    auto conn = std::make_unique<Conn>();
    conn->connection = std::move(client);
    Conn* raw = conn.get();
    if (accepts_counter_ != nullptr) accepts_counter_->Increment();
    conn->handler = std::thread([this, raw] { HandleConnection(raw); });
    conns_.push_back(std::move(conn));
  }
}

void ShardServer::ReapFinishedLocked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->finished.load(std::memory_order_acquire)) {
      if ((*it)->handler.joinable()) (*it)->handler.join();
      it = conns_.erase(it);
      if (reaped_counter_ != nullptr) reaped_counter_->Increment();
    } else {
      ++it;
    }
  }
}

void ShardServer::HandleConnection(Conn* conn) {
  live_handlers_.fetch_add(1, std::memory_order_relaxed);
  if (handlers_gauge_ != nullptr) handlers_gauge_->Add(1.0);
  ServeConnection(conn);
  // Actively close on every exit path (bad frame, send failure, clean EOF):
  // the connection object may outlive the handler, so without this a peer
  // whose stream was abandoned mid-protocol would block instead of seeing
  // the close.
  conn->connection.ShutdownBoth();
  live_handlers_.fetch_sub(1, std::memory_order_relaxed);
  if (handlers_gauge_ != nullptr) handlers_gauge_->Add(-1.0);
  conn->finished.store(true, std::memory_order_release);
}

void ShardServer::ServeConnection(Conn* conn) {
  std::vector<std::uint8_t> frame;
  constexpr auto kForever = std::chrono::steady_clock::time_point::max();
  for (;;) {
    const auto status = conn->connection.RecvFrame(frame, kForever);
    if (status == TcpConnection::RecvStatus::kClosed) return;
    if (status != TcpConnection::RecvStatus::kFrame) {
      if (status == TcpConnection::RecvStatus::kBadFrame) {
        bad_frames_.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    std::uint64_t request_id = 0;
    WireMessage request;
    TraceContext trace;
    if (DecodeFrame(frame, request_id, request, &trace) != WireStatus::kOk) {
      // Framing survived but the payload is corrupt; the stream cannot be
      // trusted past this point.
      bad_frames_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const WireMessage response = executor_.Execute(request, &trace);
    if (!conn->connection.SendAll(EncodeFrame(response, request_id))) return;
  }
}

ServerStats ShardServer::stats() const {
  ServerStats out = executor_.stats();
  out.bad_frames = bad_frames_.load(std::memory_order_relaxed);
  return out;
}

std::size_t ShardServer::thread_count() const {
  std::scoped_lock lock(lifecycle_mutex_);
  if (!started_) return 0;
  return 1 + live_handlers_.load(std::memory_order_relaxed);
}

}  // namespace specsync::net
