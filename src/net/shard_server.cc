#include "net/shard_server.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace specsync::net {

struct ShardServer::Conn {
  TcpConnection connection;
  std::thread handler;
};

ShardServer::ShardServer(ParameterServer* store, ShardServerConfig config,
                         obs::MetricsRegistry* metrics)
    : store_(store), config_(std::move(config)) {
  SPECSYNC_CHECK(store_ != nullptr);
  for (std::size_t s : config_.served_shards) {
    SPECSYNC_CHECK_LT(s, store_->num_shards());
  }
  if (metrics != nullptr) {
    pull_hist_ = &metrics->histogram("net.server.pull_s");
    push_hist_ = &metrics->histogram("net.server.push_s");
  }
}

ShardServer::~ShardServer() { Stop(); }

bool ShardServer::Start() {
  SPECSYNC_CHECK(!started_);
  listener_ = TcpListener::BindLoopback(config_.port);
  if (listener_ == nullptr) {
    SPECSYNC_LOG(kWarning) << "ShardServer: cannot bind loopback port "
                          << config_.port;
    return false;
  }
  port_ = listener_->port();
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void ShardServer::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  listener_->Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Conn>> conns;
  {
    std::scoped_lock lock(conns_mutex_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    conn->connection.ShutdownBoth();
    if (conn->handler.joinable()) conn->handler.join();
  }
  listener_.reset();
  started_ = false;
}

bool ShardServer::ServesShard(std::size_t shard) const {
  if (shard >= store_->num_shards()) return false;
  if (config_.served_shards.empty()) return true;
  return std::find(config_.served_shards.begin(), config_.served_shards.end(),
                   shard) != config_.served_shards.end();
}

void ShardServer::AcceptLoop() {
  for (;;) {
    TcpConnection client = listener_->Accept();
    if (!client.valid()) return;  // shutdown (or fatal accept error)
    if (stopping_.load(std::memory_order_acquire)) return;
    std::scoped_lock lock(conns_mutex_);
    auto conn = std::make_unique<Conn>();
    conn->connection = std::move(client);
    Conn* raw = conn.get();
    conn->handler = std::thread([this, raw] { HandleConnection(raw); });
    conns_.push_back(std::move(conn));
  }
}

void ShardServer::HandleConnection(Conn* conn) {
  ServeConnection(conn);
  // Actively close on every exit path (bad frame, send failure, clean EOF):
  // the connection object itself lives until Stop(), so without this a peer
  // whose stream was abandoned mid-protocol would block instead of seeing
  // the close.
  conn->connection.ShutdownBoth();
}

void ShardServer::ServeConnection(Conn* conn) {
  std::vector<std::uint8_t> frame;
  constexpr auto kForever = std::chrono::steady_clock::time_point::max();
  for (;;) {
    const auto status = conn->connection.RecvFrame(frame, kForever);
    if (status == TcpConnection::RecvStatus::kClosed) return;
    if (status != TcpConnection::RecvStatus::kFrame) {
      if (status == TcpConnection::RecvStatus::kBadFrame) {
        bad_frames_.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    std::uint64_t request_id = 0;
    WireMessage request;
    if (DecodeFrame(frame, request_id, request) != WireStatus::kOk) {
      // Framing survived but the payload is corrupt; the stream cannot be
      // trusted past this point.
      bad_frames_.fetch_add(1, std::memory_order_relaxed);
      return;
    }

    WireMessage response = AckResp{kAckBadRequest, 0};
    if (const auto* pull = std::get_if<PullShardReq>(&request)) {
      if (!ServesShard(pull->shard)) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        response = AckResp{kAckBadShard, pull->shard};
      } else {
        obs::ScopedTimer timer(pull_hist_);
        ShardPullResult result = store_->PullShard(pull->shard);
        pulls_.fetch_add(1, std::memory_order_relaxed);
        PullShardResp resp;
        resp.shard = pull->shard;
        resp.offset = result.offset;
        resp.shard_version = result.shard_version;
        resp.global_version = result.version;
        resp.params = std::move(result.params);
        response = std::move(resp);
      }
    } else if (const auto* push = std::get_if<PushShardReq>(&request)) {
      if (!ServesShard(push->shard)) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        response = AckResp{kAckBadShard, push->shard};
      } else if (push->sparse) {
        obs::ScopedTimer timer(push_hist_);
        Gradient grad = Gradient::Sparse();
        grad.sparse().Reserve(push->indices.size());
        for (std::size_t i = 0; i < push->indices.size(); ++i) {
          grad.sparse().Add(push->indices[i], push->values[i]);
        }
        const bool touched =
            store_->PushShard(push->shard, grad, push->epoch);
        pushes_.fetch_add(1, std::memory_order_relaxed);
        response = AckResp{kAckOk, touched ? 1u : 0u};
      } else {
        const ShardInfo info = store_->shard(push->shard);
        if (push->dense_offset != info.offset ||
            push->dense.size() != info.length) {
          rejected_.fetch_add(1, std::memory_order_relaxed);
          response = AckResp{kAckBadRequest, push->shard};
        } else {
          obs::ScopedTimer timer(push_hist_);
          const bool touched = store_->PushShardDenseSlice(
              push->shard, push->dense, push->epoch);
          pushes_.fetch_add(1, std::memory_order_relaxed);
          response = AckResp{kAckOk, touched ? 1u : 0u};
        }
      }
    } else if (std::holds_alternative<CommitPushReq>(request)) {
      const std::uint64_t version = store_->CommitPush();
      commits_.fetch_add(1, std::memory_order_relaxed);
      response = AckResp{kAckOk, version};
    } else {
      // A response type arriving at the server is a confused peer.
      rejected_.fetch_add(1, std::memory_order_relaxed);
    }

    if (!conn->connection.SendAll(EncodeFrame(response, request_id))) return;
  }
}

ShardServer::Stats ShardServer::stats() const {
  Stats out;
  out.pulls = pulls_.load(std::memory_order_relaxed);
  out.pushes = pushes_.load(std::memory_order_relaxed);
  out.commits = commits_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.bad_frames = bad_frames_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace specsync::net
