#include "net/endpoint.h"

#include <algorithm>

namespace specsync::net {

std::string ToString(const Endpoint& endpoint) {
  const std::string host =
      endpoint.host.empty() || endpoint.host == "localhost" ? "127.0.0.1"
                                                            : endpoint.host;
  return host + ":" + std::to_string(endpoint.port);
}

const char* ServerModelName(ServerModel model) {
  switch (model) {
    case ServerModel::kThreadPerConn: return "thread_per_conn";
    case ServerModel::kEventLoop: return "event_loop";
  }
  return "unknown";
}

std::size_t ClusterTopology::dim() const {
  std::size_t total = 0;
  for (const ShardPlacement& shard : shards) total += shard.length;
  return total;
}

bool ClusterTopology::Validate(std::string* error) const {
  if (shards.empty()) {
    if (error != nullptr) *error = "topology has no shards";
    return false;
  }
  std::size_t expected_offset = 0;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    if (shards[s].offset != expected_offset) {
      if (error != nullptr) {
        *error = "shard " + std::to_string(s) + " offset " +
                 std::to_string(shards[s].offset) + " breaks contiguity" +
                 " (expected " + std::to_string(expected_offset) + ")";
      }
      return false;
    }
    if (shards[s].endpoint.port == 0) {
      if (error != nullptr) {
        *error = "shard " + std::to_string(s) + " endpoint has port 0";
      }
      return false;
    }
    expected_offset += shards[s].length;
  }
  if (expected_offset == 0) {
    if (error != nullptr) *error = "topology covers zero parameters";
    return false;
  }
  return true;
}

std::vector<Endpoint> ClusterTopology::DistinctEndpoints() const {
  std::vector<Endpoint> out;
  for (const ShardPlacement& shard : shards) {
    if (std::find(out.begin(), out.end(), shard.endpoint) == out.end()) {
      out.push_back(shard.endpoint);
    }
  }
  return out;
}

std::vector<std::size_t> ClusterTopology::ShardLinkIndex() const {
  const std::vector<Endpoint> links = DistinctEndpoints();
  std::vector<std::size_t> out;
  out.reserve(shards.size());
  for (const ShardPlacement& shard : shards) {
    const auto it = std::find(links.begin(), links.end(), shard.endpoint);
    out.push_back(static_cast<std::size_t>(it - links.begin()));
  }
  return out;
}

ClusterTopology ClusterTopology::SingleServer(
    const std::vector<std::pair<std::size_t, std::size_t>>& split,
    const Endpoint& endpoint) {
  ClusterTopology topology;
  topology.shards.reserve(split.size());
  for (const auto& [offset, length] : split) {
    topology.shards.push_back(ShardPlacement{offset, length, endpoint});
  }
  return topology;
}

}  // namespace specsync::net
