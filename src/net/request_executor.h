// RequestExecutor: the server-side request→response function, shared by both
// server models.
//
// Executing a decoded WireMessage against a ParameterServer is pure protocol
// logic — which shards this server owns, how a dense slice is validated, what
// an error ack looks like — and must be byte-identical whether the request
// arrived on a thread-per-connection handler (ShardServer) or the epoll
// event loop's execution pool (EventLoopServer). Factoring it here is what
// makes the two models A/B-equivalent by construction: they differ only in
// how bytes reach Execute(), never in what Execute() does.
//
// Thread safety: Execute() may be called concurrently from any number of
// threads; the ParameterServer's per-shard locks are the serialization
// point, and the counters are atomics.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "net/wire.h"
#include "ps/param_store.h"

namespace specsync::obs {
class MetricsRegistry;
class LatencyHistogram;
class SpanRecorder;
}  // namespace specsync::obs

namespace specsync::net {

// Aggregate request counters, shared across server models (bad_frames is
// owned by the transport layer — frames that never decode never reach the
// executor — and merged into this struct by the server's stats()).
struct ServerStats {
  std::uint64_t pulls = 0;
  std::uint64_t pushes = 0;
  std::uint64_t commits = 0;
  // Requests answered with an error ack (bad shard / bad request).
  std::uint64_t rejected = 0;
  // Connections dropped on malformed frames or socket errors.
  std::uint64_t bad_frames = 0;
  // Delta pulls answered with PullShardNotModified (the shard version
  // matched the client's cached copy, so no parameter bytes moved).
  std::uint64_t delta_not_modified = 0;
  // Pushes that arrived in the kind-2 coded encoding (int8/fp16).
  std::uint64_t coded_pushes = 0;
};

class RequestExecutor {
 public:
  // `store` is not owned and must outlive the executor. `served_shards`
  // empty = all shards. `metrics` (optional) receives the
  // "net.server.pull_s" / "net.server.push_s" service-time histograms.
  // `service_delay` stalls every request's execution by that much before
  // touching the store — a test/bench injection point that makes service
  // time controllable when pinning pipelining behavior (zero = off).
  // `spans` (optional) records one "net.server" serve span per request that
  // arrived with a wire trace context, flow-linked back to the client span
  // that caused it (DESIGN.md §14). Serve spans land on track
  // `span_track_base + shard`, letting a recorder shared with other span
  // sources (the in-process runtime) give server activity its own tracks.
  RequestExecutor(ParameterServer* store,
                  std::vector<std::size_t> served_shards,
                  obs::MetricsRegistry* metrics = nullptr,
                  std::chrono::microseconds service_delay = {},
                  obs::SpanRecorder* spans = nullptr,
                  std::uint32_t span_track_base = 0);

  // Executes one decoded request and returns the response to send back. A
  // response-typed message (a confused peer) gets a kAckBadRequest ack.
  // `trace` (optional) is the request frame's trace context; valid contexts
  // become serve spans when a SpanRecorder is attached.
  WireMessage Execute(const WireMessage& request,
                      const TraceContext* trace = nullptr);

  bool ServesShard(std::size_t shard) const;

  // Executor-side counters (bad_frames always 0 here).
  ServerStats stats() const;

 private:
  WireMessage ExecuteInner(const WireMessage& request);

  ParameterServer* store_;
  std::vector<std::size_t> served_shards_;
  std::chrono::microseconds service_delay_;
  obs::SpanRecorder* spans_ = nullptr;
  std::uint32_t span_track_base_ = 0;

  std::atomic<std::uint64_t> pulls_{0};
  std::atomic<std::uint64_t> pushes_{0};
  std::atomic<std::uint64_t> commits_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> delta_not_modified_{0};
  std::atomic<std::uint64_t> coded_pushes_{0};

  obs::LatencyHistogram* pull_hist_ = nullptr;
  obs::LatencyHistogram* push_hist_ = nullptr;
};

}  // namespace specsync::net
