// Multinomial logistic (softmax) regression.
//
// Parameters: [ W (num_classes x feature_dim) | b (num_classes) ] flattened.
// Convex; used both as a fast workload and as ground truth in tests (its
// optimum is unique, so every synchronization scheme must converge to the
// same loss).
#pragma once

#include <memory>

#include "data/dataset.h"
#include "models/model.h"

namespace specsync {

struct SoftmaxRegressionConfig {
  double regularization = 1e-4;
  double init_scale = 0.01;
};

class SoftmaxRegressionModel final : public Model {
 public:
  SoftmaxRegressionModel(std::shared_ptr<const ClassificationDataset> data,
                         SoftmaxRegressionConfig config);

  std::string name() const override { return "softmax_regression"; }
  std::size_t param_dim() const override;
  std::size_t dataset_size() const override { return data_->size(); }
  void InitParams(std::span<double> params, Rng& rng) const override;
  double LossAndGradient(std::span<const double> params,
                         std::span<const std::size_t> batch,
                         Gradient& grad) const override;
  double Loss(std::span<const double> params,
              std::span<const std::size_t> batch) const override;

  // Classification accuracy over the full dataset.
  double Accuracy(std::span<const double> params) const;

 private:
  // Computes class probabilities for one example into `probs`.
  void Predict(std::span<const double> params, const Example& example,
               std::span<double> probs) const;

  std::shared_ptr<const ClassificationDataset> data_;
  SoftmaxRegressionConfig config_;
};

}  // namespace specsync
