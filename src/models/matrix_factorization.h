// L2-regularized matrix factorization (the paper's MF / MovieLens workload).
//
// Parameters: [ user factors U (num_users x rank) | item factors V
// (num_items x rank) ] flattened row-major. Loss per rating (u,i,r):
//   0.5 * (r - U_u . V_i)^2 + 0.5 * reg * (|U_u|^2 + |V_i|^2) / n_touch
// Gradients are sparse: only the factor rows present in the batch move.
#pragma once

#include <memory>

#include "data/dataset.h"
#include "models/model.h"

namespace specsync {

struct MatrixFactorizationConfig {
  std::size_t rank = 16;
  double regularization = 0.01;
  // Parameter init scale (uniform in [-scale, scale]).
  double init_scale = 0.1;
  // Sum (rather than average) the per-rating gradients: with sparse batches a
  // factor row is touched by only a handful of ratings, and summing makes the
  // learning rate act per rating occurrence — the classical Koren-style MF
  // SGD behaviour (and what MXNet's sparse push amounts to).
  bool sum_gradient = true;
};

class MatrixFactorizationModel final : public Model {
 public:
  MatrixFactorizationModel(std::shared_ptr<const RatingsDataset> data,
                           MatrixFactorizationConfig config);

  std::string name() const override { return "matrix_factorization"; }
  std::size_t param_dim() const override;
  std::size_t dataset_size() const override { return data_->size(); }
  void InitParams(std::span<double> params, Rng& rng) const override;
  double LossAndGradient(std::span<const double> params,
                         std::span<const std::size_t> batch,
                         Gradient& grad) const override;
  double Loss(std::span<const double> params,
              std::span<const std::size_t> batch) const override;
  bool prefers_sparse_gradients() const override { return true; }

  std::size_t rank() const { return config_.rank; }
  // Offset of item factor row `item` in the flat parameter vector.
  std::size_t item_offset(std::size_t item) const;
  // Offset of user factor row `user`.
  std::size_t user_offset(std::size_t user) const;

 private:
  std::shared_ptr<const RatingsDataset> data_;
  MatrixFactorizationConfig config_;
};

}  // namespace specsync
