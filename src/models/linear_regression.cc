#include "models/linear_regression.h"

#include "common/check.h"

namespace specsync {

LinearRegressionModel::LinearRegressionModel(
    std::shared_ptr<const ClassificationDataset> data,
    std::vector<double> targets, double regularization)
    : data_(std::move(data)),
      targets_(std::move(targets)),
      regularization_(regularization) {
  SPECSYNC_CHECK(data_ != nullptr);
  SPECSYNC_CHECK_EQ(targets_.size(), data_->size());
  SPECSYNC_CHECK_GE(regularization_, 0.0);
}

void LinearRegressionModel::InitParams(std::span<double> params,
                                       Rng& rng) const {
  SPECSYNC_CHECK_EQ(params.size(), param_dim());
  for (double& v : params) v = rng.Normal(0.0, 0.01);
}

double LinearRegressionModel::PredictOne(std::span<const double> params,
                                         const Example& example) const {
  const std::size_t d = data_->feature_dim();
  double z = params[d];  // bias
  for (std::size_t j = 0; j < d; ++j) z += params[j] * example.features[j];
  return z;
}

double LinearRegressionModel::LossAndGradient(
    std::span<const double> params, std::span<const std::size_t> batch,
    Gradient& grad) const {
  SPECSYNC_CHECK_EQ(params.size(), param_dim());
  SPECSYNC_CHECK(!batch.empty());
  grad = Gradient::Dense(param_dim());
  std::span<double> g = grad.dense();
  const std::size_t d = data_->feature_dim();
  const double inv_batch = 1.0 / static_cast<double>(batch.size());

  double loss = 0.0;
  for (std::size_t idx : batch) {
    const Example& example = data_->example(idx);
    const double err = PredictOne(params, example) - targets_[idx];
    loss += 0.5 * err * err;
    for (std::size_t j = 0; j < d; ++j) {
      g[j] += err * example.features[j] * inv_batch;
    }
    g[d] += err * inv_batch;
  }
  loss *= inv_batch;
  if (regularization_ > 0.0) {
    for (std::size_t j = 0; j < d; ++j) {
      g[j] += regularization_ * params[j];
      loss += 0.5 * regularization_ * params[j] * params[j];
    }
  }
  return loss;
}

double LinearRegressionModel::Loss(std::span<const double> params,
                                   std::span<const std::size_t> batch) const {
  SPECSYNC_CHECK_EQ(params.size(), param_dim());
  SPECSYNC_CHECK(!batch.empty());
  const std::size_t d = data_->feature_dim();
  double loss = 0.0;
  for (std::size_t idx : batch) {
    const Example& example = data_->example(idx);
    const double err = PredictOne(params, example) - targets_[idx];
    loss += 0.5 * err * err;
  }
  loss /= static_cast<double>(batch.size());
  if (regularization_ > 0.0) {
    for (std::size_t j = 0; j < d; ++j) {
      loss += 0.5 * regularization_ * params[j] * params[j];
    }
  }
  return loss;
}

}  // namespace specsync
