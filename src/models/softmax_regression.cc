#include "models/softmax_regression.h"

#include "common/check.h"
#include "tensor/nn_ops.h"

namespace specsync {

SoftmaxRegressionModel::SoftmaxRegressionModel(
    std::shared_ptr<const ClassificationDataset> data,
    SoftmaxRegressionConfig config)
    : data_(std::move(data)), config_(config) {
  SPECSYNC_CHECK(data_ != nullptr);
}

std::size_t SoftmaxRegressionModel::param_dim() const {
  return data_->num_classes() * data_->feature_dim() + data_->num_classes();
}

void SoftmaxRegressionModel::InitParams(std::span<double> params,
                                        Rng& rng) const {
  SPECSYNC_CHECK_EQ(params.size(), param_dim());
  for (double& v : params) {
    v = rng.Normal(0.0, config_.init_scale);
  }
}

void SoftmaxRegressionModel::Predict(std::span<const double> params,
                                     const Example& example,
                                     std::span<double> probs) const {
  const std::size_t c = data_->num_classes();
  const std::size_t d = data_->feature_dim();
  const std::size_t bias_offset = c * d;
  for (std::size_t k = 0; k < c; ++k) {
    double z = params[bias_offset + k];
    const std::size_t row = k * d;
    for (std::size_t j = 0; j < d; ++j) {
      z += params[row + j] * example.features[j];
    }
    probs[k] = z;
  }
  SoftmaxInPlace(probs);
}

double SoftmaxRegressionModel::LossAndGradient(
    std::span<const double> params, std::span<const std::size_t> batch,
    Gradient& grad) const {
  SPECSYNC_CHECK_EQ(params.size(), param_dim());
  SPECSYNC_CHECK(!batch.empty());
  grad = Gradient::Dense(param_dim());
  std::span<double> g = grad.dense();

  const std::size_t c = data_->num_classes();
  const std::size_t d = data_->feature_dim();
  const std::size_t bias_offset = c * d;
  const double inv_batch = 1.0 / static_cast<double>(batch.size());

  std::vector<double> probs(c);
  double loss = 0.0;
  for (std::size_t idx : batch) {
    const Example& example = data_->example(idx);
    Predict(params, example, probs);
    loss += CrossEntropy(probs, example.label);
    for (std::size_t k = 0; k < c; ++k) {
      // dL/dz_k = p_k - [k == label]
      const double dz =
          (probs[k] - (k == example.label ? 1.0 : 0.0)) * inv_batch;
      const std::size_t row = k * d;
      for (std::size_t j = 0; j < d; ++j) {
        g[row + j] += dz * example.features[j];
      }
      g[bias_offset + k] += dz;
    }
  }
  loss *= inv_batch;
  // L2 regularization on the weight matrix (not the bias).
  if (config_.regularization > 0.0) {
    for (std::size_t i = 0; i < bias_offset; ++i) {
      g[i] += config_.regularization * params[i];
      loss += 0.5 * config_.regularization * params[i] * params[i];
    }
  }
  return loss;
}

double SoftmaxRegressionModel::Loss(std::span<const double> params,
                                    std::span<const std::size_t> batch) const {
  SPECSYNC_CHECK_EQ(params.size(), param_dim());
  SPECSYNC_CHECK(!batch.empty());
  const std::size_t c = data_->num_classes();
  std::vector<double> probs(c);
  double loss = 0.0;
  for (std::size_t idx : batch) {
    const Example& example = data_->example(idx);
    Predict(params, example, probs);
    loss += CrossEntropy(probs, example.label);
  }
  loss /= static_cast<double>(batch.size());
  if (config_.regularization > 0.0) {
    const std::size_t bias_offset = c * data_->feature_dim();
    double reg = 0.0;
    for (std::size_t i = 0; i < bias_offset; ++i) reg += params[i] * params[i];
    loss += 0.5 * config_.regularization * reg;
  }
  return loss;
}

double SoftmaxRegressionModel::Accuracy(std::span<const double> params) const {
  SPECSYNC_CHECK_EQ(params.size(), param_dim());
  std::vector<double> probs(data_->num_classes());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data_->size(); ++i) {
    const Example& example = data_->example(i);
    Predict(params, example, probs);
    if (ArgMax(probs) == example.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data_->size());
}

}  // namespace specsync
