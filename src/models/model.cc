#include "models/model.h"

#include <numeric>

#include "common/check.h"

namespace specsync {

void Gradient::AddTo(double alpha, std::span<double> dest) const {
  if (is_sparse_) {
    sparse_.ScatterAdd(alpha, dest);
  } else {
    Axpy(alpha, dense_, dest);
  }
}

void Gradient::Clear() {
  if (is_sparse_) {
    sparse_.Clear();
  } else {
    Zero(dense_);
  }
}

double Model::FullLoss(std::span<const double> params,
                       std::size_t max_examples) const {
  const std::size_t n = dataset_size();
  SPECSYNC_CHECK_GT(n, 0u);
  std::size_t use = (max_examples == 0) ? n : std::min(n, max_examples);
  std::vector<std::size_t> indices(use);
  if (use == n) {
    std::iota(indices.begin(), indices.end(), 0u);
  } else {
    // Deterministic strided subsample so successive evaluations are
    // comparable across time.
    const double stride = static_cast<double>(n) / static_cast<double>(use);
    for (std::size_t i = 0; i < use; ++i) {
      indices[i] = static_cast<std::size_t>(static_cast<double>(i) * stride);
    }
  }
  return Loss(params, indices);
}

}  // namespace specsync
