// Multi-layer perceptron classifier — the proxy for the paper's deep residual
// networks (CIFAR-10: ResNet-110, ImageNet: ResNet-18).
//
// Substitution rationale: what SpecSync exercises is SGD on a non-convex,
// over-parameterized model whose convergence degrades under stale gradients;
// an MLP on Gaussian-mixture data reproduces that regime at laptop scale.
// Layer sizes are chosen per workload so the relative model sizes track the
// paper's Table I.
//
// Parameters are flattened layer by layer: for each layer l,
// [ W_l (out_l x in_l) | b_l (out_l) ].
#pragma once

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "models/model.h"

namespace specsync {

struct MlpConfig {
  // Hidden layer widths; empty means softmax regression topology.
  std::vector<std::size_t> hidden = {128};
  double regularization = 1e-4;
  // He-style init scale multiplier.
  double init_gain = 1.0;
};

class MlpClassifierModel final : public Model {
 public:
  MlpClassifierModel(std::shared_ptr<const ClassificationDataset> data,
                     MlpConfig config);

  std::string name() const override { return "mlp_classifier"; }
  std::size_t param_dim() const override { return param_dim_; }
  std::size_t dataset_size() const override { return data_->size(); }
  void InitParams(std::span<double> params, Rng& rng) const override;
  double LossAndGradient(std::span<const double> params,
                         std::span<const std::size_t> batch,
                         Gradient& grad) const override;
  double Loss(std::span<const double> params,
              std::span<const std::size_t> batch) const override;

  double Accuracy(std::span<const double> params) const;

  std::size_t num_layers() const { return layer_in_.size(); }

 private:
  struct Workspace {
    // Per-layer activations (post-nonlinearity) and pre-activations.
    std::vector<std::vector<double>> activations;
    std::vector<std::vector<double>> pre_activations;
    std::vector<std::vector<double>> deltas;
  };

  Workspace MakeWorkspace() const;

  // Forward pass; returns class probabilities in ws.activations.back().
  void Forward(std::span<const double> params, const Example& example,
               Workspace& ws) const;

  std::size_t weight_offset(std::size_t layer) const;
  std::size_t bias_offset(std::size_t layer) const;

  std::shared_ptr<const ClassificationDataset> data_;
  MlpConfig config_;
  std::vector<std::size_t> layer_in_;
  std::vector<std::size_t> layer_out_;
  std::vector<std::size_t> weight_offsets_;
  std::vector<std::size_t> bias_offsets_;
  std::size_t param_dim_ = 0;
};

}  // namespace specsync
