#include "models/matrix_factorization.h"

#include <cmath>

#include "common/check.h"

namespace specsync {

MatrixFactorizationModel::MatrixFactorizationModel(
    std::shared_ptr<const RatingsDataset> data,
    MatrixFactorizationConfig config)
    : data_(std::move(data)), config_(config) {
  SPECSYNC_CHECK(data_ != nullptr);
  SPECSYNC_CHECK_GT(config_.rank, 0u);
  SPECSYNC_CHECK_GE(config_.regularization, 0.0);
}

std::size_t MatrixFactorizationModel::param_dim() const {
  return (data_->num_users() + data_->num_items()) * config_.rank;
}

std::size_t MatrixFactorizationModel::user_offset(std::size_t user) const {
  SPECSYNC_CHECK_LT(user, data_->num_users());
  return user * config_.rank;
}

std::size_t MatrixFactorizationModel::item_offset(std::size_t item) const {
  SPECSYNC_CHECK_LT(item, data_->num_items());
  return (data_->num_users() + item) * config_.rank;
}

void MatrixFactorizationModel::InitParams(std::span<double> params,
                                          Rng& rng) const {
  SPECSYNC_CHECK_EQ(params.size(), param_dim());
  for (double& v : params) {
    v = rng.Uniform(-config_.init_scale, config_.init_scale);
  }
}

double MatrixFactorizationModel::LossAndGradient(
    std::span<const double> params, std::span<const std::size_t> batch,
    Gradient& grad) const {
  SPECSYNC_CHECK_EQ(params.size(), param_dim());
  SPECSYNC_CHECK(!batch.empty());
  grad = Gradient::Sparse();
  grad.sparse().Reserve(batch.size() * 2 * config_.rank);

  const double inv_batch = 1.0 / static_cast<double>(batch.size());
  const double grad_scale = config_.sum_gradient ? 1.0 : inv_batch;
  const std::size_t r = config_.rank;
  double loss = 0.0;
  for (std::size_t idx : batch) {
    const Rating& rating = data_->rating(idx);
    const std::size_t uo = user_offset(rating.user);
    const std::size_t io = item_offset(rating.item);
    double dot = 0.0;
    for (std::size_t k = 0; k < r; ++k) dot += params[uo + k] * params[io + k];
    const double err = dot - rating.value;
    double reg_term = 0.0;
    for (std::size_t k = 0; k < r; ++k) {
      const double uk = params[uo + k];
      const double vk = params[io + k];
      reg_term += uk * uk + vk * vk;
      // d/dU_uk: err * V_ik + reg * U_uk ; d/dV_ik: err * U_uk + reg * V_ik.
      grad.sparse().Add(uo + k,
                        grad_scale * (err * vk + config_.regularization * uk));
      grad.sparse().Add(io + k,
                        grad_scale * (err * uk + config_.regularization * vk));
    }
    loss += 0.5 * err * err + 0.5 * config_.regularization * reg_term;
  }
  grad.sparse().Coalesce();
  return loss * inv_batch;
}

double MatrixFactorizationModel::Loss(std::span<const double> params,
                                      std::span<const std::size_t> batch) const {
  SPECSYNC_CHECK_EQ(params.size(), param_dim());
  SPECSYNC_CHECK(!batch.empty());
  const std::size_t r = config_.rank;
  double loss = 0.0;
  for (std::size_t idx : batch) {
    const Rating& rating = data_->rating(idx);
    const std::size_t uo = user_offset(rating.user);
    const std::size_t io = item_offset(rating.item);
    double dot = 0.0;
    double reg_term = 0.0;
    for (std::size_t k = 0; k < r; ++k) {
      dot += params[uo + k] * params[io + k];
      reg_term += params[uo + k] * params[uo + k] +
                  params[io + k] * params[io + k];
    }
    const double err = dot - rating.value;
    loss += 0.5 * err * err + 0.5 * config_.regularization * reg_term;
  }
  return loss / static_cast<double>(batch.size());
}

}  // namespace specsync
