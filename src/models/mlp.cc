#include "models/mlp.h"

#include <cmath>

#include "common/check.h"
#include "tensor/matrix.h"
#include "tensor/nn_ops.h"

namespace specsync {

MlpClassifierModel::MlpClassifierModel(
    std::shared_ptr<const ClassificationDataset> data, MlpConfig config)
    : data_(std::move(data)), config_(std::move(config)) {
  SPECSYNC_CHECK(data_ != nullptr);
  std::size_t in = data_->feature_dim();
  for (std::size_t width : config_.hidden) {
    SPECSYNC_CHECK_GT(width, 0u);
    layer_in_.push_back(in);
    layer_out_.push_back(width);
    in = width;
  }
  layer_in_.push_back(in);
  layer_out_.push_back(data_->num_classes());

  for (std::size_t l = 0; l < layer_in_.size(); ++l) {
    weight_offsets_.push_back(param_dim_);
    param_dim_ += layer_in_[l] * layer_out_[l];
    bias_offsets_.push_back(param_dim_);
    param_dim_ += layer_out_[l];
  }
}

std::size_t MlpClassifierModel::weight_offset(std::size_t layer) const {
  SPECSYNC_CHECK_LT(layer, weight_offsets_.size());
  return weight_offsets_[layer];
}

std::size_t MlpClassifierModel::bias_offset(std::size_t layer) const {
  SPECSYNC_CHECK_LT(layer, bias_offsets_.size());
  return bias_offsets_[layer];
}

void MlpClassifierModel::InitParams(std::span<double> params, Rng& rng) const {
  SPECSYNC_CHECK_EQ(params.size(), param_dim_);
  for (std::size_t l = 0; l < num_layers(); ++l) {
    // He initialization: stddev = gain * sqrt(2 / fan_in).
    const double stddev =
        config_.init_gain * std::sqrt(2.0 / static_cast<double>(layer_in_[l]));
    const std::size_t wo = weight_offset(l);
    const std::size_t count = layer_in_[l] * layer_out_[l];
    for (std::size_t i = 0; i < count; ++i) {
      params[wo + i] = rng.Normal(0.0, stddev);
    }
    const std::size_t bo = bias_offset(l);
    for (std::size_t i = 0; i < layer_out_[l]; ++i) params[bo + i] = 0.0;
  }
}

MlpClassifierModel::Workspace MlpClassifierModel::MakeWorkspace() const {
  Workspace ws;
  ws.activations.resize(num_layers() + 1);
  ws.pre_activations.resize(num_layers());
  ws.deltas.resize(num_layers());
  ws.activations[0].resize(data_->feature_dim());
  for (std::size_t l = 0; l < num_layers(); ++l) {
    ws.activations[l + 1].resize(layer_out_[l]);
    ws.pre_activations[l].resize(layer_out_[l]);
    ws.deltas[l].resize(layer_out_[l]);
  }
  return ws;
}

void MlpClassifierModel::Forward(std::span<const double> params,
                                 const Example& example, Workspace& ws) const {
  ws.activations[0] = example.features;
  for (std::size_t l = 0; l < num_layers(); ++l) {
    ConstMatrixView w(params.subspan(weight_offset(l),
                                     layer_in_[l] * layer_out_[l]),
                      layer_out_[l], layer_in_[l]);
    std::span<const double> b = params.subspan(bias_offset(l), layer_out_[l]);
    Gemv(w, ws.activations[l], ws.pre_activations[l]);
    for (std::size_t i = 0; i < layer_out_[l]; ++i) {
      ws.pre_activations[l][i] += b[i];
    }
    if (l + 1 < num_layers()) {
      Relu(ws.pre_activations[l], ws.activations[l + 1]);
    } else {
      ws.activations[l + 1] = ws.pre_activations[l];
      SoftmaxInPlace(ws.activations[l + 1]);
    }
  }
}

double MlpClassifierModel::LossAndGradient(
    std::span<const double> params, std::span<const std::size_t> batch,
    Gradient& grad) const {
  SPECSYNC_CHECK_EQ(params.size(), param_dim_);
  SPECSYNC_CHECK(!batch.empty());
  grad = Gradient::Dense(param_dim_);
  std::span<double> g = grad.dense();
  Workspace ws = MakeWorkspace();
  const double inv_batch = 1.0 / static_cast<double>(batch.size());
  const std::size_t last = num_layers() - 1;

  double loss = 0.0;
  for (std::size_t idx : batch) {
    const Example& example = data_->example(idx);
    Forward(params, example, ws);
    const std::vector<double>& probs = ws.activations.back();
    loss += CrossEntropy(probs, example.label);

    // Output delta: p - onehot(label).
    for (std::size_t i = 0; i < layer_out_[last]; ++i) {
      ws.deltas[last][i] =
          (probs[i] - (i == example.label ? 1.0 : 0.0)) * inv_batch;
    }
    // Backpropagate.
    for (std::size_t l = last + 1; l-- > 0;) {
      MatrixView gw(g.subspan(weight_offset(l),
                              layer_in_[l] * layer_out_[l]),
                    layer_out_[l], layer_in_[l]);
      std::span<double> gb = g.subspan(bias_offset(l), layer_out_[l]);
      AddOuterProduct(gw, 1.0, ws.deltas[l], ws.activations[l]);
      for (std::size_t i = 0; i < layer_out_[l]; ++i) gb[i] += ws.deltas[l][i];
      if (l > 0) {
        ConstMatrixView w(params.subspan(weight_offset(l),
                                         layer_in_[l] * layer_out_[l]),
                          layer_out_[l], layer_in_[l]);
        // delta_{l-1} = relu'(z_{l-1}) . (W_l^T delta_l)
        std::vector<double> back(layer_in_[l]);
        GemvTransposed(w, ws.deltas[l], back);
        ReluBackward(ws.pre_activations[l - 1], back, ws.deltas[l - 1]);
      }
    }
  }
  loss *= inv_batch;
  if (config_.regularization > 0.0) {
    for (std::size_t l = 0; l < num_layers(); ++l) {
      const std::size_t wo = weight_offset(l);
      const std::size_t count = layer_in_[l] * layer_out_[l];
      for (std::size_t i = 0; i < count; ++i) {
        g[wo + i] += config_.regularization * params[wo + i];
        loss += 0.5 * config_.regularization * params[wo + i] * params[wo + i];
      }
    }
  }
  return loss;
}

double MlpClassifierModel::Loss(std::span<const double> params,
                                std::span<const std::size_t> batch) const {
  SPECSYNC_CHECK_EQ(params.size(), param_dim_);
  SPECSYNC_CHECK(!batch.empty());
  Workspace ws = MakeWorkspace();
  double loss = 0.0;
  for (std::size_t idx : batch) {
    const Example& example = data_->example(idx);
    Forward(params, example, ws);
    loss += CrossEntropy(ws.activations.back(), example.label);
  }
  loss /= static_cast<double>(batch.size());
  if (config_.regularization > 0.0) {
    for (std::size_t l = 0; l < num_layers(); ++l) {
      const std::size_t wo = weight_offset(l);
      const std::size_t count = layer_in_[l] * layer_out_[l];
      for (std::size_t i = 0; i < count; ++i) {
        loss += 0.5 * config_.regularization * params[wo + i] * params[wo + i];
      }
    }
  }
  return loss;
}

double MlpClassifierModel::Accuracy(std::span<const double> params) const {
  SPECSYNC_CHECK_EQ(params.size(), param_dim_);
  Workspace ws = MakeWorkspace();
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data_->size(); ++i) {
    const Example& example = data_->example(i);
    Forward(params, example, ws);
    if (ArgMax(ws.activations.back()) == example.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data_->size());
}

}  // namespace specsync
