// Ordinary least-squares linear regression.
//
// Convex with a unique optimum — used as ground truth in tests: every
// synchronization scheme, however stale, must converge to the same loss, and
// deviations isolate bugs in the PS/scheduler rather than in the model.
#pragma once

#include <memory>

#include "data/dataset.h"
#include "models/model.h"

namespace specsync {

// Reuses ClassificationDataset storage with real-valued "labels" packed into
// targets supplied separately.
class LinearRegressionModel final : public Model {
 public:
  // targets[i] is the regression target of data->example(i).
  LinearRegressionModel(std::shared_ptr<const ClassificationDataset> data,
                        std::vector<double> targets,
                        double regularization = 0.0);

  std::string name() const override { return "linear_regression"; }
  std::size_t param_dim() const override {
    return data_->feature_dim() + 1;  // weights + bias
  }
  std::size_t dataset_size() const override { return data_->size(); }
  void InitParams(std::span<double> params, Rng& rng) const override;
  double LossAndGradient(std::span<const double> params,
                         std::span<const std::size_t> batch,
                         Gradient& grad) const override;
  double Loss(std::span<const double> params,
              std::span<const std::size_t> batch) const override;

 private:
  double PredictOne(std::span<const double> params,
                    const Example& example) const;

  std::shared_ptr<const ClassificationDataset> data_;
  std::vector<double> targets_;
  double regularization_;
};

}  // namespace specsync
