// Model abstraction: loss and (mini-batch) gradient against a flat parameter
// vector.
//
// The parameter server owns the canonical flat layout; workers receive
// snapshots of it and hand back gradients. Gradients may be dense (neural
// nets) or sparse (matrix factorization touches only the factor rows present
// in the batch), and both know their wire size for transfer accounting.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/sparse.h"
#include "tensor/vector.h"

namespace specsync {

class Gradient {
 public:
  Gradient() = default;

  static Gradient Dense(std::size_t dim) {
    Gradient g;
    g.dense_.assign(dim, 0.0);
    g.is_sparse_ = false;
    return g;
  }
  static Gradient Sparse() {
    Gradient g;
    g.is_sparse_ = true;
    return g;
  }

  bool is_sparse() const { return is_sparse_; }

  DenseVector& dense() { return dense_; }
  const DenseVector& dense() const { return dense_; }
  SparseUpdate& sparse() { return sparse_; }
  const SparseUpdate& sparse() const { return sparse_; }

  // dest += alpha * gradient; dest must have the full parameter dimension.
  void AddTo(double alpha, std::span<double> dest) const;

  // Resets values to zero, keeping the representation.
  void Clear();

  // Bytes this gradient occupies on the wire when pushed.
  std::size_t wire_bytes() const {
    return is_sparse_ ? sparse_.wire_bytes() : dense_.size() * sizeof(double);
  }

 private:
  bool is_sparse_ = false;
  DenseVector dense_;
  SparseUpdate sparse_;
};

// A training model over a fixed dataset. Implementations are immutable after
// construction and safe to share across workers (C.2: class with invariant).
class Model {
 public:
  virtual ~Model() = default;

  virtual std::string name() const = 0;

  // Total number of parameters (the flat vector length).
  virtual std::size_t param_dim() const = 0;

  // Number of examples in the backing dataset.
  virtual std::size_t dataset_size() const = 0;

  // Writes a fresh random initialization into `params`.
  virtual void InitParams(std::span<double> params, Rng& rng) const = 0;

  // Mean loss over `batch` (dataset indices) and gradient of that mean loss.
  // Returns the loss. `grad` is overwritten.
  virtual double LossAndGradient(std::span<const double> params,
                                 std::span<const std::size_t> batch,
                                 Gradient& grad) const = 0;

  // Mean loss over `batch` without computing gradients.
  virtual double Loss(std::span<const double> params,
                      std::span<const std::size_t> batch) const = 0;

  // Mean loss over (a deterministic subsample of) the full dataset —
  // the quantity the paper's learning curves plot.
  double FullLoss(std::span<const double> params,
                  std::size_t max_examples = 0) const;

  // Preferred gradient representation for this model.
  virtual bool prefers_sparse_gradients() const { return false; }
};

}  // namespace specsync
