// Data-parallel sharding and mini-batch sampling.
//
// Training samples D are partitioned into D_1..D_m, one shard per worker
// (paper Fig. 1); each worker then draws mini-batches from its own shard.
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"

namespace specsync {

// Deterministically assigns example indices [0, n) to `num_shards` shards in
// round-robin order (balanced to within one example).
std::vector<std::vector<std::size_t>> ShardIndices(std::size_t n,
                                                   std::size_t num_shards);

// Samples mini-batches (with replacement) from a fixed index shard.
class BatchSampler {
 public:
  BatchSampler(std::vector<std::size_t> shard, std::size_t batch_size, Rng rng);

  // Returns `batch_size` indices drawn uniformly from the shard.
  std::vector<std::size_t> NextBatch();

  std::size_t shard_size() const { return shard_.size(); }
  std::size_t batch_size() const { return batch_size_; }

 private:
  std::vector<std::size_t> shard_;
  std::size_t batch_size_;
  Rng rng_;
};

}  // namespace specsync
