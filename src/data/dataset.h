// In-memory datasets.
//
// Two shapes cover the paper's three workloads: dense feature/label examples
// (CIFAR-10 / ImageNet proxies) and sparse (user, item, rating) triples
// (MovieLens proxy for matrix factorization).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace specsync {

// One dense supervised example.
struct Example {
  std::vector<double> features;
  std::uint32_t label = 0;
};

class ClassificationDataset {
 public:
  ClassificationDataset(std::size_t feature_dim, std::size_t num_classes)
      : feature_dim_(feature_dim), num_classes_(num_classes) {}

  void Add(Example example) {
    SPECSYNC_CHECK_EQ(example.features.size(), feature_dim_);
    SPECSYNC_CHECK_LT(example.label, num_classes_);
    examples_.push_back(std::move(example));
  }

  std::size_t size() const { return examples_.size(); }
  std::size_t feature_dim() const { return feature_dim_; }
  std::size_t num_classes() const { return num_classes_; }
  const Example& example(std::size_t i) const {
    SPECSYNC_CHECK_LT(i, examples_.size());
    return examples_[i];
  }

 private:
  std::size_t feature_dim_;
  std::size_t num_classes_;
  std::vector<Example> examples_;
};

// One observed rating.
struct Rating {
  std::uint32_t user = 0;
  std::uint32_t item = 0;
  double value = 0.0;
};

class RatingsDataset {
 public:
  RatingsDataset(std::size_t num_users, std::size_t num_items)
      : num_users_(num_users), num_items_(num_items) {}

  void Add(Rating rating) {
    SPECSYNC_CHECK_LT(rating.user, num_users_);
    SPECSYNC_CHECK_LT(rating.item, num_items_);
    ratings_.push_back(rating);
  }

  std::size_t size() const { return ratings_.size(); }
  std::size_t num_users() const { return num_users_; }
  std::size_t num_items() const { return num_items_; }
  const Rating& rating(std::size_t i) const {
    SPECSYNC_CHECK_LT(i, ratings_.size());
    return ratings_[i];
  }

 private:
  std::size_t num_users_;
  std::size_t num_items_;
  std::vector<Rating> ratings_;
};

}  // namespace specsync
