#include "data/sharding.h"

#include "common/check.h"

namespace specsync {

std::vector<std::vector<std::size_t>> ShardIndices(std::size_t n,
                                                   std::size_t num_shards) {
  SPECSYNC_CHECK_GT(num_shards, 0u);
  std::vector<std::vector<std::size_t>> shards(num_shards);
  for (auto& shard : shards) shard.reserve(n / num_shards + 1);
  for (std::size_t i = 0; i < n; ++i) {
    shards[i % num_shards].push_back(i);
  }
  return shards;
}

BatchSampler::BatchSampler(std::vector<std::size_t> shard,
                           std::size_t batch_size, Rng rng)
    : shard_(std::move(shard)), batch_size_(batch_size), rng_(std::move(rng)) {
  SPECSYNC_CHECK(!shard_.empty()) << "worker shard must not be empty";
  SPECSYNC_CHECK_GT(batch_size_, 0u);
}

std::vector<std::size_t> BatchSampler::NextBatch() {
  std::vector<std::size_t> batch;
  batch.reserve(batch_size_);
  for (std::size_t i = 0; i < batch_size_; ++i) {
    batch.push_back(shard_[rng_.Index(shard_.size())]);
  }
  return batch;
}

}  // namespace specsync
