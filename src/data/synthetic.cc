#include "data/synthetic.h"

#include <cmath>

#include "tensor/vector.h"

namespace specsync {

ClassificationDataset GenerateClassification(const ClassificationSpec& spec,
                                             Rng& rng) {
  SPECSYNC_CHECK_GT(spec.num_classes, 1u);
  SPECSYNC_CHECK_GT(spec.feature_dim, 0u);
  ClassificationDataset dataset(spec.feature_dim, spec.num_classes);

  // Features are normalized so E||x||^2 ~= 1 (the role image preprocessing
  // plays): centroid radius and per-dimension noise both scale with
  // 1/sqrt(d), which keeps the Bayes error independent of feature_dim and the
  // loss curvature O(1).
  const double dim_scale =
      1.0 / std::sqrt(static_cast<double>(spec.feature_dim));

  // Class centroids: random directions scaled to `class_separation`.
  std::vector<std::vector<double>> centroids(spec.num_classes);
  for (auto& centroid : centroids) {
    centroid.resize(spec.feature_dim);
    for (double& v : centroid) v = rng.Normal(0.0, 1.0);
    const double norm = Norm2(centroid);
    if (norm > 0.0) {
      Scale(spec.class_separation * dim_scale / norm, centroid);
    }
  }

  const double noise = spec.noise_stddev * dim_scale;
  for (std::size_t i = 0; i < spec.num_examples; ++i) {
    Example example;
    example.label = static_cast<std::uint32_t>(i % spec.num_classes);
    example.features = centroids[example.label];
    for (double& v : example.features) {
      v += rng.Normal(0.0, noise);
    }
    dataset.Add(std::move(example));
  }
  return dataset;
}

RatingsDataset GenerateRatings(const RatingsSpec& spec, Rng& rng) {
  SPECSYNC_CHECK_GT(spec.true_rank, 0u);
  RatingsDataset dataset(spec.num_users, spec.num_items);

  // Entry scale rank^(-1/4) makes ratings ~ N(0, 1): per-entry variance
  // 1/sqrt(rank), product variance 1/rank, summed over rank terms -> 1.
  const double factor_scale =
      std::pow(static_cast<double>(spec.true_rank), -0.25);
  std::vector<double> user_factors(spec.num_users * spec.true_rank);
  std::vector<double> item_factors(spec.num_items * spec.true_rank);
  for (double& v : user_factors) v = rng.Normal(0.0, factor_scale);
  for (double& v : item_factors) v = rng.Normal(0.0, factor_scale);

  for (std::size_t i = 0; i < spec.num_ratings; ++i) {
    Rating rating;
    rating.user = static_cast<std::uint32_t>(rng.Index(spec.num_users));
    rating.item = static_cast<std::uint32_t>(rng.Index(spec.num_items));
    double dot = 0.0;
    for (std::size_t k = 0; k < spec.true_rank; ++k) {
      dot += user_factors[rating.user * spec.true_rank + k] *
             item_factors[rating.item * spec.true_rank + k];
    }
    rating.value = dot + rng.Normal(0.0, spec.noise_stddev);
    dataset.Add(rating);
  }
  return dataset;
}

}  // namespace specsync
