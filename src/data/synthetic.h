// Synthetic dataset generators standing in for the paper's datasets.
//
// Substitution rationale (DESIGN.md Sec. 2): convergence-vs-staleness dynamics
// depend on the optimization landscape, not on the pixels. A Gaussian-mixture
// multiclass problem trained by an MLP exhibits the same qualitative SGD
// behaviour (non-convex, noisy gradients, sensitivity to stale parameters) as
// image classification; a low-rank-plus-noise rating matrix is the textbook
// generative model behind MovieLens-style matrix factorization.
#pragma once

#include "common/rng.h"
#include "data/dataset.h"

namespace specsync {

struct ClassificationSpec {
  std::size_t num_examples = 10000;
  std::size_t feature_dim = 64;
  std::size_t num_classes = 10;
  // Distance scale between class centroids; smaller = harder problem.
  double class_separation = 2.0;
  // Within-class noise standard deviation.
  double noise_stddev = 1.0;
};

// Draws class centroids uniformly on a sphere of radius `class_separation`
// and samples isotropic Gaussian examples around them.
ClassificationDataset GenerateClassification(const ClassificationSpec& spec,
                                             Rng& rng);

struct RatingsSpec {
  std::size_t num_users = 1000;
  std::size_t num_items = 500;
  std::size_t num_ratings = 100000;
  // Rank of the ground-truth latent factors.
  std::size_t true_rank = 8;
  double noise_stddev = 0.1;
};

// Samples ground-truth user/item factors ~ N(0, 1/sqrt(rank)) and observes
// num_ratings uniformly random (user, item) cells with Gaussian noise.
RatingsDataset GenerateRatings(const RatingsSpec& spec, Rng& rng);

}  // namespace specsync
