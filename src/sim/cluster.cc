#include "sim/cluster.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "obs/obs.h"

namespace specsync {

std::string SchemeSpec::DisplayName() const {
  std::ostringstream out;
  switch (base) {
    case BaseScheme::kAsp:
      out << "ASP";
      break;
    case BaseScheme::kBsp:
      out << "BSP";
      break;
    case BaseScheme::kSsp:
      out << "SSP(s=" << ssp_staleness << ")";
      break;
    case BaseScheme::kPssp:
      out << "PSSP(s=" << ssp_staleness << ")";
      break;
    case BaseScheme::kDssp:
      out << "DSSP(s0=" << dssp.initial_staleness << ")";
      break;
  }
  if (naive.enabled()) {
    out << "+NaiveWait(" << naive.delay.seconds() << "s)";
  }
  switch (speculation) {
    case SpeculationMode::kNone:
      break;
    case SpeculationMode::kFixed:
      out << "+SpecSync-Cherrypick";
      break;
    case SpeculationMode::kAdaptive:
      out << "+SpecSync-Adaptive";
      break;
  }
  return out.str();
}

namespace {

std::unique_ptr<ConsistencyController> MakeController(const SchemeSpec& scheme,
                                                      std::size_t m,
                                                      std::size_t num_shards) {
  switch (scheme.base) {
    case BaseScheme::kAsp:
      return MakeAsp(m);
    case BaseScheme::kBsp:
      return MakeBsp(m);
    case BaseScheme::kSsp:
      return MakeSsp(m, scheme.ssp_staleness);
    case BaseScheme::kPssp:
      return MakePerShardSsp(m, num_shards, scheme.ssp_staleness);
    case BaseScheme::kDssp:
      return MakeDynamicSsp(m, num_shards, scheme.dssp);
  }
  SPECSYNC_CHECK(false) << "unknown base scheme";
  return nullptr;
}

std::unique_ptr<SpeculationPolicy> MakePolicy(const SchemeSpec& scheme) {
  switch (scheme.speculation) {
    case SpeculationMode::kNone:
      return std::make_unique<DisabledSpeculationPolicy>();
    case SpeculationMode::kFixed:
      return std::make_unique<FixedSpeculationPolicy>(scheme.fixed_params);
    case SpeculationMode::kAdaptive:
      return std::make_unique<AdaptiveTuner>(scheme.adaptive);
  }
  SPECSYNC_CHECK(false) << "unknown speculation mode";
  return nullptr;
}

}  // namespace

struct ClusterSim::Impl {
  // --- immutable setup -----------------------------------------------------
  std::shared_ptr<const Model> model;
  std::shared_ptr<const LearningRateSchedule> schedule;
  std::unique_ptr<SpeedModel> speed;
  ClusterSimConfig config;

  // --- live components -----------------------------------------------------
  Simulator sim;
  Rng rng;
  NetworkModel network;
  StallSchedule stalls;
  FaultPlan faults;
  std::unique_ptr<ParameterServer> server;
  std::unique_ptr<ConsistencyController> controller;
  // Typed views into `controller` for the per-shard family (null otherwise);
  // set once at construction from the scheme enum, so no dynamic_cast in the
  // event path. `dssp` implies `pssp` (DynamicSsp derives from PerShardSsp).
  PerShardSspController* pssp = nullptr;
  DynamicSspController* dssp = nullptr;
  std::unique_ptr<SpecSyncScheduler> scheduler;  // null when speculation off
  TrainingTrace trace;
  TransferAccountant transfers;

  // Gradient wire codec (null = codec off). Everything codec-related is
  // guarded on it (or on `known_shard_versions` for delta) so codec=none
  // takes exactly the legacy code paths and keeps the golden digests.
  std::unique_ptr<GradientCodec> codec;
  // Delta pulls only: per-worker last-known shard versions; the worker's
  // persistent `snapshot` doubles as its parameter cache. Empty = delta off.
  static constexpr std::uint64_t kUnknownVersion = ~0ull;
  std::vector<std::vector<std::uint64_t>> known_shard_versions;

  // Observability (null = off). Counters are resolved once at construction;
  // every record is append-only, so event order and RNG draws are identical
  // with and without `obs`.
  obs::ObsContext* obs = nullptr;
  obs::Counter* pull_counter = nullptr;
  obs::Counter* push_counter = nullptr;
  obs::Counter* abort_counter = nullptr;
  obs::Counter* notify_counter = nullptr;
  obs::Counter* eval_counter = nullptr;
  obs::Counter* codec_push_saved_counter = nullptr;
  obs::Counter* codec_pull_saved_counter = nullptr;
  obs::Counter* codec_delta_hits_counter = nullptr;
  obs::Counter* codec_delta_misses_counter = nullptr;
  obs::LatencyHistogram* codec_push_ratio_hist = nullptr;
  double wasted_compute_seconds = 0.0;

  // Consistency-gate accounting (virtual time workers spent blocked).
  std::uint64_t gate_blocks = 0;
  double gate_blocked_seconds = 0.0;

  struct WorkerState {
    std::unique_ptr<BatchSampler> sampler;
    Rng rng;  // worker-private stream (compute jitter, batches share sampler's)
    IterationId completed = 0;     // pushes so far
    DenseVector snapshot;          // parameters pulled for current iteration
    std::uint64_t snapshot_version = 0;
    bool computing = false;
    bool blocked = false;          // gated by BSP/SSP/PSSP/DSSP
    bool crashed = false;          // down due to an injected CrashEvent
    SimTime block_begin = SimTime::Zero();  // when the gate closed (if blocked)
    SimTime compute_start = SimTime::Zero();
    std::uint64_t compute_generation = 0;  // invalidates stale finish events
    // Iteration already aborted once; makes re-sync delivery idempotent
    // under duplicated/delayed control messages.
    std::optional<IterationId> last_abort;

    WorkerState(std::unique_ptr<BatchSampler> s, Rng r)
        : sampler(std::move(s)), rng(std::move(r)) {}
  };
  std::vector<WorkerState> workers;

  // Shared pull buffer (single-threaded event loop): OnPullComplete donates
  // the worker's old snapshot into it, PullInto refills it in place.
  PullResult pull_scratch;

  // --- convergence tracking ------------------------------------------------
  std::size_t below_target_streak = 0;
  std::optional<SimTime> convergence_time;
  std::optional<std::uint64_t> convergence_pushes;
  SimTime streak_start = SimTime::Zero();
  std::uint64_t streak_start_pushes = 0;
  bool stopped = false;

  Impl(std::shared_ptr<const Model> model_in,
       std::shared_ptr<const LearningRateSchedule> schedule_in,
       std::unique_ptr<SpeedModel> speed_in, ClusterSimConfig config_in)
      : model(std::move(model_in)),
        schedule(std::move(schedule_in)),
        speed(std::move(speed_in)),
        config(std::move(config_in)),
        sim(config.event_queue),
        rng(config.seed),
        network(config.network),
        stalls(config.stalls, Rng(config.seed ^ 0x57A11u)),
        faults(config.faults),
        trace(config.num_workers) {
    SPECSYNC_CHECK(model != nullptr);
    SPECSYNC_CHECK(schedule != nullptr);
    SPECSYNC_CHECK(speed != nullptr);
    SPECSYNC_CHECK_GT(config.num_workers, 0u);
    SPECSYNC_CHECK_GT(config.batch_size, 0u);
    for (const CrashEvent& event : config.faults.crashes) {
      SPECSYNC_CHECK_LT(event.worker, config.num_workers);
    }
    for (const SlowdownWindow& window : config.faults.slowdowns) {
      SPECSYNC_CHECK_LT(window.worker, config.num_workers);
    }

    auto applier = std::make_shared<SgdApplier>(schedule,
                                                SgdConfig{config.sgd_clip});
    server = std::make_unique<ParameterServer>(
        model->param_dim(), config.num_servers, std::move(applier));
    Rng init_rng = rng.Fork();
    server->Initialize(*model, init_rng);

    if (config.compression.transforms_pushes()) {
      codec = std::make_unique<GradientCodec>(
          config.compression, config.num_workers,
          ParameterServer::ShardSplit(model->param_dim(),
                                      config.num_servers));
    }
    if (config.compression.delta_pulls()) {
      known_shard_versions.assign(
          config.num_workers,
          std::vector<std::uint64_t>(server->num_shards(), kUnknownVersion));
    }

    controller = MakeController(config.scheme, config.num_workers,
                                server->num_shards());
    switch (config.scheme.base) {
      case BaseScheme::kPssp:
        pssp = static_cast<PerShardSspController*>(controller.get());
        break;
      case BaseScheme::kDssp:
        dssp = static_cast<DynamicSspController*>(controller.get());
        pssp = dssp;
        break;
      default:
        break;
    }
    if (config.scheme.speculation != SpeculationMode::kNone) {
      SchedulerConfig sched_config;
      sched_config.num_workers = config.num_workers;
      // Cherrypick values take effect from the very first iteration; the
      // adaptive tuner needs one epoch of history first.
      if (config.scheme.speculation == SpeculationMode::kFixed) {
        sched_config.initial_params = config.scheme.fixed_params;
      }
      sched_config.default_span = speed->MeanComputeTime(0);
      scheduler = std::make_unique<SpecSyncScheduler>(
          sched_config, MakePolicy(config.scheme));
    }

    auto shards = ShardIndices(model->dataset_size(), config.num_workers);
    workers.reserve(config.num_workers);
    for (WorkerId w = 0; w < config.num_workers; ++w) {
      workers.emplace_back(
          std::make_unique<BatchSampler>(std::move(shards[w]),
                                         config.batch_size, rng.Fork()),
          rng.Fork());
    }

    obs = config.obs;
    if (obs != nullptr) {
      pull_counter = &obs->metrics.counter("sim.pulls");
      push_counter = &obs->metrics.counter("sim.pushes");
      abort_counter = &obs->metrics.counter("sim.aborts");
      notify_counter = &obs->metrics.counter("sim.notifies_sent");
      eval_counter = &obs->metrics.counter("sim.evals");
      if (config.compression.enabled()) {
        codec_push_saved_counter =
            &obs->metrics.counter("net.codec.push_bytes_saved");
        codec_pull_saved_counter =
            &obs->metrics.counter("net.codec.pull_bytes_saved");
        codec_delta_hits_counter =
            &obs->metrics.counter("net.codec.delta_hits");
        codec_delta_misses_counter =
            &obs->metrics.counter("net.codec.delta_misses");
        codec_push_ratio_hist =
            &obs->metrics.histogram("net.codec.push_ratio");
      }
      for (WorkerId w = 0; w < config.num_workers; ++w) {
        obs->spans.SetTrackName(w, "worker " + std::to_string(w));
      }
      const auto sched_track =
          static_cast<std::uint32_t>(config.num_workers);
      obs->spans.SetTrackName(sched_track, "scheduler");
      if (scheduler) scheduler->AttachObservability(obs, sched_track);
      if (dssp) dssp->AttachAudit(&obs->audit);
      server->AttachMetrics(&obs->metrics);
    }
  }

  // Global epoch for the learning-rate schedule: completed iterations of the
  // slowest *live* worker (paper Sec. II-B's epoch definition). A crashed
  // worker must not pin the learning rate forever; if every worker is down,
  // fall back to the overall minimum.
  EpochId GlobalEpoch() const {
    std::optional<IterationId> min_live;
    IterationId min_all = workers[0].completed;
    for (const WorkerState& w : workers) {
      min_all = std::min(min_all, w.completed);
      if (w.crashed) continue;
      min_live = min_live.has_value() ? std::min(*min_live, w.completed)
                                      : w.completed;
    }
    return min_live.value_or(min_all);
  }

  std::uint64_t TotalPushes() const { return trace.total_pushes(); }

  // --- worker lifecycle ----------------------------------------------------

  // One in-flight pull or push: the countdown of per-shard messages not yet
  // resolved. Shared by the shard-message events of a single attempt; a
  // crash-interrupted attempt simply never reaches zero (the rejoin starts a
  // fresh one).
  struct PullAttempt {
    std::size_t pending = 0;
    SimTime begin;  // when the fan-out was issued (span recording)
    // Delta mode only (empty otherwise): refreshed[s] = this pull carries
    // shard s's full slice; unset shards are composed from the worker's
    // cached snapshot at completion.
    std::vector<std::uint8_t> refreshed;
  };
  struct PushAttempt {
    std::shared_ptr<Gradient> grad;
    std::size_t pending = 0;
    bool any_landed = false;  // at least one shard message reached the server
    SimTime begin;            // when the fan-out was issued (span recording)
    // Shards this push routes to (its write set for per-shard consistency).
    // The controller learns it at FinalizePush regardless of drops: a dropped
    // slice is still logically part of the iteration's write set.
    std::vector<std::size_t> shards;
  };

  // Closes the books on a blocked interval: accumulates gated virtual time
  // and emits the span. Idempotent (no-op when not blocked).
  void ClearBlocked(WorkerId w) {
    WorkerState& worker = workers[w];
    if (!worker.blocked) return;
    worker.blocked = false;
    gate_blocked_seconds += (sim.now() - worker.block_begin).seconds();
    if (obs != nullptr) {
      obs->spans.AddSpan("gated", "consistency", w, worker.block_begin,
                         sim.now(),
                         {{"iteration", std::to_string(worker.completed)}});
    }
  }

  void TryBeginIteration(WorkerId w) {
    if (stopped || workers[w].crashed) return;
    WorkerState& worker = workers[w];
    if (!controller->MayStartAt(w, worker.completed, sim.now())) {
      if (!worker.blocked) {
        worker.blocked = true;
        worker.block_begin = sim.now();
        ++gate_blocks;
      }
      return;
    }
    ClearBlocked(w);
    if (config.scheme.naive.enabled()) {
      sim.ScheduleAfter(config.scheme.naive.delay,
                        [this, w] { BeginPull(w); });
    } else {
      BeginPull(w);
    }
  }

  // A pull fans out as `num_servers` concurrent per-shard requests, planned
  // in shard order from the worker's stream — a deterministic (worker, shard)
  // keyed draw sequence that degenerates to exactly the legacy single draw at
  // num_servers = 1. The iteration resumes at the max per-shard arrival.
  void BeginPull(WorkerId w) {
    if (stopped || workers[w].crashed) return;
    auto attempt = std::make_shared<PullAttempt>();
    attempt->pending = server->num_shards();
    attempt->begin = sim.now();
    if (!known_shard_versions.empty()) {
      attempt->refreshed.assign(server->num_shards(), 0);
    }
    for (std::size_t s = 0; s < server->num_shards(); ++s) {
      RequestShard(w, s, attempt);
    }
  }

  void RequestShard(WorkerId w, std::size_t s,
                    std::shared_ptr<PullAttempt> attempt) {
    if (stopped || workers[w].crashed) return;
    // Delta mode: a shard whose version still matches the worker's cache
    // costs one control-sized not-modified answer instead of the full slice.
    // Lossless — an unchanged shard version implies unchanged content.
    std::uint64_t bytes = server->shard_bytes(s);
    bool unchanged = false;
    if (!known_shard_versions.empty()) {
      const std::uint64_t known = known_shard_versions[w][s];
      if (known != kUnknownVersion && server->shard(s).version == known) {
        unchanged = true;
        bytes = kControlMessageBytes;
      }
    }
    const NetworkModel::TransferPlan plan =
        network.PlanTransfer(bytes, LinkClass::kData, workers[w].rng, &faults);
    if (plan.drop) {
      // Lost shard request/response: the worker times out and re-requests
      // just that shard. (Duplicated pulls are idempotent reads and need no
      // special case.) The dropped attempt's bytes were still transmitted —
      // they land in the retransmit ledger, never in pull goodput.
      transfers.Charge(TransferCategory::kRetransmit, bytes, sim.now(), s);
      sim.ScheduleAfter(plan.delay + faults.config().pull_retry_timeout,
                        [this, w, s, attempt = std::move(attempt)] {
                          RequestShard(w, s, attempt);
                        });
      return;
    }
    // A stalled server cannot serve the shard; the response is batched with
    // everything else the stall delayed.
    const SimTime requested = sim.now();
    const SimTime arrival = stalls.Defer(sim.now() + plan.delay);
    sim.ScheduleAt(arrival, [this, w, s, requested, bytes, unchanged,
                             attempt = std::move(attempt)] {
      OnShardPullArrive(w, s, requested, bytes, unchanged, attempt);
    });
  }

  void OnShardPullArrive(WorkerId w, std::size_t s, SimTime requested,
                         std::uint64_t bytes, bool unchanged,
                         const std::shared_ptr<PullAttempt>& attempt) {
    if (stopped || workers[w].crashed) return;
    transfers.Charge(TransferCategory::kPullParams, bytes, sim.now(), s);
    if (unchanged) {
      const std::uint64_t full = server->shard_bytes(s);
      if (full > bytes) {
        transfers.AddSavings(TransferCategory::kPullParams, full - bytes);
        if (codec_pull_saved_counter != nullptr) {
          codec_pull_saved_counter->Increment(full - bytes);
        }
      }
      if (codec_delta_hits_counter != nullptr) {
        codec_delta_hits_counter->Increment();
      }
    } else if (!attempt->refreshed.empty()) {
      attempt->refreshed[s] = 1;
      if (codec_delta_misses_counter != nullptr) {
        codec_delta_misses_counter->Increment();
      }
    }
    if (obs != nullptr) {
      obs->spans.AddSpan("pull_shard", "pull", w, requested, sim.now(),
                         {{"shard", std::to_string(s)}});
    }
    if (--attempt->pending > 0) return;
    OnPullComplete(w, *attempt);  // the last arrival is the max arrival
  }

  void OnPullComplete(WorkerId w, const PullAttempt& attempt) {
    WorkerState& worker = workers[w];
    std::uint64_t version = 0;
    if (!attempt.refreshed.empty()) {
      // Delta mode: copy only the refreshed shards over the worker's cached
      // snapshot; unchanged shards keep the cached content their matching
      // version guarantees is current (as of the plan-time check).
      worker.snapshot.resize(model->param_dim());
      for (std::size_t s = 0; s < server->num_shards(); ++s) {
        if (attempt.refreshed[s] == 0) continue;
        const ShardInfo info = server->shard(s);
        known_shard_versions[w][s] = server->PullShardSlice(
            s, std::span<double>(worker.snapshot.data() + info.offset,
                                 info.length));
      }
      version = server->version();
      worker.snapshot_version = version;
    } else {
      // The snapshot is composed when the slowest shard response lands; in
      // the single-threaded sim this is never torn (see param_store.h for
      // the threaded runtime's semantics).
      // Reuse the worker's previous snapshot buffer (donated to the shared
      // scratch) so steady-state pulls allocate nothing.
      pull_scratch.params = std::move(worker.snapshot);
      server->PullInto(&pull_scratch);
      worker.snapshot = std::move(pull_scratch.params);
      worker.snapshot_version = pull_scratch.version;
      version = pull_scratch.version;
    }
    trace.RecordPull(w, sim.now(), version);
    if (obs != nullptr) {
      pull_counter->Increment();
      obs->spans.AddSpan("pull", "pull", w, attempt.begin, sim.now(),
                         {{"version", std::to_string(version)}});
    }
    if (scheduler) scheduler->HandlePull(w, sim.now());
    StartCompute(w);
  }

  void StartCompute(WorkerId w) {
    WorkerState& worker = workers[w];
    worker.computing = true;
    worker.compute_start = sim.now();
    const std::uint64_t generation = ++worker.compute_generation;
    Duration span = speed->ComputeTime(w, sim.now(), worker.rng);
    // Injected slowdown (background load, thermal throttling). The exact-1.0
    // guard keeps fault-free runs bit-identical.
    const double factor = faults.SlowdownFactor(w, sim.now());
    if (factor != 1.0) span = span * factor;
    sim.ScheduleAfter(span, [this, w, generation] {
      if (stopped) return;
      if (workers[w].compute_generation != generation) return;  // aborted
      OnComputeDone(w);
    });
  }

  void OnComputeDone(WorkerId w) {
    WorkerState& worker = workers[w];
    worker.computing = false;
    if (obs != nullptr) {
      obs->spans.AddSpan("compute", "compute", w, worker.compute_start,
                         sim.now(),
                         {{"iteration", std::to_string(worker.completed)}});
    }
    // The gradient is evaluated on the snapshot pulled at iteration start —
    // any pushes applied since then are invisible to it (the staleness the
    // paper studies).
    auto grad = std::make_shared<Gradient>();
    const std::vector<std::size_t> batch = worker.sampler->NextBatch();
    model->LossAndGradient(worker.snapshot, batch, *grad);
    // Codec transform before routing: top-k folds this worker's residual in
    // and shrinks the support (and possibly the touched-shard set), int8/fp16
    // quantize values in place per shard slice. What routes — and what the
    // consistency layer sees as the write set — is the shipped gradient.
    if (codec) codec->Transform(w, *grad);
    // The push fans out as one message per dirty shard (sparse gradients
    // route only to the shards owning their indices); each slice applies at
    // its own arrival, and the worker proceeds once every message resolved.
    auto routes = server->RouteGradient(*grad);
    if (codec != nullptr) {
      // Charge the coded wire size; the raw-minus-coded delta goes to the
      // savings ledger (top-k's savings are implicit in the smaller nnz).
      std::uint64_t raw_total = 0;
      std::uint64_t coded_total = 0;
      for (ParameterServer::ShardRoute& route : routes) {
        const std::uint64_t coded = CodedRouteBytes(
            config.compression.kind, grad->is_sparse(), route.bytes);
        raw_total += route.bytes;
        coded_total += coded;
        if (coded < route.bytes) {
          transfers.AddSavings(TransferCategory::kPushGrads,
                               route.bytes - coded);
          if (codec_push_saved_counter != nullptr) {
            codec_push_saved_counter->Increment(route.bytes - coded);
          }
          route.bytes = coded;
        }
      }
      if (codec_push_ratio_hist != nullptr && raw_total > 0) {
        codec_push_ratio_hist->Record(static_cast<double>(coded_total) /
                                      static_cast<double>(raw_total));
      }
    }
    auto attempt = std::make_shared<PushAttempt>();
    attempt->grad = grad;
    attempt->pending = routes.size();
    attempt->begin = sim.now();
    attempt->shards.reserve(routes.size());
    for (const ParameterServer::ShardRoute& route : routes) {
      attempt->shards.push_back(route.shard);
    }
    for (const ParameterServer::ShardRoute& route : routes) {
      const NetworkModel::TransferPlan plan = network.PlanTransfer(
          route.bytes, LinkClass::kData, worker.rng, &faults);
      if (plan.drop) {
        // The slice vanishes on the wire, but the worker cannot know: it
        // proceeds (and notifies) as if the push landed. No stall defer — the
        // message never reaches the server.
        sim.ScheduleAfter(plan.delay,
                          [this, w, attempt] { OnShardPushLost(w, attempt); });
        continue;
      }
      const SimTime arrival = stalls.Defer(sim.now() + plan.delay);
      sim.ScheduleAt(arrival, [this, w, route, attempt] {
        OnShardPushArrive(w, route, attempt);
      });
      if (plan.duplicate) {
        // Network-level replay: the slice is applied a second time, but the
        // worker-side bookkeeping (completed, notify) happens only once and
        // no second logical push is committed.
        sim.ScheduleAt(arrival, [this, route, attempt] {
          OnDuplicateShardPush(route, attempt);
        });
      }
    }
  }

  void OnShardPushArrive(WorkerId w, ParameterServer::ShardRoute route,
                         const std::shared_ptr<PushAttempt>& attempt) {
    if (stopped) return;
    server->PushShard(route.shard, *attempt->grad, GlobalEpoch());
    transfers.Charge(TransferCategory::kPushGrads, route.bytes, sim.now(),
                     route.shard);
    attempt->any_landed = true;
    if (--attempt->pending > 0) return;
    FinalizePush(w, *attempt);
  }

  // A slice dropped in transit: the server never sees it (partial pushes are
  // real in a multi-server PS), but the worker-side protocol proceeds once
  // all slices resolved.
  void OnShardPushLost(WorkerId w, const std::shared_ptr<PushAttempt>& attempt) {
    if (stopped) return;
    if (--attempt->pending > 0) return;
    FinalizePush(w, *attempt);
  }

  // Second delivery of a duplicated slice: server-side effect only.
  void OnDuplicateShardPush(ParameterServer::ShardRoute route,
                            const std::shared_ptr<PushAttempt>& attempt) {
    if (stopped) return;
    server->PushShard(route.shard, *attempt->grad, GlobalEpoch());
    transfers.Charge(TransferCategory::kPushGrads, route.bytes, sim.now(),
                     route.shard);
  }

  // Every shard message of a push resolved (landed or lost); the worker's
  // protocol step happens exactly once, at the max resolution time.
  void FinalizePush(WorkerId w, const PushAttempt& attempt) {
    WorkerState& worker = workers[w];
    if (attempt.any_landed) {
      const std::uint64_t version = server->CommitPush();
      const std::uint64_t missed = version - 1 - worker.snapshot_version;
      const IterationId iteration = worker.completed;
      trace.RecordPush(w, sim.now(), iteration, version, missed);
      if (obs != nullptr) {
        push_counter->Increment();
        obs->spans.AddSpan("push", "push", w, attempt.begin, sim.now(),
                           {{"iteration", std::to_string(iteration)},
                            {"version", std::to_string(version)},
                            {"missed_updates", std::to_string(missed)}});
      }
      controller->OnPushAt(w, iteration, sim.now(), attempt.shards);
      worker.completed = iteration + 1;

      if (config.max_pushes != 0 && TotalPushes() >= config.max_pushes) {
        stopped = true;
        sim.RequestStop();
        return;
      }

      // A push from a worker that crashed while the message was in flight
      // still lands on the server, but the worker is gone: no notify, no next
      // iteration. Its push may still unblock others under BSP/SSP.
      if (!worker.crashed) SendNotify(w, iteration);
      ReleaseBlockedWorkers();
      if (!worker.crashed) TryBeginIteration(w);
      return;
    }
    // Every slice was dropped: the server saw nothing, but the worker
    // proceeds exactly as after a real push.
    if (worker.crashed) return;
    const IterationId iteration = worker.completed;
    controller->OnPushAt(w, iteration, sim.now(), attempt.shards);
    worker.completed = iteration + 1;
    SendNotify(w, iteration);
    ReleaseBlockedWorkers();
    TryBeginIteration(w);
  }

  void SendNotify(WorkerId w, IterationId iteration) {
    if (!scheduler) return;
    if (obs != nullptr) {
      notify_counter->Increment();
      obs->spans.AddInstant("notify", "control", w, sim.now(),
                            {{"iteration", std::to_string(iteration)}});
    }
    const NetworkModel::TransferPlan plan = network.PlanTransfer(
        kControlMessageBytes, LinkClass::kControl, workers[w].rng, &faults);
    if (plan.drop) return;  // the scheduler never hears about this push
    sim.ScheduleAfter(plan.delay,
                      [this, w, iteration] { OnNotifyArrive(w, iteration); });
    if (plan.duplicate) {
      sim.ScheduleAfter(plan.delay,
                        [this, w, iteration] { OnNotifyArrive(w, iteration); });
    }
  }

  // --- SpecSync protocol (Algorithm 2 driver) ------------------------------

  void OnNotifyArrive(WorkerId w, IterationId iteration) {
    if (stopped) return;
    transfers.Charge(TransferCategory::kNotify, kControlMessageBytes,
                     sim.now());
    auto request = scheduler->HandleNotify(w, iteration, sim.now());
    if (!request.has_value()) return;
    const std::uint64_t token = request->token;
    sim.ScheduleAfter(request->delay, [this, w, token, iteration] {
      OnCheckTimer(w, token, iteration);
    });
  }

  void OnCheckTimer(WorkerId w, std::uint64_t token, IterationId iteration) {
    if (stopped) return;
    if (!scheduler->HandleCheckTimer(w, token, sim.now())) return;
    const NetworkModel::TransferPlan plan = network.PlanTransfer(
        kControlMessageBytes, LinkClass::kControl, workers[w].rng, &faults);
    if (plan.drop) return;  // lost re-sync: the worker keeps computing stale
    sim.ScheduleAfter(plan.delay,
                      [this, w, iteration] { OnReSyncArrive(w, iteration); });
    if (plan.duplicate) {
      sim.ScheduleAfter(plan.delay,
                        [this, w, iteration] { OnReSyncArrive(w, iteration); });
    }
  }

  void OnReSyncArrive(WorkerId w, IterationId notified_iteration) {
    if (stopped) return;
    transfers.Charge(TransferCategory::kReSync, kControlMessageBytes,
                     sim.now());
    WorkerState& worker = workers[w];
    // The notify was sent when `notified_iteration` finished; the speculation
    // window covers iteration notified_iteration + 1. Abort only if the
    // worker is still computing that iteration ("if that is not too late
    // yet", Sec. IV-A). If it is mid-pull, the snapshot will be fresh anyway.
    if (worker.completed != notified_iteration + 1 || !worker.computing) {
      return;
    }
    // A duplicated or delayed re-sync must not abort the *restarted*
    // computation of the same iteration: one abort per iteration.
    if (worker.last_abort == notified_iteration) return;
    worker.last_abort = notified_iteration;
    const Duration wasted = sim.now() - worker.compute_start;
    trace.RecordAbort(w, sim.now(), wasted);
    if (obs != nullptr) {
      abort_counter->Increment();
      wasted_compute_seconds += wasted.seconds();
      obs->spans.AddSpan(
          "aborted_compute", "abort", w, worker.compute_start, sim.now(),
          {{"iteration", std::to_string(notified_iteration + 1)},
           {"wasted_s", std::to_string(wasted.seconds())}});
    }
    ++worker.compute_generation;  // cancels the in-flight finish event
    worker.computing = false;
    BeginPull(w);  // re-synchronize: fresh pull, then restart computation
  }

  // --- injected worker lifecycle -------------------------------------------

  void OnWorkerCrash(const CrashEvent& event) {
    if (stopped) return;
    WorkerState& worker = workers[event.worker];
    if (worker.crashed) return;
    ClearBlocked(event.worker);
    worker.crashed = true;
    worker.computing = false;
    ++worker.compute_generation;  // cancels any in-flight compute finish
    faults.CountCrash();
    SPECSYNC_LOG(kDebug) << "worker " << event.worker << " crashed at "
                         << sim.now();
    if (scheduler) scheduler->OnWorkerDown(event.worker, sim.now());
    // Excuse the corpse from per-shard mins (no-op for the static schemes,
    // so fault-injected ASP/BSP/SSP digests are untouched) and re-check every
    // gated peer — the departure may have been what they were waiting on.
    controller->OnWorkerDown(event.worker);
    ReleaseBlockedWorkers();
    if (event.rejoin.has_value()) {
      const WorkerId w = event.worker;
      sim.ScheduleAt(*event.rejoin, [this, w] { OnWorkerRejoin(w); });
    }
  }

  void OnWorkerRejoin(WorkerId w) {
    if (stopped) return;
    WorkerState& worker = workers[w];
    if (!worker.crashed) return;
    worker.crashed = false;
    faults.CountRejoin();
    SPECSYNC_LOG(kDebug) << "worker " << w << " rejoined at " << sim.now();
    if (scheduler) scheduler->OnWorkerUp(w, sim.now());
    controller->OnWorkerUp(w);
    // No memory of in-flight work: start from a fresh pull.
    TryBeginIteration(w);
  }

  void ReleaseBlockedWorkers() {
    for (WorkerId w = 0; w < config.num_workers; ++w) {
      if (!workers[w].blocked) continue;
      if (controller->MayStartAt(w, workers[w].completed, sim.now())) {
        // Clear before scheduling: a second release arriving before the
        // deferred event runs must not schedule the iteration twice.
        ClearBlocked(w);
        // Defer to a fresh event to keep the release order FIFO and avoid
        // deep recursion through OnPushArrive.
        sim.ScheduleAfter(Duration::Zero(),
                          [this, w] { TryBeginIteration(w); });
      }
    }
  }

  // --- evaluation ----------------------------------------------------------

  double EvaluateLoss() {
    const DenseVector snapshot = server->Snapshot();
    return model->FullLoss(snapshot, config.eval_subsample);
  }

  void OnEvalTimer() {
    if (stopped) return;
    const double loss = EvaluateLoss();
    trace.RecordLoss(sim.now(), loss, TotalPushes(), GlobalEpoch());
    if (obs != nullptr) {
      eval_counter->Increment();
      obs->spans.AddInstant(
          "eval", "eval", static_cast<std::uint32_t>(config.num_workers),
          sim.now(), {{"loss", std::to_string(loss)}});
    }
    if (config.loss_target > 0.0) {
      if (loss < config.loss_target) {
        if (below_target_streak == 0) {
          streak_start = sim.now();
          streak_start_pushes = TotalPushes();
        }
        ++below_target_streak;
        if (below_target_streak >= config.convergence_patience &&
            !convergence_time.has_value()) {
          convergence_time = streak_start;
          convergence_pushes = streak_start_pushes;
          if (config.stop_on_convergence) {
            stopped = true;
            sim.RequestStop();
            return;
          }
        }
      } else {
        below_target_streak = 0;
        // A later excursion above target does not un-converge a run that
        // already met the patience criterion (matches "staying below for 5
        // consecutive" read as first-hit time).
      }
    }
    sim.ScheduleAfter(config.eval_interval, [this] { OnEvalTimer(); });
  }

  SimResult Run() {
    for (WorkerId w = 0; w < config.num_workers; ++w) {
      sim.ScheduleAfter(Duration::Zero(), [this, w] { TryBeginIteration(w); });
    }
    for (const CrashEvent& event : faults.crashes()) {
      sim.ScheduleAt(event.at, [this, event] { OnWorkerCrash(event); });
    }
    sim.ScheduleAfter(config.eval_interval, [this] { OnEvalTimer(); });
    sim.Run(config.max_time);

    SimResult result;
    result.final_weights = server->Snapshot();
    result.final_loss = model->FullLoss(result.final_weights,
                                        config.eval_subsample);
    result.end_time = sim.now();
    result.total_pushes = TotalPushes();
    result.total_aborts = trace.total_aborts();
    result.sim_events = sim.events_processed();
    result.convergence_time = convergence_time;
    result.convergence_pushes = convergence_pushes;
    if (scheduler) {
      result.scheduler_stats = scheduler->stats();
      result.final_params = scheduler->params();
    }
    result.fault_stats = faults.stats();
    // Workers still gated when time ran out were stalled to the very end.
    for (WorkerId w = 0; w < config.num_workers; ++w) ClearBlocked(w);
    result.consistency.blocks = gate_blocks;
    result.consistency.blocked_seconds = gate_blocked_seconds;
    if (dssp) {
      result.consistency.retunes = dssp->retunes();
    }
    switch (config.scheme.base) {
      case BaseScheme::kSsp:
        result.consistency.final_staleness = config.scheme.ssp_staleness;
        break;
      case BaseScheme::kPssp:
      case BaseScheme::kDssp:
        result.consistency.final_staleness = pssp->staleness();
        break;
      default:
        break;
    }
    trace.RecordLoss(sim.now(), result.final_loss, TotalPushes(),
                     GlobalEpoch());
    if (obs != nullptr) {
      obs->metrics.gauge("sim.events_processed")
          .Set(static_cast<double>(result.sim_events));
      obs->metrics.gauge("sim.end_time_s").Set(result.end_time.seconds());
      obs->metrics.gauge("sim.total_pushes")
          .Set(static_cast<double>(result.total_pushes));
      obs->metrics.gauge("sim.total_aborts")
          .Set(static_cast<double>(result.total_aborts));
      obs->metrics.gauge("sim.wasted_compute_s").Set(wasted_compute_seconds);
      obs->metrics.gauge("sim.final_loss").Set(result.final_loss);
      obs->metrics.gauge("sim.consistency_blocks")
          .Set(static_cast<double>(result.consistency.blocks));
      obs->metrics.gauge("sim.consistency_blocked_s")
          .Set(result.consistency.blocked_seconds);
      obs->metrics.gauge("sim.consistency_final_staleness")
          .Set(static_cast<double>(result.consistency.final_staleness));
    }
    result.trace = std::move(trace);
    result.transfers = std::move(transfers);
    return result;
  }
};

ClusterSim::ClusterSim(std::shared_ptr<const Model> model,
                       std::shared_ptr<const LearningRateSchedule> schedule,
                       std::unique_ptr<SpeedModel> speed,
                       ClusterSimConfig config)
    : impl_(std::make_unique<Impl>(std::move(model), std::move(schedule),
                                   std::move(speed), std::move(config))) {}

ClusterSim::~ClusterSim() = default;

SimResult ClusterSim::Run() { return impl_->Run(); }

}  // namespace specsync
