// Network model: per-message transfer time and wire-size constants.
//
// A message's delivery time is base_latency + bytes/bandwidth, with optional
// log-normal jitter — the standard latency/bandwidth model for datacenter
// links. Defaults approximate the paper's EC2 m4.xlarge testbed
// (~0.1 ms intra-AZ RTT/2, ~1.25 GB/s of "high" networking).
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "common/sim_time.h"
#include "fault/fault_plan.h"

namespace specsync {

struct NetworkConfig {
  Duration base_latency = Duration::Milliseconds(0.1);
  double bandwidth_bytes_per_sec = 1.25e9;
  // Sigma of the log-normal jitter multiplier applied to the whole transfer
  // time; 0 disables jitter.
  double jitter_sigma = 0.05;
};

// Wire size of the tiny control messages (notify / re-sync): sender id,
// iteration, timestamp, header.
inline constexpr std::size_t kControlMessageBytes = 64;

class NetworkModel {
 public:
  explicit NetworkModel(NetworkConfig config);

  // Time to deliver a message of `bytes` over one link.
  Duration TransferTime(std::size_t bytes, Rng& rng) const;

  // One planned transfer with fault injection folded in. `delay` includes
  // any fault-injected extra latency; `drop` wins over `duplicate`.
  struct TransferPlan {
    bool drop = false;
    bool duplicate = false;
    Duration delay = Duration::Zero();
  };

  // Plans a transfer over `link`, consulting `faults` (may be null or
  // disabled, in which case this is exactly TransferTime). The base
  // transfer-time draw always happens first from `rng`, so enabling faults
  // never perturbs the existing jitter stream — with all-zero fault
  // probabilities the schedule is bit-identical to a fault-free run.
  TransferPlan PlanTransfer(std::size_t bytes, LinkClass link, Rng& rng,
                            FaultPlan* faults) const;

  const NetworkConfig& config() const { return config_; }

 private:
  NetworkConfig config_;
};

// Server-side stall schedule: windows during which the parameter servers
// cannot serve traffic (incast congestion, JVM-style pauses, page-cache
// writeback storms). Messages nominally arriving inside a stall are delivered
// when it ends — in a batch. This is what turns independent push arrivals
// into the bursty, overdispersed pushes-after-pull distribution the paper's
// Fig. 3 measures on EC2, and it is the regime where speculative
// re-synchronization has something to catch.
struct StallConfig {
  bool enabled = false;
  // Exponential inter-arrival gap between stalls and stall length.
  Duration mean_gap = Duration::Seconds(30.0);
  Duration mean_duration = Duration::Seconds(3.0);
};

class StallSchedule {
 public:
  StallSchedule(StallConfig config, Rng rng);

  // Effective delivery time for a message nominally arriving at `arrival`
  // (identical to `arrival` when no stall covers it).
  //
  // Safe for out-of-order queries. The lazily generated window list is
  // prefix-complete: GenerateUpTo extends it strictly past the largest
  // `arrival` seen so far and never inserts a window before
  // `generated_until_`, so an earlier arrival queried later sees exactly
  // the windows it would have seen in monotone order — same RNG draws,
  // bit-identical answers (regression-tested in sim_test).
  SimTime Defer(SimTime arrival);

  bool enabled() const { return config_.enabled; }

 private:
  void GenerateUpTo(SimTime t);

  StallConfig config_;
  Rng rng_;
  struct Window {
    SimTime begin;
    SimTime end;
  };
  std::vector<Window> windows_;  // time-ordered, non-overlapping
  SimTime generated_until_ = SimTime::Zero();
};

}  // namespace specsync
