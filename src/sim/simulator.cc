#include "sim/simulator.h"

#include <utility>

namespace specsync {

void Simulator::ScheduleAt(SimTime at, Callback fn) {
  SPECSYNC_CHECK(at >= now_) << "cannot schedule in the past: " << at
                             << " < " << now_;
  SPECSYNC_CHECK(static_cast<bool>(fn)) << "scheduling an empty callback";
  if (queue_kind_ == EventQueueKind::kCalendar) {
    calendar_.Push(at, std::move(fn));
  } else {
    heap_.Push(at, std::move(fn));
  }
}

void Simulator::ScheduleAfter(Duration delay, Callback fn) {
  SPECSYNC_CHECK(delay >= Duration::Zero())
      << "negative delay: " << delay;
  ScheduleAt(now_ + delay, std::move(fn));
}

SimTime Simulator::PeekTime() {
  return queue_kind_ == EventQueueKind::kCalendar ? calendar_.PeekTime()
                                                  : heap_.PeekTime();
}

bool Simulator::Step() {
  if (pending_events() == 0) return false;
  // PopMin moves the callback out of the queue's node pool before we invoke
  // it: the callback may schedule new events, which can grow the pool and
  // relocate every node (calendar_queue.h lifetime rule 1).
  SimTime time;
  EventFn fn = queue_kind_ == EventQueueKind::kCalendar
                   ? calendar_.PopMin(&time)
                   : heap_.PopMin(&time);
  now_ = time;
  ++events_processed_;
  fn();
  return true;
}

void Simulator::Run(SimTime until) {
  stop_requested_ = false;
  while (!stop_requested_ && pending_events() > 0) {
    if (PeekTime() > until) break;
    Step();
  }
}

}  // namespace specsync
