#include "sim/simulator.h"

#include <utility>

namespace specsync {

void Simulator::ScheduleAt(SimTime at, Callback fn) {
  SPECSYNC_CHECK(at >= now_) << "cannot schedule in the past: " << at
                             << " < " << now_;
  SPECSYNC_CHECK(fn != nullptr);
  queue_.push(Event{at, next_sequence_++, std::move(fn)});
}

void Simulator::ScheduleAfter(Duration delay, Callback fn) {
  SPECSYNC_CHECK(delay >= Duration::Zero())
      << "negative delay: " << delay;
  ScheduleAt(now_ + delay, std::move(fn));
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the event is copied out. Callbacks are
  // small (captured ids), so this is cheap relative to event work.
  Event event = queue_.top();
  queue_.pop();
  now_ = event.time;
  ++events_processed_;
  event.fn();
  return true;
}

void Simulator::Run(SimTime until) {
  stop_requested_ = false;
  while (!stop_requested_ && !queue_.empty()) {
    if (queue_.top().time > until) break;
    Step();
  }
}

}  // namespace specsync
