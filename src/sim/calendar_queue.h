// Calendar-queue event scheduling with pooled nodes (DESIGN.md §12).
//
// A calendar queue (Brown 1988) hashes each event by time into a circular
// array of day-buckets of width `width_` seconds; one "year" is
// num_buckets × width. Pops walk the calendar forward from the current day,
// so in the DES steady state (event times clustered a bounded horizon past
// `now`) both Push and PopMin are O(1) amortized — versus O(log n) with two
// std::function heap allocations per event for the binary-heap queue this
// replaced.
//
// ## Ordering contract (the golden-trace invariant)
//
// Events pop in strictly increasing (time, sequence) order, where `sequence`
// is the queue-assigned insertion counter. This is the exact tie-break the
// old binary heap applied, so pop order — and therefore every pinned trace
// digest — is bit-identical by construction. The bucket layout, the bucket
// width, and every resize are invisible to pop order: they only decide where
// an event waits, never when it pops (regression-proved against an
// independent reference heap in tests/sim/calendar_queue_property_test.cc).
//
// ## Pool lifetime rules
//
// Nodes live in one contiguous pool (`nodes_`) recycled through a free list;
// handles carry a generation counter so a stale Cancel() of a reused slot is
// a safe no-op. Two rules keep the pool sound (ASan-enforced by the property
// and sim suites):
//  1. PopMin() moves the payload OUT of the pool before returning — a
//     callback that pushes new events may grow the pool and relocate every
//     node, so callers must never invoke a payload in place.
//  2. A node's payload is destroyed (moved from) exactly once: on pop, on
//     cancel, or with the queue. The free list stores only empty payloads.
//
// ## Monotonicity contract
//
// Pushed times must be >= the last popped time (the DES "no scheduling in
// the past" rule); Push checks it. Times must be finite and non-negative.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/sim_time.h"

namespace specsync {

struct CalendarQueueStats {
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  std::uint64_t cancels = 0;
  std::uint64_t resizes = 0;
  std::size_t max_size = 0;
  // Buckets inspected across all FindMin scans (scan_steps / pops ~ 1 when
  // the width heuristic is tracking the event-time distribution).
  std::uint64_t scan_steps = 0;
  // Chain links walked across all bucket insertions (insert_steps / pushes
  // ~ 0.5 at the target bucket load; sustained growth triggers a rebuild).
  std::uint64_t insert_steps = 0;
};

template <typename T>
class CalendarQueue {
 public:
  struct Handle {
    std::uint32_t index = kNil;
    std::uint32_t generation = 0;
  };

  CalendarQueue() { Rebuild(kMinBuckets, /*new_width=*/1.0); }

  CalendarQueue(const CalendarQueue&) = delete;
  CalendarQueue& operator=(const CalendarQueue&) = delete;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  const CalendarQueueStats& stats() const { return stats_; }
  std::size_t num_buckets() const { return buckets_.size(); }
  double bucket_width() const { return width_; }

  // Schedules `value` at `time`; assigns the next sequence number (FIFO among
  // equal times). `time` must be finite, non-negative, and not before the
  // last popped time.
  Handle Push(SimTime time, T value) {
    const double t = time.seconds();
    SPECSYNC_CHECK(t >= 0.0 && time.is_finite())
        << "event time must be finite and non-negative: " << time;
    SPECSYNC_CHECK(t >= floor_time_)
        << "cannot schedule before the last popped time: " << time << " < "
        << floor_time_;
    if (size_ + 1 > (buckets_.size() << 1)) Resize();

    const std::uint32_t index = AllocNode();
    Node& node = nodes_[index];
    node.time = t;
    node.sequence = next_sequence_++;
    node.vb = VirtualBucket(t);
    node.value = std::move(value);
    InsertIntoBucket(index);
    ++size_;
    ++stats_.pushes;
    stats_.max_size = std::max(stats_.max_size, size_);
    // The cached minimum survives a push: the new event either beats it (one
    // key compare, cache retargets) or provably cannot be the minimum.
    if (cache_valid_ && KeyLess(node, nodes_[cached_min_])) {
      cached_min_ = index;
    }
    MaybeRebuildForDrift();
    return Handle{index, node.generation};
  }

  // Removes a pending event. Returns false (and does nothing) when the
  // handle's event already popped, was already cancelled, or the slot was
  // recycled — stale cancels are always safe.
  bool Cancel(Handle handle) {
    if (handle.index >= nodes_.size()) return false;
    Node& node = nodes_[handle.index];
    if (node.bucket == kFreeBucket || node.generation != handle.generation) {
      return false;
    }
    UnlinkFromBucket(handle.index);
    node.value = T{};  // destroy the payload now, not at slot reuse
    FreeNode(handle.index);
    --size_;
    ++stats_.cancels;
    if (cache_valid_ && handle.index == cached_min_) cache_valid_ = false;
    MaybeShrink();
    return true;
  }

  // Time of the minimum-(time, sequence) event. Queue must be non-empty.
  SimTime PeekTime() {
    FindMin();
    return SimTime::FromSeconds(nodes_[cached_min_].time);
  }

  // Pops the minimum-(time, sequence) event, moving its payload out of the
  // pool (see the lifetime rules above). Queue must be non-empty.
  T PopMin(SimTime* time_out = nullptr) {
    FindMin();
    const std::uint32_t index = cached_min_;
    Node& node = nodes_[index];
    if (time_out != nullptr) *time_out = SimTime::FromSeconds(node.time);
    floor_time_ = node.time;
    current_vb_ = node.vb;  // commit the calendar position the pop reached
    T value = std::move(node.value);
    node.value = T{};
    UnlinkFromBucket(index);
    const std::uint32_t next = node.next;
    const std::uint64_t vb = node.vb;
    FreeNode(index);
    --size_;
    ++stats_.pops;
    if (next != kNil && nodes_[next].vb == vb) {
      // The popped event's chain successor shares its day. Every other live
      // event sits in a later virtual bucket (vb is monotone in time, equal
      // times share a bucket), so the successor is the next global minimum —
      // no rescan needed.
      cached_min_ = next;
    } else {
      cache_valid_ = false;
    }
    MaybeShrink();
    return value;
  }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::uint32_t kFreeBucket = 0xFFFFFFFFu;
  static constexpr std::size_t kMinBuckets = 8;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 22;
  static constexpr double kMinWidth = 1e-12;

  struct Node {
    double time = 0.0;
    std::uint64_t sequence = 0;
    std::uint64_t vb = 0;            // virtual (un-wrapped) bucket index
    std::uint32_t next = kNil;       // intra-bucket chain, (time, seq) sorted
    std::uint32_t bucket = kFreeBucket;  // kFreeBucket = on the free list
    std::uint32_t generation = 0;    // bumped on free; validates handles
    T value{};
  };

  // floor(t * 1/width) — a cached-reciprocal multiply (division is the single
  // most expensive ALU op on the push path), clamped so that astronomically
  // distant times still land in a valid (far-future) virtual bucket. The
  // product is not bit-equal to t / width, but correctness never needed the
  // quotient — only that the map is monotone in t (fp multiply by a positive
  // constant is) and that equal times share a bucket.
  std::uint64_t VirtualBucket(double t) const {
    const double q = t * inv_width_;
    constexpr double kMaxVb = 9.0e18;  // < 2^63, exactly representable
    return q >= kMaxVb ? static_cast<std::uint64_t>(kMaxVb)
                       : static_cast<std::uint64_t>(q);
  }

  std::uint32_t AllocNode() {
    if (free_head_ != kNil) {
      const std::uint32_t index = free_head_;
      free_head_ = nodes_[index].next;
      return index;
    }
    SPECSYNC_CHECK_LT(nodes_.size(), static_cast<std::size_t>(kNil));
    nodes_.emplace_back();
    return static_cast<std::uint32_t>(nodes_.size() - 1);
  }

  void FreeNode(std::uint32_t index) {
    Node& node = nodes_[index];
    node.bucket = kFreeBucket;
    ++node.generation;
    node.next = free_head_;
    free_head_ = index;
  }

  static bool KeyLess(const Node& a, const Node& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.sequence < b.sequence;
  }

  void InsertIntoBucket(std::uint32_t index) {
    Node& node = nodes_[index];
    const std::uint32_t b =
        static_cast<std::uint32_t>(node.vb & (buckets_.size() - 1));
    node.bucket = b;
    occupied_[b >> 6] |= std::uint64_t{1} << (b & 63);
    std::uint32_t* link = &buckets_[b];
    std::uint64_t steps = 0;
    while (*link != kNil && KeyLess(nodes_[*link], node)) {
      link = &nodes_[*link].next;
      ++steps;
    }
    insert_steps_since_rebuild_ += steps;
    stats_.insert_steps += steps;
    node.next = *link;
    *link = index;
  }

  // Width is normally recomputed only on size-triggered resizes, so a queue
  // whose event-time *spread* drifts at constant size (e.g. a schedule that
  // tightens from seconds to milliseconds of lookahead) can end up with every
  // event hashed into a handful of days, degrading inserts to long chain
  // walks. Detect that from the insert-step counter — sustained average walk
  // beyond ~4 links per push, with a grace of two full calendars — and
  // rebuild with a freshly measured width. Purely layout (pop order is
  // bucket-independent) and deterministic: the trigger depends only on the
  // push/cancel history, never on wall time.
  void MaybeRebuildForDrift() {
    ++pushes_since_rebuild_;
    if (insert_steps_since_rebuild_ <=
        (pushes_since_rebuild_ << 2) + (buckets_.size() << 1)) {
      return;
    }
    const double new_width = WidthFor();
    if (new_width != width_) {
      Rebuild(NumBucketsFor(size_), new_width);
    } else {
      // Width can't help (e.g. a spike of equal times); just restart the
      // counters so the check does not fire on every subsequent push.
      pushes_since_rebuild_ = 0;
      insert_steps_since_rebuild_ = 0;
    }
  }

  void UnlinkFromBucket(std::uint32_t index) {
    Node& node = nodes_[index];
    std::uint32_t* link = &buckets_[node.bucket];
    while (*link != index) {
      SPECSYNC_CHECK(*link != kNil) << "node missing from its bucket chain";
      link = &nodes_[*link].next;
    }
    *link = node.next;
    if (buckets_[node.bucket] == kNil) {
      occupied_[node.bucket >> 6] &=
          ~(std::uint64_t{1} << (node.bucket & 63));
    }
  }

  // First occupied bucket in [from, limit), or limit when none. One l1-hot
  // word scan per 64 buckets instead of a probe per bucket.
  std::size_t NextOccupied(std::size_t from, std::size_t limit) const {
    std::size_t w = from >> 6;
    std::uint64_t word = occupied_[w] & (~std::uint64_t{0} << (from & 63));
    for (;;) {
      if (word != 0) {
        const std::size_t b =
            (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
        return b < limit ? b : limit;
      }
      ++w;
      if ((w << 6) >= limit) return limit;
      word = occupied_[w];
    }
  }

  // Locates the minimum-(time, sequence) event and caches it. The forward
  // scan visits virtual buckets in ascending order starting from the last
  // pop's position; because every live event has vb >= current_vb_ (the
  // monotonicity contract) the first non-empty in-day head is the global
  // minimum. If a whole year passes without a hit (a sparse far-future
  // backlog), fall back to a direct scan of all bucket heads and jump the
  // calendar to the winner.
  void FindMin() {
    SPECSYNC_CHECK_GT(size_, 0u) << "empty calendar queue";
    if (cache_valid_) return;
    // Ring walk from the current day, skipping empty buckets through the
    // occupancy bitmap. Identical accept condition (and therefore identical
    // pop order) to a plain bucket-by-bucket probe: a bucket the bitmap
    // skips has a kNil head, which the probe would reject anyway.
    const std::size_t num_buckets = buckets_.size();
    const std::size_t mask = num_buckets - 1;
    const std::size_t start = static_cast<std::size_t>(current_vb_) & mask;
    const std::size_t segments[2][2] = {{start, num_buckets}, {0, start}};
    for (const auto& segment : segments) {
      std::size_t b = segment[0];
      while ((b = NextOccupied(b, segment[1])) != segment[1]) {
        ++stats_.scan_steps;
        const std::uint32_t head = buckets_[b];
        const std::uint64_t vb = current_vb_ + ((b - start) & mask);
        if (nodes_[head].vb == vb) {
          cached_min_ = head;
          cache_valid_ = true;
          return;
        }
        ++b;
      }
    }
    std::uint32_t best = kNil;
    for (std::uint32_t head : buckets_) {
      if (head == kNil) continue;
      if (best == kNil || KeyLess(nodes_[head], nodes_[best])) best = head;
    }
    SPECSYNC_CHECK(best != kNil) << "non-empty queue with all buckets empty";
    cached_min_ = best;
    cache_valid_ = true;
  }

  void Resize() {
    const std::size_t target = NumBucketsFor(size_ + 1);
    Rebuild(target, WidthFor());
  }

  void MaybeShrink() {
    if (buckets_.size() > kMinBuckets && size_ < (buckets_.size() >> 4)) {
      Rebuild(NumBucketsFor(size_), WidthFor());
    }
  }

  // Bucket-count policy: run at low load (~1/4 event per in-year bucket)
  // while the ring is small enough to stay cache-resident, then back off
  // toward load ~1/2 once the bucket array itself would start costing more
  // in cache footprint than the shorter chains save. Both the 8x term and
  // the 4x/64K cap are monotone in `size`, so growth never shrinks the ring
  // (a non-monotone policy re-thrashes at the boundary). Deterministic:
  // depends only on the queue size. The shrink threshold in MaybeShrink()
  // must stay at or below 1/8 of the bucket count so a transient pop/push
  // size dip never triggers a rebuild.
  static std::size_t NumBucketsFor(std::size_t size) {
    std::size_t low_load = kMinBuckets;   // pow2 >= 8 * size
    while (low_load < size * 8 && low_load < kMaxBuckets) low_load <<= 1;
    std::size_t half_load = kMinBuckets;  // pow2 >= 4 * size
    while (half_load < size * 4 && half_load < kMaxBuckets) half_load <<= 1;
    const std::size_t cap = std::max(std::size_t{1} << 16, half_load);
    return std::min(low_load, cap);
  }

  // Width is chosen so one *calendar year* (bucket count x width) spans twice
  // the live-event time spread: the current spread fills half the ring at
  // ~0.5 events per used bucket, and pushes landing beyond today's maximum
  // still fall inside the year instead of wrapping. Wrapped events alias into
  // earlier buckets and turn FindMin into full-ring scans plus the
  // direct-search fallback, so the 2x margin is the difference between O(1)
  // and O(n) pops under hold-model workloads whose increments reach the full
  // spread. Purely a performance heuristic — any positive width pops the same
  // order — and deterministic: it depends only on queue contents, never on
  // wall time or addresses.
  double WidthFor() const {
    if (size_ < 2) return width_;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const Node& node : nodes_) {
      if (node.bucket == kFreeBucket) continue;
      lo = std::min(lo, node.time);
      hi = std::max(hi, node.time);
    }
    const double spread = hi - lo;
    if (!(spread > 0.0)) return width_;
    return std::max(
        spread / static_cast<double>(NumBucketsFor(size_) >> 1),
        kMinWidth);
  }

  void Rebuild(std::size_t num_buckets, double new_width) {
    width_ = new_width;
    inv_width_ = 1.0 / new_width;
    buckets_.assign(num_buckets, kNil);
    occupied_.assign((num_buckets + 63) >> 6, 0);
    current_vb_ = VirtualBucket(floor_time_);
    for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
      Node& node = nodes_[i];
      if (node.bucket == kFreeBucket) continue;
      node.vb = VirtualBucket(node.time);
      node.next = kNil;  // re-chained below
    }
    // Re-insert in pool order; intra-bucket order is re-sorted by key on
    // insertion, so the (time, sequence) contract is layout-independent.
    for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].bucket == kFreeBucket) continue;
      InsertIntoBucket(i);
    }
    cache_valid_ = false;
    pushes_since_rebuild_ = 0;
    insert_steps_since_rebuild_ = 0;
    ++stats_.resizes;
  }

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> buckets_;
  std::vector<std::uint64_t> occupied_;  // one bit per bucket: head != kNil
  std::uint32_t free_head_ = kNil;
  double width_ = 1.0;
  double inv_width_ = 1.0;      // cached 1/width_ (see VirtualBucket)
  double floor_time_ = 0.0;     // last popped time (the queue's "now")
  std::uint64_t current_vb_ = 0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t pushes_since_rebuild_ = 0;
  std::uint64_t insert_steps_since_rebuild_ = 0;
  std::size_t size_ = 0;
  std::uint32_t cached_min_ = kNil;
  bool cache_valid_ = false;
  CalendarQueueStats stats_;
};

// The displaced binary heap, kept as a second engine behind the same
// interface: pooled storage and moved-out payloads (so its cost model is the
// queue structure, not allocation), the identical (time, sequence) contract.
// Used for equivalence-by-construction tests (a full golden run on each
// engine must produce the same digest) and the bench_scale A/B series.
template <typename T>
class BinaryHeapQueue {
 public:
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  void Push(SimTime time, T value) {
    SPECSYNC_CHECK(time.seconds() >= 0.0 && time.is_finite())
        << "event time must be finite and non-negative: " << time;
    entries_.push_back(Entry{time.seconds(), next_sequence_++,
                             std::move(value)});
    std::push_heap(entries_.begin(), entries_.end(), Later{});
  }

  SimTime PeekTime() {
    SPECSYNC_CHECK(!entries_.empty()) << "empty heap queue";
    return SimTime::FromSeconds(entries_.front().time);
  }

  T PopMin(SimTime* time_out = nullptr) {
    SPECSYNC_CHECK(!entries_.empty()) << "empty heap queue";
    std::pop_heap(entries_.begin(), entries_.end(), Later{});
    Entry entry = std::move(entries_.back());
    entries_.pop_back();
    if (time_out != nullptr) *time_out = SimTime::FromSeconds(entry.time);
    return std::move(entry.value);
  }

 private:
  struct Entry {
    double time = 0.0;
    std::uint64_t sequence = 0;
    T value{};
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;  // FIFO among equal times
    }
  };

  std::vector<Entry> entries_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace specsync
