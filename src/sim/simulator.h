// Discrete-event simulation engine.
//
// A single virtual clock and a priority queue of callbacks. Events at equal
// times run in scheduling (FIFO) order, which — together with seeded RNGs —
// makes every simulation bit-deterministic. This is the substrate substituting
// for the paper's EC2 cluster: what matters to SpecSync is the interleaving of
// pushes and pulls, and the queue reproduces any interleaving exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.h"
#include "common/sim_time.h"

namespace specsync {

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` at absolute time `at` (must not be in the past).
  void ScheduleAt(SimTime at, Callback fn);

  // Schedules `fn` `delay` from now (delay must be non-negative).
  void ScheduleAfter(Duration delay, Callback fn);

  // Runs events in time order until the queue drains, `until` is passed, or
  // RequestStop() is called from inside an event. Events scheduled exactly at
  // `until` still run.
  void Run(SimTime until = SimTime::Infinite());

  // Runs exactly one event if available; returns false when the queue is
  // empty.
  bool Step();

  // Stops Run() after the current event returns.
  void RequestStop() { stop_requested_ = true; }

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t sequence = 0;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;  // FIFO among equal times
    }
  };

  SimTime now_ = SimTime::Zero();
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t events_processed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace specsync
