// Discrete-event simulation engine.
//
// A single virtual clock over a pluggable event queue. Events at equal times
// run in scheduling (FIFO) order — the (time, sequence) tie-break key lives in
// the queue (see calendar_queue.h and DESIGN.md §12) — which, together with
// seeded RNGs, makes every simulation bit-deterministic. This is the substrate
// substituting for the paper's EC2 cluster: what matters to SpecSync is the
// interleaving of pushes and pulls, and the queue reproduces any interleaving
// exactly.
//
// Two queue engines sit behind the same contract: the default calendar queue
// (O(1) amortized, pooled nodes, zero steady-state allocation) and the
// pooled binary heap it replaced (kept for A/B benchmarking and
// equivalence-by-construction tests). Pop order is identical by construction,
// so the choice never changes a simulation result — only its wall time.
#pragma once

#include <cstdint>

#include "common/check.h"
#include "common/sim_time.h"
#include "sim/calendar_queue.h"
#include "sim/event_fn.h"

namespace specsync {

enum class EventQueueKind {
  kCalendar,    // default: bucketed O(1)-amortized scheduler
  kBinaryHeap,  // reference engine: pooled std::*_heap, O(log n)
};

class Simulator {
 public:
  using Callback = EventFn;

  explicit Simulator(EventQueueKind queue_kind = EventQueueKind::kCalendar)
      : queue_kind_(queue_kind) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }
  EventQueueKind queue_kind() const { return queue_kind_; }

  // Schedules `fn` at absolute time `at` (must not be in the past).
  void ScheduleAt(SimTime at, Callback fn);

  // Schedules `fn` `delay` from now (delay must be non-negative).
  void ScheduleAfter(Duration delay, Callback fn);

  // Runs events in time order until the queue drains, `until` is passed, or
  // RequestStop() is called from inside an event. Events scheduled exactly at
  // `until` still run.
  void Run(SimTime until = SimTime::Infinite());

  // Runs exactly one event if available; returns false when the queue is
  // empty.
  bool Step();

  // Stops Run() after the current event returns.
  void RequestStop() { stop_requested_ = true; }

  std::size_t pending_events() const {
    return queue_kind_ == EventQueueKind::kCalendar ? calendar_.size()
                                                    : heap_.size();
  }
  std::uint64_t events_processed() const { return events_processed_; }

  // Scheduler internals for the calendar engine (empty stats under the heap).
  const CalendarQueueStats& calendar_stats() const {
    return calendar_.stats();
  }

 private:
  SimTime PeekTime();

  SimTime now_ = SimTime::Zero();
  EventQueueKind queue_kind_;
  CalendarQueue<EventFn> calendar_;
  BinaryHeapQueue<EventFn> heap_;
  std::uint64_t events_processed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace specsync
