#include "sim/speed_model.h"

#include <algorithm>

#include "common/check.h"

namespace specsync {

HomogeneousSpeedModel::HomogeneousSpeedModel(Duration base, double jitter_sigma)
    : base_(base), jitter_sigma_(jitter_sigma) {
  SPECSYNC_CHECK_GT(base.seconds(), 0.0);
  SPECSYNC_CHECK_GE(jitter_sigma, 0.0);
}

Duration HomogeneousSpeedModel::ComputeTime(WorkerId /*worker*/,
                                            SimTime /*now*/, Rng& rng) {
  if (jitter_sigma_ == 0.0) return base_;
  return base_ * rng.LogNormal(0.0, jitter_sigma_);
}

HeterogeneousSpeedModel::HeterogeneousSpeedModel(
    Duration base, std::vector<double> multipliers, double jitter_sigma)
    : base_(base),
      multipliers_(std::move(multipliers)),
      jitter_sigma_(jitter_sigma) {
  SPECSYNC_CHECK_GT(base.seconds(), 0.0);
  SPECSYNC_CHECK(!multipliers_.empty());
  for (double m : multipliers_) SPECSYNC_CHECK_GT(m, 0.0);
  SPECSYNC_CHECK_GE(jitter_sigma, 0.0);
}

Duration HeterogeneousSpeedModel::ComputeTime(WorkerId worker,
                                              SimTime /*now*/, Rng& rng) {
  const Duration mean = MeanComputeTime(worker);
  if (jitter_sigma_ == 0.0) return mean;
  return mean * rng.LogNormal(0.0, jitter_sigma_);
}

Duration HeterogeneousSpeedModel::MeanComputeTime(WorkerId worker) const {
  SPECSYNC_CHECK_LT(worker, multipliers_.size());
  return base_ * multipliers_[worker];
}

std::unique_ptr<HeterogeneousSpeedModel> HeterogeneousSpeedModel::EvenClasses(
    Duration base, std::size_t num_workers,
    std::vector<double> class_multipliers, double jitter_sigma) {
  SPECSYNC_CHECK(!class_multipliers.empty());
  std::vector<double> multipliers(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    multipliers[w] = class_multipliers[w % class_multipliers.size()];
  }
  return std::make_unique<HeterogeneousSpeedModel>(base, std::move(multipliers),
                                                   jitter_sigma);
}

StragglerInjectingSpeedModel::StragglerInjectingSpeedModel(
    std::unique_ptr<SpeedModel> inner, double probability, double slowdown)
    : inner_(std::move(inner)), probability_(probability), slowdown_(slowdown) {
  SPECSYNC_CHECK(inner_ != nullptr);
  SPECSYNC_CHECK(probability_ >= 0.0 && probability_ <= 1.0);
  SPECSYNC_CHECK_GE(slowdown_, 1.0);
}

Duration StragglerInjectingSpeedModel::ComputeTime(WorkerId worker,
                                                   SimTime now, Rng& rng) {
  Duration t = inner_->ComputeTime(worker, now, rng);
  if (probability_ > 0.0 && rng.Bernoulli(probability_)) t = t * slowdown_;
  return t;
}

Duration StragglerInjectingSpeedModel::MeanComputeTime(WorkerId worker) const {
  // Expected value over the straggler coin flip.
  const Duration base = inner_->MeanComputeTime(worker);
  return base * (1.0 + probability_ * (slowdown_ - 1.0));
}

ContentionSpeedModel::ContentionSpeedModel(std::unique_ptr<SpeedModel> inner,
                                           ContentionConfig config, Rng rng)
    : inner_(std::move(inner)), config_(config), event_rng_(std::move(rng)) {
  SPECSYNC_CHECK(inner_ != nullptr);
  SPECSYNC_CHECK_GT(config_.mean_gap.seconds(), 0.0);
  SPECSYNC_CHECK_GT(config_.mean_duration.seconds(), 0.0);
  SPECSYNC_CHECK(config_.cohort_fraction > 0.0 &&
                 config_.cohort_fraction <= 1.0);
  SPECSYNC_CHECK_GE(config_.slowdown, 1.0);
}

void ContentionSpeedModel::GenerateEventsUpTo(SimTime now) {
  while (generated_until_ <= now) {
    const Duration gap = Duration::Seconds(
        event_rng_.Exponential(1.0 / config_.mean_gap.seconds()));
    const Duration length = Duration::Seconds(
        event_rng_.Exponential(1.0 / config_.mean_duration.seconds()));
    Event event;
    event.begin = generated_until_ + gap;
    event.end = event.begin + length;
    event.cohort_salt = event_rng_.UniformInt(0, 1u << 30);
    // Events never overlap (gap measured from the previous event's end),
    // matching the stationary busy fraction MeanComputeTime() assumes.
    generated_until_ = event.end;
    events_.push_back(event);
  }
}

bool ContentionSpeedModel::InCohort(WorkerId worker, const Event& event) const {
  // Deterministic membership hash: SplitMix-style mix of (worker, salt).
  std::uint64_t z = (static_cast<std::uint64_t>(worker) << 32) ^
                    event.cohort_salt;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
  return u < config_.cohort_fraction;
}

bool ContentionSpeedModel::IsContended(WorkerId worker, SimTime now) {
  GenerateEventsUpTo(now);
  // Events are sparse (hundreds over a long run); a reverse scan is cheap and
  // exact even with the occasional very long exponential duration.
  for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
    if (it->begin <= now && now < it->end && InCohort(worker, *it)) {
      return true;
    }
  }
  return false;
}

Duration ContentionSpeedModel::ComputeTime(WorkerId worker, SimTime now,
                                           Rng& rng) {
  Duration t = inner_->ComputeTime(worker, now, rng);
  if (IsContended(worker, now)) t = t * config_.slowdown;
  return t;
}

Duration ContentionSpeedModel::MeanComputeTime(WorkerId worker) const {
  // Stationary expectation over the contention process.
  const double busy_fraction =
      config_.mean_duration.seconds() /
      (config_.mean_duration.seconds() + config_.mean_gap.seconds());
  const double hit = busy_fraction * config_.cohort_fraction;
  return inner_->MeanComputeTime(worker) *
         (1.0 + hit * (config_.slowdown - 1.0));
}

}  // namespace specsync
