#include "sim/network.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace specsync {

NetworkModel::NetworkModel(NetworkConfig config) : config_(config) {
  SPECSYNC_CHECK(config_.base_latency >= Duration::Zero());
  SPECSYNC_CHECK_GT(config_.bandwidth_bytes_per_sec, 0.0);
  SPECSYNC_CHECK_GE(config_.jitter_sigma, 0.0);
}

Duration NetworkModel::TransferTime(std::size_t bytes, Rng& rng) const {
  const double serialization =
      static_cast<double>(bytes) / config_.bandwidth_bytes_per_sec;
  double seconds = config_.base_latency.seconds() + serialization;
  if (config_.jitter_sigma > 0.0) {
    // Log-normal multiplier with median 1: preserves ordering statistics while
    // spreading delivery times like real networks do.
    seconds *= rng.LogNormal(0.0, config_.jitter_sigma);
  }
  return Duration::Seconds(seconds);
}

NetworkModel::TransferPlan NetworkModel::PlanTransfer(std::size_t bytes,
                                                      LinkClass link, Rng& rng,
                                                      FaultPlan* faults) const {
  TransferPlan plan;
  plan.delay = TransferTime(bytes, rng);
  if (faults == nullptr || !faults->enabled()) return plan;
  const FaultDecision decision = faults->OnMessage(link);
  plan.drop = decision.drop;
  plan.duplicate = decision.duplicate;
  plan.delay += decision.extra_delay;
  return plan;
}

StallSchedule::StallSchedule(StallConfig config, Rng rng)
    : config_(config), rng_(std::move(rng)) {
  if (config_.enabled) {
    SPECSYNC_CHECK_GT(config_.mean_gap.seconds(), 0.0);
    SPECSYNC_CHECK_GT(config_.mean_duration.seconds(), 0.0);
  }
}

void StallSchedule::GenerateUpTo(SimTime t) {
  while (generated_until_ <= t) {
    const Duration gap = Duration::Seconds(
        rng_.Exponential(1.0 / config_.mean_gap.seconds()));
    const Duration length = Duration::Seconds(
        rng_.Exponential(1.0 / config_.mean_duration.seconds()));
    Window window;
    window.begin = generated_until_ + gap;
    window.end = window.begin + length;
    windows_.push_back(window);
    generated_until_ = window.end;  // stalls never overlap
  }
}

SimTime StallSchedule::Defer(SimTime arrival) {
  if (!config_.enabled) return arrival;
  GenerateUpTo(arrival);
  // Windows are ordered and non-overlapping: binary-search the last window
  // beginning at or before `arrival`.
  auto it = std::upper_bound(
      windows_.begin(), windows_.end(), arrival,
      [](SimTime t, const Window& w) { return t < w.begin; });
  if (it == windows_.begin()) return arrival;
  const Window& window = *std::prev(it);
  if (arrival < window.end) return window.end;
  return arrival;
}

}  // namespace specsync
