// Cluster training simulation: PS architecture + synchronization scheme +
// SpecSync, under virtual time.
//
// "Virtual time, real math": event timing (compute spans, transfer delays)
// is simulated, but every gradient is genuinely computed on the parameter
// snapshot the worker pulled — so staleness has its true algorithmic effect
// on convergence, which is precisely what the paper measures.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/adaptive_tuner.h"
#include "core/naive_waiting.h"
#include "core/scheduler.h"
#include "core/speculation.h"
#include "data/sharding.h"
#include "fault/fault_plan.h"
#include "models/model.h"
#include "optim/lr_schedule.h"
#include "ps/compression.h"
#include "ps/consistency.h"
#include "ps/param_store.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/speed_model.h"
#include "trace/trace.h"
#include "trace/transfer.h"

namespace specsync {

// Base consistency models: the three static schemes plus the first two
// stages of the adaptive sync-policy engine — per-shard SSP (kPssp: the
// staleness bound applies only to shards a worker's gradients actually
// touch) and dynamic SSP (kDssp: per-shard gating with the bound retuned
// each epoch from observed push inter-arrivals).
enum class BaseScheme { kAsp, kBsp, kSsp, kPssp, kDssp };
enum class SpeculationMode { kNone, kFixed, kAdaptive };

// Full synchronization-scheme selection: a base consistency model, optional
// naive waiting, and optional speculative synchronization on top (the paper's
// Original = kAsp + kNone; SpecSync-Adaptive = kAsp + kAdaptive; etc.).
struct SchemeSpec {
  BaseScheme base = BaseScheme::kAsp;
  std::uint64_t ssp_staleness = 3;  // kSsp and kPssp
  DynamicSspConfig dssp;            // kDssp
  NaiveWaitingConfig naive;
  SpeculationMode speculation = SpeculationMode::kNone;
  // Used directly under kFixed (the Cherrypick values).
  SpeculationParams fixed_params;
  AdaptiveTunerConfig adaptive;

  std::string DisplayName() const;

  static SchemeSpec Original() { return {}; }
  static SchemeSpec Bsp() {
    SchemeSpec s;
    s.base = BaseScheme::kBsp;
    return s;
  }
  static SchemeSpec Ssp(std::uint64_t staleness) {
    SchemeSpec s;
    s.base = BaseScheme::kSsp;
    s.ssp_staleness = staleness;
    return s;
  }
  static SchemeSpec PerShardSsp(std::uint64_t staleness) {
    SchemeSpec s;
    s.base = BaseScheme::kPssp;
    s.ssp_staleness = staleness;
    return s;
  }
  static SchemeSpec DynamicSsp(DynamicSspConfig config = {}) {
    SchemeSpec s;
    s.base = BaseScheme::kDssp;
    s.dssp = config;
    return s;
  }
  static SchemeSpec NaiveWaiting(Duration delay) {
    SchemeSpec s;
    s.naive.delay = delay;
    return s;
  }
  static SchemeSpec Cherrypick(SpeculationParams params) {
    SchemeSpec s;
    s.speculation = SpeculationMode::kFixed;
    s.fixed_params = std::move(params);
    return s;
  }
  static SchemeSpec Adaptive(AdaptiveTunerConfig config = {}) {
    SchemeSpec s;
    s.speculation = SpeculationMode::kAdaptive;
    s.adaptive = config;
    return s;
  }
};

struct ClusterSimConfig {
  std::size_t num_workers = 4;
  std::size_t num_servers = 1;
  std::size_t batch_size = 32;
  SchemeSpec scheme;
  NetworkConfig network;
  StallConfig stalls;
  // Fault injection (message drop/duplication/delay, slowdowns, crashes).
  // Default-constructed = disabled; with all-zero probabilities and no
  // crash/slowdown events the run is bit-identical to a fault-free one.
  FaultPlanConfig faults;
  // Virtual-time cadence of loss evaluation (server-side snapshot).
  Duration eval_interval = Duration::Seconds(5.0);
  // Examples used per loss evaluation (0 = full dataset).
  std::size_t eval_subsample = 2000;
  // Convergence: loss < loss_target for `convergence_patience` consecutive
  // evaluations (paper Sec. VI-B, with iterations ~ evaluations). <= 0
  // disables convergence stopping.
  double loss_target = 0.0;
  std::size_t convergence_patience = 5;
  bool stop_on_convergence = true;
  SimTime max_time = SimTime::FromSeconds(3600.0);
  std::uint64_t max_pushes = 0;  // 0 = unlimited
  std::uint64_t seed = 42;
  // Elementwise gradient clip applied server-side (0 = off).
  double sgd_clip = 0.0;
  // Gradient wire compression (ps/compression.h). topk/int8/fp16 transform
  // each worker's gradient before routing (error-feedback residuals for
  // topk) and the transfer model charges the coded byte size, with the raw
  // minus coded delta recorded in the TransferAccountant's savings ledger.
  // delta makes unchanged shards cost one control message per pull. kNone
  // takes exactly the legacy paths: no transform, no extra RNG draws, and
  // bit-identical golden trace digests.
  CompressionSpec compression;
  // DES engine selection. Pop order is bit-identical across engines (same
  // (time, sequence) contract — see calendar_queue.h), so this only changes
  // wall time; the heap is kept for A/B benchmarking and equivalence tests.
  EventQueueKind event_queue = EventQueueKind::kCalendar;
  // Optional observability context (src/obs), not owned; must outlive the
  // sim. When set, the run records per-worker spans (pull/compute/push/
  // aborted compute), scheduler audit records, and event counters/gauges.
  // Record-only: attaching it never changes event order, RNG draws, or the
  // trace digest.
  obs::ObsContext* obs = nullptr;
};

// What the consistency layer did to the run: how often workers were gated
// at iteration start, the virtual time they spent gated (the straggler
// stall-time the dynamic bound is tuned to shrink), and the dynamic
// controller's retune activity. All zeros under ASP.
struct ConsistencyStats {
  std::uint64_t blocks = 0;       // gate transitions allowed -> blocked
  double blocked_seconds = 0.0;   // total virtual time workers spent gated
  std::uint64_t retunes = 0;      // staleness-bound adjustments (kDssp)
  std::uint64_t final_staleness = 0;  // bound in force at run end (SSP family)
};

struct SimResult {
  TrainingTrace trace;
  TransferAccountant transfers;
  SchedulerStats scheduler_stats;
  // Time of the first loss sample of the convergence streak, if converged.
  std::optional<SimTime> convergence_time;
  std::optional<std::uint64_t> convergence_pushes;
  double final_loss = 0.0;
  SimTime end_time = SimTime::Zero();
  std::uint64_t total_pushes = 0;
  std::uint64_t total_aborts = 0;
  // DES events the run processed (queue throughput = sim_events / wall time).
  std::uint64_t sim_events = 0;
  SpeculationParams final_params;
  DenseVector final_weights;
  FaultStats fault_stats;
  ConsistencyStats consistency;

  SimResult() : trace(1) {}
};

// Runs one full training simulation. The model and schedule are shared
// (immutable); the speed model is owned for the run.
class ClusterSim {
 public:
  ClusterSim(std::shared_ptr<const Model> model,
             std::shared_ptr<const LearningRateSchedule> schedule,
             std::unique_ptr<SpeedModel> speed, ClusterSimConfig config);
  ~ClusterSim();

  ClusterSim(const ClusterSim&) = delete;
  ClusterSim& operator=(const ClusterSim&) = delete;

  SimResult Run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace specsync
