// Move-only callable with inline storage, sized for DES event callbacks.
//
// Every simulated event carries a small closure (a handful of ids, a SimTime,
// maybe a shared_ptr to an in-flight attempt). std::function heap-allocates
// most of them (libstdc++'s small-object buffer is 16 bytes) and, being
// copyable, forces a second allocation when an event is copied out of a
// container. EventFn keeps closures up to kInlineBytes in the event node
// itself — pooled by the calendar queue, so steady-state simulation performs
// zero allocations per event — and transparently boxes the rare larger
// closure on the heap (the box pointer then lives inline).
//
// Move-only by design: an event fires exactly once, so nothing ever needs to
// copy one. Moving an EventFn relocates the closure into the destination and
// leaves the source empty.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "common/check.h"

namespace specsync {

class EventFn {
 public:
  // Covers every closure the cluster loop schedules (the largest captures
  // [this, worker, ShardRoute, shared_ptr] ≈ 48 bytes). Closures above the
  // limit still work — they are boxed — so this is a perf knob, not an API
  // limit.
  static constexpr std::size_t kInlineBytes = 64;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using Decayed = std::decay_t<F>;
    if constexpr (sizeof(Decayed) <= kInlineBytes &&
                  alignof(Decayed) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Decayed>) {
      ::new (static_cast<void*>(buffer_)) Decayed(std::forward<F>(fn));
      ops_ = &InlineOps<Decayed>::kOps;
    } else {
      // Boxed fallback: the inline slot holds only the owning pointer.
      ::new (static_cast<void*>(buffer_))
          Decayed*(new Decayed(std::forward<F>(fn)));
      ops_ = &BoxedOps<Decayed>::kOps;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(std::move(other)); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    SPECSYNC_CHECK(ops_ != nullptr) << "invoking an empty EventFn";
    ops_->invoke(buffer_);
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs dst from src's closure and destroys src's.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename F>
  struct InlineOps {
    static void Invoke(void* storage) { (*std::launder(static_cast<F*>(storage)))(); }
    static void Relocate(void* dst, void* src) noexcept {
      F* from = std::launder(static_cast<F*>(src));
      ::new (dst) F(std::move(*from));
      from->~F();
    }
    static void Destroy(void* storage) noexcept {
      std::launder(static_cast<F*>(storage))->~F();
    }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy};
  };

  template <typename F>
  struct BoxedOps {
    static F* Get(void* storage) {
      return *std::launder(static_cast<F**>(storage));
    }
    static void Invoke(void* storage) { (*Get(storage))(); }
    static void Relocate(void* dst, void* src) noexcept {
      ::new (dst) F*(Get(src));  // ownership transfers with the pointer
    }
    static void Destroy(void* storage) noexcept { delete Get(storage); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy};
  };

  void MoveFrom(EventFn&& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buffer_, other.buffer_);
      other.ops_ = nullptr;
    }
  }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buffer_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buffer_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace specsync
