// Worker compute-speed models.
//
// Per-iteration compute time = base_time * worker_multiplier * jitter.
// Three configurations reproduce the paper's testbeds:
//  - homogeneous (Cluster 1: 40x m4.xlarge),
//  - heterogeneous instance classes (Cluster 2: 10x m3.xlarge, 10x m3.2xlarge,
//    10x m4.xlarge, 10x m4.2xlarge),
//  - transient stragglers (background load / multi-tenancy effects).
#pragma once

#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/sim_time.h"

namespace specsync {

class SpeedModel {
 public:
  virtual ~SpeedModel() = default;
  // Compute duration of one full iteration attempt for `worker`, starting at
  // simulated time `now` (time-varying models use it; stationary ones don't).
  virtual Duration ComputeTime(WorkerId worker, SimTime now, Rng& rng) = 0;
  // Stationary mean compute time for `worker` (no jitter, no events).
  virtual Duration MeanComputeTime(WorkerId worker) const = 0;
};

// All workers share one mean with log-normal jitter.
class HomogeneousSpeedModel final : public SpeedModel {
 public:
  HomogeneousSpeedModel(Duration base, double jitter_sigma);
  Duration ComputeTime(WorkerId worker, SimTime now, Rng& rng) override;
  Duration MeanComputeTime(WorkerId worker) const override {
    (void)worker;
    return base_;
  }

 private:
  Duration base_;
  double jitter_sigma_;
};

// Per-worker speed multipliers (e.g. 4 instance classes). multiplier > 1
// means slower.
class HeterogeneousSpeedModel final : public SpeedModel {
 public:
  HeterogeneousSpeedModel(Duration base, std::vector<double> multipliers,
                          double jitter_sigma);
  Duration ComputeTime(WorkerId worker, SimTime now, Rng& rng) override;
  Duration MeanComputeTime(WorkerId worker) const override;

  // Builds the paper's Cluster-2 shape: `num_workers` workers split evenly
  // across `class_multipliers` (round-robin).
  static std::unique_ptr<HeterogeneousSpeedModel> EvenClasses(
      Duration base, std::size_t num_workers,
      std::vector<double> class_multipliers, double jitter_sigma);

 private:
  Duration base_;
  std::vector<double> multipliers_;
  double jitter_sigma_;
};

// Wraps another model; with probability `probability` an iteration is slowed
// by `slowdown` (independent transient straggler).
class StragglerInjectingSpeedModel final : public SpeedModel {
 public:
  StragglerInjectingSpeedModel(std::unique_ptr<SpeedModel> inner,
                               double probability, double slowdown);
  Duration ComputeTime(WorkerId worker, SimTime now, Rng& rng) override;
  Duration MeanComputeTime(WorkerId worker) const override;

 private:
  std::unique_ptr<SpeedModel> inner_;
  double probability_;
  double slowdown_;
};

// Correlated contention events: multi-tenant clouds periodically slow a
// cohort of nodes at once (noisy neighbors, network congestion, host
// maintenance). When an event ends, the cohort's delayed pushes land together
// — exactly the bursty, overdispersed push-after-pull arrivals the paper's
// Fig. 3 traces show (whiskers spanning 0..2x the Poisson mean). This
// burstiness is the regime where speculative re-synchronization pays off:
// with purely independent arrivals the mean version-staleness of a
// full-duty-cycle cluster is conserved at m-1 regardless of scheme.
struct ContentionConfig {
  // Mean gap between contention events (exponential inter-arrivals).
  Duration mean_gap = Duration::Seconds(40.0);
  // Event duration (exponential with this mean).
  Duration mean_duration = Duration::Seconds(20.0);
  // Fraction of workers hit by each event.
  double cohort_fraction = 0.3;
  // Slowdown multiplier applied to iterations started during an event.
  double slowdown = 2.5;
};

class ContentionSpeedModel final : public SpeedModel {
 public:
  ContentionSpeedModel(std::unique_ptr<SpeedModel> inner,
                       ContentionConfig config, Rng rng);
  Duration ComputeTime(WorkerId worker, SimTime now, Rng& rng) override;
  Duration MeanComputeTime(WorkerId worker) const override;

  // True if `worker` is slowed at `now` (generates events up to `now`).
  bool IsContended(WorkerId worker, SimTime now);

 private:
  struct Event {
    SimTime begin;
    SimTime end;
    std::uint64_t cohort_salt = 0;
  };
  void GenerateEventsUpTo(SimTime now);
  bool InCohort(WorkerId worker, const Event& event) const;

  std::unique_ptr<SpeedModel> inner_;
  ContentionConfig config_;
  Rng event_rng_;
  std::vector<Event> events_;  // time-ordered
  SimTime generated_until_ = SimTime::Zero();
};

}  // namespace specsync
