// Descriptive statistics used by the trace analyses and the benchmark
// harness: running moments, quantiles, the five-number box-plot summary the
// paper uses in Fig. 3, and fixed-width histograms.
#pragma once

#include <cstddef>
#include <ostream>
#include <vector>

namespace specsync {

// Online mean / variance (Welford). Cheap to copy.
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Linear-interpolation quantile of a sample (q in [0,1]).
// The sample is copied and sorted; use Quantiles() for several at once.
double Quantile(std::vector<double> sample, double q);
std::vector<double> Quantiles(std::vector<double> sample,
                              const std::vector<double>& qs);

// Five-number summary matching the paper's box plots:
// whiskers at p5/p95, box at p25/p50/p75.
struct BoxSummary {
  double p5 = 0.0;
  double p25 = 0.0;
  double p50 = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  std::size_t count = 0;

  static BoxSummary FromSample(std::vector<double> sample);
};

std::ostream& operator<<(std::ostream& os, const BoxSummary& box);

// Fixed-width histogram over [lo, hi); values outside are clamped into the
// first/last bucket so no observation is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void Add(double x);
  // Bucket-wise sum of another histogram with the identical layout (same lo,
  // hi, bucket count) — per-thread or per-cell histograms roll up into one.
  // Mismatched layouts are a programming error (checked).
  void Merge(const Histogram& other);
  // Quantile estimated from the bucket counts (q in [0,1]): finds the bucket
  // holding the q-th observation and interpolates linearly within it. 0 for
  // an empty histogram.
  double ApproxQuantile(double q) const;
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count(std::size_t bucket) const;
  std::size_t total() const { return total_; }
  double bucket_lo(std::size_t bucket) const;
  double bucket_hi(std::size_t bucket) const;
  // Fraction of observations in the bucket (0 if empty histogram).
  double fraction(std::size_t bucket) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace specsync
