#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace specsync {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

namespace {

double QuantileSorted(const std::vector<double>& sorted, double q) {
  SPECSYNC_CHECK(!sorted.empty()) << "quantile of empty sample";
  SPECSYNC_CHECK(q >= 0.0 && q <= 1.0) << "q=" << q;
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double Quantile(std::vector<double> sample, double q) {
  std::sort(sample.begin(), sample.end());
  return QuantileSorted(sample, q);
}

std::vector<double> Quantiles(std::vector<double> sample,
                              const std::vector<double>& qs) {
  std::sort(sample.begin(), sample.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) out.push_back(QuantileSorted(sample, q));
  return out;
}

BoxSummary BoxSummary::FromSample(std::vector<double> sample) {
  BoxSummary box;
  box.count = sample.size();
  if (sample.empty()) return box;
  auto qs = Quantiles(std::move(sample), {0.05, 0.25, 0.50, 0.75, 0.95});
  box.p5 = qs[0];
  box.p25 = qs[1];
  box.p50 = qs[2];
  box.p75 = qs[3];
  box.p95 = qs[4];
  return box;
}

std::ostream& operator<<(std::ostream& os, const BoxSummary& box) {
  return os << "{p5=" << box.p5 << " p25=" << box.p25 << " p50=" << box.p50
            << " p75=" << box.p75 << " p95=" << box.p95 << " n=" << box.count
            << "}";
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  SPECSYNC_CHECK_GT(buckets, 0u);
  SPECSYNC_CHECK_LT(lo, hi);
}

void Histogram::Add(double x) {
  std::size_t bucket;
  if (x < lo_) {
    bucket = 0;
  } else if (x >= hi_) {
    bucket = counts_.size() - 1;
  } else {
    bucket = static_cast<std::size_t>((x - lo_) / width_);
    bucket = std::min(bucket, counts_.size() - 1);
  }
  ++counts_[bucket];
  ++total_;
}

void Histogram::Merge(const Histogram& other) {
  SPECSYNC_CHECK_EQ(counts_.size(), other.counts_.size())
      << "histogram merge with mismatched bucket count";
  SPECSYNC_CHECK(lo_ == other.lo_ && hi_ == other.hi_)
      << "histogram merge with mismatched range [" << other.lo_ << ", "
      << other.hi_ << ") into [" << lo_ << ", " << hi_ << ")";
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b] += other.counts_[b];
  }
  total_ += other.total_;
}

double Histogram::ApproxQuantile(double q) const {
  SPECSYNC_CHECK(q >= 0.0 && q <= 1.0) << "q=" << q;
  if (total_ == 0) return 0.0;
  // Rank of the target observation (1-based, clamped into [1, total]).
  const double rank = std::max(1.0, q * static_cast<double>(total_));
  std::size_t cumulative = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts_[b];
    if (static_cast<double>(cumulative) < rank) continue;
    // Interpolate within the bucket by the rank's position among its counts.
    const double frac = (rank - before) / static_cast<double>(counts_[b]);
    return bucket_lo(b) + width_ * frac;
  }
  return hi_;  // unreachable with consistent counts; safe fallback
}

std::size_t Histogram::count(std::size_t bucket) const {
  SPECSYNC_CHECK_LT(bucket, counts_.size());
  return counts_[bucket];
}

double Histogram::bucket_lo(std::size_t bucket) const {
  SPECSYNC_CHECK_LT(bucket, counts_.size());
  return lo_ + width_ * static_cast<double>(bucket);
}

double Histogram::bucket_hi(std::size_t bucket) const {
  return bucket_lo(bucket) + width_;
}

double Histogram::fraction(std::size_t bucket) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bucket)) / static_cast<double>(total_);
}

}  // namespace specsync
