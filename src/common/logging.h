// Minimal leveled logger.
//
// The library logs sparingly (scheduler decisions, epoch boundaries) and only
// through this interface, so tests can silence or capture output. Not designed
// for cross-thread message ordering guarantees beyond line atomicity.
#pragma once

#include <functional>
#include <mutex>
#include <sstream>
#include <string>

namespace specsync {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

const char* LogLevelName(LogLevel level);

// Global logging configuration. Thread-safe.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& Get();

  void set_min_level(LogLevel level);
  LogLevel min_level() const;

  // Replaces the sink; pass nullptr to restore the default (stderr) sink.
  void set_sink(Sink sink);

  void Write(LogLevel level, const std::string& message);

 private:
  Logger();

  mutable std::mutex mutex_;
  LogLevel min_level_ = LogLevel::kInfo;
  Sink sink_;
};

namespace internal {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Get().Write(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace specsync

#define SPECSYNC_LOG(level) \
  ::specsync::internal::LogMessage(::specsync::LogLevel::level)
