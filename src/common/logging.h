// Minimal leveled logger.
//
// The library logs sparingly (scheduler decisions, epoch boundaries) and only
// through this interface, so tests can silence or capture output. Not designed
// for cross-thread message ordering guarantees beyond line atomicity.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>

namespace specsync {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

const char* LogLevelName(LogLevel level);

// Global logging configuration. Thread-safe.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& Get();

  void set_min_level(LogLevel level);
  LogLevel min_level() const;

  // Replaces the sink; pass nullptr to restore the default (stderr) sink.
  void set_sink(Sink sink);

  void Write(LogLevel level, const std::string& message);

 private:
  Logger();

  mutable std::mutex mutex_;
  LogLevel min_level_ = LogLevel::kInfo;
  Sink sink_;
};

namespace internal {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Get().Write(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Discards everything streamed into it (the suppressed occurrences of
// SPECSYNC_LOG_EVERY_N).
class NullLogMessage {
 public:
  template <typename T>
  NullLogMessage& operator<<(const T&) {
    return *this;
  }
};

// Occurrence gate for SPECSYNC_LOG_EVERY_N: returns true on the 1st, N+1-th,
// 2N+1-th, ... call. Thread-safe; each call site owns one counter.
inline bool ShouldLogEveryN(std::atomic<std::uint64_t>& counter,
                            std::uint64_t n) {
  return counter.fetch_add(1, std::memory_order_relaxed) % n == 0;
}

}  // namespace internal
}  // namespace specsync

#define SPECSYNC_LOG(level) \
  ::specsync::internal::LogMessage(::specsync::LogLevel::level)

// Rate-limited logging for per-event warnings that would otherwise flood the
// sink (dropped messages, failed metric writes): emits the first occurrence
// and every n-th after it, counting per call site.
//
//   SPECSYNC_LOG_EVERY_N(kWarning, 100) << "queue overflow, dropped " << k;
#define SPECSYNC_LOG_EVERY_N(level, n)                                        \
  if (static std::atomic<std::uint64_t> specsync_log_occurrences_{0};         \
      !::specsync::internal::ShouldLogEveryN(specsync_log_occurrences_, (n))) \
    ::specsync::internal::NullLogMessage();                                   \
  else                                                                        \
    ::specsync::internal::LogMessage(::specsync::LogLevel::level)
