// Strongly typed simulated time.
//
// The whole system — the discrete-event simulator, the SpecSync scheduler and
// its tuner, the traces — measures time in simulated seconds. A strong type
// prevents accidental mixing of times, durations, rates, and counts, while
// still compiling down to a single double.
#pragma once

#include <compare>
#include <limits>
#include <ostream>

namespace specsync {

// A span of simulated time, in seconds. May be negative in intermediate
// arithmetic (e.g. time differences), but most APIs require non-negative.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr static Duration Seconds(double s) { return Duration(s); }
  constexpr static Duration Milliseconds(double ms) {
    return Duration(ms / 1e3);
  }
  constexpr static Duration Microseconds(double us) {
    return Duration(us / 1e6);
  }
  constexpr static Duration Zero() { return Duration(0.0); }
  constexpr static Duration Infinite() {
    return Duration(std::numeric_limits<double>::infinity());
  }

  constexpr double seconds() const { return seconds_; }
  constexpr double milliseconds() const { return seconds_ * 1e3; }
  constexpr bool is_finite() const {
    return seconds_ < std::numeric_limits<double>::infinity() &&
           seconds_ > -std::numeric_limits<double>::infinity();
  }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration other) const {
    return Duration(seconds_ + other.seconds_);
  }
  constexpr Duration operator-(Duration other) const {
    return Duration(seconds_ - other.seconds_);
  }
  constexpr Duration operator*(double factor) const {
    return Duration(seconds_ * factor);
  }
  constexpr Duration operator/(double divisor) const {
    return Duration(seconds_ / divisor);
  }
  constexpr double operator/(Duration other) const {
    return seconds_ / other.seconds_;
  }
  constexpr Duration operator-() const { return Duration(-seconds_); }
  Duration& operator+=(Duration other) {
    seconds_ += other.seconds_;
    return *this;
  }
  Duration& operator-=(Duration other) {
    seconds_ -= other.seconds_;
    return *this;
  }

 private:
  constexpr explicit Duration(double s) : seconds_(s) {}
  double seconds_ = 0.0;
};

constexpr Duration operator*(double factor, Duration d) { return d * factor; }

// An absolute point on the simulated clock, in seconds since simulation start.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr static SimTime FromSeconds(double s) { return SimTime(s); }
  constexpr static SimTime Zero() { return SimTime(0.0); }
  constexpr static SimTime Infinite() {
    return SimTime(std::numeric_limits<double>::infinity());
  }

  constexpr double seconds() const { return seconds_; }
  constexpr bool is_finite() const {
    return seconds_ < std::numeric_limits<double>::infinity();
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(Duration d) const {
    return SimTime(seconds_ + d.seconds());
  }
  constexpr SimTime operator-(Duration d) const {
    return SimTime(seconds_ - d.seconds());
  }
  constexpr Duration operator-(SimTime other) const {
    return Duration::Seconds(seconds_ - other.seconds_);
  }
  SimTime& operator+=(Duration d) {
    seconds_ += d.seconds();
    return *this;
  }

 private:
  constexpr explicit SimTime(double s) : seconds_(s) {}
  double seconds_ = 0.0;
};

std::ostream& operator<<(std::ostream& os, Duration d);
std::ostream& operator<<(std::ostream& os, SimTime t);

}  // namespace specsync
