#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace specsync {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SPECSYNC_CHECK(!headers_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  SPECSYNC_CHECK_EQ(cells.size(), headers_.size())
      << "row width mismatch: " << cells.size() << " vs " << headers_.size();
  rows_.push_back(std::move(cells));
}

const std::vector<std::string>& Table::row(std::size_t i) const {
  SPECSYNC_CHECK_LT(i, rows_.size());
  return rows_[i];
}

std::string Table::Format(double v) {
  std::ostringstream out;
  if (v == 0.0) return "0";
  const double a = std::abs(v);
  if (a >= 1e6 || a < 1e-3) {
    out << std::scientific << std::setprecision(3) << v;
  } else {
    out << std::fixed << std::setprecision(a < 1.0 ? 4 : 3) << v;
  }
  return out.str();
}

void Table::PrintPretty(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_sep = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << CsvEscape(cells[c]);
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace specsync
