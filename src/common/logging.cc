#include "common/logging.h"

#include <iostream>

namespace specsync {

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

Logger& Logger::Get() {
  static Logger* instance = new Logger();  // never destroyed; avoids
                                           // shutdown-order issues
  return *instance;
}

Logger::Logger() = default;

void Logger::set_min_level(LogLevel level) {
  std::scoped_lock lock(mutex_);
  min_level_ = level;
}

LogLevel Logger::min_level() const {
  std::scoped_lock lock(mutex_);
  return min_level_;
}

void Logger::set_sink(Sink sink) {
  std::scoped_lock lock(mutex_);
  sink_ = std::move(sink);
}

void Logger::Write(LogLevel level, const std::string& message) {
  Sink sink;
  {
    std::scoped_lock lock(mutex_);
    if (level < min_level_) return;
    sink = sink_;
  }
  if (sink) {
    sink(level, message);
  } else {
    std::ostringstream line;
    line << "[" << LogLevelName(level) << "] " << message << "\n";
    std::cerr << line.str();  // single << keeps the line atomic enough
  }
}

}  // namespace specsync
