#include "common/rng.h"

#include <numeric>
#include <unordered_set>

namespace specsync {

std::vector<std::size_t> Rng::SampleIndices(std::size_t n, std::size_t k) {
  SPECSYNC_CHECK_LE(k, n);
  if (k == 0) return {};
  // For small k relative to n, rejection sampling; otherwise partial shuffle.
  if (k * 4 <= n) {
    std::unordered_set<std::size_t> chosen;
    chosen.reserve(k * 2);
    std::vector<std::size_t> out;
    out.reserve(k);
    while (out.size() < k) {
      std::size_t candidate = Index(n);
      if (chosen.insert(candidate).second) out.push_back(candidate);
    }
    return out;
  }
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), 0u);
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + Index(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace specsync
