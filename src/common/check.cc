#include "common/check.h"

#include <sstream>

namespace specsync::internal {

void FailCheck(std::string_view file, int line, std::string_view condition,
               const std::string& message) {
  std::ostringstream out;
  out << "CHECK failed at " << file << ":" << line << ": " << condition;
  if (!message.empty()) {
    out << " — " << message;
  }
  throw CheckError(out.str());
}

}  // namespace specsync::internal
