#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace specsync {

ThreadPool::ThreadPool(std::size_t num_threads) {
  SPECSYNC_CHECK_GT(num_threads, 0u);
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  SPECSYNC_CHECK(task != nullptr);
  {
    std::scoped_lock lock(mutex_);
    SPECSYNC_CHECK(!shutdown_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

std::size_t ThreadPool::DefaultThreadCount() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::scoped_lock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    pool.Submit([&fn, i] { fn(i); });
  }
  pool.Wait();
}

}  // namespace specsync
