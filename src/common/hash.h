// FNV-1a 64-bit hashing.
//
// Two jobs, both needing order-sensitive, bit-exact digests: (a) forking
// per-cell experiment seeds from a root seed by semantic key — (workload,
// scheme, label, replicate) — so a sweep's seeds never depend on submission
// order, and (b) digesting event traces for the golden-trace and
// parallel-equivalence tests. Variable-length fields are length-prefixed so
// adjacent fields cannot alias ("ab"+"c" != "a"+"bc").
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace specsync {

class Fnv1a {
 public:
  static constexpr std::uint64_t kOffset = 1469598103934665603ULL;
  static constexpr std::uint64_t kPrime = 1099511628211ULL;

  constexpr std::uint64_t digest() const { return state_; }

  constexpr Fnv1a& Bytes(const char* data, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      state_ ^= static_cast<unsigned char>(data[i]);
      state_ *= kPrime;
    }
    return *this;
  }

  constexpr Fnv1a& U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      state_ ^= (v >> (8 * i)) & 0xFFu;
      state_ *= kPrime;
    }
    return *this;
  }

  // Hashes the bit pattern, so digests distinguish -0.0/0.0 and are exact.
  constexpr Fnv1a& F64(double v) { return U64(std::bit_cast<std::uint64_t>(v)); }

  constexpr Fnv1a& Str(std::string_view s) {
    U64(s.size());
    return Bytes(s.data(), s.size());
  }

 private:
  std::uint64_t state_ = kOffset;
};

}  // namespace specsync
