// Deterministic random number generation.
//
// Every stochastic component in the library draws from an Rng that was seeded
// explicitly, so any experiment regenerates bit-identically for a fixed seed.
// Rng::Fork() derives independent child streams (e.g. one per worker) that
// stay decoupled regardless of how many numbers each consumes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace specsync {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  std::uint64_t seed() const { return seed_; }

  // Derives an independent child stream; successive calls produce distinct
  // streams. Deterministic in (parent seed, fork index).
  Rng Fork() {
    // SplitMix64 on (seed, fork counter) gives well-separated child seeds.
    std::uint64_t z = seed_ + 0x9E3779B97F4A7C15ULL * (++forks_);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return Rng(z ^ (z >> 31));
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    SPECSYNC_CHECK_LE(lo, hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    SPECSYNC_CHECK_LE(lo, hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  // Uniform index in [0, n).
  std::size_t Index(std::size_t n) {
    SPECSYNC_CHECK_GT(n, 0u);
    return static_cast<std::size_t>(
        std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_));
  }

  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  double Exponential(double rate) {
    SPECSYNC_CHECK_GT(rate, 0.0);
    return std::exponential_distribution<double>(rate)(engine_);
  }

  // Log-normal with the given mean/stddev *of the underlying normal*.
  double LogNormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  bool Bernoulli(double p) {
    return std::bernoulli_distribution(std::clamp(p, 0.0, 1.0))(engine_);
  }

  template <typename T>
  void Shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  // A random sample of k distinct indices from [0, n) (k <= n).
  std::vector<std::size_t> SampleIndices(std::size_t n, std::size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
  std::uint64_t forks_ = 0;
};

}  // namespace specsync
