// Lightweight precondition / invariant checking.
//
// Following the C++ Core Guidelines (I.6, E.12) we express contract violations
// as exceptions carrying a formatted message; callers that cannot recover let
// them propagate to main().
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace specsync {

// Error thrown when a SPECSYNC_CHECK-style contract is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

// Error thrown for runtime failures that are not programming errors
// (bad configuration, exhausted resources, protocol violations from remote
// peers, ...).
class RuntimeError : public std::runtime_error {
 public:
  explicit RuntimeError(const std::string& what) : std::runtime_error(what) {}
};

namespace internal {

[[noreturn]] void FailCheck(std::string_view file, int line,
                            std::string_view condition,
                            const std::string& message);

// Accumulates a streamed message for the CHECK macros.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* condition)
      : file_(file), line_(line), condition_(condition) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() noexcept(false) {
    FailCheck(file_, line_, condition_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace specsync

// Always-on contract check; streams an optional message:
//   SPECSYNC_CHECK(n > 0) << "need at least one worker, got " << n;
#define SPECSYNC_CHECK(condition)                                    \
  if (condition) {                                                   \
  } else                                                             \
    ::specsync::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)

#define SPECSYNC_CHECK_EQ(a, b) SPECSYNC_CHECK((a) == (b))
#define SPECSYNC_CHECK_NE(a, b) SPECSYNC_CHECK((a) != (b))
#define SPECSYNC_CHECK_LT(a, b) SPECSYNC_CHECK((a) < (b))
#define SPECSYNC_CHECK_LE(a, b) SPECSYNC_CHECK((a) <= (b))
#define SPECSYNC_CHECK_GT(a, b) SPECSYNC_CHECK((a) > (b))
#define SPECSYNC_CHECK_GE(a, b) SPECSYNC_CHECK((a) >= (b))
