// Tabular output for the benchmark harness.
//
// Every figure/table regenerator prints (a) a human-readable aligned table and
// (b) machine-readable CSV, so results can be eyeballed and plotted.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace specsync {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row; the row must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  // Convenience: formats arithmetic values with Format().
  template <typename... Ts>
  void AddRowValues(const Ts&... values) {
    AddRow({Format(values)...});
  }

  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::string>& row(std::size_t i) const;

  // Aligned, boxed, human-readable rendering.
  void PrintPretty(std::ostream& os) const;
  // RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void PrintCsv(std::ostream& os) const;

  static std::string Format(const std::string& s) { return s; }
  static std::string Format(const char* s) { return s; }
  static std::string Format(double v);
  static std::string Format(int v) { return std::to_string(v); }
  static std::string Format(long v) { return std::to_string(v); }
  static std::string Format(long long v) { return std::to_string(v); }
  static std::string Format(unsigned v) { return std::to_string(v); }
  static std::string Format(unsigned long v) { return std::to_string(v); }
  static std::string Format(unsigned long long v) { return std::to_string(v); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace specsync
