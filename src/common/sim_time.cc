#include "common/sim_time.h"

namespace specsync {

std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.seconds() << "s";
}

std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << "t=" << t.seconds() << "s";
}

}  // namespace specsync
