// Fixed-size thread pool.
//
// A FIFO task queue drained by a fixed set of worker threads. The pool makes
// no ordering promise beyond FIFO *dispatch*; completion order depends on the
// scheduler. Callers that need deterministic results therefore make tasks
// independent and have each write to a pre-assigned output slot (see
// harness/parallel_runner), so the result layout is fixed before any thread
// runs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace specsync {

class ThreadPool {
 public:
  // Spawns exactly `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  // Waits for queued tasks to drain, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished running.
  void Wait();

  std::size_t num_threads() const { return threads_.size(); }

  // Host hardware concurrency, clamped to >= 1.
  static std::size_t DefaultThreadCount();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: queue non-empty or shutdown
  std::condition_variable idle_cv_;  // Wait(): all tasks finished
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + currently running
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

// Runs fn(0) .. fn(n-1) across the pool and blocks until all complete.
void ParallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

}  // namespace specsync
