// Identifier types shared across the library.
#pragma once

#include <cstdint>

namespace specsync {

// Index of a worker node in [0, m).
using WorkerId = std::uint32_t;

// Index of a parameter-server shard.
using ServerId = std::uint32_t;

// Monotone per-worker iteration counter (a worker's t-th push finishes its
// t-th iteration; paper Sec. II-B).
using IterationId = std::uint64_t;

// Global epoch counter: epoch e ends once every worker has pushed at least
// once since e began.
using EpochId = std::uint64_t;

// Parameter key (one key identifies one shard-resident parameter block).
using ParamKey = std::uint64_t;

inline constexpr WorkerId kInvalidWorker = static_cast<WorkerId>(-1);

}  // namespace specsync
