#include "ps/consistency.h"

#include <algorithm>

#include "common/check.h"

namespace specsync {

SspController::SspController(std::size_t num_workers, std::uint64_t staleness)
    : ConsistencyController(num_workers),
      staleness_(staleness),
      completed_(num_workers, 0) {
  SPECSYNC_CHECK_GT(num_workers, 0u);
}

std::string SspController::name() const {
  return "SSP(s=" + std::to_string(staleness_) + ")";
}

std::uint64_t SspController::MinProgress() const {
  return *std::min_element(completed_.begin(), completed_.end());
}

bool SspController::MayStart(WorkerId worker,
                             IterationId next_iteration) const {
  SPECSYNC_CHECK_LT(worker, completed_.size());
  // Worker wants to *start* iteration `next_iteration` (0-based). Under a
  // staleness bound s it may run at most s iterations ahead of the slowest
  // worker: allowed iff next_iteration <= MinProgress() + s.
  return next_iteration <= MinProgress() + staleness_;
}

void SspController::OnPush(WorkerId worker, IterationId iteration) {
  SPECSYNC_CHECK_LT(worker, completed_.size());
  // Iterations complete in order per worker.
  SPECSYNC_CHECK_EQ(completed_[worker], iteration)
      << "worker " << worker << " pushed iteration " << iteration
      << " but has completed " << completed_[worker];
  completed_[worker] = iteration + 1;
}

std::unique_ptr<ConsistencyController> MakeAsp(std::size_t num_workers) {
  return std::make_unique<AspController>(num_workers);
}
std::unique_ptr<ConsistencyController> MakeBsp(std::size_t num_workers) {
  return std::make_unique<BspController>(num_workers);
}
std::unique_ptr<ConsistencyController> MakeSsp(std::size_t num_workers,
                                               std::uint64_t staleness) {
  return std::make_unique<SspController>(num_workers, staleness);
}

}  // namespace specsync
