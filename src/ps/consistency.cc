#include "ps/consistency.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/audit_log.h"

namespace specsync {

SspController::SspController(std::size_t num_workers, std::uint64_t staleness)
    : ConsistencyController(num_workers),
      staleness_(staleness),
      completed_(num_workers, 0) {
  SPECSYNC_CHECK_GT(num_workers, 0u);
}

std::string SspController::name() const {
  return "SSP(s=" + std::to_string(staleness_) + ")";
}

std::uint64_t SspController::MinProgress() const {
  return *std::min_element(completed_.begin(), completed_.end());
}

bool SspController::MayStart(WorkerId worker,
                             IterationId next_iteration) const {
  SPECSYNC_CHECK_LT(worker, completed_.size());
  // See the header table: a worker may start iteration t (0-based) iff
  // t <= MinProgress() + s — every worker has finished iteration t - s - 1.
  return next_iteration <= MinProgress() + staleness_;
}

void SspController::OnPush(WorkerId worker, IterationId iteration) {
  SPECSYNC_CHECK_LT(worker, completed_.size());
  // Iterations complete in order per worker.
  SPECSYNC_CHECK_EQ(completed_[worker], iteration)
      << "worker " << worker << " pushed iteration " << iteration
      << " but has completed " << completed_[worker];
  completed_[worker] = iteration + 1;
}

// --- PerShardSspController ---------------------------------------------------

PerShardSspController::PerShardSspController(std::size_t num_workers,
                                             std::size_t num_shards,
                                             std::uint64_t staleness)
    : ConsistencyController(num_workers),
      staleness_(staleness),
      num_shards_(num_shards),
      completed_(num_workers, 0),
      clock_(num_workers, std::vector<std::uint64_t>(num_shards, 0)),
      writes_(num_workers, std::vector<char>(num_shards, 0)),
      write_set_frozen_(num_workers, 0),
      live_(num_workers, 1) {
  SPECSYNC_CHECK_GT(num_workers, 0u);
  SPECSYNC_CHECK_GT(num_shards, 0u);
}

std::string PerShardSspController::name() const {
  return "PSSP(s=" + std::to_string(staleness_) +
         ",shards=" + std::to_string(num_shards_) + ")";
}

void PerShardSspController::SetWriteSet(
    WorkerId worker, const std::vector<std::size_t>& shards) {
  SPECSYNC_CHECK_LT(worker, num_workers_);
  write_set_frozen_[worker] = 1;
  std::fill(writes_[worker].begin(), writes_[worker].end(), char{0});
  for (std::size_t s : shards) {
    SPECSYNC_CHECK_LT(s, num_shards_);
    writes_[worker][s] = 1;
    clock_[worker][s] = completed_[worker];
  }
}

std::optional<std::uint64_t> PerShardSspController::MinShardClock(
    std::size_t shard) const {
  SPECSYNC_CHECK_LT(shard, num_shards_);
  std::optional<std::uint64_t> min_clock;
  for (WorkerId w = 0; w < num_workers_; ++w) {
    if (!live_[w] || !writes_[w][shard]) continue;
    const std::uint64_t c = clock_[w][shard];
    min_clock = min_clock.has_value() ? std::min(*min_clock, c) : c;
  }
  return min_clock;
}

bool PerShardSspController::MayStart(WorkerId worker,
                                     IterationId next_iteration) const {
  return !FirstBlockingShard(worker, next_iteration).has_value();
}

std::optional<std::size_t> PerShardSspController::FirstBlockingShard(
    WorkerId worker, IterationId next_iteration) const {
  SPECSYNC_CHECK_LT(worker, num_workers_);
  for (std::size_t s = 0; s < num_shards_; ++s) {
    if (!writes_[worker][s]) continue;
    const std::optional<std::uint64_t> min_clock = MinShardClock(s);
    if (!min_clock.has_value()) continue;  // no live writer gates nobody
    if (next_iteration > *min_clock + staleness_) return s;
  }
  return std::nullopt;
}

void PerShardSspController::AdvanceClocks(
    WorkerId worker, std::span<const std::size_t> touched_shards,
    IterationId iteration) {
  SPECSYNC_CHECK_LT(worker, num_workers_);
  SPECSYNC_CHECK_EQ(completed_[worker], iteration)
      << "worker " << worker << " pushed iteration " << iteration
      << " but has completed " << completed_[worker];
  if (!write_set_frozen_[worker]) {
    if (touched_shards.empty()) {
      // No routing information: the push is assumed dense (touches all).
      std::fill(writes_[worker].begin(), writes_[worker].end(), char{1});
    } else {
      for (std::size_t s : touched_shards) {
        SPECSYNC_CHECK_LT(s, num_shards_);
        writes_[worker][s] = 1;
      }
    }
  }
  completed_[worker] = iteration + 1;
  // A finished iteration is finished on every shard the worker owns-writes;
  // see the header note on why partial advancement breaks liveness.
  for (std::size_t s = 0; s < num_shards_; ++s) {
    if (writes_[worker][s]) clock_[worker][s] = completed_[worker];
  }
}

void PerShardSspController::OnPush(WorkerId worker, IterationId iteration) {
  AdvanceClocks(worker, {}, iteration);
}

void PerShardSspController::OnPushAt(WorkerId worker, IterationId iteration,
                                     SimTime now,
                                     std::span<const std::size_t> touched) {
  (void)now;
  AdvanceClocks(worker, touched, iteration);
}

void PerShardSspController::OnWorkerDown(WorkerId worker) {
  SPECSYNC_CHECK_LT(worker, num_workers_);
  live_[worker] = 0;
}

void PerShardSspController::OnWorkerUp(WorkerId worker) {
  SPECSYNC_CHECK_LT(worker, num_workers_);
  live_[worker] = 1;
}

std::uint64_t PerShardSspController::completed(WorkerId worker) const {
  SPECSYNC_CHECK_LT(worker, num_workers_);
  return completed_[worker];
}

std::uint64_t PerShardSspController::clock(WorkerId worker,
                                           std::size_t shard) const {
  SPECSYNC_CHECK_LT(worker, num_workers_);
  SPECSYNC_CHECK_LT(shard, num_shards_);
  return clock_[worker][shard];
}

bool PerShardSspController::writes(WorkerId worker, std::size_t shard) const {
  SPECSYNC_CHECK_LT(worker, num_workers_);
  SPECSYNC_CHECK_LT(shard, num_shards_);
  return writes_[worker][shard] != 0;
}

bool PerShardSspController::live(WorkerId worker) const {
  SPECSYNC_CHECK_LT(worker, num_workers_);
  return live_[worker] != 0;
}

// --- DynamicSspController ----------------------------------------------------

DynamicSspController::DynamicSspController(std::size_t num_workers,
                                           std::size_t num_shards,
                                           DynamicSspConfig config)
    : PerShardSspController(num_workers, num_shards,
                            config.initial_staleness),
      config_(config),
      last_push_(num_workers),
      interval_sum_(num_workers, Duration::Zero()),
      interval_count_(num_workers, 0) {
  SPECSYNC_CHECK_LE(config_.min_staleness, config_.max_staleness);
  SPECSYNC_CHECK_GE(config_.initial_staleness, config_.min_staleness);
  SPECSYNC_CHECK_LE(config_.initial_staleness, config_.max_staleness);
  SPECSYNC_CHECK_GT(config_.ewma, 0.0);
  SPECSYNC_CHECK_LE(config_.ewma, 1.0);
  SPECSYNC_CHECK_GT(config_.headroom, 0.0);
}

std::string DynamicSspController::name() const {
  return "DSSP(s=" + std::to_string(staleness()) +
         ",shards=" + std::to_string(num_shards()) + ")";
}

void DynamicSspController::OnPushAt(WorkerId worker, IterationId iteration,
                                    SimTime now,
                                    std::span<const std::size_t> touched) {
  if (last_push_[worker].has_value()) {
    interval_sum_[worker] += now - *last_push_[worker];
    ++interval_count_[worker];
  }
  last_push_[worker] = now;
  ++window_pushes_;
  PerShardSspController::OnPushAt(worker, iteration, now, touched);
  MaybeRetune(now);
}

void DynamicSspController::MaybeRetune(SimTime now) {
  // One evaluation per epoch: the slowest live worker must have advanced a
  // full iteration since the last retune check.
  std::optional<std::uint64_t> min_live;
  for (WorkerId w = 0; w < num_workers_; ++w) {
    if (!live(w)) continue;
    const std::uint64_t c = completed(w);
    min_live = min_live.has_value() ? std::min(*min_live, c) : c;
  }
  if (!min_live.has_value() || *min_live < last_retune_progress_ + 1) return;
  last_retune_progress_ = *min_live;

  // Mean push inter-arrival per live worker with at least one interval.
  double fastest = 0.0, slowest = 0.0;
  std::size_t measured = 0;
  for (WorkerId w = 0; w < num_workers_; ++w) {
    if (!live(w) || interval_count_[w] == 0) continue;
    const double mean = interval_sum_[w].seconds() /
                        static_cast<double>(interval_count_[w]);
    if (mean <= 0.0) continue;
    if (measured == 0 || mean < fastest) fastest = mean;
    if (measured == 0 || mean > slowest) slowest = mean;
    ++measured;
  }
  const std::uint64_t epoch_pushes = window_pushes_;
  window_pushes_ = 0;
  for (WorkerId w = 0; w < num_workers_; ++w) {
    interval_sum_[w] = Duration::Zero();
    interval_count_[w] = 0;
  }
  if (measured < 2 || fastest <= 0.0) return;

  const double ratio = slowest / fastest;
  smoothed_ratio_ = smoothed_ratio_ == 0.0
                        ? ratio
                        : config_.ewma * ratio +
                              (1.0 - config_.ewma) * smoothed_ratio_;

  const double raw = config_.headroom * (smoothed_ratio_ - 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::max(0.0, std::ceil(raw - 1e-9)));
  const std::uint64_t bound =
      std::clamp(target, config_.min_staleness, config_.max_staleness);
  if (bound == staleness()) return;

  SetStalenessBound(bound);
  ++retunes_;
  if (audit_ != nullptr) {
    obs::RetuneRecord record;
    record.kind = obs::RetuneKind::kStaleness;
    record.epoch = *min_live;
    record.at = now;
    record.staleness = bound;
    record.straggler_ratio = smoothed_ratio_;
    record.epoch_pushes = epoch_pushes;
    audit_->RecordRetune(record);
  }
}

// --- factories ---------------------------------------------------------------

std::unique_ptr<ConsistencyController> MakeAsp(std::size_t num_workers) {
  return std::make_unique<AspController>(num_workers);
}
std::unique_ptr<ConsistencyController> MakeBsp(std::size_t num_workers) {
  return std::make_unique<BspController>(num_workers);
}
std::unique_ptr<ConsistencyController> MakeSsp(std::size_t num_workers,
                                               std::uint64_t staleness) {
  return std::make_unique<SspController>(num_workers, staleness);
}
std::unique_ptr<ConsistencyController> MakePerShardSsp(
    std::size_t num_workers, std::size_t num_shards, std::uint64_t staleness) {
  return std::make_unique<PerShardSspController>(num_workers, num_shards,
                                                 staleness);
}
std::unique_ptr<ConsistencyController> MakeDynamicSsp(
    std::size_t num_workers, std::size_t num_shards, DynamicSspConfig config) {
  return std::make_unique<DynamicSspController>(num_workers, num_shards,
                                                config);
}

}  // namespace specsync
