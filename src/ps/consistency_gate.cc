#include "ps/consistency_gate.h"

#include <chrono>
#include <utility>

#include "common/check.h"

namespace specsync {

ConsistencyGate::ConsistencyGate(
    std::unique_ptr<ConsistencyController> controller)
    : controller_(std::move(controller)) {
  SPECSYNC_CHECK(controller_ != nullptr);
}

bool ConsistencyGate::WaitToStart(WorkerId worker,
                                  IterationId next_iteration) {
  std::unique_lock lock(mutex_);
  if (shutdown_) return false;
  // MayStartAt's time argument never feeds a gating decision (bounds are
  // count-based; DSSP reads time only on pushes), so a blocked wait needs no
  // clock re-reads.
  if (controller_->MayStartAt(worker, next_iteration, SimTime::Zero())) {
    return true;
  }
  ++blocks_;
  const auto block_begin = std::chrono::steady_clock::now();
  admitted_.wait(lock, [&] {
    return shutdown_ ||
           controller_->MayStartAt(worker, next_iteration, SimTime::Zero());
  });
  blocked_wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    block_begin)
          .count();
  return !shutdown_;
}

void ConsistencyGate::OnPush(WorkerId worker, IterationId iteration,
                             SimTime now,
                             std::span<const std::size_t> touched_shards) {
  {
    std::scoped_lock lock(mutex_);
    controller_->OnPushAt(worker, iteration, now, touched_shards);
  }
  admitted_.notify_all();
}

void ConsistencyGate::OnWorkerDown(WorkerId worker) {
  {
    std::scoped_lock lock(mutex_);
    controller_->OnWorkerDown(worker);
  }
  admitted_.notify_all();
}

void ConsistencyGate::OnWorkerUp(WorkerId worker) {
  {
    std::scoped_lock lock(mutex_);
    controller_->OnWorkerUp(worker);
  }
  admitted_.notify_all();
}

void ConsistencyGate::Shutdown() {
  {
    std::scoped_lock lock(mutex_);
    shutdown_ = true;
  }
  admitted_.notify_all();
}

std::uint64_t ConsistencyGate::blocks() const {
  std::scoped_lock lock(mutex_);
  return blocks_;
}

double ConsistencyGate::blocked_wall_seconds() const {
  std::scoped_lock lock(mutex_);
  return blocked_wall_seconds_;
}

}  // namespace specsync
