// Sharded, versioned parameter store — the server side of the PS architecture
// (paper Fig. 1).
//
// The canonical model parameters live here as one flat vector partitioned
// into contiguous shards, each shard standing for one server process with its
// *own* mutex and version counter. Workers Pull() composed snapshots (or
// PullShard() individual shards) and Push() gradients; the store applies
// pushes through an SgdApplier exactly like MXNet's KVStore server-side
// updater. Sparse pushes route only to the shards that own their indices;
// dense pushes update every shard. A monotone global counter tracks logical
// pushes — the freshness bookkeeping that SpecSync reasons about.
//
// Consistency: each shard is internally consistent (its mutex covers both the
// slice and its version), but a composed Pull() locks shards one at a time,
// so under concurrent pushes the cross-shard snapshot may be torn — shard j
// may reflect a push that shard i's slice predates. This mirrors a real
// multi-server PS, where workers assemble their view from independent server
// responses; the staleness machinery already tolerates (and measures) it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "models/model.h"
#include "optim/sgd.h"

namespace specsync {

class ThreadPool;

namespace obs {
class LatencyHistogram;
class MetricsRegistry;
}  // namespace obs

struct PullResult {
  DenseVector params;
  // Number of pushes committed before this snapshot was taken. (In the
  // threaded runtime a push committing concurrently with the pull may or may
  // not be counted — the version is sampled once, after the shard copies.)
  std::uint64_t version = 0;
};

struct ShardInfo {
  std::size_t offset = 0;
  std::size_t length = 0;
  std::uint64_t version = 0;  // pushes that touched this shard
};

// One shard's snapshot: the slice [offset, offset + params.size()) of the
// full parameter vector.
struct ShardPullResult {
  std::size_t offset = 0;
  DenseVector params;
  std::uint64_t shard_version = 0;  // pushes that touched this shard
  std::uint64_t version = 0;        // global logical-push counter
};

class ParameterServer {
 public:
  // Splits `dim` parameters into `num_shards` near-equal contiguous shards.
  ParameterServer(std::size_t dim, std::size_t num_shards,
                  std::shared_ptr<const SgdApplier> applier);

  // The canonical contiguous near-equal split: element s is shard s's
  // (offset, length). The constructor, the wire transport's endpoint tables
  // (src/net), and multi-process harnesses all share this one definition of
  // the layout, so they can agree on shard boundaries without a handshake.
  static std::vector<std::pair<std::size_t, std::size_t>> ShardSplit(
      std::size_t dim, std::size_t num_shards);

  // Attaches latency instrumentation (src/obs): whole-operation histograms
  // "ps.pull_s" / "ps.push_s", pool fan-out queue wait "ps.pull_queue_wait_s",
  // and per-shard lock contention "ps.shard<k>.lock_wait_s" /
  // "ps.shard<k>.lock_hold_s". Resolve-once: the hot paths pay a null check
  // when detached and two clock reads per timed section when attached.
  // Attach before concurrent use; null detaches.
  void AttachMetrics(obs::MetricsRegistry* metrics);

  // Writes the model's initialization into the store (version stays 0).
  void Initialize(const Model& model, Rng& rng);
  // Directly sets the parameters (tests, warm starts).
  void SetParams(DenseVector params);

  // Composed snapshot of the full parameter vector plus the global version.
  // When `pool` is non-null the per-shard copies fan out across it (the
  // runtime's concurrent pull path); shards write disjoint slices of the
  // result. See the header note on torn cross-shard snapshots.
  PullResult Pull(ThreadPool* pool = nullptr) const;

  // Allocation-free Pull: fills `result` in place, reusing its params buffer
  // when already sized (the sim's per-worker snapshot buffers pull thousands
  // of times; this removes a dim-sized allocation + free per pull).
  void PullInto(PullResult* result, ThreadPool* pool = nullptr) const;

  // Snapshot of one shard (internally consistent: slice + shard version are
  // read under the shard's mutex).
  ShardPullResult PullShard(std::size_t s) const;

  // Allocation-free single-shard refresh: copies shard `s`'s slice into
  // `dest` (which must be exactly the shard's length) and returns the shard
  // version read under the same lock. Delta-mode pulls use this to refresh
  // only the shards whose version advanced.
  std::uint64_t PullShardSlice(std::size_t s, std::span<double> dest) const;

  // Applies one worker's gradient with the learning rate of `epoch`; returns
  // the new global version. Routes to dirty shards only: sparse gradients
  // touch just the shards owning their indices, dense gradients touch all.
  // Equivalent to PushShard on every routed shard followed by CommitPush.
  std::uint64_t Push(const Gradient& grad, EpochId epoch);

  // Applies only shard `s`'s slice of `grad` (the sim's per-shard push
  // messages land here, each at its own arrival time). Bumps the shard
  // version iff the slice was non-empty; never bumps the global version.
  // Returns whether the slice touched the shard.
  bool PushShard(std::size_t s, const Gradient& grad, EpochId epoch);

  // Wire-path variant of PushShard for dense gradients: `slice` is already
  // cut to shard `s` (slice.size() must equal the shard's length — a
  // PushShardReq ships only the shard's slice, never the full vector).
  // Same version semantics as PushShard.
  bool PushShardDenseSlice(std::size_t s, std::span<const double> slice,
                           EpochId epoch);

  // Completes a logical push whose slices were applied via PushShard: bumps
  // and returns the global version. A network-duplicated slice re-applied
  // without a commit is intentionally not a new logical push.
  std::uint64_t CommitPush();

  // Global logical-push counter (monotone; equals the number of Push calls
  // plus explicit CommitPush calls, independent of how many shards each
  // touched).
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }
  std::size_t dim() const { return dim_; }
  std::size_t num_shards() const { return shards_.size(); }
  ShardInfo shard(std::size_t s) const;

  // Shard owning parameter `index` (offsets are immutable; lock-free).
  std::size_t ShardOf(std::size_t index) const;

  // Bytes a full pull moves over the wire (8 bytes per parameter).
  std::size_t pull_bytes() const { return dim_ * sizeof(double); }
  // Bytes the per-shard pull response for shard `s` carries.
  std::size_t shard_bytes(std::size_t s) const;

  // Wire routing of one push: the shards `grad` touches and the bytes each
  // per-shard message carries (dense: every shard, slice bytes; sparse:
  // owning shards, 16 bytes per entry). An empty gradient routes one empty
  // message to shard 0 so a push is never silently message-free.
  struct ShardRoute {
    std::size_t shard = 0;
    std::size_t bytes = 0;
  };
  std::vector<ShardRoute> RouteGradient(const Gradient& grad) const;

  // Copy of current parameters for evaluation (same as Pull().params).
  DenseVector Snapshot() const { return Pull().params; }

 private:
  struct Shard {
    std::size_t offset = 0;
    std::size_t length = 0;
    mutable std::mutex mutex;
    std::uint64_t version = 0;  // guarded by mutex
    // Contention instruments (null = off); set once by AttachMetrics.
    obs::LatencyHistogram* lock_wait = nullptr;
    obs::LatencyHistogram* lock_hold = nullptr;
  };

  const std::size_t dim_;
  std::shared_ptr<const SgdApplier> applier_;
  // Shards guard disjoint slices of this flat vector; the vector itself is
  // sized at construction and never reallocated.
  DenseVector params_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> version_{0};

  // Whole-operation instruments (null = off); set once by AttachMetrics.
  obs::LatencyHistogram* pull_hist_ = nullptr;
  obs::LatencyHistogram* push_hist_ = nullptr;
  obs::LatencyHistogram* queue_wait_hist_ = nullptr;
};

}  // namespace specsync
