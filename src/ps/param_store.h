// Sharded, versioned parameter store — the server side of the PS architecture
// (paper Fig. 1).
//
// The canonical model parameters live here as one flat vector partitioned
// into contiguous shards (each shard standing for one server process). Workers
// Pull() snapshots and Push() gradients; the store applies pushes through an
// SgdApplier exactly like MXNet's KVStore server-side updater. Every push
// bumps a global version — the freshness bookkeeping that SpecSync reasons
// about. Thread-safe: the threaded runtime shares one store across nodes.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "models/model.h"
#include "optim/sgd.h"

namespace specsync {

struct PullResult {
  DenseVector params;
  // Number of pushes applied before this snapshot was taken.
  std::uint64_t version = 0;
};

struct ShardInfo {
  std::size_t offset = 0;
  std::size_t length = 0;
  std::uint64_t version = 0;  // pushes that touched this shard
};

class ParameterServer {
 public:
  // Splits `dim` parameters into `num_shards` near-equal contiguous shards.
  ParameterServer(std::size_t dim, std::size_t num_shards,
                  std::shared_ptr<const SgdApplier> applier);

  // Writes the model's initialization into the store (version stays 0).
  void Initialize(const Model& model, Rng& rng);
  // Directly sets the parameters (tests, warm starts).
  void SetParams(DenseVector params);

  // Snapshot of the full parameter vector plus its version.
  PullResult Pull() const;

  // Applies one worker's gradient with the learning rate of `epoch`;
  // returns the new global version. Sparse gradients touch only the shards
  // their indices fall into.
  std::uint64_t Push(const Gradient& grad, EpochId epoch);

  std::uint64_t version() const;
  std::size_t dim() const { return dim_; }
  std::size_t num_shards() const { return shards_.size(); }
  ShardInfo shard(std::size_t s) const;

  // Bytes a full pull moves over the wire (8 bytes per parameter).
  std::size_t pull_bytes() const { return dim_ * sizeof(double); }

  // Copy of current parameters for evaluation (same as Pull().params).
  DenseVector Snapshot() const { return Pull().params; }

 private:
  std::size_t ShardOf(std::size_t index) const;

  const std::size_t dim_;
  std::shared_ptr<const SgdApplier> applier_;
  mutable std::mutex mutex_;
  DenseVector params_;
  std::vector<ShardInfo> shards_;
  std::uint64_t version_ = 0;
};

}  // namespace specsync
