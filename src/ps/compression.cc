#include "ps/compression.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/check.h"

namespace specsync {

namespace {

// Parses a full-string double; rejects empty / trailing junk / non-finite.
std::optional<double> ParseDouble(std::string_view text) {
  double value = 0.0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end || !std::isfinite(value)) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

const char* CodecKindName(CodecKind kind) {
  switch (kind) {
    case CodecKind::kNone:
      return "none";
    case CodecKind::kTopK:
      return "topk";
    case CodecKind::kInt8:
      return "int8";
    case CodecKind::kFp16:
      return "fp16";
    case CodecKind::kDelta:
      return "delta";
  }
  return "unknown";
}

std::optional<CompressionSpec> CompressionSpec::Parse(std::string_view text) {
  CompressionSpec spec;
  if (text == "none") return spec;
  if (text == "int8") {
    spec.kind = CodecKind::kInt8;
    return spec;
  }
  if (text == "fp16") {
    spec.kind = CodecKind::kFp16;
    return spec;
  }
  if (text == "delta") {
    spec.kind = CodecKind::kDelta;
    return spec;
  }
  if (text == "topk") {
    spec.kind = CodecKind::kTopK;
    return spec;
  }
  constexpr std::string_view kTopkPrefix = "topk:";
  if (text.substr(0, kTopkPrefix.size()) == kTopkPrefix) {
    std::string_view arg = text.substr(kTopkPrefix.size());
    const bool percent = !arg.empty() && arg.back() == '%';
    if (percent) arg.remove_suffix(1);
    const std::optional<double> parsed = ParseDouble(arg);
    if (!parsed.has_value()) return std::nullopt;
    const double fraction = percent ? *parsed / 100.0 : *parsed;
    if (!(fraction > 0.0 && fraction <= 1.0)) return std::nullopt;
    spec.kind = CodecKind::kTopK;
    spec.topk_fraction = fraction;
    return spec;
  }
  return std::nullopt;
}

std::string CompressionSpec::Label() const {
  if (kind != CodecKind::kTopK) return CodecKindName(kind);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "topk:%g", topk_fraction);
  return buf;
}

double Int8ScaleFor(std::span<const double> values) {
  double max_abs = 0.0;
  for (const double v : values) max_abs = std::max(max_abs, std::fabs(v));
  if (max_abs == 0.0) return 0.0;
  const double ratio = max_abs / 127.0;
  int exp = 0;
  const double mantissa = std::frexp(ratio, &exp);  // ratio = m * 2^exp
  // Smallest power of two >= ratio: 2^(exp-1) when ratio is itself a power
  // of two (m == 0.5), else 2^exp.
  return std::ldexp(1.0, mantissa == 0.5 ? exp - 1 : exp);
}

std::int8_t QuantizeInt8(double value, double scale) {
  if (scale == 0.0) return 0;
  const long long q = std::llround(value / scale);
  return static_cast<std::int8_t>(std::clamp(q, -127LL, 127LL));
}

std::uint16_t EncodeFp16(double value) {
  const float f = static_cast<float>(value);
  std::uint32_t bits = 0;
  std::memcpy(&bits, &f, sizeof(bits));
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  const std::uint32_t exp = (bits >> 23) & 0xffu;
  std::uint32_t mant = bits & 0x7fffffu;
  if (exp == 0xffu) {  // inf / nan
    return static_cast<std::uint16_t>(sign | 0x7c00u | (mant != 0 ? 0x200u : 0u));
  }
  const int half_exp = static_cast<int>(exp) - 127 + 15;
  if (half_exp >= 0x1f) {  // overflow -> signed infinity
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (half_exp <= 0) {  // half denormal (or zero)
    if (half_exp < -10 || exp == 0) {  // underflow to signed zero
      return static_cast<std::uint16_t>(sign);
    }
    mant |= 0x800000u;  // restore the implicit leading 1
    const int shift = 14 - half_exp;  // in [14, 24]
    std::uint32_t half_mant = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1u) != 0)) {
      ++half_mant;  // a carry out of the mantissa lands in exponent 1: correct
    }
    return static_cast<std::uint16_t>(sign | half_mant);
  }
  std::uint32_t half = sign | (static_cast<std::uint32_t>(half_exp) << 10) |
                       (mant >> 13);
  const std::uint32_t rem = mant & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u) != 0)) {
    ++half;  // carry may roll into the exponent, 0x7c00 (inf) included: correct
  }
  return static_cast<std::uint16_t>(half);
}

double DecodeFp16(std::uint16_t half) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(half) & 0x8000u) << 16;
  const std::uint32_t exp = (half >> 10) & 0x1fu;
  const std::uint32_t mant = half & 0x3ffu;
  std::uint32_t bits = 0;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;  // signed zero
    } else {
      // Denormal half: value = mant * 2^-24. Normalize into a float.
      std::uint32_t m = mant;
      int shift = 0;
      while ((m & 0x400u) == 0) {
        m <<= 1;
        ++shift;
      }
      bits = sign | (static_cast<std::uint32_t>(113 - shift) << 23) |
             ((m & 0x3ffu) << 13);
    }
  } else if (exp == 0x1f) {
    bits = sign | 0x7f800000u | (mant << 13);
  } else {
    bits = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float f = 0.0f;
  std::memcpy(&f, &bits, sizeof(f));
  return static_cast<double>(f);
}

std::uint64_t CodedRouteBytes(CodecKind kind, bool sparse,
                              std::uint64_t raw_bytes) {
  if (raw_bytes == 0) return 0;
  switch (kind) {
    case CodecKind::kInt8:
      // sparse: 8 B index + 1 B value per entry; dense: 1 B per value.
      // Either way one 8 B scale per message.
      return (sparse ? (raw_bytes / 16) * 9 : raw_bytes / 8) + 8;
    case CodecKind::kFp16:
      return sparse ? (raw_bytes / 16) * 10 : raw_bytes / 4;
    case CodecKind::kNone:
    case CodecKind::kTopK:
    case CodecKind::kDelta:
      return raw_bytes;
  }
  return raw_bytes;
}

GradientCodec::GradientCodec(
    CompressionSpec spec, std::size_t num_workers,
    std::vector<std::pair<std::size_t, std::size_t>> shard_split)
    : spec_(spec), residuals_(num_workers), supports_(num_workers) {
  SPECSYNC_CHECK(!shard_split.empty());
  shard_offsets_.reserve(shard_split.size());
  shard_lengths_.reserve(shard_split.size());
  for (const auto& [offset, length] : shard_split) {
    shard_offsets_.push_back(offset);
    shard_lengths_.push_back(length);
    param_dim_ = std::max(param_dim_, offset + length);
  }
}

std::size_t GradientCodec::ShardOfIndex(std::size_t index) const {
  // Shards are contiguous ascending slices: the owning shard is the last
  // offset <= index.
  const auto it = std::upper_bound(shard_offsets_.begin(),
                                   shard_offsets_.end(), index);
  SPECSYNC_CHECK(it != shard_offsets_.begin());
  return static_cast<std::size_t>(it - shard_offsets_.begin()) - 1;
}

void GradientCodec::Transform(WorkerId worker, Gradient& grad) {
  switch (spec_.kind) {
    case CodecKind::kNone:
    case CodecKind::kDelta:
      return;
    case CodecKind::kTopK:
      TransformTopK(worker, grad);
      return;
    case CodecKind::kInt8:
    case CodecKind::kFp16:
      QuantizeInPlace(grad);
      return;
  }
}

std::span<const double> GradientCodec::residual(WorkerId worker) const {
  SPECSYNC_CHECK_LT(worker, residuals_.size());
  return residuals_[worker];
}

void GradientCodec::TransformTopK(WorkerId worker, Gradient& grad) {
  SPECSYNC_CHECK_LT(worker, residuals_.size());
  std::vector<double>& residual = residuals_[worker];
  if (residual.empty()) residual.assign(param_dim_, 0.0);
  std::vector<std::size_t>& support = supports_[worker];

  // Fold the input into the residual; `support` becomes the union of the old
  // residual support and the input support.
  std::size_t input_support = 0;
  if (grad.is_sparse()) {
    grad.sparse().Coalesce();
    const auto indices = grad.sparse().indices();
    const auto values = grad.sparse().values();
    input_support = indices.size();
    for (std::size_t i = 0; i < indices.size(); ++i) {
      SPECSYNC_CHECK_LT(indices[i], param_dim_);
      residual[indices[i]] += values[i];
      support.push_back(static_cast<std::size_t>(indices[i]));
    }
    std::sort(support.begin(), support.end());
    support.erase(std::unique(support.begin(), support.end()), support.end());
  } else {
    SPECSYNC_CHECK_EQ(grad.dense().size(), param_dim_);
    input_support = param_dim_;
    for (std::size_t i = 0; i < param_dim_; ++i) {
      residual[i] += grad.dense()[i];
    }
    support.clear();
    for (std::size_t i = 0; i < param_dim_; ++i) {
      if (residual[i] != 0.0) support.push_back(i);
    }
  }

  // Candidates: coordinates with a nonzero accumulated value (the threshold
  // part of "top-k + threshold": exact zeros never compete or linger).
  std::vector<std::size_t> candidates;
  candidates.reserve(support.size());
  for (const std::size_t idx : support) {
    if (residual[idx] != 0.0) candidates.push_back(idx);
  }

  // k is pegged to the *input* support (see CompressionSpec::topk_fraction).
  const auto k = static_cast<std::size_t>(std::max<long long>(
      1, std::llround(spec_.topk_fraction *
                      static_cast<double>(input_support))));
  const std::size_t selected = std::min(k, candidates.size());
  if (candidates.size() > selected) {
    const auto better = [&](std::size_t a, std::size_t b) {
      const double ma = std::fabs(residual[a]);
      const double mb = std::fabs(residual[b]);
      if (ma != mb) return ma > mb;
      return a < b;  // deterministic tie-break
    };
    std::nth_element(candidates.begin(),
                     candidates.begin() + static_cast<std::ptrdiff_t>(selected),
                     candidates.end(), better);
  }

  // Emit the winners (index-sorted, canonical), zero their residual slots;
  // the losers *are* the new residual support.
  std::vector<std::size_t> winners(
      candidates.begin(),
      candidates.begin() + static_cast<std::ptrdiff_t>(selected));
  std::sort(winners.begin(), winners.end());
  Gradient out = Gradient::Sparse();
  out.sparse().Reserve(winners.size());
  for (const std::size_t idx : winners) {
    out.sparse().Add(idx, residual[idx]);
    residual[idx] = 0.0;
  }
  support.assign(candidates.begin() + static_cast<std::ptrdiff_t>(selected),
                 candidates.end());
  std::sort(support.begin(), support.end());
  grad = std::move(out);
}

void GradientCodec::QuantizeInPlace(Gradient& grad) const {
  const bool int8 = spec_.kind == CodecKind::kInt8;
  if (grad.is_sparse()) {
    grad.sparse().Coalesce();
    const auto indices = grad.sparse().indices();
    const auto values = grad.sparse().mutable_values();
    if (int8) {
      // Per-shard scales over exactly the entries each PushShardReq ships.
      std::vector<double> max_abs(shard_offsets_.size(), 0.0);
      for (std::size_t i = 0; i < indices.size(); ++i) {
        const std::size_t s = ShardOfIndex(indices[i]);
        max_abs[s] = std::max(max_abs[s], std::fabs(values[i]));
      }
      std::vector<double> scales(shard_offsets_.size(), 0.0);
      for (std::size_t s = 0; s < scales.size(); ++s) {
        scales[s] = Int8ScaleFor(std::span<const double>(&max_abs[s], 1));
      }
      for (std::size_t i = 0; i < indices.size(); ++i) {
        const double scale = scales[ShardOfIndex(indices[i])];
        values[i] = DequantizeInt8(QuantizeInt8(values[i], scale), scale);
      }
    } else {
      for (double& v : values) v = DecodeFp16(EncodeFp16(v));
    }
    return;
  }
  std::span<double> dense(grad.dense());
  for (std::size_t s = 0; s < shard_offsets_.size(); ++s) {
    const std::size_t begin = std::min(shard_offsets_[s], dense.size());
    const std::size_t length = std::min(shard_lengths_[s], dense.size() - begin);
    std::span<double> slice = dense.subspan(begin, length);
    if (int8) {
      const double scale = Int8ScaleFor(slice);
      for (double& v : slice) {
        v = DequantizeInt8(QuantizeInt8(v, scale), scale);
      }
    } else {
      for (double& v : slice) v = DecodeFp16(EncodeFp16(v));
    }
  }
}

}  // namespace specsync
