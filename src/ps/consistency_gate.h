// Thread-safe wrapper turning a ConsistencyController into a blocking gate.
//
// The controllers themselves are plain sequential state machines (the
// discrete-event simulator calls them from its single event loop). The
// threaded runtime needs the same decisions under real concurrency: worker
// threads block in WaitToStart until the controller admits their next
// iteration, and every OnPush / OnWorkerUp / OnWorkerDown wakes all waiters
// for a re-check (progress and membership changes are the only events that
// can turn a "no" into a "yes").
//
// Liveness mirrors the sequential argument (see PerShardSspController): the
// least-progressed live writer of any shard always passes its gate, so as
// long as departed workers are excused via OnWorkerDown, some thread can
// always run and every schedule drains. Shutdown() releases all waiters
// unconditionally for teardown paths that bypass the protocol (tests,
// emergency stops).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>

#include "ps/consistency.h"

namespace specsync {

class ConsistencyGate {
 public:
  explicit ConsistencyGate(std::unique_ptr<ConsistencyController> controller);

  // Blocks until the controller admits (worker, next_iteration) or the gate
  // shuts down; returns false only in the shutdown case.
  bool WaitToStart(WorkerId worker, IterationId next_iteration);

  // Records a finished iteration and wakes every blocked worker.
  void OnPush(WorkerId worker, IterationId iteration, SimTime now,
              std::span<const std::size_t> touched_shards);

  // Excuses / re-admits a worker and wakes waiters (a departure can unblock
  // peers that were gated on the corpse; a rejoin can block future starts
  // but never retroactively — admitted workers are not recalled).
  void OnWorkerDown(WorkerId worker);
  void OnWorkerUp(WorkerId worker);

  // Releases all waiters; subsequent WaitToStart calls return false.
  void Shutdown();

  // Aggregate blocking telemetry (guarded; callable concurrently).
  std::uint64_t blocks() const;
  double blocked_wall_seconds() const;

  // The wrapped controller. Unsynchronized reads of a live gate race with
  // writers — inspect only while no worker threads are running.
  const ConsistencyController& controller() const { return *controller_; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable admitted_;
  std::unique_ptr<ConsistencyController> controller_;
  bool shutdown_ = false;
  std::uint64_t blocks_ = 0;
  double blocked_wall_seconds_ = 0.0;
};

}  // namespace specsync
