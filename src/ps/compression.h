// Pluggable gradient compression for the sharded PS wire path.
//
// SpecSync's economics hinge on how cheap it is to move parameters after a
// speculative abort: shrinking bytes-on-wire shifts the optimal ABORT_TIME
// the paper tunes. This seam provides the standard PS-side toolkit (GeoMX
// ships the same three families): top-k sparsification with per-worker
// error-feedback residuals, low-precision quantization (int8 / fp16), and
// delta-encoded pulls that skip shards whose per-shard version has not
// advanced.
//
// Determinism contract (load-bearing — golden digests and the wire tests pin
// it):
//  - codec=none is the identity: no transform, no RNG, no allocation. Every
//    caller gates on `CompressionSpec::enabled()` so the uncompressed path is
//    byte-for-byte the pre-codec code path.
//  - Quantization is *idempotent*: Transform() maps a gradient onto exactly
//    the values the wire decoder would produce, so the in-process transport
//    and the TCP transport see bit-identical parameter streams. Int8 achieves
//    this with power-of-two scale selection (see Int8ScaleFor); fp16 because
//    every half value round-trips through double exactly.
//  - Quantization scales are chosen *per shard slice* (the unit a
//    PushShardReq carries), so the wire encoder can recompute the scale from
//    the slice it ships and land on the same bits.
//  - Top-k selection breaks magnitude ties by smaller index, so the selected
//    support is a pure function of the accumulated values.
//
// Error feedback (top-k): values that lose the top-k race are not dropped but
// accumulated into a per-worker dense residual and re-enter the race on the
// next push. The exact invariant, checked by compression_property_test:
//   residual_after + sent == residual_before + input   (per coordinate, in
// exact double arithmetic — values are moved, never recomputed).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "models/model.h"

namespace specsync {

enum class CodecKind : std::uint8_t {
  kNone = 0,
  kTopK = 1,  // top-k sparsification + error feedback (pushes)
  kInt8 = 2,  // 8-bit linear quantization, power-of-two scale (pushes)
  kFp16 = 3,  // IEEE half precision (pushes)
  kDelta = 4  // version-gated delta pulls (pulls; pushes untouched)
};

const char* CodecKindName(CodecKind kind);

// Parsed form of `--compression=none|topk:F|int8|fp16|delta`. `topk:F`
// accepts a fraction ("topk:0.01") or a percentage ("topk:1%"); bare "topk"
// means 1%.
struct CompressionSpec {
  CodecKind kind = CodecKind::kNone;
  // Fraction of the *input* support each push keeps (top-k only). k is
  // pegged to the input support — not the residual-augmented candidate set —
  // so a sparse push shrinks by ~1/fraction regardless of residual growth.
  double topk_fraction = 0.01;

  bool enabled() const { return kind != CodecKind::kNone; }
  bool transforms_pushes() const {
    return kind == CodecKind::kTopK || kind == CodecKind::kInt8 ||
           kind == CodecKind::kFp16;
  }
  bool delta_pulls() const { return kind == CodecKind::kDelta; }

  static std::optional<CompressionSpec> Parse(std::string_view text);
  std::string Label() const;
};

// --- deterministic quantization helpers (shared by codec + wire codec) ------

// Smallest power of two >= max|v| / 127, or 0.0 when all values are zero.
// Power-of-two scales make q = round(v / scale) and v' = q * scale exact
// floating-point operations, which is what makes int8 quantization
// idempotent: re-quantizing a quantized slice reproduces the same scale and
// the same bytes (the max element maps to |q| in [64, 127], pinning the
// recomputed scale).
double Int8ScaleFor(std::span<const double> values);

// round(value / scale) clamped to [-127, 127]; 0 when scale == 0. Note -0.0
// quantizes to 0 and dequantizes to +0.0 (int8 does not preserve the sign of
// zero; fp16 does).
std::int8_t QuantizeInt8(double value, double scale);
inline double DequantizeInt8(std::int8_t q, double scale) {
  return static_cast<double>(q) * scale;
}

// IEEE binary16 conversion (round-to-nearest-even, overflow to +-inf,
// gradual underflow through half denormals, underflow to signed zero).
// DecodeFp16(EncodeFp16(x)) is idempotent: every half value is exactly
// representable as a double.
std::uint16_t EncodeFp16(double value);
double DecodeFp16(std::uint16_t half);

// Wire-byte model for the simulator: bytes a per-shard push message carries
// after coding, given the raw f64 bytes the route planner computed (sparse:
// 16 B/entry, dense: 8 B/param). Int8 ships 1 B per value plus an 8 B scale;
// fp16 ships 2 B per value. Top-k and delta do not recode values, so their
// routes charge raw bytes (top-k already shrank the support itself).
std::uint64_t CodedRouteBytes(CodecKind kind, bool sparse,
                              std::uint64_t raw_bytes);

// --- the codec --------------------------------------------------------------

// Worker-side compression stage. One instance serves all workers of an
// engine; per-worker error-feedback residuals are isolated, so concurrent
// Transform() calls for *distinct* workers are safe (the runtime's worker
// threads), while calls for the same worker must be serialized (they are:
// each worker pushes from its own thread).
class GradientCodec {
 public:
  // `shard_split` is ParameterServer::ShardSplit(dim, num_shards) — the
  // slice boundaries quantization scales are computed over.
  GradientCodec(CompressionSpec spec, std::size_t num_workers,
                std::vector<std::pair<std::size_t, std::size_t>> shard_split);

  const CompressionSpec& spec() const { return spec_; }
  std::size_t param_dim() const { return param_dim_; }

  // Transforms the gradient `worker` is about to push, in place:
  //  - kTopK: folds the gradient into the worker's residual, emits the top-k
  //    accumulated coordinates as a sparse gradient, keeps the rest.
  //  - kInt8/kFp16: per-shard-slice quantize/dequantize so the in-memory
  //    values equal what the wire would deliver.
  //  - kNone/kDelta: identity.
  void Transform(WorkerId worker, Gradient& grad);

  // The worker's error-feedback residual (empty span until its first top-k
  // push). Test hook for the conservation invariant.
  std::span<const double> residual(WorkerId worker) const;

 private:
  void TransformTopK(WorkerId worker, Gradient& grad);
  void QuantizeInPlace(Gradient& grad) const;
  std::size_t ShardOfIndex(std::size_t index) const;

  CompressionSpec spec_;
  std::size_t param_dim_ = 0;
  std::vector<std::size_t> shard_offsets_;  // shard s covers
  std::vector<std::size_t> shard_lengths_;  // [offset[s], offset[s]+length[s])
  // Per-worker dense residual (lazily sized to param_dim on first top-k
  // push) plus the sorted support of its nonzero coordinates, kept so a
  // sparse push costs O(nnz log nnz), not O(dim).
  std::vector<std::vector<double>> residuals_;
  std::vector<std::vector<std::size_t>> supports_;
};

}  // namespace specsync
