#include "ps/param_store.h"

#include <algorithm>
#include <latch>

#include "common/check.h"
#include "common/thread_pool.h"

namespace specsync {

ParameterServer::ParameterServer(std::size_t dim, std::size_t num_shards,
                                 std::shared_ptr<const SgdApplier> applier)
    : dim_(dim), applier_(std::move(applier)), params_(dim, 0.0) {
  SPECSYNC_CHECK_GT(dim, 0u);
  SPECSYNC_CHECK_GT(num_shards, 0u);
  SPECSYNC_CHECK_LE(num_shards, dim);
  SPECSYNC_CHECK(applier_ != nullptr);
  const std::size_t base = dim / num_shards;
  const std::size_t extra = dim % num_shards;
  std::size_t offset = 0;
  shards_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->offset = offset;
    shard->length = base + (s < extra ? 1 : 0);
    offset += shard->length;
    shards_.push_back(std::move(shard));
  }
  SPECSYNC_CHECK_EQ(offset, dim);
}

void ParameterServer::Initialize(const Model& model, Rng& rng) {
  SPECSYNC_CHECK_EQ(model.param_dim(), dim_);
  // Whole-vector write: hold every shard lock (in shard order, the single
  // global lock order — Push and Pull acquire at most one at a time).
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.emplace_back(shard->mutex);
  model.InitParams(params_, rng);
}

void ParameterServer::SetParams(DenseVector params) {
  SPECSYNC_CHECK_EQ(params.size(), dim_);
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.emplace_back(shard->mutex);
  params_ = std::move(params);
}

PullResult ParameterServer::Pull(ThreadPool* pool) const {
  PullResult out;
  out.params.resize(dim_);
  if (pool == nullptr || shards_.size() == 1) {
    for (const auto& shard : shards_) {
      std::scoped_lock lock(shard->mutex);
      std::copy_n(params_.begin() + static_cast<std::ptrdiff_t>(shard->offset),
                  shard->length,
                  out.params.begin() + static_cast<std::ptrdiff_t>(shard->offset));
    }
  } else {
    // Fan the per-shard copies across the pool; each task writes a disjoint
    // slice of `out.params`. The latch (not ThreadPool::Wait) scopes the wait
    // to *this* pull, so concurrent pulls can share one pool.
    std::latch done(static_cast<std::ptrdiff_t>(shards_.size()));
    for (const auto& shard_ptr : shards_) {
      const Shard* shard = shard_ptr.get();
      double* dest = out.params.data();
      pool->Submit([this, shard, dest, &done] {
        {
          std::scoped_lock lock(shard->mutex);
          std::copy_n(params_.begin() + static_cast<std::ptrdiff_t>(shard->offset),
                      shard->length, dest + shard->offset);
        }
        done.count_down();
      });
    }
    done.wait();
  }
  out.version = version_.load(std::memory_order_acquire);
  return out;
}

ShardPullResult ParameterServer::PullShard(std::size_t s) const {
  SPECSYNC_CHECK_LT(s, shards_.size());
  const Shard& shard = *shards_[s];
  ShardPullResult out;
  out.offset = shard.offset;
  out.params.resize(shard.length);
  {
    std::scoped_lock lock(shard.mutex);
    std::copy_n(params_.begin() + static_cast<std::ptrdiff_t>(shard.offset),
                shard.length, out.params.begin());
    out.shard_version = shard.version;
  }
  out.version = version_.load(std::memory_order_acquire);
  return out;
}

std::size_t ParameterServer::ShardOf(std::size_t index) const {
  SPECSYNC_CHECK_LT(index, dim_);
  // Shards are near-equal; binary search over offsets.
  auto it = std::upper_bound(
      shards_.begin(), shards_.end(), index,
      [](std::size_t idx, const std::unique_ptr<Shard>& s) {
        return idx < s->offset;
      });
  return static_cast<std::size_t>(std::distance(shards_.begin(), it)) - 1;
}

std::size_t ParameterServer::shard_bytes(std::size_t s) const {
  SPECSYNC_CHECK_LT(s, shards_.size());
  return shards_[s]->length * sizeof(double);
}

std::vector<ParameterServer::ShardRoute> ParameterServer::RouteGradient(
    const Gradient& grad) const {
  std::vector<ShardRoute> routes;
  if (!grad.is_sparse()) {
    SPECSYNC_CHECK_EQ(grad.dense().size(), dim_);
    routes.reserve(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      routes.push_back(ShardRoute{s, shard_bytes(s)});
    }
    return routes;
  }
  std::vector<std::size_t> nnz(shards_.size(), 0);
  for (std::uint64_t index : grad.sparse().indices()) {
    ++nnz[ShardOf(static_cast<std::size_t>(index))];
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (nnz[s] > 0) routes.push_back(ShardRoute{s, nnz[s] * 16});
  }
  // An empty gradient still crosses the wire as one (empty) message, so the
  // push protocol and version accounting see exactly one logical push.
  if (routes.empty()) routes.push_back(ShardRoute{0, 0});
  return routes;
}

bool ParameterServer::PushShard(std::size_t s, const Gradient& grad,
                                EpochId epoch) {
  SPECSYNC_CHECK_LT(s, shards_.size());
  Shard& shard = *shards_[s];
  std::scoped_lock lock(shard.mutex);
  const std::span<double> slice(params_.data() + shard.offset, shard.length);
  bool touched = false;
  if (grad.is_sparse()) {
    touched = applier_->ApplySparseSlice(grad.sparse(), epoch, shard.offset,
                                         slice) > 0;
  } else {
    SPECSYNC_CHECK_EQ(grad.dense().size(), dim_);
    applier_->ApplyDenseSlice(
        std::span<const double>(grad.dense().data() + shard.offset,
                                shard.length),
        epoch, slice);
    touched = shard.length > 0;
  }
  if (touched) ++shard.version;
  return touched;
}

std::uint64_t ParameterServer::CommitPush() {
  return version_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

std::uint64_t ParameterServer::Push(const Gradient& grad, EpochId epoch) {
  for (const ShardRoute& route : RouteGradient(grad)) {
    PushShard(route.shard, grad, epoch);
  }
  return CommitPush();
}

ShardInfo ParameterServer::shard(std::size_t s) const {
  SPECSYNC_CHECK_LT(s, shards_.size());
  const Shard& shard = *shards_[s];
  std::scoped_lock lock(shard.mutex);
  return ShardInfo{shard.offset, shard.length, shard.version};
}

}  // namespace specsync
