#include "ps/param_store.h"

#include <algorithm>
#include <latch>

#include <string>

#include "common/check.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace specsync {

namespace {

// scoped_lock that measures time-to-acquire and time-held into the shard's
// attached histograms. With both instruments detached it degenerates to a
// plain lock with no clock reads, so uninstrumented runs pay only the null
// checks.
class TimedShardLock {
 public:
  TimedShardLock(std::mutex& mutex, obs::LatencyHistogram* wait,
                 obs::LatencyHistogram* hold)
      : mutex_(mutex), hold_(hold) {
    if (wait == nullptr && hold == nullptr) {
      mutex_.lock();
      return;
    }
    const std::uint64_t begin_ns = obs::WallNanos();
    mutex_.lock();
    acquired_ns_ = obs::WallNanos();
    if (wait != nullptr) wait->Record(1e-9 * static_cast<double>(
                                                 acquired_ns_ - begin_ns));
  }

  ~TimedShardLock() {
    if (hold_ == nullptr) {
      mutex_.unlock();
      return;
    }
    const double held =
        1e-9 * static_cast<double>(obs::WallNanos() - acquired_ns_);
    mutex_.unlock();
    hold_->Record(held);
  }

  TimedShardLock(const TimedShardLock&) = delete;
  TimedShardLock& operator=(const TimedShardLock&) = delete;

 private:
  std::mutex& mutex_;
  obs::LatencyHistogram* hold_;
  std::uint64_t acquired_ns_ = 0;
};

}  // namespace

std::vector<std::pair<std::size_t, std::size_t>> ParameterServer::ShardSplit(
    std::size_t dim, std::size_t num_shards) {
  SPECSYNC_CHECK_GT(dim, 0u);
  SPECSYNC_CHECK_GT(num_shards, 0u);
  SPECSYNC_CHECK_LE(num_shards, dim);
  const std::size_t base = dim / num_shards;
  const std::size_t extra = dim % num_shards;
  std::vector<std::pair<std::size_t, std::size_t>> split;
  split.reserve(num_shards);
  std::size_t offset = 0;
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::size_t length = base + (s < extra ? 1 : 0);
    split.emplace_back(offset, length);
    offset += length;
  }
  SPECSYNC_CHECK_EQ(offset, dim);
  return split;
}

ParameterServer::ParameterServer(std::size_t dim, std::size_t num_shards,
                                 std::shared_ptr<const SgdApplier> applier)
    : dim_(dim), applier_(std::move(applier)), params_(dim, 0.0) {
  SPECSYNC_CHECK(applier_ != nullptr);
  shards_.reserve(num_shards);
  for (const auto& [offset, length] : ShardSplit(dim, num_shards)) {
    auto shard = std::make_unique<Shard>();
    shard->offset = offset;
    shard->length = length;
    shards_.push_back(std::move(shard));
  }
}

void ParameterServer::AttachMetrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    pull_hist_ = push_hist_ = queue_wait_hist_ = nullptr;
    for (auto& shard : shards_) shard->lock_wait = shard->lock_hold = nullptr;
    return;
  }
  pull_hist_ = &metrics->histogram("ps.pull_s");
  push_hist_ = &metrics->histogram("ps.push_s");
  queue_wait_hist_ = &metrics->histogram("ps.pull_queue_wait_s");
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::string prefix = "ps.shard" + std::to_string(s);
    shards_[s]->lock_wait = &metrics->histogram(prefix + ".lock_wait_s");
    shards_[s]->lock_hold = &metrics->histogram(prefix + ".lock_hold_s");
  }
}

void ParameterServer::Initialize(const Model& model, Rng& rng) {
  SPECSYNC_CHECK_EQ(model.param_dim(), dim_);
  // Whole-vector write: hold every shard lock (in shard order, the single
  // global lock order — Push and Pull acquire at most one at a time).
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.emplace_back(shard->mutex);
  model.InitParams(params_, rng);
}

void ParameterServer::SetParams(DenseVector params) {
  SPECSYNC_CHECK_EQ(params.size(), dim_);
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.emplace_back(shard->mutex);
  params_ = std::move(params);
}

PullResult ParameterServer::Pull(ThreadPool* pool) const {
  PullResult out;
  PullInto(&out, pool);
  return out;
}

void ParameterServer::PullInto(PullResult* result, ThreadPool* pool) const {
  obs::ScopedTimer pull_timer(pull_hist_);
  PullResult& out = *result;
  // resize() keeps existing capacity, so a caller reusing one PullResult per
  // worker (the sim's snapshot buffers) pays zero allocations per pull.
  out.params.resize(dim_);
  if (pool == nullptr || shards_.size() == 1) {
    for (const auto& shard : shards_) {
      TimedShardLock lock(shard->mutex, shard->lock_wait, shard->lock_hold);
      std::copy_n(params_.begin() + static_cast<std::ptrdiff_t>(shard->offset),
                  shard->length,
                  out.params.begin() + static_cast<std::ptrdiff_t>(shard->offset));
    }
  } else {
    // Fan the per-shard copies across the pool; each task writes a disjoint
    // slice of `out.params`. The latch (not ThreadPool::Wait) scopes the wait
    // to *this* pull, so concurrent pulls can share one pool.
    std::latch done(static_cast<std::ptrdiff_t>(shards_.size()));
    for (const auto& shard_ptr : shards_) {
      const Shard* shard = shard_ptr.get();
      double* dest = out.params.data();
      const std::uint64_t submit_ns =
          queue_wait_hist_ != nullptr ? obs::WallNanos() : 0;
      pool->Submit([this, shard, dest, submit_ns, &done] {
        if (queue_wait_hist_ != nullptr) {
          queue_wait_hist_->Record(
              1e-9 * static_cast<double>(obs::WallNanos() - submit_ns));
        }
        {
          TimedShardLock lock(shard->mutex, shard->lock_wait,
                              shard->lock_hold);
          std::copy_n(params_.begin() + static_cast<std::ptrdiff_t>(shard->offset),
                      shard->length, dest + shard->offset);
        }
        done.count_down();
      });
    }
    done.wait();
  }
  out.version = version_.load(std::memory_order_acquire);
}

ShardPullResult ParameterServer::PullShard(std::size_t s) const {
  SPECSYNC_CHECK_LT(s, shards_.size());
  const Shard& shard = *shards_[s];
  ShardPullResult out;
  out.offset = shard.offset;
  out.params.resize(shard.length);
  {
    TimedShardLock lock(shard.mutex, shard.lock_wait, shard.lock_hold);
    std::copy_n(params_.begin() + static_cast<std::ptrdiff_t>(shard.offset),
                shard.length, out.params.begin());
    out.shard_version = shard.version;
  }
  out.version = version_.load(std::memory_order_acquire);
  return out;
}

std::uint64_t ParameterServer::PullShardSlice(std::size_t s,
                                              std::span<double> dest) const {
  SPECSYNC_CHECK_LT(s, shards_.size());
  const Shard& shard = *shards_[s];
  SPECSYNC_CHECK_EQ(dest.size(), shard.length);
  TimedShardLock lock(shard.mutex, shard.lock_wait, shard.lock_hold);
  std::copy_n(params_.begin() + static_cast<std::ptrdiff_t>(shard.offset),
              shard.length, dest.begin());
  return shard.version;
}

std::size_t ParameterServer::ShardOf(std::size_t index) const {
  SPECSYNC_CHECK_LT(index, dim_);
  // Shards are near-equal; binary search over offsets.
  auto it = std::upper_bound(
      shards_.begin(), shards_.end(), index,
      [](std::size_t idx, const std::unique_ptr<Shard>& s) {
        return idx < s->offset;
      });
  return static_cast<std::size_t>(std::distance(shards_.begin(), it)) - 1;
}

std::size_t ParameterServer::shard_bytes(std::size_t s) const {
  SPECSYNC_CHECK_LT(s, shards_.size());
  return shards_[s]->length * sizeof(double);
}

std::vector<ParameterServer::ShardRoute> ParameterServer::RouteGradient(
    const Gradient& grad) const {
  std::vector<ShardRoute> routes;
  if (!grad.is_sparse()) {
    SPECSYNC_CHECK_EQ(grad.dense().size(), dim_);
    routes.reserve(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      routes.push_back(ShardRoute{s, shard_bytes(s)});
    }
    return routes;
  }
  std::vector<std::size_t> nnz(shards_.size(), 0);
  for (std::uint64_t index : grad.sparse().indices()) {
    ++nnz[ShardOf(static_cast<std::size_t>(index))];
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (nnz[s] > 0) routes.push_back(ShardRoute{s, nnz[s] * 16});
  }
  // An empty gradient still crosses the wire as one (empty) message, so the
  // push protocol and version accounting see exactly one logical push.
  if (routes.empty()) routes.push_back(ShardRoute{0, 0});
  return routes;
}

bool ParameterServer::PushShard(std::size_t s, const Gradient& grad,
                                EpochId epoch) {
  SPECSYNC_CHECK_LT(s, shards_.size());
  Shard& shard = *shards_[s];
  TimedShardLock lock(shard.mutex, shard.lock_wait, shard.lock_hold);
  const std::span<double> slice(params_.data() + shard.offset, shard.length);
  bool touched = false;
  if (grad.is_sparse()) {
    touched = applier_->ApplySparseSlice(grad.sparse(), epoch, shard.offset,
                                         slice) > 0;
  } else {
    SPECSYNC_CHECK_EQ(grad.dense().size(), dim_);
    applier_->ApplyDenseSlice(
        std::span<const double>(grad.dense().data() + shard.offset,
                                shard.length),
        epoch, slice);
    touched = shard.length > 0;
  }
  if (touched) ++shard.version;
  return touched;
}

bool ParameterServer::PushShardDenseSlice(std::size_t s,
                                          std::span<const double> slice,
                                          EpochId epoch) {
  SPECSYNC_CHECK_LT(s, shards_.size());
  Shard& shard = *shards_[s];
  SPECSYNC_CHECK_EQ(slice.size(), shard.length);
  TimedShardLock lock(shard.mutex, shard.lock_wait, shard.lock_hold);
  applier_->ApplyDenseSlice(
      slice, epoch, std::span<double>(params_.data() + shard.offset,
                                      shard.length));
  const bool touched = shard.length > 0;
  if (touched) ++shard.version;
  return touched;
}

std::uint64_t ParameterServer::CommitPush() {
  return version_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

std::uint64_t ParameterServer::Push(const Gradient& grad, EpochId epoch) {
  obs::ScopedTimer push_timer(push_hist_);
  for (const ShardRoute& route : RouteGradient(grad)) {
    PushShard(route.shard, grad, epoch);
  }
  return CommitPush();
}

ShardInfo ParameterServer::shard(std::size_t s) const {
  SPECSYNC_CHECK_LT(s, shards_.size());
  const Shard& shard = *shards_[s];
  std::scoped_lock lock(shard.mutex);
  return ShardInfo{shard.offset, shard.length, shard.version};
}

}  // namespace specsync
