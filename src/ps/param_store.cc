#include "ps/param_store.h"

#include <algorithm>

#include "common/check.h"

namespace specsync {

ParameterServer::ParameterServer(std::size_t dim, std::size_t num_shards,
                                 std::shared_ptr<const SgdApplier> applier)
    : dim_(dim), applier_(std::move(applier)), params_(dim, 0.0) {
  SPECSYNC_CHECK_GT(dim, 0u);
  SPECSYNC_CHECK_GT(num_shards, 0u);
  SPECSYNC_CHECK_LE(num_shards, dim);
  SPECSYNC_CHECK(applier_ != nullptr);
  const std::size_t base = dim / num_shards;
  const std::size_t extra = dim % num_shards;
  std::size_t offset = 0;
  for (std::size_t s = 0; s < num_shards; ++s) {
    ShardInfo info;
    info.offset = offset;
    info.length = base + (s < extra ? 1 : 0);
    shards_.push_back(info);
    offset += info.length;
  }
  SPECSYNC_CHECK_EQ(offset, dim);
}

void ParameterServer::Initialize(const Model& model, Rng& rng) {
  SPECSYNC_CHECK_EQ(model.param_dim(), dim_);
  std::scoped_lock lock(mutex_);
  model.InitParams(params_, rng);
}

void ParameterServer::SetParams(DenseVector params) {
  SPECSYNC_CHECK_EQ(params.size(), dim_);
  std::scoped_lock lock(mutex_);
  params_ = std::move(params);
}

PullResult ParameterServer::Pull() const {
  std::scoped_lock lock(mutex_);
  return PullResult{params_, version_};
}

std::size_t ParameterServer::ShardOf(std::size_t index) const {
  SPECSYNC_CHECK_LT(index, dim_);
  // Shards are near-equal; binary search over offsets.
  auto it = std::upper_bound(
      shards_.begin(), shards_.end(), index,
      [](std::size_t idx, const ShardInfo& s) { return idx < s.offset; });
  return static_cast<std::size_t>(std::distance(shards_.begin(), it)) - 1;
}

std::uint64_t ParameterServer::Push(const Gradient& grad, EpochId epoch) {
  std::scoped_lock lock(mutex_);
  applier_->Apply(grad, epoch, params_);
  ++version_;
  if (grad.is_sparse()) {
    // Bump only the shards this sparse push touched.
    std::vector<bool> touched(shards_.size(), false);
    for (std::uint64_t index : grad.sparse().indices()) {
      touched[ShardOf(static_cast<std::size_t>(index))] = true;
    }
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (touched[s]) ++shards_[s].version;
    }
  } else {
    for (auto& shard : shards_) ++shard.version;
  }
  return version_;
}

std::uint64_t ParameterServer::version() const {
  std::scoped_lock lock(mutex_);
  return version_;
}

ShardInfo ParameterServer::shard(std::size_t s) const {
  SPECSYNC_CHECK_LT(s, shards_.size());
  std::scoped_lock lock(mutex_);
  return shards_[s];
}

}  // namespace specsync
