// Consistency controllers: ASP, BSP, SSP (paper Sec. II-C).
//
// A controller decides when a worker may *start* its next iteration, given
// everyone's progress. SpecSync layers on top of any of these (the paper
// implements it over ASP and notes it composes with SSP) — the controller
// gates iteration starts while SpecSync decides mid-iteration restarts.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"

namespace specsync {

class ConsistencyController {
 public:
  virtual ~ConsistencyController() = default;

  virtual std::string name() const = 0;

  // May `worker` start its iteration number `next_iteration` (0-based) now?
  virtual bool MayStart(WorkerId worker, IterationId next_iteration) const = 0;

  // Records that `worker` finished (pushed) its iteration `iteration`.
  virtual void OnPush(WorkerId worker, IterationId iteration) = 0;

  std::size_t num_workers() const { return num_workers_; }

 protected:
  explicit ConsistencyController(std::size_t num_workers)
      : num_workers_(num_workers) {}

  std::size_t num_workers_;
};

// Asynchronous Parallel: a worker may always proceed.
class AspController final : public ConsistencyController {
 public:
  explicit AspController(std::size_t num_workers)
      : ConsistencyController(num_workers) {}
  std::string name() const override { return "ASP"; }
  bool MayStart(WorkerId, IterationId) const override { return true; }
  void OnPush(WorkerId, IterationId) override {}
};

// Stale Synchronous Parallel with staleness bound s: worker may start
// iteration t iff every worker has finished iteration t - s - ... i.e. the
// slowest worker's completed count >= t - s.
class SspController : public ConsistencyController {
 public:
  SspController(std::size_t num_workers, std::uint64_t staleness);
  std::string name() const override;
  bool MayStart(WorkerId worker, IterationId next_iteration) const override;
  void OnPush(WorkerId worker, IterationId iteration) override;

  std::uint64_t staleness() const { return staleness_; }
  // Completed iteration count of the slowest worker.
  std::uint64_t MinProgress() const;

 private:
  std::uint64_t staleness_;
  std::vector<std::uint64_t> completed_;
};

// Bulk Synchronous Parallel == SSP with staleness 0: nobody starts iteration
// t+1 until everyone pushed iteration t.
class BspController final : public SspController {
 public:
  explicit BspController(std::size_t num_workers)
      : SspController(num_workers, 0) {}
  std::string name() const override { return "BSP"; }
};

std::unique_ptr<ConsistencyController> MakeAsp(std::size_t num_workers);
std::unique_ptr<ConsistencyController> MakeBsp(std::size_t num_workers);
std::unique_ptr<ConsistencyController> MakeSsp(std::size_t num_workers,
                                               std::uint64_t staleness);

}  // namespace specsync
