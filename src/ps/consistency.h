// Consistency controllers: ASP, BSP, SSP (paper Sec. II-C) plus the first two
// stages of the adaptive sync-policy engine — per-shard SSP (PSSP-style
// per-(worker, shard) clocks) and dynamic SSP (DSSP/ABS-style staleness
// retuning from observed push inter-arrivals).
//
// A controller decides when a worker may *start* its next iteration, given
// everyone's progress. SpecSync layers on top of any of these (the paper
// implements it over ASP and notes it composes with SSP) — the controller
// gates iteration starts while SpecSync decides mid-iteration restarts.
//
// Two call conventions coexist:
//  - the original scalar API (MayStart / OnPush), which all pre-existing
//    controllers implement and whose behavior is pinned by the golden traces;
//  - the time-and-shard-aware API (MayStartAt / OnPushAt), which the engines
//    call. Its default implementations drop the extra arguments and forward
//    to the scalar API, so ASP/BSP/SSP behave bit-identically to before the
//    shard-aware controllers existed.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"

namespace specsync {

namespace obs {
class DecisionAuditLog;
}  // namespace obs

class ConsistencyController {
 public:
  virtual ~ConsistencyController() = default;

  virtual std::string name() const = 0;

  // May `worker` start its iteration number `next_iteration` (0-based) now?
  virtual bool MayStart(WorkerId worker, IterationId next_iteration) const = 0;

  // Records that `worker` finished (pushed) its iteration `iteration`.
  virtual void OnPush(WorkerId worker, IterationId iteration) = 0;

  // Time-and-shard-aware entry points — what the engines actually call.
  // `touched_shards` lists the parameter-server shards the push's gradient
  // routed to (empty = unknown/all, the dense case). The defaults ignore the
  // extra dimensions, so controllers written against the scalar API are
  // unaffected by the engines switching to these.
  virtual bool MayStartAt(WorkerId worker, IterationId next_iteration,
                          SimTime now) const {
    (void)now;
    return MayStart(worker, next_iteration);
  }
  virtual void OnPushAt(WorkerId worker, IterationId iteration, SimTime now,
                        std::span<const std::size_t> touched_shards) {
    (void)now;
    (void)touched_shards;
    OnPush(worker, iteration);
  }

  // Membership churn (crash / rejoin). A departed worker must stop pinning
  // the progress minimum or every SSP-gated peer deadlocks on a corpse.
  // Defaults are no-ops: the static controllers predate fault handling and
  // their (pinned) behavior is to keep counting everyone.
  virtual void OnWorkerDown(WorkerId worker) { (void)worker; }
  virtual void OnWorkerUp(WorkerId worker) { (void)worker; }

  std::size_t num_workers() const { return num_workers_; }

 protected:
  explicit ConsistencyController(std::size_t num_workers)
      : num_workers_(num_workers) {}

  std::size_t num_workers_;
};

// Asynchronous Parallel: a worker may always proceed.
class AspController final : public ConsistencyController {
 public:
  explicit AspController(std::size_t num_workers)
      : ConsistencyController(num_workers) {}
  std::string name() const override { return "ASP"; }
  bool MayStart(WorkerId, IterationId) const override { return true; }
  void OnPush(WorkerId, IterationId) override {}
};

// Stale Synchronous Parallel with staleness bound s.
//
// Exact boundary semantics (pinned by ConsistencyBoundaryTest — the "t - s"
// comment used to trail off here, leaving the off-by-one undocumented):
// a worker may *start* iteration t (0-based) iff t <= MinProgress() + s,
// where MinProgress() is the completed-iteration count of the slowest
// worker. Equivalently: every worker must have *finished* iteration t-s-1,
// i.e. the fastest worker runs at most s iterations of work ahead of the
// slowest. The boundary cases:
//
//   next t | slowest completed c | allowed?
//   -------+---------------------+--------------------------
//     t    |  c >= t - s         | yes (t <= c + s)
//     t    |  c == t - s - 1     | no  (first blocked case)
//     0    |  anything           | yes (t = 0 <= c + s always)
//
// With s = 0 this is BSP: nobody starts t+1 until everyone pushed t. Note
// the *observed* progress skew between two workers can still reach s + 1
// mid-iteration: a worker admitted at t = c + s finishes and pushes t while
// the slowest has still completed only c.
class SspController : public ConsistencyController {
 public:
  SspController(std::size_t num_workers, std::uint64_t staleness);
  std::string name() const override;
  bool MayStart(WorkerId worker, IterationId next_iteration) const override;
  void OnPush(WorkerId worker, IterationId iteration) override;

  std::uint64_t staleness() const { return staleness_; }
  // Completed iteration count of the slowest worker.
  std::uint64_t MinProgress() const;

 private:
  std::uint64_t staleness_;
  std::vector<std::uint64_t> completed_;
};

// Bulk Synchronous Parallel == SSP with staleness 0: nobody starts iteration
// t+1 until everyone pushed iteration t.
class BspController final : public SspController {
 public:
  explicit BspController(std::size_t num_workers)
      : SspController(num_workers, 0) {}
  std::string name() const override { return "BSP"; }
};

// Per-shard SSP (stage 1 of the adaptive sync-policy engine).
//
// Keeps one logical clock per (worker, shard): clock(w, s) is w's completed
// iteration count on every shard in w's *write set* and 0 elsewhere. A
// worker is gated only on the shards it actually writes: it may start
// iteration t iff for every shard s in its write set,
//
//     t <= min{ clock(w', s) : live w' with s in write_set(w') } + staleness.
//
// Workers with disjoint write sets never gate on each other — the sparse-MF
// win: a worker whose gradients only ever touch shards {0, 1} is not held
// back by a straggler that only writes shard 7. With every write set equal
// to "all shards" (the dense case) this degenerates exactly to SspController.
//
// Write sets are either declared up front (SetWriteSet) or *learned*: the
// union of shards observed in the worker's pushes. Learning only ever grows
// a set; a worker with an empty (not yet learned) set is ungated. Every push
// advances the clocks of the worker's whole current write set — a finished
// iteration is finished on every shard the worker owns-writes, even when one
// batch's gradient happened to miss a shard — which is what makes the
// per-shard liveness argument go through (the least-progressed live writer
// of any shard is never blocked).
//
// Crash handling: OnWorkerDown excuses the worker from every min (its clocks
// stop counting); OnWorkerUp re-admits it at its old clocks, so peers block
// until it catches back up — the SSP bound holds across the rejoin.
class PerShardSspController : public ConsistencyController {
 public:
  PerShardSspController(std::size_t num_workers, std::size_t num_shards,
                        std::uint64_t staleness);

  std::string name() const override;
  bool MayStart(WorkerId worker, IterationId next_iteration) const override;
  // Scalar OnPush = a push that touched every shard (the dense case).
  void OnPush(WorkerId worker, IterationId iteration) override;
  void OnPushAt(WorkerId worker, IterationId iteration, SimTime now,
                std::span<const std::size_t> touched_shards) override;
  void OnWorkerDown(WorkerId worker) override;
  void OnWorkerUp(WorkerId worker) override;

  // Declares `worker`'s write set and freezes it (disables learning for that
  // worker). Clocks for newly added shards start at the worker's current
  // completed count.
  void SetWriteSet(WorkerId worker, const std::vector<std::size_t>& shards);

  // The first shard in `worker`'s write set that currently blocks iteration
  // `next_iteration`, if any (obs attribution / tests).
  std::optional<std::size_t> FirstBlockingShard(
      WorkerId worker, IterationId next_iteration) const;

  std::uint64_t staleness() const { return staleness_; }
  std::size_t num_shards() const { return num_shards_; }
  std::uint64_t completed(WorkerId worker) const;
  std::uint64_t clock(WorkerId worker, std::size_t shard) const;
  bool writes(WorkerId worker, std::size_t shard) const;
  bool live(WorkerId worker) const;
  // Minimum clock on `shard` over live writers; nullopt when no live worker
  // writes it (an unwritten shard gates nobody).
  std::optional<std::uint64_t> MinShardClock(std::size_t shard) const;

 protected:
  // Dynamic subclass retunes the bound between epochs.
  void SetStalenessBound(std::uint64_t staleness) { staleness_ = staleness; }

 private:
  void AdvanceClocks(WorkerId worker,
                     std::span<const std::size_t> touched_shards,
                     IterationId iteration);

  std::uint64_t staleness_;
  std::size_t num_shards_;
  std::vector<std::uint64_t> completed_;            // per worker
  std::vector<std::vector<std::uint64_t>> clock_;   // [worker][shard]
  std::vector<std::vector<char>> writes_;           // [worker][shard]
  std::vector<char> write_set_frozen_;              // SetWriteSet called
  std::vector<char> live_;
};

// Dynamic SSP (stage 2): per-shard gating plus a staleness bound retuned
// once per epoch from observed push inter-arrival statistics, after
// DSSP (arXiv:1908.11848) and ABS (arXiv:2301.08895).
//
// Retune rule: over each epoch (one full advance of the slowest live
// worker), accumulate every worker's mean push inter-arrival time. The
// straggler ratio r = slowest mean / fastest mean says how many iterations
// the fastest worker completes per slowest iteration; a bound of about
// ceil(headroom * (r - 1)) lets the fast workers run unblocked through one
// slowest-iteration without admitting more staleness than the speed skew
// forces. The ratio is EWMA-smoothed across epochs so one noisy epoch does
// not thrash the bound; the result is clamped to [min_staleness,
// max_staleness]. Each *adjustment* (not each evaluation) emits one
// RetuneRecord (kind = staleness) into the attached DecisionAuditLog.
struct DynamicSspConfig {
  std::uint64_t initial_staleness = 3;
  std::uint64_t min_staleness = 0;
  std::uint64_t max_staleness = 16;
  // Weight of the newest epoch's straggler ratio in the EWMA.
  double ewma = 0.5;
  // Multiplier on (ratio - 1) when deriving the bound: > 1 trades staleness
  // for fewer blocks, < 1 the reverse.
  double headroom = 1.0;
};

class DynamicSspController final : public PerShardSspController {
 public:
  DynamicSspController(std::size_t num_workers, std::size_t num_shards,
                       DynamicSspConfig config = {});

  std::string name() const override;
  void OnPushAt(WorkerId worker, IterationId iteration, SimTime now,
                std::span<const std::size_t> touched_shards) override;

  // Retune records land here (not owned; may be null). Attach before use.
  void AttachAudit(obs::DecisionAuditLog* audit) { audit_ = audit; }

  std::uint64_t retunes() const { return retunes_; }
  double smoothed_ratio() const { return smoothed_ratio_; }

 private:
  void MaybeRetune(SimTime now);

  DynamicSspConfig config_;
  obs::DecisionAuditLog* audit_ = nullptr;

  // Per-worker inter-arrival accumulators for the current epoch window.
  std::vector<std::optional<SimTime>> last_push_;
  std::vector<Duration> interval_sum_;
  std::vector<std::uint64_t> interval_count_;
  std::uint64_t window_pushes_ = 0;
  std::uint64_t last_retune_progress_ = 0;
  double smoothed_ratio_ = 0.0;  // 0 = no epoch measured yet
  std::uint64_t retunes_ = 0;
};

std::unique_ptr<ConsistencyController> MakeAsp(std::size_t num_workers);
std::unique_ptr<ConsistencyController> MakeBsp(std::size_t num_workers);
std::unique_ptr<ConsistencyController> MakeSsp(std::size_t num_workers,
                                               std::uint64_t staleness);
std::unique_ptr<ConsistencyController> MakePerShardSsp(
    std::size_t num_workers, std::size_t num_shards, std::uint64_t staleness);
std::unique_ptr<ConsistencyController> MakeDynamicSsp(
    std::size_t num_workers, std::size_t num_shards,
    DynamicSspConfig config = {});

}  // namespace specsync
