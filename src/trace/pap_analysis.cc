#include "trace/pap_analysis.h"

#include <algorithm>

#include "common/check.h"

namespace specsync {

PapResult AnalyzePap(const TrainingTrace& trace, const PapConfig& config) {
  SPECSYNC_CHECK_GT(config.num_intervals, 0u);
  SPECSYNC_CHECK_GT(config.interval.seconds(), 0.0);

  // All push times, sorted (they are recorded in order, but be safe).
  std::vector<std::pair<SimTime, WorkerId>> pushes;
  pushes.reserve(trace.pushes().size());
  for (const PushEvent& e : trace.pushes()) {
    pushes.emplace_back(e.time, e.worker);
  }
  std::sort(pushes.begin(), pushes.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // samples[k][j] = PAP count in interval k for the j-th (worker, pull).
  std::vector<std::vector<double>> samples(config.num_intervals);
  std::vector<double> first_two;

  for (WorkerId w = 0; w < trace.num_workers(); ++w) {
    const std::vector<SimTime> pulls = trace.PullTimes(w);
    // The last pull has no complete following window; consider all pulls whose
    // full horizon fits before the trace end.
    for (SimTime pull : pulls) {
      const SimTime horizon =
          pull + config.interval * static_cast<double>(config.num_intervals);
      if (horizon > trace.end_time()) continue;
      std::vector<std::size_t> counts(config.num_intervals, 0);
      auto it = std::upper_bound(
          pushes.begin(), pushes.end(), pull,
          [](SimTime t, const auto& p) { return t < p.first; });
      for (; it != pushes.end() && it->first <= horizon; ++it) {
        if (it->second == w) continue;  // own push is not a missed update
        const double offset = (it->first - pull).seconds();
        auto bucket =
            static_cast<std::size_t>(offset / config.interval.seconds());
        bucket = std::min(bucket, config.num_intervals - 1);
        ++counts[bucket];
      }
      for (std::size_t k = 0; k < config.num_intervals; ++k) {
        samples[k].push_back(static_cast<double>(counts[k]));
      }
      if (config.num_intervals >= 2) {
        first_two.push_back(static_cast<double>(counts[0] + counts[1]));
      }
    }
  }

  PapResult result;
  result.per_interval.reserve(config.num_intervals);
  result.mean_per_interval.reserve(config.num_intervals);
  for (std::size_t k = 0; k < config.num_intervals; ++k) {
    RunningStats stats;
    for (double v : samples[k]) stats.Add(v);
    result.mean_per_interval.push_back(stats.mean());
    result.per_interval.push_back(BoxSummary::FromSample(std::move(samples[k])));
  }
  if (!first_two.empty()) {
    result.median_first_two = Quantile(std::move(first_two), 0.5);
  }
  return result;
}

}  // namespace specsync
