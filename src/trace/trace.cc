#include "trace/trace.h"

#include <algorithm>

#include "common/check.h"
#include "common/hash.h"

namespace specsync {

TrainingTrace::TrainingTrace(std::size_t num_workers)
    : num_workers_(num_workers) {
  SPECSYNC_CHECK_GT(num_workers, 0u);
}

void TrainingTrace::RecordPull(WorkerId worker, SimTime time,
                               std::uint64_t version) {
  SPECSYNC_CHECK_LT(worker, num_workers_);
  pulls_.push_back(PullEvent{time, worker, version});
  end_time_ = std::max(end_time_, time);
}

void TrainingTrace::RecordPush(WorkerId worker, SimTime time,
                               IterationId iteration, std::uint64_t version,
                               std::uint64_t missed_updates) {
  SPECSYNC_CHECK_LT(worker, num_workers_);
  pushes_.push_back(PushEvent{time, worker, iteration, version, missed_updates});
  end_time_ = std::max(end_time_, time);
}

void TrainingTrace::RecordAbort(WorkerId worker, SimTime time,
                                Duration wasted_compute) {
  SPECSYNC_CHECK_LT(worker, num_workers_);
  aborts_.push_back(AbortEvent{time, worker, wasted_compute});
  end_time_ = std::max(end_time_, time);
}

void TrainingTrace::RecordLoss(SimTime time, double loss,
                               std::uint64_t total_iterations, EpochId epoch) {
  losses_.push_back(LossSample{time, loss, total_iterations, epoch});
  end_time_ = std::max(end_time_, time);
}

std::vector<SimTime> TrainingTrace::PullTimes(WorkerId worker) const {
  SPECSYNC_CHECK_LT(worker, num_workers_);
  std::vector<SimTime> out;
  for (const PullEvent& e : pulls_) {
    if (e.worker == worker) out.push_back(e.time);
  }
  return out;
}

std::vector<SimTime> TrainingTrace::PushTimes(WorkerId worker) const {
  SPECSYNC_CHECK_LT(worker, num_workers_);
  std::vector<SimTime> out;
  for (const PushEvent& e : pushes_) {
    if (e.worker == worker) out.push_back(e.time);
  }
  return out;
}

Duration TrainingTrace::total_wasted_compute() const {
  Duration total = Duration::Zero();
  for (const AbortEvent& e : aborts_) total += e.wasted_compute;
  return total;
}

std::uint64_t TraceDigest(const TrainingTrace& trace) {
  Fnv1a hash;
  hash.U64(trace.num_workers());
  hash.U64(trace.pulls().size());
  for (const PullEvent& e : trace.pulls()) {
    hash.F64(e.time.seconds()).U64(e.worker).U64(e.version);
  }
  hash.U64(trace.pushes().size());
  for (const PushEvent& e : trace.pushes()) {
    hash.F64(e.time.seconds())
        .U64(e.worker)
        .U64(e.iteration)
        .U64(e.version)
        .U64(e.missed_updates);
  }
  hash.U64(trace.aborts().size());
  for (const AbortEvent& e : trace.aborts()) {
    hash.F64(e.time.seconds()).U64(e.worker).F64(e.wasted_compute.seconds());
  }
  hash.U64(trace.losses().size());
  for (const LossSample& s : trace.losses()) {
    hash.F64(s.time.seconds()).F64(s.loss).U64(s.total_iterations).U64(s.epoch);
  }
  return hash.digest();
}

}  // namespace specsync
