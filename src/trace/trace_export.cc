#include "trace/trace_export.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace specsync {

void ExportLossCurve(const TrainingTrace& trace, std::ostream& os) {
  os << "time_s,loss,total_iterations,epoch\n";
  for (const LossSample& sample : trace.losses()) {
    os << sample.time.seconds() << ',' << sample.loss << ','
       << sample.total_iterations << ',' << sample.epoch << '\n';
  }
}

void ExportEvents(const TrainingTrace& trace, std::ostream& os) {
  struct Row {
    SimTime time;
    int order;  // pulls before pushes before aborts at equal times
    std::string line;
  };
  std::vector<Row> rows;
  rows.reserve(trace.pulls().size() + trace.pushes().size() +
               trace.aborts().size());
  for (const PullEvent& e : trace.pulls()) {
    std::ostringstream line;
    line << "pull," << e.time.seconds() << ',' << e.worker << ",," << e.version
         << ',';
    rows.push_back({e.time, 0, line.str()});
  }
  for (const PushEvent& e : trace.pushes()) {
    std::ostringstream line;
    line << "push," << e.time.seconds() << ',' << e.worker << ','
         << e.iteration << ',' << e.version << ',' << e.missed_updates;
    rows.push_back({e.time, 1, line.str()});
  }
  for (const AbortEvent& e : trace.aborts()) {
    std::ostringstream line;
    line << "abort," << e.time.seconds() << ',' << e.worker << ",,,";
    rows.push_back({e.time, 2, line.str()});
  }
  std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.order < b.order;
  });
  os << "kind,time_s,worker,iteration,version,missed_updates\n";
  for (const Row& row : rows) os << row.line << '\n';
}

void ExportTransferTimeline(const TransferAccountant& transfers, SimTime end,
                            std::ostream& os, std::size_t max_points) {
  os << "time_s,cumulative_bytes\n";
  for (const auto& point : transfers.Timeline(end, max_points)) {
    os << point.time.seconds() << ',' << point.cumulative_bytes << '\n';
  }
}

void ExportTransferBreakdown(const TransferAccountant& transfers,
                             std::ostream& os) {
  os << "category,bytes,fraction\n";
  for (std::size_t c = 0; c < kNumTransferCategories; ++c) {
    const auto category = static_cast<TransferCategory>(c);
    os << TransferCategoryName(category) << ',' << transfers.bytes(category)
       << ',' << transfers.fraction(category) << '\n';
  }
}

}  // namespace specsync
