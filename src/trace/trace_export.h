// CSV export of training traces — the bridge to external plotting.
//
// Each exporter writes one tidy table (header + rows) so the paper's figures
// can be replotted from bench output with any tool.
#pragma once

#include <ostream>

#include "trace/trace.h"
#include "trace/transfer.h"

namespace specsync {

// time_s,loss,total_iterations,epoch
void ExportLossCurve(const TrainingTrace& trace, std::ostream& os);

// kind,time_s,worker,iteration,version,missed_updates  (kind: pull/push/abort)
void ExportEvents(const TrainingTrace& trace, std::ostream& os);

// time_s,cumulative_bytes
void ExportTransferTimeline(const TransferAccountant& transfers, SimTime end,
                            std::ostream& os, std::size_t max_points = 200);

// category,bytes,fraction
void ExportTransferBreakdown(const TransferAccountant& transfers,
                             std::ostream& os);

}  // namespace specsync
