// Training traces.
//
// Every experiment records what happened and when: pulls, pushes, aborts,
// and periodic loss evaluations. The figure regenerators are pure functions
// of these traces (plus the transfer ledger), mirroring how the paper's plots
// were produced from collected workload traces (Sec. III-A).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"

namespace specsync {

struct PullEvent {
  SimTime time;
  WorkerId worker = kInvalidWorker;
  std::uint64_t version = 0;  // store version of the snapshot
};

struct PushEvent {
  SimTime time;
  WorkerId worker = kInvalidWorker;
  IterationId iteration = 0;
  std::uint64_t version = 0;        // store version after this push
  std::uint64_t missed_updates = 0; // pushes between this worker's pull & push
};

struct AbortEvent {
  SimTime time;
  WorkerId worker = kInvalidWorker;
  Duration wasted_compute = Duration::Zero();
};

struct LossSample {
  SimTime time;
  double loss = 0.0;
  std::uint64_t total_iterations = 0;  // pushes applied so far, cluster-wide
  EpochId epoch = 0;
};

class TrainingTrace {
 public:
  explicit TrainingTrace(std::size_t num_workers);

  void RecordPull(WorkerId worker, SimTime time, std::uint64_t version);
  void RecordPush(WorkerId worker, SimTime time, IterationId iteration,
                  std::uint64_t version, std::uint64_t missed_updates);
  void RecordAbort(WorkerId worker, SimTime time, Duration wasted_compute);
  void RecordLoss(SimTime time, double loss, std::uint64_t total_iterations,
                  EpochId epoch);

  std::size_t num_workers() const { return num_workers_; }
  std::span<const PullEvent> pulls() const { return pulls_; }
  std::span<const PushEvent> pushes() const { return pushes_; }
  std::span<const AbortEvent> aborts() const { return aborts_; }
  std::span<const LossSample> losses() const { return losses_; }

  // Pull times of one worker, in order.
  std::vector<SimTime> PullTimes(WorkerId worker) const;
  // Push times of one worker, in order.
  std::vector<SimTime> PushTimes(WorkerId worker) const;

  std::uint64_t total_pushes() const { return pushes_.size(); }
  std::uint64_t total_aborts() const { return aborts_.size(); }
  Duration total_wasted_compute() const;

  // End time of the trace (max event time seen).
  SimTime end_time() const { return end_time_; }

 private:
  std::size_t num_workers_;
  std::vector<PullEvent> pulls_;
  std::vector<PushEvent> pushes_;
  std::vector<AbortEvent> aborts_;
  std::vector<LossSample> losses_;
  SimTime end_time_ = SimTime::Zero();
};

// Order-sensitive FNV-1a digest over the full event streams (pulls, pushes,
// aborts, losses) with bit-exact times and payloads: two traces digest equal
// iff they recorded identical histories. Pinned by the golden-trace test and
// compared across thread counts by the parallel-equivalence test.
std::uint64_t TraceDigest(const TrainingTrace& trace);

}  // namespace specsync
