// Pushes-after-a-pull (PAP) analysis — regenerates Fig. 3.
//
// For each pull a worker makes, the pushes other workers make before its next
// pull are the updates it misses (paper Sec. III-A). Bucketing those misses
// into 1-second intervals after the pull and box-plotting each interval shows
// whether a short deferral would uncover many updates.
#pragma once

#include <vector>

#include "common/stats.h"
#include "trace/trace.h"

namespace specsync {

struct PapConfig {
  Duration interval = Duration::Seconds(1.0);
  std::size_t num_intervals = 14;
};

struct PapResult {
  // box[k] summarizes, across all (worker, pull) pairs, the number of PAP
  // received in interval k (i.e. (k*interval, (k+1)*interval] after a pull).
  std::vector<BoxSummary> per_interval;
  // Mean count per interval (same index).
  std::vector<double> mean_per_interval;
  // Median cumulative count within the first two intervals (the paper's
  // headline "median over 6 within two seconds").
  double median_first_two = 0.0;
};

PapResult AnalyzePap(const TrainingTrace& trace, const PapConfig& config);

}  // namespace specsync
