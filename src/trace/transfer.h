// Network-transfer accounting — regenerates Figs. 12 and 13.
//
// Every message the cluster sends is charged here by category. The paper's
// claim: SpecSync's notify/re-sync traffic is negligible next to parameter
// pulls and gradient pushes, and because SpecSync converges sooner its *total*
// transfer is lower (CIFAR-10: 3.17 TB -> 2.00 TB).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/sim_time.h"

namespace specsync {

enum class TransferCategory : std::size_t {
  kPullParams = 0,  // server -> worker parameter snapshots
  kPushGrads = 1,   // worker -> server gradients
  kNotify = 2,      // worker -> scheduler push notifications
  kReSync = 3,      // scheduler -> worker restart instructions
  kControl = 4,     // everything else (epoch kicks, shutdown, ...)
  // Wasted bytes of dropped/timed-out attempts that were re-sent. Kept out
  // of the data-plane categories so goodput (kPullParams/kPushGrads) is not
  // inflated by the retry storm a lossy link causes.
  kRetransmit = 5,
};
inline constexpr std::size_t kNumTransferCategories = 6;

const char* TransferCategoryName(TransferCategory category);

class TransferAccountant {
 public:
  TransferAccountant() = default;

  // Charges one message. Data-plane messages (pulls, pushes) carry the server
  // shard they moved to/from, so Fig. 12's per-server breakdown can be read
  // straight off the ledger; control-plane messages pass no shard.
  void Charge(TransferCategory category, std::uint64_t bytes, SimTime time,
              std::optional<std::size_t> shard = std::nullopt);

  // Records bytes a codec *removed* from a message that was still sent (the
  // message itself is charged at its compressed size). Savings are a side
  // ledger: they never count toward total_bytes().
  void AddSavings(TransferCategory category, std::uint64_t bytes);

  std::uint64_t total_bytes() const;
  std::uint64_t bytes(TransferCategory category) const;
  std::uint64_t saved_bytes(TransferCategory category) const;
  std::uint64_t total_saved_bytes() const;

  // Fraction of total transfer attributable to `category` (0 if no traffic).
  double fraction(TransferCategory category) const;

  // --- per-shard (per-server) accounting ------------------------------------

  // Highest shard index charged so far + 1 (0 when no sharded traffic).
  std::size_t num_shards_seen() const { return by_shard_.size(); }
  // Bytes charged against `shard` in `category` / across all categories.
  // Shards beyond num_shards_seen() report 0.
  std::uint64_t shard_bytes(TransferCategory category,
                            std::size_t shard) const;
  std::uint64_t shard_total_bytes(std::size_t shard) const;
  // Bytes charged with no shard attribution (control-plane traffic).
  std::uint64_t unsharded_bytes() const;

  struct TimelinePoint {
    SimTime time;
    std::uint64_t cumulative_bytes = 0;
  };
  // Cumulative transfer sampled at up to `max_points` evenly spaced times in
  // [0, end] (for Fig. 12's accumulated-transfer curves).
  std::vector<TimelinePoint> Timeline(SimTime end,
                                      std::size_t max_points = 100) const;

 private:
  struct Event {
    SimTime time;
    std::uint64_t bytes = 0;
  };
  using CategoryBytes = std::array<std::uint64_t, kNumTransferCategories>;
  CategoryBytes by_category_{};
  CategoryBytes saved_{};  // codec bytes-saved breakdown (side ledger)
  std::vector<CategoryBytes> by_shard_;  // grown to the highest shard charged
  std::vector<Event> events_;            // time-ordered
};

}  // namespace specsync
