// Network-transfer accounting — regenerates Figs. 12 and 13.
//
// Every message the cluster sends is charged here by category. The paper's
// claim: SpecSync's notify/re-sync traffic is negligible next to parameter
// pulls and gradient pushes, and because SpecSync converges sooner its *total*
// transfer is lower (CIFAR-10: 3.17 TB -> 2.00 TB).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.h"

namespace specsync {

enum class TransferCategory : std::size_t {
  kPullParams = 0,  // server -> worker parameter snapshots
  kPushGrads = 1,   // worker -> server gradients
  kNotify = 2,      // worker -> scheduler push notifications
  kReSync = 3,      // scheduler -> worker restart instructions
  kControl = 4,     // everything else (epoch kicks, shutdown, ...)
};
inline constexpr std::size_t kNumTransferCategories = 5;

const char* TransferCategoryName(TransferCategory category);

class TransferAccountant {
 public:
  TransferAccountant() = default;

  void Charge(TransferCategory category, std::uint64_t bytes, SimTime time);

  std::uint64_t total_bytes() const;
  std::uint64_t bytes(TransferCategory category) const;

  // Fraction of total transfer attributable to `category` (0 if no traffic).
  double fraction(TransferCategory category) const;

  struct TimelinePoint {
    SimTime time;
    std::uint64_t cumulative_bytes = 0;
  };
  // Cumulative transfer sampled at up to `max_points` evenly spaced times in
  // [0, end] (for Fig. 12's accumulated-transfer curves).
  std::vector<TimelinePoint> Timeline(SimTime end,
                                      std::size_t max_points = 100) const;

 private:
  struct Event {
    SimTime time;
    std::uint64_t bytes = 0;
  };
  std::array<std::uint64_t, kNumTransferCategories> by_category_{};
  std::vector<Event> events_;  // time-ordered
};

}  // namespace specsync
