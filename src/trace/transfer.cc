#include "trace/transfer.h"

#include <algorithm>

#include "common/check.h"

namespace specsync {

const char* TransferCategoryName(TransferCategory category) {
  switch (category) {
    case TransferCategory::kPullParams:
      return "pull_params";
    case TransferCategory::kPushGrads:
      return "push_grads";
    case TransferCategory::kNotify:
      return "notify";
    case TransferCategory::kReSync:
      return "resync";
    case TransferCategory::kControl:
      return "control";
    case TransferCategory::kRetransmit:
      return "retransmit";
  }
  return "?";
}

void TransferAccountant::Charge(TransferCategory category, std::uint64_t bytes,
                                SimTime time,
                                std::optional<std::size_t> shard) {
  const auto index = static_cast<std::size_t>(category);
  SPECSYNC_CHECK_LT(index, kNumTransferCategories);
  SPECSYNC_CHECK(events_.empty() || events_.back().time <= time)
      << "transfer events must be charged in time order";
  by_category_[index] += bytes;
  if (shard.has_value()) {
    if (*shard >= by_shard_.size()) by_shard_.resize(*shard + 1);
    by_shard_[*shard][index] += bytes;
  }
  events_.push_back(Event{time, bytes});
}

void TransferAccountant::AddSavings(TransferCategory category,
                                    std::uint64_t bytes) {
  const auto index = static_cast<std::size_t>(category);
  SPECSYNC_CHECK_LT(index, kNumTransferCategories);
  saved_[index] += bytes;
}

std::uint64_t TransferAccountant::saved_bytes(
    TransferCategory category) const {
  return saved_[static_cast<std::size_t>(category)];
}

std::uint64_t TransferAccountant::total_saved_bytes() const {
  std::uint64_t total = 0;
  for (std::uint64_t b : saved_) total += b;
  return total;
}

std::uint64_t TransferAccountant::total_bytes() const {
  std::uint64_t total = 0;
  for (std::uint64_t b : by_category_) total += b;
  return total;
}

std::uint64_t TransferAccountant::bytes(TransferCategory category) const {
  return by_category_[static_cast<std::size_t>(category)];
}

std::uint64_t TransferAccountant::shard_bytes(TransferCategory category,
                                              std::size_t shard) const {
  if (shard >= by_shard_.size()) return 0;
  return by_shard_[shard][static_cast<std::size_t>(category)];
}

std::uint64_t TransferAccountant::shard_total_bytes(std::size_t shard) const {
  if (shard >= by_shard_.size()) return 0;
  std::uint64_t total = 0;
  for (std::uint64_t b : by_shard_[shard]) total += b;
  return total;
}

std::uint64_t TransferAccountant::unsharded_bytes() const {
  std::uint64_t sharded = 0;
  for (const CategoryBytes& shard : by_shard_) {
    for (std::uint64_t b : shard) sharded += b;
  }
  return total_bytes() - sharded;
}

double TransferAccountant::fraction(TransferCategory category) const {
  const std::uint64_t total = total_bytes();
  if (total == 0) return 0.0;
  return static_cast<double>(bytes(category)) / static_cast<double>(total);
}

std::vector<TransferAccountant::TimelinePoint> TransferAccountant::Timeline(
    SimTime end, std::size_t max_points) const {
  SPECSYNC_CHECK_GT(max_points, 1u);
  std::vector<TimelinePoint> out;
  out.reserve(max_points);
  const double step =
      end.seconds() / static_cast<double>(max_points - 1);
  std::size_t cursor = 0;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < max_points; ++i) {
    const SimTime t = SimTime::FromSeconds(step * static_cast<double>(i));
    while (cursor < events_.size() && events_[cursor].time <= t) {
      cumulative += events_[cursor].bytes;
      ++cursor;
    }
    out.push_back(TimelinePoint{t, cumulative});
  }
  return out;
}

}  // namespace specsync
