// Seeded fault-injection plan shared by both execution engines.
//
// Real clusters are messy: links drop and replay messages, timers fire late,
// nodes slow down under background load, and workers die mid-epoch (the
// regime the paper's Fig. 3 measures and the reason speculative
// re-synchronization pays off). A FaultPlan is the single description of that
// messiness: per-link-class message fault probabilities (drop / duplicate /
// extra delay), per-worker slowdown windows, and scheduled worker
// crash/rejoin events. The discrete-event simulator consults it on every
// transfer (NetworkModel::PlanTransfer) and the threaded runtime consults it
// in its fault-injecting mailbox and worker-kill path — so one config
// produces comparable chaos in both engines.
//
// Determinism: all message-fault decisions are drawn from per-link-class
// streams forked from `FaultPlanConfig::seed`, so for a fixed seed and a
// fixed call order the decision sequence replays bit-identically. Slowdown
// windows and crash events are explicit schedules — deterministic by
// construction. With every probability at zero and no scheduled events the
// plan is inert: no RNG is consumed and every decision is the no-fault
// decision, which keeps fault-free runs bit-identical to a build without the
// hooks.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/sim_time.h"

namespace specsync {

// Message-fault probabilities for one class of links.
struct LinkFaultConfig {
  // Probability a message is silently lost in transit.
  double drop_probability = 0.0;
  // Probability the network delivers a second copy of the message.
  double duplicate_probability = 0.0;
  // Probability the message is held up by an extra exponential delay with
  // mean `delay_mean` on top of its nominal transfer time.
  double delay_probability = 0.0;
  Duration delay_mean = Duration::Milliseconds(5.0);

  bool enabled() const {
    return drop_probability > 0.0 || duplicate_probability > 0.0 ||
           delay_probability > 0.0;
  }
};

// The two link classes the protocol uses: bulk parameter traffic
// (pulls / gradient pushes) and the tiny control messages (notify / re-sync).
enum class LinkClass { kData = 0, kControl = 1 };

// While `now` is in [begin, end), `worker`'s compute time is multiplied by
// `factor` (> 1 = slower). Overlapping windows compound multiplicatively.
struct SlowdownWindow {
  WorkerId worker = kInvalidWorker;
  SimTime begin;
  SimTime end;
  double factor = 1.0;
};

// Worker `worker` dies at `at`; if `rejoin` is set it comes back at that time
// (with no memory of in-flight work), otherwise the death is permanent.
struct CrashEvent {
  WorkerId worker = kInvalidWorker;
  SimTime at;
  std::optional<SimTime> rejoin;
};

struct FaultPlanConfig {
  LinkFaultConfig data;     // pulls and gradient pushes
  LinkFaultConfig control;  // notify and re-sync messages
  std::vector<SlowdownWindow> slowdowns;
  std::vector<CrashEvent> crashes;
  // Timeout before a dropped pull request is retried (simulator only; the
  // runtime's pulls are in-process calls and cannot be lost).
  Duration pull_retry_timeout = Duration::Milliseconds(50.0);
  std::uint64_t seed = 0x5EEDFA17ULL;

  bool enabled() const {
    return data.enabled() || control.enabled() || !slowdowns.empty() ||
           !crashes.empty();
  }
};

// The fate of one message, drawn once at send time. `drop` wins over the
// other two; `extra_delay` applies to every delivered copy.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  Duration extra_delay = Duration::Zero();
};

// Injection counters (what the plan actually did), distinct from the
// scheduler's counters (how the protocol coped).
struct FaultStats {
  std::uint64_t messages_seen = 0;
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t delays = 0;
  std::uint64_t crashes = 0;
  std::uint64_t rejoins = 0;
};

class FaultPlan {
 public:
  explicit FaultPlan(FaultPlanConfig config);

  // Draws the fate of one message on `link`. Thread-safe; deterministic per
  // link class given the call order on that class. Inert (no RNG consumed)
  // when the link's probabilities are all zero.
  FaultDecision OnMessage(LinkClass link);

  // Product of the factors of all slowdown windows covering (worker, now);
  // 1.0 outside every window. Pure function of the config (thread-safe).
  double SlowdownFactor(WorkerId worker, SimTime now) const;

  // The scheduled crash/rejoin events, in config order.
  const std::vector<CrashEvent>& crashes() const { return config_.crashes; }

  // First crash event scheduled for `worker` (the runtime's kill path
  // honors one lifecycle event per worker), nullptr if none.
  const CrashEvent* CrashFor(WorkerId worker) const;

  // Engines report lifecycle events as they fire so stats() reflects what
  // actually happened, not just what was scheduled.
  void CountCrash();
  void CountRejoin();

  bool enabled() const { return config_.enabled(); }
  const FaultPlanConfig& config() const { return config_; }
  FaultStats stats() const;

 private:
  FaultPlanConfig config_;
  mutable std::mutex mutex_;
  Rng data_rng_;
  Rng control_rng_;
  FaultStats stats_;
};

}  // namespace specsync
