#include "fault/fault_plan.h"

#include "common/check.h"
#include "obs/flight_recorder.h"

namespace specsync {

namespace {

void ValidateLink(const LinkFaultConfig& link) {
  SPECSYNC_CHECK_GE(link.drop_probability, 0.0);
  SPECSYNC_CHECK_LE(link.drop_probability, 1.0);
  SPECSYNC_CHECK_GE(link.duplicate_probability, 0.0);
  SPECSYNC_CHECK_LE(link.duplicate_probability, 1.0);
  SPECSYNC_CHECK_GE(link.delay_probability, 0.0);
  SPECSYNC_CHECK_LE(link.delay_probability, 1.0);
  if (link.delay_probability > 0.0) {
    SPECSYNC_CHECK_GT(link.delay_mean.seconds(), 0.0);
  }
}

}  // namespace

FaultPlan::FaultPlan(FaultPlanConfig config)
    : config_(std::move(config)),
      data_rng_(0),
      control_rng_(0) {
  ValidateLink(config_.data);
  ValidateLink(config_.control);
  SPECSYNC_CHECK_GT(config_.pull_retry_timeout.seconds(), 0.0);
  for (const SlowdownWindow& window : config_.slowdowns) {
    SPECSYNC_CHECK(window.worker != kInvalidWorker);
    SPECSYNC_CHECK(window.begin < window.end)
        << "empty slowdown window for worker " << window.worker;
    SPECSYNC_CHECK_GT(window.factor, 0.0);
  }
  for (const CrashEvent& crash : config_.crashes) {
    SPECSYNC_CHECK(crash.worker != kInvalidWorker);
    if (crash.rejoin.has_value()) {
      SPECSYNC_CHECK(*crash.rejoin > crash.at)
          << "worker " << crash.worker << " rejoins before it crashes";
    }
  }
  // Well-separated per-class streams: the data link's decisions never shift
  // when the control link draws more or fewer numbers, and vice versa.
  Rng root(config_.seed);
  data_rng_ = root.Fork();
  control_rng_ = root.Fork();
}

FaultDecision FaultPlan::OnMessage(LinkClass link) {
  const LinkFaultConfig& cfg =
      link == LinkClass::kData ? config_.data : config_.control;
  std::scoped_lock lock(mutex_);
  ++stats_.messages_seen;
  if (!cfg.enabled()) return {};
  Rng& rng = link == LinkClass::kData ? data_rng_ : control_rng_;
  // A fixed base draw count per message keeps the stream aligned no matter
  // which of the three fault kinds are enabled.
  const double u_drop = rng.Uniform(0.0, 1.0);
  const double u_duplicate = rng.Uniform(0.0, 1.0);
  const double u_delay = rng.Uniform(0.0, 1.0);
  FaultDecision decision;
  if (u_drop < cfg.drop_probability) {
    decision.drop = true;
    ++stats_.drops;
    return decision;
  }
  if (u_duplicate < cfg.duplicate_probability) {
    decision.duplicate = true;
    ++stats_.duplicates;
  }
  if (u_delay < cfg.delay_probability) {
    decision.extra_delay =
        Duration::Seconds(rng.Exponential(1.0 / cfg.delay_mean.seconds()));
    ++stats_.delays;
  }
  return decision;
}

double FaultPlan::SlowdownFactor(WorkerId worker, SimTime now) const {
  double factor = 1.0;
  for (const SlowdownWindow& window : config_.slowdowns) {
    if (window.worker != worker) continue;
    if (now >= window.begin && now < window.end) factor *= window.factor;
  }
  return factor;
}

const CrashEvent* FaultPlan::CrashFor(WorkerId worker) const {
  for (const CrashEvent& crash : config_.crashes) {
    if (crash.worker == worker) return &crash;
  }
  return nullptr;
}

void FaultPlan::CountCrash() {
  {
    std::scoped_lock lock(mutex_);
    ++stats_.crashes;
  }
  // A crash is exactly the moment the flight recorder exists for: snapshot
  // the per-thread rings now, while the events leading up to it are still on
  // tape. No-ops (and costs one atomic load) unless the recorder is armed.
  auto& flight = obs::FlightRecorder::Instance();
  if (flight.enabled()) {
    flight.Record(obs::FlightKind::kLifecycle, "worker_crash");
    flight.DumpNow("fault_plan_crash");
  }
}

void FaultPlan::CountRejoin() {
  {
    std::scoped_lock lock(mutex_);
    ++stats_.rejoins;
  }
  auto& flight = obs::FlightRecorder::Instance();
  if (flight.enabled()) {
    flight.Record(obs::FlightKind::kLifecycle, "worker_rejoin");
  }
}

FaultStats FaultPlan::stats() const {
  std::scoped_lock lock(mutex_);
  return stats_;
}

}  // namespace specsync
