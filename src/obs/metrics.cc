#include "obs/metrics.h"

#include <chrono>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/logging.h"

namespace specsync::obs {

std::size_t LatencyHistogram::BucketFor(double seconds) {
  if (!(seconds > kFirstUpperBoundSeconds)) return 0;  // NaN and tiny -> 0
  const double doublings = std::log2(seconds / kFirstUpperBoundSeconds);
  const auto bucket = static_cast<std::size_t>(std::ceil(doublings));
  return std::min(bucket, kBuckets - 1);
}

double LatencyHistogram::UpperBoundSeconds(std::size_t bucket) {
  SPECSYNC_CHECK_LT(bucket, kBuckets);
  if (bucket == kBuckets - 1) return std::numeric_limits<double>::infinity();
  return kFirstUpperBoundSeconds * std::exp2(static_cast<double>(bucket));
}

void LatencyHistogram::Record(double seconds) {
  if (seconds < 0.0) {
    // A non-monotonic timestamp source; per-sample logging would flood.
    SPECSYNC_LOG_EVERY_N(kWarning, 1000)
        << "obs: negative latency sample " << seconds << "s clamped to 0";
    seconds = 0.0;
  }
  buckets_[BucketFor(seconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + seconds,
                                     std::memory_order_relaxed)) {
  }
  double max = max_.load(std::memory_order_relaxed);
  while (seconds > max && !max_.compare_exchange_weak(
                              max, seconds, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (std::size_t b = 0; b < kBuckets; ++b) {
    buckets_[b].fetch_add(other.buckets_[b].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  const double add = other.sum_seconds();
  while (!sum_.compare_exchange_weak(sum, sum + add,
                                     std::memory_order_relaxed)) {
  }
  double max = max_.load(std::memory_order_relaxed);
  const double other_max = other.max_seconds();
  while (other_max > max && !max_.compare_exchange_weak(
                                max, other_max, std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::mean_seconds() const {
  const std::uint64_t n = count();
  return n > 0 ? sum_seconds() / static_cast<double>(n) : 0.0;
}

std::uint64_t LatencyHistogram::bucket_count(std::size_t bucket) const {
  SPECSYNC_CHECK_LT(bucket, kBuckets);
  return buckets_[bucket].load(std::memory_order_relaxed);
}

double LatencyHistogram::ApproxQuantileSeconds(double q) const {
  SPECSYNC_CHECK(q >= 0.0 && q <= 1.0) << "q=" << q;
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t in_bucket = bucket_count(b);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) < rank) {
      cumulative += in_bucket;
      continue;
    }
    // Log-interpolate within the bucket; the degenerate cases are pinned by
    // the header contract (and obs_test): the sub-1us first bucket has no
    // lower log edge, and the open-ended last bucket's only finite edge is
    // the observed max — which its log-spaced lower edge can exceed when the
    // max landed early in the bucket, hence the final cap.
    const double hi = b == kBuckets - 1 ? max_seconds() : UpperBoundSeconds(b);
    if (b == 0) return std::min(max_seconds(), kFirstUpperBoundSeconds);
    const double lo = UpperBoundSeconds(b - 1);
    const double frac =
        (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
    const double est =
        lo * std::pow(std::max(hi, lo) / lo, std::min(1.0, std::max(0.0, frac)));
    return b == kBuckets - 1 ? std::min(est, max_seconds()) : est;
  }
  return max_seconds();
}

std::uint64_t WallNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ScopedTimer::ScopedTimer(LatencyHistogram* histogram) : histogram_(histogram) {
  if (histogram_ != nullptr) start_ns_ = WallNanos();
}

ScopedTimer::~ScopedTimer() {
  if (histogram_ == nullptr) return;
  histogram_->Record(static_cast<double>(WallNanos() - start_ns_) * 1e-9);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::CounterValues() const {
  std::scoped_lock lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::GaugeValues()
    const {
  std::scoped_lock lock(mutex_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge->value());
  }
  return out;
}

std::vector<std::pair<std::string, const LatencyHistogram*>>
MetricsRegistry::Histograms() const {
  std::scoped_lock lock(mutex_);
  std::vector<std::pair<std::string, const LatencyHistogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, histogram.get());
  }
  return out;
}

}  // namespace specsync::obs
