// Observability session: one bundle of instruments attached to one run.
//
// An ObsContext groups the three capture surfaces — live metrics, the span
// timeline, and the scheduler decision audit — so an engine config carries a
// single optional pointer. Null means observability off: every
// instrumentation site degrades to a branch on a null pointer, and the
// engines' golden trace digests are bit-identical with a context attached or
// not (instrumentation reads the clocks, never the other way around).
//
// Exporters write one snapshot per run: metrics.json (counters, gauges,
// histogram summaries, and the decision audit) plus a Prometheus-style text
// rendering, and the Chrome trace via SpanRecorder::ExportChromeTrace.
#pragma once

#include <ostream>
#include <string>

#include "obs/audit_log.h"
#include "obs/metrics.h"
#include "obs/span_recorder.h"

namespace specsync::obs {

struct ObsContext {
  MetricsRegistry metrics;
  SpanRecorder spans;
  DecisionAuditLog audit;
};

// Full JSON snapshot:
// {"counters":{..},"gauges":{..},"histograms":{name:{count,sum_s,mean_s,
//  max_s,p50_s,p95_s,p99_s,buckets:[{le_s,count}...]}},"decision_audit":{..}}
// Histogram buckets with zero count are elided to keep files small.
void WriteMetricsJson(const ObsContext& obs, std::ostream& os);

// Prometheus text exposition (counters, gauges, histogram count/sum and
// cumulative le-buckets). Metric names are sanitized ('.' -> '_').
void WriteMetricsPrometheus(const MetricsRegistry& metrics, std::ostream& os);

// Convenience file writers; return false (and log a warning) when the path
// cannot be opened.
bool WriteMetricsJsonFile(const ObsContext& obs, const std::string& path);
bool WriteChromeTraceFile(const SpanRecorder& spans, const std::string& path);

}  // namespace specsync::obs
