// Crash flight recorder: the last N structured events per thread, always on
// tape, dumpable when something dies.
//
// Post-mortems for the crash/rejoin scenarios FaultPlan injects need the
// moments *before* the failure — exactly what metrics snapshots (cumulative)
// and span exports (written at clean shutdown) cannot give. The recorder
// keeps a fixed-size ring of plain-old-data events per thread: span edges,
// decision-audit records, net link state transitions, worker lifecycle. Each
// ring has one writer (its owning thread) and recording is lock-free: a slot
// write plus one release store of the ring head. Older events are
// overwritten; memory is bounded by rings × capacity × sizeof(FlightEvent).
//
// Dumps:
//   - DumpJson / DumpNow: on demand (tests, FaultPlan crash events). Rings
//     outlive their threads, so a post-join dump sees every event.
//   - DumpToFdSignalSafe + InstallFatalSignalHandlers: from SIGSEGV/SIGABRT/
//     SIGBUS/SIGFPE/SIGILL. The signal path takes no locks and allocates
//     nothing — rings live behind a fixed array of atomic pointers and all
//     formatting is manual integer printing into a stack buffer. A slot
//     being written at crash time may read torn; every other slot is intact.
//
// The recorder is disabled by default and every hook guards on `enabled()`,
// so the deterministic engines see zero behavior change unless a test or the
// SPECSYNC_FLIGHT_OUT environment variable (dump path; also arms the signal
// handlers) turns it on.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

namespace specsync::obs {

enum class FlightKind : std::uint8_t {
  kSpan = 0,
  kInstant = 1,
  kAudit = 2,
  kNetState = 3,
  kLifecycle = 4,
};

const char* FlightKindName(FlightKind kind);

// POD by design: written in place inside a pre-allocated ring slot, readable
// from a signal handler without touching allocator or destructor state.
struct FlightEvent {
  std::uint64_t ts_ns = 0;  // obs::WallNanos (CLOCK_MONOTONIC)
  std::int64_t a = 0;       // event-kind-specific payload
  std::int64_t b = 0;
  FlightKind kind = FlightKind::kInstant;
  char label[39] = {};  // NUL-terminated, truncated to fit
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;
  static constexpr std::size_t kMaxRings = 256;

  // Process-wide recorder. First call reads SPECSYNC_FLIGHT_OUT: a nonempty
  // value enables recording, sets the dump path, and installs the fatal
  // signal handlers. Tests construct their own instances instead.
  static FlightRecorder& Instance();

  FlightRecorder() = default;
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void Enable(std::size_t events_per_thread = kDefaultCapacity);
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  void SetDumpPath(std::string path);
  std::string dump_path() const;

  // Lock-free after a thread's first event (which registers its ring under
  // the registry mutex). No-op while disabled or once kMaxRings threads have
  // registered.
  void Record(FlightKind kind, const char* label, std::int64_t a = 0,
              std::int64_t b = 0);

  // Structured JSON dump: {"reason", "signal", "dumped_at_ns",
  // "capacity_per_thread", "threads":[{"ring","recorded","dropped",
  // "events":[...]}]}. Events are oldest-first within a ring.
  void DumpJson(std::ostream& os, const char* reason, int signal = 0) const;

  // DumpJson to dump_path(); false when disabled, pathless, or on IO error.
  bool DumpNow(const char* reason);

  // Async-signal-safe dump of the same JSON shape (no locks, no allocation).
  void DumpToFdSignalSafe(int fd, int signal) const;

  // Signal-handler entry: open dump_path() (the lock-free copy) and dump.
  void DumpToConfiguredPathSignalSafe(int signal);

  // Arms SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL to dump this recorder to
  // dump_path() and then re-raise with the default disposition.
  void InstallFatalSignalHandlers();

  // Total events ever recorded across all rings, including overwritten ones.
  std::uint64_t total_recorded() const;

 private:
  struct ThreadRing {
    explicit ThreadRing(std::size_t capacity)
        : slots(capacity), capacity(capacity) {}
    std::vector<FlightEvent> slots;
    std::size_t capacity;
    // Monotonic event count; slot (head % capacity) is written before the
    // release increment, so a reader at head h sees min(h, capacity) slots.
    std::atomic<std::uint64_t> head{0};
  };

  void InitFromEnv();
  ThreadRing* RingForThisThread();

  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> ring_count_{0};
  // Fixed array of atomic pointers so the signal path can walk rings without
  // the registry mutex. Slots are published once and never reused.
  std::atomic<ThreadRing*> rings_[kMaxRings] = {};

  mutable std::mutex mutex_;
  std::size_t capacity_ = kDefaultCapacity;
  std::vector<std::unique_ptr<ThreadRing>> owned_;
  std::map<std::thread::id, ThreadRing*> by_thread_;
  std::string dump_path_;
  // Signal-handler copy of dump_path_ (read without locks).
  char dump_path_sig_[256] = {};
};

}  // namespace specsync::obs
