#include "obs/span_recorder.h"

#include "obs/json.h"

namespace specsync::obs {

namespace {

using internal::IsJsonNumber;
using internal::JsonEscape;
using internal::JsonNumber;

void WriteArgs(std::ostream& os, const SpanArgs& args) {
  os << "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) os << ",";
    os << '"' << JsonEscape(args[i].first) << "\":";
    if (IsJsonNumber(args[i].second)) {
      os << args[i].second;
    } else {
      os << '"' << JsonEscape(args[i].second) << '"';
    }
  }
  os << "}";
}

}  // namespace

void SpanRecorder::SetTrackName(std::uint32_t track, std::string name) {
  std::scoped_lock lock(mutex_);
  for (auto& [id, existing] : track_names_) {
    if (id == track) {
      existing = std::move(name);
      return;
    }
  }
  track_names_.emplace_back(track, std::move(name));
}

void SpanRecorder::AddSpan(std::string name, std::string category,
                           std::uint32_t track, SimTime begin, SimTime end,
                           SpanArgs args) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kSpan;
  event.name = std::move(name);
  event.category = std::move(category);
  event.track = track;
  event.begin = begin;
  event.duration = end - begin;
  event.args = std::move(args);
  std::scoped_lock lock(mutex_);
  events_.push_back(std::move(event));
}

void SpanRecorder::AddInstant(std::string name, std::string category,
                              std::uint32_t track, SimTime time,
                              SpanArgs args) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kInstant;
  event.name = std::move(name);
  event.category = std::move(category);
  event.track = track;
  event.begin = time;
  event.args = std::move(args);
  std::scoped_lock lock(mutex_);
  events_.push_back(std::move(event));
}

std::size_t SpanRecorder::event_count() const {
  std::scoped_lock lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> SpanRecorder::Events() const {
  std::scoped_lock lock(mutex_);
  return events_;
}

void SpanRecorder::ExportChromeTrace(std::ostream& os) const {
  std::scoped_lock lock(mutex_);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [track, name] : track_names_) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << track
       << ",\"args\":{\"name\":\"" << JsonEscape(name) << "\"}}";
  }
  for (const TraceEvent& event : events_) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << JsonEscape(event.name) << "\",\"cat\":\""
       << JsonEscape(event.category) << "\",\"ph\":\""
       << (event.phase == TraceEvent::Phase::kSpan ? "X" : "i")
       << "\",\"pid\":1,\"tid\":" << event.track
       << ",\"ts\":" << JsonNumber(event.begin.seconds() * 1e6);
    if (event.phase == TraceEvent::Phase::kSpan) {
      os << ",\"dur\":" << JsonNumber(event.duration.seconds() * 1e6);
    } else {
      os << ",\"s\":\"t\"";  // instant scoped to its thread/track
    }
    if (!event.args.empty()) {
      os << ",\"args\":";
      WriteArgs(os, event.args);
    }
    os << "}";
  }
  os << "]}\n";
}

}  // namespace specsync::obs
