#include "obs/span_recorder.h"

#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace specsync::obs {

namespace {

using internal::IsJsonNumber;
using internal::JsonEscape;
using internal::JsonNumber;

void WriteArgs(std::ostream& os, const SpanArgs& args) {
  os << "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) os << ",";
    os << '"' << JsonEscape(args[i].first) << "\":";
    if (IsJsonNumber(args[i].second)) {
      os << args[i].second;
    } else {
      os << '"' << JsonEscape(args[i].second) << '"';
    }
  }
  os << "}";
}

// Flow ids are 64-bit and may exceed JSON's 2^53 exact-integer range, so they
// are exported as hex strings (Chrome accepts string ids).
void WriteFlowId(std::ostream& os, std::uint64_t id) {
  static constexpr char kHex[] = "0123456789abcdef";
  os << "\"0x";
  bool started = false;
  for (int shift = 60; shift >= 0; shift -= 4) {
    const unsigned nibble = (id >> shift) & 0xf;
    if (!started && nibble == 0 && shift != 0) continue;
    started = true;
    os << kHex[nibble];
  }
  os << '"';
}

}  // namespace

void SpanRecorder::SetTrackName(std::uint32_t track, std::string name) {
  std::scoped_lock lock(mutex_);
  for (auto& [id, existing] : track_names_) {
    if (id == track) {
      existing = std::move(name);
      return;
    }
  }
  track_names_.emplace_back(track, std::move(name));
}

void SpanRecorder::Append(TraceEvent event) {
  auto& flight = FlightRecorder::Instance();
  if (flight.enabled()) {
    flight.Record(event.phase == TraceEvent::Phase::kSpan
                      ? FlightKind::kSpan
                      : FlightKind::kInstant,
                  event.name.c_str(),
                  static_cast<std::int64_t>(event.track),
                  static_cast<std::int64_t>(event.begin.seconds() * 1e9));
  }
  std::scoped_lock lock(mutex_);
  events_.push_back(std::move(event));
}

void SpanRecorder::AddSpan(std::string name, std::string category,
                           std::uint32_t track, SimTime begin, SimTime end,
                           SpanArgs args) {
  AddSpanWithFlow(std::move(name), std::move(category), track, begin, end, 0,
                  0, std::move(args));
}

void SpanRecorder::AddSpanWithFlow(std::string name, std::string category,
                                   std::uint32_t track, SimTime begin,
                                   SimTime end, std::uint64_t flow_out,
                                   std::uint64_t flow_in, SpanArgs args) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kSpan;
  event.name = std::move(name);
  event.category = std::move(category);
  event.track = track;
  event.begin = begin;
  event.duration = end - begin;
  event.args = std::move(args);
  event.flow_out = flow_out;
  event.flow_in = flow_in;
  Append(std::move(event));
}

void SpanRecorder::AddInstant(std::string name, std::string category,
                              std::uint32_t track, SimTime time,
                              SpanArgs args) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kInstant;
  event.name = std::move(name);
  event.category = std::move(category);
  event.track = track;
  event.begin = time;
  event.args = std::move(args);
  Append(std::move(event));
}

void SpanRecorder::SetProcessInfo(std::uint32_t pid, std::string name) {
  std::scoped_lock lock(mutex_);
  pid_ = pid;
  process_name_ = std::move(name);
}

void SpanRecorder::SetWallEpochNanos(std::uint64_t epoch_ns) {
  std::scoped_lock lock(mutex_);
  wall_epoch_ns_ = epoch_ns;
}

std::uint64_t SpanRecorder::wall_epoch_nanos() const {
  std::scoped_lock lock(mutex_);
  return wall_epoch_ns_;
}

std::uint64_t SpanRecorder::EnsureWallEpochNanos() {
  std::scoped_lock lock(mutex_);
  if (wall_epoch_ns_ == 0) wall_epoch_ns_ = WallNanos();
  return wall_epoch_ns_;
}

std::size_t SpanRecorder::event_count() const {
  std::scoped_lock lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> SpanRecorder::Events() const {
  std::scoped_lock lock(mutex_);
  return events_;
}

void SpanRecorder::ExportChromeTrace(std::ostream& os) const {
  std::scoped_lock lock(mutex_);
  os << "{\"displayTimeUnit\":\"ms\",\"clock_epoch_ns\":" << wall_epoch_ns_
     << ",\"traceEvents\":[";
  bool first = true;
  if (!process_name_.empty()) {
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid_
       << ",\"args\":{\"name\":\"" << JsonEscape(process_name_) << "\"}}";
  }
  for (const auto& [track, name] : track_names_) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid_
       << ",\"tid\":" << track << ",\"args\":{\"name\":\"" << JsonEscape(name)
       << "\"}}";
  }
  for (const TraceEvent& event : events_) {
    if (!first) os << ",";
    first = false;
    const double ts_us = event.begin.seconds() * 1e6;
    os << "{\"name\":\"" << JsonEscape(event.name) << "\",\"cat\":\""
       << JsonEscape(event.category) << "\",\"ph\":\""
       << (event.phase == TraceEvent::Phase::kSpan ? "X" : "i")
       << "\",\"pid\":" << pid_ << ",\"tid\":" << event.track
       << ",\"ts\":" << JsonNumber(ts_us);
    if (event.phase == TraceEvent::Phase::kSpan) {
      os << ",\"dur\":" << JsonNumber(event.duration.seconds() * 1e6);
    } else {
      os << ",\"s\":\"t\"";  // instant scoped to its thread/track
    }
    if (!event.args.empty()) {
      os << ",\"args\":";
      WriteArgs(os, event.args);
    }
    os << "}";
    // Flow-begin rides the producing span's start; flow-end binds to the
    // enclosing consuming span ("bp":"e"). Matching is by (name, cat, id).
    if (event.flow_out != 0) {
      os << ",{\"name\":\"req\",\"cat\":\"net.flow\",\"ph\":\"s\",\"id\":";
      WriteFlowId(os, event.flow_out);
      os << ",\"pid\":" << pid_ << ",\"tid\":" << event.track
         << ",\"ts\":" << JsonNumber(ts_us) << "}";
    }
    if (event.flow_in != 0) {
      os << ",{\"name\":\"req\",\"cat\":\"net.flow\",\"ph\":\"f\",\"bp\":\"e\""
         << ",\"id\":";
      WriteFlowId(os, event.flow_in);
      os << ",\"pid\":" << pid_ << ",\"tid\":" << event.track
         << ",\"ts\":" << JsonNumber(ts_us) << "}";
    }
  }
  os << "]}\n";
}

}  // namespace specsync::obs
