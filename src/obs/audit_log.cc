#include "obs/audit_log.h"

#include "obs/flight_recorder.h"
#include "obs/json.h"

namespace specsync::obs {

using internal::JsonNumber;

const char* CheckOutcomeName(CheckOutcome outcome) {
  switch (outcome) {
    case CheckOutcome::kStale:
      return "stale";
    case CheckOutcome::kKeep:
      return "keep";
    case CheckOutcome::kResync:
      return "resync";
  }
  return "?";
}

const char* RetuneKindName(RetuneKind kind) {
  switch (kind) {
    case RetuneKind::kSpeculation:
      return "speculation";
    case RetuneKind::kStaleness:
      return "staleness";
  }
  return "?";
}

void DecisionAuditLog::RecordCheck(const CheckRecord& record) {
  auto& flight = FlightRecorder::Instance();
  if (flight.enabled()) {
    flight.Record(FlightKind::kAudit, CheckOutcomeName(record.outcome),
                  static_cast<std::int64_t>(record.worker),
                  static_cast<std::int64_t>(record.pushes_seen));
  }
  std::scoped_lock lock(mutex_);
  checks_.push_back(record);
}

void DecisionAuditLog::RecordRetune(const RetuneRecord& record) {
  auto& flight = FlightRecorder::Instance();
  if (flight.enabled()) {
    flight.Record(FlightKind::kAudit, RetuneKindName(record.kind),
                  static_cast<std::int64_t>(record.epoch),
                  static_cast<std::int64_t>(record.staleness));
  }
  std::scoped_lock lock(mutex_);
  retunes_.push_back(record);
}

std::vector<CheckRecord> DecisionAuditLog::checks() const {
  std::scoped_lock lock(mutex_);
  return checks_;
}

std::vector<RetuneRecord> DecisionAuditLog::retunes() const {
  std::scoped_lock lock(mutex_);
  return retunes_;
}

std::size_t DecisionAuditLog::check_count() const {
  std::scoped_lock lock(mutex_);
  return checks_.size();
}

void DecisionAuditLog::ExportJson(std::ostream& os) const {
  std::scoped_lock lock(mutex_);
  os << "{\"checks\":[";
  for (std::size_t i = 0; i < checks_.size(); ++i) {
    const CheckRecord& c = checks_[i];
    if (i > 0) os << ",";
    os << "{\"worker\":" << c.worker << ",\"token\":" << c.token
       << ",\"fired_at_s\":" << JsonNumber(c.fired_at.seconds())
       << ",\"outcome\":\"" << CheckOutcomeName(c.outcome) << "\""
       << ",\"window_begin_s\":" << JsonNumber(c.window_begin.seconds())
       << ",\"window_end_s\":" << JsonNumber(c.window_end.seconds())
       << ",\"armed_deadline_s\":" << JsonNumber(c.armed_deadline.seconds())
       << ",\"pushes_seen\":" << c.pushes_seen
       << ",\"abort_time_s\":" << JsonNumber(c.abort_time.seconds())
       << ",\"abort_rate\":" << JsonNumber(c.abort_rate)
       << ",\"threshold\":" << JsonNumber(c.threshold)
       << ",\"active_workers\":" << c.active_workers
       << ",\"late\":" << (c.late ? "true" : "false") << "}";
  }
  os << "],\"retunes\":[";
  for (std::size_t i = 0; i < retunes_.size(); ++i) {
    const RetuneRecord& r = retunes_[i];
    if (i > 0) os << ",";
    os << "{\"kind\":\"" << RetuneKindName(r.kind) << "\""
       << ",\"epoch\":" << r.epoch
       << ",\"at_s\":" << JsonNumber(r.at.seconds());
    if (r.kind == RetuneKind::kSpeculation) {
      os << ",\"abort_time_s\":" << JsonNumber(r.abort_time.seconds())
         << ",\"abort_rate\":" << JsonNumber(r.abort_rate);
    } else {
      os << ",\"staleness\":" << r.staleness
         << ",\"straggler_ratio\":" << JsonNumber(r.straggler_ratio);
    }
    os << ",\"epoch_pushes\":" << r.epoch_pushes << "}";
  }
  os << "]}";
}

}  // namespace specsync::obs
