// Live metrics: named counters, gauges, and log-scale latency histograms.
//
// The registry is the hot-path half of the observability layer (src/obs):
// every instrument is a lock-free atomic once resolved, so the scheduler,
// the sharded parameter store, and the runtime's worker threads can record
// without perturbing each other. Callers resolve instruments by name once
// (registry lookup takes a mutex) and keep the returned reference — the
// registry never invalidates it. Everything here measures *wall* time and
// stays strictly outside the simulation's virtual-time state, so metrics
// collection can never change a trace digest.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace specsync::obs {

// Monotone event count.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Log-scale latency histogram over seconds: bucket 0 holds everything up to
// 1us, then each bucket doubles the upper bound (1us, 2us, 4us, ... ~2.2e6s),
// so one fixed layout spans lock waits and whole-run walls alike. Record is
// wait-free; per-thread instances merge bucket-wise.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 52;
  static constexpr double kFirstUpperBoundSeconds = 1e-6;

  void Record(double seconds);
  void Merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum_seconds() const { return sum_.load(std::memory_order_relaxed); }
  double mean_seconds() const;
  double max_seconds() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_count(std::size_t bucket) const;
  // Inclusive upper bound of a bucket; the last bucket is unbounded
  // (+infinity) so no observation is ever dropped.
  static double UpperBoundSeconds(std::size_t bucket);

  // Quantile estimated from the bucket counts (log-interpolated within the
  // bucket); exact enough for p50/p95/p99 summaries.
  //
  // Pinned degenerate behavior (exporters rely on every case being finite —
  // a JSON or Prometheus dump must never see NaN from here):
  //   - empty histogram                  -> 0.0 for every q;
  //   - all observations in bucket 0     -> min(max_seconds(),
  //     kFirstUpperBoundSeconds), i.e. never an interpolation against the
  //     bucket's zero-width log range;
  //   - quantile landing in the unbounded last bucket -> capped at
  //     max_seconds().
  double ApproxQuantileSeconds(double q) const;

 private:
  static std::size_t BucketFor(double seconds);

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

// RAII wall-clock timer recording into a LatencyHistogram on destruction.
// A null histogram makes the timer a true no-op (no clock reads), so
// instrumented code paths cost nothing with observability off.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram* histogram);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  LatencyHistogram* histogram_;
  std::uint64_t start_ns_ = 0;
};

// Wall clock for manual timing (same clock ScopedTimer uses).
std::uint64_t WallNanos();

// Thread-safe name -> instrument store. References returned by the accessors
// stay valid for the registry's lifetime; lookups take a mutex, recording
// does not.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);

  // Name-sorted snapshots for exporters and tests.
  std::vector<std::pair<std::string, std::uint64_t>> CounterValues() const;
  std::vector<std::pair<std::string, double>> GaugeValues() const;
  std::vector<std::pair<std::string, const LatencyHistogram*>> Histograms()
      const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace specsync::obs
