// Scheduler decision audit log.
//
// One structured record per speculation check (Algorithm 2 CheckResync) with
// everything the decision read — the pushes counted in the window, the
// ABORT_TIME / ABORT_RATE in force, the derived threshold, window bounds and
// fire time — plus one record per epoch retune. The log answers "why did the
// scheduler abort (or not) at t" without printf archaeology, is queryable in
// tests, and is dumped alongside the metrics snapshot.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"

namespace specsync::obs {

// Outcome of one HandleCheckTimer call.
enum class CheckOutcome {
  kStale,   // superseded/unknown token: counted, no decision made
  kKeep,    // window checked, push count under threshold, keep computing
  kResync,  // push count met threshold: abort and re-synchronize
};

const char* CheckOutcomeName(CheckOutcome outcome);

struct CheckRecord {
  WorkerId worker = kInvalidWorker;
  std::uint64_t token = 0;
  SimTime fired_at;
  CheckOutcome outcome = CheckOutcome::kStale;
  // The inputs below are meaningful only when outcome != kStale (a stale
  // check never reads its window).
  SimTime window_begin;
  SimTime window_end;       // clamped to the armed deadline when late
  SimTime armed_deadline;
  std::uint64_t pushes_seen = 0;   // pushes from others inside the window
  Duration abort_time;             // ABORT_TIME in force at this check
  double abort_rate = 0.0;         // (per-worker) ABORT_RATE in force
  double threshold = 0.0;          // active_workers * abort_rate
  std::size_t active_workers = 0;
  bool late = false;               // fired past deadline + slack
};

// What a retune record adjusted: the speculation hyperparameters (the
// adaptive tuner's per-epoch ABORT_TIME / ABORT_RATE) or the consistency
// layer's staleness bound (DynamicSspController).
enum class RetuneKind { kSpeculation, kStaleness };

const char* RetuneKindName(RetuneKind kind);

struct RetuneRecord {
  RetuneKind kind = RetuneKind::kSpeculation;
  EpochId epoch = 0;  // the epoch that just finished
  SimTime at;
  // kSpeculation: the newly tuned parameters.
  Duration abort_time;
  double abort_rate = 0.0;
  // kStaleness: the newly tuned bound and the smoothed straggler ratio
  // (slowest / fastest mean push inter-arrival) that drove it.
  std::uint64_t staleness = 0;
  double straggler_ratio = 0.0;
  std::uint64_t epoch_pushes = 0;  // pushes the tuner saw for this epoch
};

class DecisionAuditLog {
 public:
  void RecordCheck(const CheckRecord& record);
  void RecordRetune(const RetuneRecord& record);

  std::vector<CheckRecord> checks() const;
  std::vector<RetuneRecord> retunes() const;
  std::size_t check_count() const;

  // JSON dump: {"checks":[...],"retunes":[...]}.
  void ExportJson(std::ostream& os) const;

 private:
  mutable std::mutex mutex_;
  std::vector<CheckRecord> checks_;
  std::vector<RetuneRecord> retunes_;
};

}  // namespace specsync::obs
