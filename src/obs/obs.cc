#include "obs/obs.h"

#include <fstream>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "obs/json.h"

namespace specsync::obs {

namespace {

using internal::JsonEscape;
using internal::JsonNumber;

// Registry names may carry an embedded label block — `base{key=value,...}`,
// the convention the net layer uses for per-link/per-shard instruments (e.g.
// "net.link.reconnects{link=127.0.0.1:9000}"). Prometheus exposition is
// strict about both halves: metric names match [a-zA-Z_:][a-zA-Z0-9_:]*,
// label names match [a-zA-Z_][a-zA-Z0-9_]*, and label values are quoted
// strings with \\, \", and \n escaped. The splitter below produces a legal
// family name plus parsed labels so histogram output can merge in its own
// `le` label.
struct PromName {
  std::string family;
  std::vector<std::pair<std::string, std::string>> labels;
};

std::string SanitizeIdent(const std::string& raw, bool allow_colon) {
  std::string out;
  out.reserve(raw.size() + 1);
  for (char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' ||
                    (allow_colon && c == ':');
    out += ok ? c : '_';
  }
  if (out.empty()) out = "_";
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string EscapeLabelValue(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

PromName ParsePrometheusName(const std::string& name) {
  PromName out;
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    out.family = SanitizeIdent(name, /*allow_colon=*/true);
    return out;
  }
  out.family = SanitizeIdent(name.substr(0, brace), /*allow_colon=*/true);
  // key=value pairs separated by ','; values must not contain ',' or '}'
  // (endpoint strings — host:port — and shard ids never do).
  std::size_t pos = brace + 1;
  const std::size_t end = name.size() - 1;
  while (pos < end) {
    std::size_t comma = name.find(',', pos);
    if (comma == std::string::npos || comma > end) comma = end;
    const std::string pair = name.substr(pos, comma - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string::npos) {
      out.labels.emplace_back(SanitizeIdent(pair.substr(0, eq),
                                            /*allow_colon=*/false),
                              EscapeLabelValue(pair.substr(eq + 1)));
    }
    pos = comma + 1;
  }
  if (out.labels.empty()) {
    // Braces that held no key=value pair are not the label convention —
    // sanitize the whole composite name rather than silently dropping bytes.
    out.family = SanitizeIdent(name, /*allow_colon=*/true);
  }
  return out;
}

// Renders `{k="v",...}` merging an optional extra label (histogram `le`).
std::string LabelBlock(const PromName& prom, const std::string& extra_key = "",
                       const std::string& extra_value = "") {
  if (prom.labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : prom.labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + value + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + extra_value + "\"";
  }
  out += "}";
  return out;
}

// One # TYPE line per metric family: labeled variants of the same base name
// sort adjacently in the registry's name-ordered snapshots, so tracking the
// previously emitted family suffices.
void EmitTypeLine(std::ostream& os, const std::string& family,
                  const char* type, std::string& last_family) {
  if (family == last_family) return;
  last_family = family;
  os << "# TYPE " << family << " " << type << "\n";
}

void WriteHistogramJson(const LatencyHistogram& h, std::ostream& os) {
  os << "{\"count\":" << h.count()
     << ",\"sum_s\":" << JsonNumber(h.sum_seconds())
     << ",\"mean_s\":" << JsonNumber(h.mean_seconds())
     << ",\"max_s\":" << JsonNumber(h.max_seconds())
     << ",\"p50_s\":" << JsonNumber(h.ApproxQuantileSeconds(0.50))
     << ",\"p95_s\":" << JsonNumber(h.ApproxQuantileSeconds(0.95))
     << ",\"p99_s\":" << JsonNumber(h.ApproxQuantileSeconds(0.99))
     << ",\"buckets\":[";
  bool first = true;
  for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
    const std::uint64_t count = h.bucket_count(b);
    if (count == 0) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"le_s\":" << JsonNumber(LatencyHistogram::UpperBoundSeconds(b))
       << ",\"count\":" << count << "}";
  }
  os << "]}";
}

}  // namespace

void WriteMetricsJson(const ObsContext& obs, std::ostream& os) {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : obs.metrics.CounterValues()) {
    if (!first) os << ",";
    first = false;
    os << '"' << JsonEscape(name) << "\":" << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : obs.metrics.GaugeValues()) {
    if (!first) os << ",";
    first = false;
    os << '"' << JsonEscape(name) << "\":" << JsonNumber(value);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : obs.metrics.Histograms()) {
    if (!first) os << ",";
    first = false;
    os << '"' << JsonEscape(name) << "\":";
    WriteHistogramJson(*histogram, os);
  }
  os << "},\"span_events\":" << obs.spans.event_count()
     << ",\"decision_audit\":";
  obs.audit.ExportJson(os);
  os << "}\n";
}

void WriteMetricsPrometheus(const MetricsRegistry& metrics, std::ostream& os) {
  std::string last_family;
  for (const auto& [name, value] : metrics.CounterValues()) {
    const PromName prom = ParsePrometheusName(name);
    EmitTypeLine(os, prom.family, "counter", last_family);
    os << prom.family << LabelBlock(prom) << " " << value << "\n";
  }
  last_family.clear();
  for (const auto& [name, value] : metrics.GaugeValues()) {
    const PromName prom = ParsePrometheusName(name);
    EmitTypeLine(os, prom.family, "gauge", last_family);
    os << prom.family << LabelBlock(prom) << " " << JsonNumber(value) << "\n";
  }
  last_family.clear();
  for (const auto& [name, histogram] : metrics.Histograms()) {
    const PromName prom = ParsePrometheusName(name);
    EmitTypeLine(os, prom.family, "histogram", last_family);
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b + 1 < LatencyHistogram::kBuckets; ++b) {
      const std::uint64_t count = histogram->bucket_count(b);
      if (count == 0) continue;
      cumulative += count;
      os << prom.family << "_bucket"
         << LabelBlock(prom, "le",
                       JsonNumber(LatencyHistogram::UpperBoundSeconds(b)))
         << " " << cumulative << "\n";
    }
    os << prom.family << "_bucket" << LabelBlock(prom, "le", "+Inf") << " "
       << histogram->count() << "\n"
       << prom.family << "_sum" << LabelBlock(prom) << " "
       << JsonNumber(histogram->sum_seconds()) << "\n"
       << prom.family << "_count" << LabelBlock(prom) << " "
       << histogram->count() << "\n";
  }
}

bool WriteMetricsJsonFile(const ObsContext& obs, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    SPECSYNC_LOG(kWarning) << "obs: cannot open metrics path " << path;
    return false;
  }
  WriteMetricsJson(obs, out);
  return true;
}

bool WriteChromeTraceFile(const SpanRecorder& spans, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    SPECSYNC_LOG(kWarning) << "obs: cannot open trace path " << path;
    return false;
  }
  spans.ExportChromeTrace(out);
  return true;
}

}  // namespace specsync::obs
