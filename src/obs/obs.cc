#include "obs/obs.h"

#include <fstream>

#include "common/logging.h"
#include "obs/json.h"

namespace specsync::obs {

namespace {

using internal::JsonEscape;
using internal::JsonNumber;

std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void WriteHistogramJson(const LatencyHistogram& h, std::ostream& os) {
  os << "{\"count\":" << h.count()
     << ",\"sum_s\":" << JsonNumber(h.sum_seconds())
     << ",\"mean_s\":" << JsonNumber(h.mean_seconds())
     << ",\"max_s\":" << JsonNumber(h.max_seconds())
     << ",\"p50_s\":" << JsonNumber(h.ApproxQuantileSeconds(0.50))
     << ",\"p95_s\":" << JsonNumber(h.ApproxQuantileSeconds(0.95))
     << ",\"p99_s\":" << JsonNumber(h.ApproxQuantileSeconds(0.99))
     << ",\"buckets\":[";
  bool first = true;
  for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
    const std::uint64_t count = h.bucket_count(b);
    if (count == 0) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"le_s\":" << JsonNumber(LatencyHistogram::UpperBoundSeconds(b))
       << ",\"count\":" << count << "}";
  }
  os << "]}";
}

}  // namespace

void WriteMetricsJson(const ObsContext& obs, std::ostream& os) {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : obs.metrics.CounterValues()) {
    if (!first) os << ",";
    first = false;
    os << '"' << JsonEscape(name) << "\":" << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : obs.metrics.GaugeValues()) {
    if (!first) os << ",";
    first = false;
    os << '"' << JsonEscape(name) << "\":" << JsonNumber(value);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : obs.metrics.Histograms()) {
    if (!first) os << ",";
    first = false;
    os << '"' << JsonEscape(name) << "\":";
    WriteHistogramJson(*histogram, os);
  }
  os << "},\"span_events\":" << obs.spans.event_count()
     << ",\"decision_audit\":";
  obs.audit.ExportJson(os);
  os << "}\n";
}

void WriteMetricsPrometheus(const MetricsRegistry& metrics, std::ostream& os) {
  for (const auto& [name, value] : metrics.CounterValues()) {
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " counter\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : metrics.GaugeValues()) {
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " gauge\n"
       << prom << " " << JsonNumber(value) << "\n";
  }
  for (const auto& [name, histogram] : metrics.Histograms()) {
    const std::string prom = PrometheusName(name);
    os << "# TYPE " << prom << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b + 1 < LatencyHistogram::kBuckets; ++b) {
      const std::uint64_t count = histogram->bucket_count(b);
      if (count == 0) continue;
      cumulative += count;
      os << prom << "_bucket{le=\""
         << JsonNumber(LatencyHistogram::UpperBoundSeconds(b)) << "\"} "
         << cumulative << "\n";
    }
    os << prom << "_bucket{le=\"+Inf\"} " << histogram->count() << "\n"
       << prom << "_sum " << JsonNumber(histogram->sum_seconds()) << "\n"
       << prom << "_count " << histogram->count() << "\n";
  }
}

bool WriteMetricsJsonFile(const ObsContext& obs, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    SPECSYNC_LOG(kWarning) << "obs: cannot open metrics path " << path;
    return false;
  }
  WriteMetricsJson(obs, out);
  return true;
}

bool WriteChromeTraceFile(const SpanRecorder& spans, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    SPECSYNC_LOG(kWarning) << "obs: cannot open trace path " << path;
    return false;
  }
  spans.ExportChromeTrace(out);
  return true;
}

}  // namespace specsync::obs
