// Tiny JSON serialization helpers shared by the obs exporters. Write-only:
// the repo never parses JSON, it only emits it for external tools.
#pragma once

#include <string>

namespace specsync::obs::internal {

// Escapes quotes, backslashes, and control characters for a JSON string.
std::string JsonEscape(const std::string& s);

// Formats a double as a JSON-safe number (finite values round-trip at 12
// significant digits; NaN/inf become null, which json.tool accepts).
std::string JsonNumber(double v);

// True when `s` is already a valid bare JSON number token, so arg values can
// be emitted unquoted.
bool IsJsonNumber(const std::string& s);

}  // namespace specsync::obs::internal
