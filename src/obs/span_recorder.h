// Per-worker timeline capture with Chrome trace-event export.
//
// The engines record spans (compute, per-shard pull, push, aborted compute)
// and instant events (notify, re-sync decision, retune) against named tracks
// — one track per worker plus one for the scheduler. Times ride the SimTime
// axis: virtual seconds in the simulator, wall seconds since run start in the
// threaded runtime, so the exact timelines the paper reads its argument off
// (Fig. 2, Fig. 13) come out of either engine and load directly in
// ui.perfetto.dev or chrome://tracing.
//
// Recording only appends under a mutex and never feeds anything back into
// the engines, so a recorder can be attached to a deterministic run without
// changing its trace digest.
//
// Cross-process stitching. An event may carry flow ids: `flow_out` marks it
// as the producer of a logical request (exported as a Chrome flow-begin "s"
// event), `flow_in` as a consumer (flow-end "f" with bp:"e"). Perfetto draws
// an arrow between any "s"/"f" pair sharing an id, even across processes, so
// a worker's pull span links to the server-side serve span it caused. Each
// process exports its own pid (SetProcessInfo) plus its span-clock epoch in
// CLOCK_MONOTONIC nanoseconds (SetWallEpochNanos, exported as a top-level
// "clock_epoch_ns" key): on one host the monotonic clock is shared by all
// processes, so a merge tool (scripts/specsync_obsctl) aligns timelines by
// shifting every file onto the earliest epoch. See DESIGN.md §14.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/sim_time.h"

namespace specsync::obs {

// One key -> preformatted value pair serialized into the event's "args".
// Values are emitted verbatim when they parse as plain JSON numbers and
// quoted otherwise, so callers just stringify.
using SpanArgs = std::vector<std::pair<std::string, std::string>>;

struct TraceEvent {
  enum class Phase { kSpan, kInstant };
  Phase phase = Phase::kSpan;
  std::string name;
  std::string category;
  std::uint32_t track = 0;  // "tid" in the exported trace
  SimTime begin;
  Duration duration = Duration::Zero();  // zero for instants
  SpanArgs args;
  // Chrome flow-event ids (0 = none). flow_out emits a flow-begin at this
  // event's start; flow_in emits an enclosing flow-end.
  std::uint64_t flow_out = 0;
  std::uint64_t flow_in = 0;

  SimTime end() const { return begin + duration; }
};

class SpanRecorder {
 public:
  // Human-readable track label ("worker 3", "scheduler") shown by Perfetto.
  void SetTrackName(std::uint32_t track, std::string name);

  void AddSpan(std::string name, std::string category, std::uint32_t track,
               SimTime begin, SimTime end, SpanArgs args = {});
  // AddSpan plus flow ids for cross-process request stitching (0 = none).
  void AddSpanWithFlow(std::string name, std::string category,
                       std::uint32_t track, SimTime begin, SimTime end,
                       std::uint64_t flow_out, std::uint64_t flow_in,
                       SpanArgs args = {});
  void AddInstant(std::string name, std::string category, std::uint32_t track,
                  SimTime time, SpanArgs args = {});

  // Process identity stamped on every exported event (default pid 1, no
  // process_name metadata) — required before merging traces from several
  // processes, whose default pids would collide.
  void SetProcessInfo(std::uint32_t pid, std::string name);

  // The CLOCK_MONOTONIC instant (obs::WallNanos units) this recorder calls
  // SimTime zero. Set explicitly by engines that own a run clock; transports
  // that record against wall time call EnsureWallEpochNanos to self-anchor.
  void SetWallEpochNanos(std::uint64_t epoch_ns);
  std::uint64_t wall_epoch_nanos() const;
  // Sets the epoch to WallNanos() now if unset; returns the (final) epoch.
  std::uint64_t EnsureWallEpochNanos();

  std::size_t event_count() const;
  // Copy of all events in recording order (tests, post-run analysis).
  std::vector<TraceEvent> Events() const;

  // Chrome trace-event JSON ({"traceEvents": [...]}) loadable in
  // ui.perfetto.dev and chrome://tracing. Timestamps are microseconds.
  void ExportChromeTrace(std::ostream& os) const;

 private:
  void Append(TraceEvent event);

  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::vector<std::pair<std::uint32_t, std::string>> track_names_;
  std::uint32_t pid_ = 1;
  std::string process_name_;
  std::uint64_t wall_epoch_ns_ = 0;
};

}  // namespace specsync::obs
