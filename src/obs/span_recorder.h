// Per-worker timeline capture with Chrome trace-event export.
//
// The engines record spans (compute, per-shard pull, push, aborted compute)
// and instant events (notify, re-sync decision, retune) against named tracks
// — one track per worker plus one for the scheduler. Times ride the SimTime
// axis: virtual seconds in the simulator, wall seconds since run start in the
// threaded runtime, so the exact timelines the paper reads its argument off
// (Fig. 2, Fig. 13) come out of either engine and load directly in
// ui.perfetto.dev or chrome://tracing.
//
// Recording only appends under a mutex and never feeds anything back into
// the engines, so a recorder can be attached to a deterministic run without
// changing its trace digest.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/sim_time.h"

namespace specsync::obs {

// One key -> preformatted value pair serialized into the event's "args".
// Values are emitted verbatim when they parse as plain JSON numbers and
// quoted otherwise, so callers just stringify.
using SpanArgs = std::vector<std::pair<std::string, std::string>>;

struct TraceEvent {
  enum class Phase { kSpan, kInstant };
  Phase phase = Phase::kSpan;
  std::string name;
  std::string category;
  std::uint32_t track = 0;  // "tid" in the exported trace
  SimTime begin;
  Duration duration = Duration::Zero();  // zero for instants
  SpanArgs args;

  SimTime end() const { return begin + duration; }
};

class SpanRecorder {
 public:
  // Human-readable track label ("worker 3", "scheduler") shown by Perfetto.
  void SetTrackName(std::uint32_t track, std::string name);

  void AddSpan(std::string name, std::string category, std::uint32_t track,
               SimTime begin, SimTime end, SpanArgs args = {});
  void AddInstant(std::string name, std::string category, std::uint32_t track,
                  SimTime time, SpanArgs args = {});

  std::size_t event_count() const;
  // Copy of all events in recording order (tests, post-run analysis).
  std::vector<TraceEvent> Events() const;

  // Chrome trace-event JSON ({"traceEvents": [...]}) loadable in
  // ui.perfetto.dev and chrome://tracing. Timestamps are microseconds.
  void ExportChromeTrace(std::ostream& os) const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::vector<std::pair<std::uint32_t, std::string>> track_names_;
};

}  // namespace specsync::obs
