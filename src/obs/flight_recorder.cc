#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "obs/json.h"
#include "obs/metrics.h"

namespace specsync::obs {

namespace {

// The signal handler needs the recorder without any lock or allocation.
std::atomic<FlightRecorder*> g_signal_recorder{nullptr};

// Bumped whenever a recorder is destroyed so per-thread ring caches keyed on
// the recorder's address cannot survive an address reuse (tests construct
// recorders on the stack; the process singleton never bumps this).
std::atomic<std::uint64_t> g_recorder_epoch{1};

constexpr int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};

void SigWrite(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t wrote = ::write(fd, data, len);
    if (wrote <= 0) return;
    data += wrote;
    len -= static_cast<std::size_t>(wrote);
  }
}

void SigWriteStr(int fd, const char* s) { SigWrite(fd, s, std::strlen(s)); }

void SigWriteU64(int fd, std::uint64_t v) {
  char buf[20];
  std::size_t i = sizeof(buf);
  do {
    buf[--i] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  SigWrite(fd, buf + i, sizeof(buf) - i);
}

void SigWriteI64(int fd, std::int64_t v) {
  std::uint64_t mag = static_cast<std::uint64_t>(v);
  if (v < 0) {
    SigWrite(fd, "-", 1);
    mag = ~mag + 1;
  }
  SigWriteU64(fd, mag);
}

// Labels are caller-supplied char arrays; in a crash dump a torn slot may
// hold arbitrary bytes, so anything outside the printable-and-JSON-safe set
// degrades to '?' rather than corrupting the document.
void SigWriteLabel(int fd, const char* label, std::size_t max) {
  for (std::size_t i = 0; i < max && label[i] != '\0'; ++i) {
    char c = label[i];
    if (c < 0x20 || c == '"' || c == '\\' || c < 0) c = '?';
    SigWrite(fd, &c, 1);
  }
}

void FatalSignalHandler(int signal) {
  FlightRecorder* recorder = g_signal_recorder.load(std::memory_order_acquire);
  if (recorder != nullptr) recorder->DumpToConfiguredPathSignalSafe(signal);
  std::signal(signal, SIG_DFL);
  ::raise(signal);
}

}  // namespace

const char* FlightKindName(FlightKind kind) {
  switch (kind) {
    case FlightKind::kSpan: return "span";
    case FlightKind::kInstant: return "instant";
    case FlightKind::kAudit: return "audit";
    case FlightKind::kNetState: return "net_state";
    case FlightKind::kLifecycle: return "lifecycle";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::Instance() {
  // Leaked on purpose: the fatal-signal path may fire during static
  // destruction and must still find live rings.
  static FlightRecorder* instance = [] {
    auto* recorder = new FlightRecorder();
    recorder->InitFromEnv();
    return recorder;
  }();
  return *instance;
}

FlightRecorder::~FlightRecorder() {
  FlightRecorder* self = this;
  g_signal_recorder.compare_exchange_strong(self, nullptr);
  g_recorder_epoch.fetch_add(1, std::memory_order_release);
}

void FlightRecorder::InitFromEnv() {
  const char* path = std::getenv("SPECSYNC_FLIGHT_OUT");
  if (path == nullptr || *path == '\0') return;
  Enable();
  SetDumpPath(path);
  InstallFatalSignalHandlers();
}

void FlightRecorder::Enable(std::size_t events_per_thread) {
  std::scoped_lock lock(mutex_);
  capacity_ = std::max<std::size_t>(1, events_per_thread);
  enabled_.store(true, std::memory_order_release);
}

void FlightRecorder::SetDumpPath(std::string path) {
  std::scoped_lock lock(mutex_);
  dump_path_ = std::move(path);
  const std::size_t n =
      std::min(dump_path_.size(), sizeof(dump_path_sig_) - 1);
  std::memcpy(dump_path_sig_, dump_path_.data(), n);
  dump_path_sig_[n] = '\0';
}

std::string FlightRecorder::dump_path() const {
  std::scoped_lock lock(mutex_);
  return dump_path_;
}

FlightRecorder::ThreadRing* FlightRecorder::RingForThisThread() {
  std::scoped_lock lock(mutex_);
  const auto it = by_thread_.find(std::this_thread::get_id());
  if (it != by_thread_.end()) return it->second;
  const std::size_t index = owned_.size();
  if (index >= kMaxRings) return nullptr;
  owned_.push_back(std::make_unique<ThreadRing>(capacity_));
  ThreadRing* ring = owned_.back().get();
  rings_[index].store(ring, std::memory_order_release);
  ring_count_.store(owned_.size(), std::memory_order_release);
  by_thread_.emplace(std::this_thread::get_id(), ring);
  return ring;
}

void FlightRecorder::Record(FlightKind kind, const char* label, std::int64_t a,
                            std::int64_t b) {
  if (!enabled()) return;
  static thread_local FlightRecorder* cached_owner = nullptr;
  static thread_local ThreadRing* cached_ring = nullptr;
  static thread_local std::uint64_t cached_epoch = 0;
  const std::uint64_t epoch = g_recorder_epoch.load(std::memory_order_acquire);
  if (cached_owner != this || cached_epoch != epoch) {
    cached_ring = RingForThisThread();
    cached_owner = this;
    cached_epoch = epoch;
  }
  ThreadRing* ring = cached_ring;
  if (ring == nullptr) return;  // > kMaxRings recording threads
  const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
  FlightEvent& slot = ring->slots[head % ring->capacity];
  slot.ts_ns = WallNanos();
  slot.kind = kind;
  slot.a = a;
  slot.b = b;
  std::size_t i = 0;
  if (label != nullptr) {
    for (; i + 1 < sizeof(slot.label) && label[i] != '\0'; ++i) {
      slot.label[i] = label[i];
    }
  }
  slot.label[i] = '\0';
  ring->head.store(head + 1, std::memory_order_release);
}

void FlightRecorder::DumpJson(std::ostream& os, const char* reason,
                              int signal) const {
  std::scoped_lock lock(mutex_);
  os << "{\"reason\":\""
     << internal::JsonEscape(reason != nullptr ? reason : "") << "\""
     << ",\"signal\":" << signal << ",\"dumped_at_ns\":" << WallNanos()
     << ",\"capacity_per_thread\":" << capacity_ << ",\"threads\":[";
  for (std::size_t r = 0; r < owned_.size(); ++r) {
    const ThreadRing& ring = *owned_[r];
    const std::uint64_t head = ring.head.load(std::memory_order_acquire);
    const std::uint64_t count =
        std::min<std::uint64_t>(head, ring.capacity);
    if (r > 0) os << ",";
    os << "{\"ring\":" << r << ",\"recorded\":" << head
       << ",\"dropped\":" << head - count << ",\"events\":[";
    for (std::uint64_t seq = head - count; seq < head; ++seq) {
      const FlightEvent& event = ring.slots[seq % ring.capacity];
      if (seq != head - count) os << ",";
      os << "{\"ts_ns\":" << event.ts_ns << ",\"kind\":\""
         << FlightKindName(event.kind) << "\",\"label\":\""
         << internal::JsonEscape(event.label) << "\",\"a\":" << event.a
         << ",\"b\":" << event.b << "}";
    }
    os << "]}";
  }
  os << "]}\n";
}

bool FlightRecorder::DumpNow(const char* reason) {
  if (!enabled()) return false;
  std::string path = dump_path();
  if (path.empty()) return false;
  std::ofstream os(path);
  if (!os) return false;
  DumpJson(os, reason);
  os.flush();
  return os.good();
}

void FlightRecorder::DumpToFdSignalSafe(int fd, int signal) const {
  SigWriteStr(fd, "{\"reason\":\"fatal_signal\",\"signal\":");
  SigWriteI64(fd, signal);
  SigWriteStr(fd, ",\"dumped_at_ns\":");
  SigWriteU64(fd, WallNanos());
  SigWriteStr(fd, ",\"capacity_per_thread\":0,\"threads\":[");
  const std::size_t rings = ring_count_.load(std::memory_order_acquire);
  bool first_ring = true;
  for (std::size_t r = 0; r < rings && r < kMaxRings; ++r) {
    const ThreadRing* ring = rings_[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    if (!first_ring) SigWriteStr(fd, ",");
    first_ring = false;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t count = std::min<std::uint64_t>(head, ring->capacity);
    SigWriteStr(fd, "{\"ring\":");
    SigWriteU64(fd, r);
    SigWriteStr(fd, ",\"recorded\":");
    SigWriteU64(fd, head);
    SigWriteStr(fd, ",\"dropped\":");
    SigWriteU64(fd, head - count);
    SigWriteStr(fd, ",\"events\":[");
    for (std::uint64_t seq = head - count; seq < head; ++seq) {
      const FlightEvent& event = ring->slots[seq % ring->capacity];
      if (seq != head - count) SigWriteStr(fd, ",");
      SigWriteStr(fd, "{\"ts_ns\":");
      SigWriteU64(fd, event.ts_ns);
      SigWriteStr(fd, ",\"kind\":\"");
      SigWriteStr(fd, FlightKindName(event.kind));
      SigWriteStr(fd, "\",\"label\":\"");
      SigWriteLabel(fd, event.label, sizeof(event.label));
      SigWriteStr(fd, "\",\"a\":");
      SigWriteI64(fd, event.a);
      SigWriteStr(fd, ",\"b\":");
      SigWriteI64(fd, event.b);
      SigWriteStr(fd, "}");
    }
    SigWriteStr(fd, "]}");
  }
  SigWriteStr(fd, "]}\n");
}

void FlightRecorder::DumpToConfiguredPathSignalSafe(int signal) {
  if (dump_path_sig_[0] == '\0') return;
  const int fd = ::open(dump_path_sig_, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  DumpToFdSignalSafe(fd, signal);
  ::close(fd);
}

void FlightRecorder::InstallFatalSignalHandlers() {
  g_signal_recorder.store(this, std::memory_order_release);
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &FatalSignalHandler;
  sigemptyset(&action.sa_mask);
  for (const int signal : kFatalSignals) {
    ::sigaction(signal, &action, nullptr);
  }
}

std::uint64_t FlightRecorder::total_recorded() const {
  std::scoped_lock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : owned_) {
    total += ring->head.load(std::memory_order_acquire);
  }
  return total;
}

}  // namespace specsync::obs
