#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace specsync::obs::internal {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream out;
  out.precision(12);
  out << v;
  return out.str();
}

bool IsJsonNumber(const std::string& s) {
  if (s.empty()) return false;
  const char* begin = s.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end != begin + s.size()) return false;
  if (!std::isfinite(v)) return false;
  // strtod accepts leading whitespace and forms like ".5" or "0x1p3" that are
  // not valid JSON tokens; require a digit or minus up front and no hex.
  if (!(s[0] == '-' || (s[0] >= '0' && s[0] <= '9'))) return false;
  if (s.find_first_of("xXpP") != std::string::npos) return false;
  return true;
}

}  // namespace specsync::obs::internal
