#include "harness/parallel_runner.h"

#include <chrono>

#include "common/check.h"
#include "common/hash.h"
#include "common/thread_pool.h"

namespace specsync {

namespace {

CellResult RunCell(const ExperimentCell& cell, std::uint64_t seed) {
  ExperimentConfig config = cell.config;
  config.seed = seed;
  const auto start = std::chrono::steady_clock::now();
  CellResult out;
  out.result = RunExperiment(cell.workload, config);
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  out.seed = seed;
  out.trace_digest = TraceDigest(out.result.sim.trace);
  out.sim_events = out.result.sim.sim_events;
  return out;
}

}  // namespace

ParallelRunner::ParallelRunner(ParallelRunnerOptions options)
    : options_(options) {
  SPECSYNC_CHECK_GT(options_.threads, 0u);
}

std::uint64_t ParallelRunner::CellSeed(std::uint64_t root_seed,
                                       const ExperimentCell& cell) {
  if (cell.explicit_seed.has_value()) return *cell.explicit_seed;
  return Fnv1a()
      .U64(root_seed)
      .Str(cell.workload.name)
      .Str(cell.config.scheme.DisplayName())
      .Str(cell.label)
      .U64(cell.replicate)
      .digest();
}

std::vector<CellResult> ParallelRunner::Run(
    const std::vector<ExperimentCell>& cells) const {
  std::vector<CellResult> results(cells.size());
  if (options_.threads == 1) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      results[i] = RunCell(cells[i], CellSeed(options_.root_seed, cells[i]));
    }
    return results;
  }
  ThreadPool pool(options_.threads);
  const std::uint64_t root = options_.root_seed;
  ParallelFor(pool, cells.size(), [&cells, &results, root](std::size_t i) {
    results[i] = RunCell(cells[i], ParallelRunner::CellSeed(root, cells[i]));
  });
  return results;
}

}  // namespace specsync
