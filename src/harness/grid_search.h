// SpecSync-Cherrypick: exhaustive hyperparameter search (paper Sec. VI-A,
// Table II).
//
// Runs one full (short-budget) training per (ABORT_TIME, ABORT_RATE) grid
// point and keeps the pair with the best time-to-target (falling back to
// lowest final loss when nothing converges). The paper bounds ABORT_TIME by
// half the iteration time and tries 10 ABORT_RATE values; we default to the
// same shape.
#pragma once

#include <vector>

#include "harness/parallel_runner.h"

namespace specsync {

struct GridSearchConfig {
  // ABORT_TIME candidates as fractions of the workload iteration time.
  std::vector<double> time_fractions = {0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5};
  // ABORT_RATE candidates (fraction of m).
  std::vector<double> rates = {0.05, 0.1, 0.15, 0.2, 0.25,
                               0.3,  0.4, 0.5,  0.6, 0.75};
  // Budget per trial.
  SimTime trial_max_time = SimTime::FromSeconds(4000.0);
  std::uint64_t trial_max_pushes = 0;
  std::uint64_t seed = 11;
  // Trials are independent cells; >1 fans them over a thread pool. The
  // selected optimum and all trial results are identical at any thread count
  // (every trial pins `seed`, so only the grid point varies).
  std::size_t threads = 1;
};

struct GridTrial {
  SpeculationParams params;
  std::optional<Duration> time_to_target;
  double final_loss = 0.0;
};

struct GridSearchResult {
  SpeculationParams best;
  std::vector<GridTrial> trials;
  // Simulated cluster-hours the search consumed (Table II's "total search
  // time"): sum over trials of simulated end time.
  Duration total_simulated_time = Duration::Zero();
  // Host-side telemetry: the cells and per-cell results (trial order), the
  // wall time of the whole search, and the sum of per-trial wall times (what
  // a serial search would have cost).
  std::vector<ExperimentCell> cells;
  std::vector<CellResult> cell_results;
  double wall_seconds = 0.0;
  double serial_wall_estimate = 0.0;
};

GridSearchResult CherrypickSearch(const Workload& workload,
                                  const ClusterSpec& cluster,
                                  const GridSearchConfig& config);

}  // namespace specsync
