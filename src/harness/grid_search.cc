#include "harness/grid_search.h"

#include <limits>

#include "common/check.h"
#include "common/logging.h"

namespace specsync {

GridSearchResult CherrypickSearch(const Workload& workload,
                                  const ClusterSpec& cluster,
                                  const GridSearchConfig& config) {
  SPECSYNC_CHECK(!config.time_fractions.empty());
  SPECSYNC_CHECK(!config.rates.empty());

  GridSearchResult result;
  double best_time = std::numeric_limits<double>::infinity();
  double best_loss = std::numeric_limits<double>::infinity();
  bool best_converged = false;

  for (double fraction : config.time_fractions) {
    for (double rate : config.rates) {
      SpeculationParams params;
      params.abort_time = workload.iteration_time * fraction;
      params.abort_rate = rate;

      ExperimentConfig trial;
      trial.cluster = cluster;
      trial.scheme = SchemeSpec::Cherrypick(params);
      trial.max_time = config.trial_max_time;
      trial.max_pushes = config.trial_max_pushes;
      trial.seed = config.seed;
      ExperimentResult run = RunExperiment(workload, trial);

      GridTrial logged;
      logged.params = params;
      logged.time_to_target = run.time_to_target;
      logged.final_loss = run.final_loss;
      result.trials.push_back(logged);
      result.total_simulated_time += run.sim.end_time - SimTime::Zero();

      const bool converged = run.time_to_target.has_value();
      const double t = converged ? run.time_to_target->seconds()
                                 : std::numeric_limits<double>::infinity();
      const bool better =
          (converged && (!best_converged || t < best_time)) ||
          (!converged && !best_converged && run.final_loss < best_loss);
      if (better) {
        best_time = t;
        best_loss = run.final_loss;
        best_converged = converged;
        result.best = params;
      }
    }
  }
  SPECSYNC_LOG(kInfo) << "cherrypick(" << workload.name
                      << "): abort_time=" << result.best.abort_time
                      << " abort_rate=" << result.best.abort_rate
                      << " over " << result.trials.size() << " trials";
  return result;
}

}  // namespace specsync
