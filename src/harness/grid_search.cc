#include "harness/grid_search.h"

#include <chrono>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/logging.h"

namespace specsync {

GridSearchResult CherrypickSearch(const Workload& workload,
                                  const ClusterSpec& cluster,
                                  const GridSearchConfig& config) {
  SPECSYNC_CHECK(!config.time_fractions.empty());
  SPECSYNC_CHECK(!config.rates.empty());

  GridSearchResult result;
  // One cell per grid point, every trial pinned to the same seed so the grid
  // point is the only varying factor (the paper's controlled search).
  for (double fraction : config.time_fractions) {
    for (double rate : config.rates) {
      SpeculationParams params;
      params.abort_time = workload.iteration_time * fraction;
      params.abort_rate = rate;

      ExperimentCell cell;
      cell.workload = workload;
      cell.config.cluster = cluster;
      cell.config.scheme = SchemeSpec::Cherrypick(params);
      cell.config.max_time = config.trial_max_time;
      cell.config.max_pushes = config.trial_max_pushes;
      cell.explicit_seed = config.seed;
      std::ostringstream label;
      label << "grid f=" << fraction << " r=" << rate;
      cell.label = label.str();
      result.cells.push_back(std::move(cell));
    }
  }

  ParallelRunnerOptions options;
  options.threads = config.threads;
  const auto start = std::chrono::steady_clock::now();
  result.cell_results = ParallelRunner(options).Run(result.cells);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Selection sweeps the trials in grid order, exactly as the serial loop
  // did: converged trials by time-to-target, else lowest final loss.
  double best_time = std::numeric_limits<double>::infinity();
  double best_loss = std::numeric_limits<double>::infinity();
  bool best_converged = false;
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const ExperimentResult& run = result.cell_results[i].result;
    const SpeculationParams& params =
        result.cells[i].config.scheme.fixed_params;
    result.serial_wall_estimate += result.cell_results[i].wall_seconds;

    GridTrial logged;
    logged.params = params;
    logged.time_to_target = run.time_to_target;
    logged.final_loss = run.final_loss;
    result.trials.push_back(logged);
    result.total_simulated_time += run.sim.end_time - SimTime::Zero();

    const bool converged = run.time_to_target.has_value();
    const double t = converged ? run.time_to_target->seconds()
                               : std::numeric_limits<double>::infinity();
    const bool better =
        (converged && (!best_converged || t < best_time)) ||
        (!converged && !best_converged && run.final_loss < best_loss);
    if (better) {
      best_time = t;
      best_loss = run.final_loss;
      best_converged = converged;
      result.best = params;
    }
  }
  SPECSYNC_LOG(kInfo) << "cherrypick(" << workload.name
                      << "): abort_time=" << result.best.abort_time
                      << " abort_rate=" << result.best.abort_rate
                      << " over " << result.trials.size() << " trials";
  return result;
}

}  // namespace specsync
