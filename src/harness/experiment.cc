#include "harness/experiment.h"

#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace specsync {

namespace {

std::unique_ptr<SpeedModel> MakeSpeedModel(const Workload& workload,
                                           const ClusterSpec& cluster,
                                           std::uint64_t seed) {
  std::unique_ptr<SpeedModel> base;
  if (cluster.class_multipliers.empty()) {
    base = std::make_unique<HomogeneousSpeedModel>(
        workload.iteration_time, cluster.compute_jitter_sigma);
  } else {
    base = HeterogeneousSpeedModel::EvenClasses(
        workload.iteration_time, cluster.num_workers,
        cluster.class_multipliers, cluster.compute_jitter_sigma);
  }
  if (cluster.straggler_probability > 0.0) {
    base = std::make_unique<StragglerInjectingSpeedModel>(
        std::move(base), cluster.straggler_probability,
        cluster.straggler_slowdown);
  }
  if (cluster.enable_contention) {
    ContentionConfig contention;
    contention.mean_gap = workload.iteration_time * cluster.contention_gap_iters;
    contention.mean_duration =
        workload.iteration_time * cluster.contention_duration_iters;
    contention.cohort_fraction = cluster.contention_cohort_fraction;
    contention.slowdown = cluster.contention_slowdown;
    base = std::make_unique<ContentionSpeedModel>(std::move(base), contention,
                                                  Rng(seed ^ 0xC047E47u));
  }
  return base;
}

}  // namespace

ExperimentResult RunExperiment(const Workload& workload,
                               const ExperimentConfig& config) {
  ClusterSimConfig sim_config;
  sim_config.num_workers = config.cluster.num_workers;
  sim_config.num_servers = config.cluster.num_servers;
  sim_config.batch_size = workload.batch_size;
  sim_config.scheme = config.scheme;
  sim_config.eval_interval = workload.eval_interval;
  sim_config.eval_subsample = workload.eval_subsample;
  sim_config.loss_target = config.loss_target_override > 0.0
                               ? config.loss_target_override
                               : workload.loss_target;
  sim_config.stop_on_convergence = config.stop_on_convergence;
  sim_config.max_time = config.max_time;
  sim_config.max_pushes = config.max_pushes;
  sim_config.seed = config.seed;
  sim_config.sgd_clip = workload.sgd_clip;
  sim_config.obs = config.obs;
  sim_config.event_queue = config.event_queue;
  sim_config.compression = config.compression;
  if (config.cluster.enable_stalls) {
    sim_config.stalls.enabled = true;
    sim_config.stalls.mean_gap =
        workload.iteration_time * config.cluster.stall_gap_iters;
    sim_config.stalls.mean_duration =
        workload.iteration_time * config.cluster.stall_duration_iters;
  }
  sim_config.faults = config.cluster.faults;

  ClusterSim sim(workload.model, workload.schedule,
                 MakeSpeedModel(workload, config.cluster, config.seed),
                 sim_config);
  ExperimentResult result;
  result.workload_name = workload.name;
  result.scheme_name = config.scheme.DisplayName();
  result.sim = sim.Run();
  result.final_loss = result.sim.final_loss;
  if (result.sim.convergence_time.has_value()) {
    result.time_to_target =
        *result.sim.convergence_time - SimTime::Zero();
    result.pushes_to_target = result.sim.convergence_pushes;
  }
  return result;
}

std::optional<double> LossAtTime(const TrainingTrace& trace, SimTime time) {
  std::optional<double> loss;
  for (const LossSample& sample : trace.losses()) {
    if (sample.time > time) break;
    loss = sample.loss;
  }
  return loss;
}

std::optional<SimTime> TimeToTarget(const TrainingTrace& trace, double target,
                                    std::size_t patience) {
  SPECSYNC_CHECK_GT(patience, 0u);
  std::size_t streak = 0;
  SimTime streak_start = SimTime::Zero();
  for (const LossSample& sample : trace.losses()) {
    if (sample.loss < target) {
      if (streak == 0) streak_start = sample.time;
      ++streak;
      if (streak >= patience) return streak_start;
    } else {
      streak = 0;
    }
  }
  return std::nullopt;
}

}  // namespace specsync
