// Experiment driver: one (workload, cluster, scheme) combination -> SimResult
// plus the derived metrics the paper reports.
#pragma once

#include <optional>
#include <string>

#include "harness/workload.h"
#include "sim/cluster.h"

namespace specsync {

// Cluster shape, mirroring the paper's testbeds (Sec. VI-A).
struct ClusterSpec {
  std::size_t num_workers = 40;
  // Parameter-server shard count (paper-like default: 4 server processes).
  std::size_t num_servers = 4;
  // Log-normal sigma of per-iteration compute jitter. Homogeneous EC2 nodes
  // doing identical work vary by a few percent iteration to iteration; the
  // transient-straggler knob below supplies the heavy tail.
  double compute_jitter_sigma = 0.08;
  // Per-class speed multipliers assigned round-robin; empty = homogeneous.
  // Cluster 2 (4 instance classes) uses {1.7, 0.9, 1.0, 0.5}-style factors.
  std::vector<double> class_multipliers;
  // Transient straggler injection (independent background load spikes): with
  // this probability an iteration runs `straggler_slowdown` times slower.
  double straggler_probability = 0.02;
  double straggler_slowdown = 3.0;
  // Correlated contention events (noisy neighbors / congestion hitting a
  // cohort of nodes at once) — the source of the bursty push arrivals the
  // paper's Fig. 3 traces show. Timescales are in units of the workload's
  // iteration time so every workload sees comparable burstiness.
  bool enable_contention = true;
  double contention_gap_iters = 5.0;       // mean gap between events
  double contention_duration_iters = 1.5;  // mean event length
  double contention_cohort_fraction = 0.3;
  double contention_slowdown = 2.5;
  // Server-side stalls (incast congestion / pauses): deliveries queued during
  // a stall land in one batch when it ends — the burst source. Timescales in
  // iteration units.
  bool enable_stalls = true;
  double stall_gap_iters = 3.0;       // mean gap between stalls
  double stall_duration_iters = 0.4;  // mean stall length
  // Fault injection (message drop/duplication/delay, slowdown windows, worker
  // crashes), forwarded to ClusterSimConfig::faults. Disabled by default.
  FaultPlanConfig faults;

  static ClusterSpec Homogeneous(std::size_t num_workers) {
    ClusterSpec c;
    c.num_workers = num_workers;
    return c;
  }
  // The paper's Cluster 2: 4 instance generations/sizes, 10 nodes each.
  static ClusterSpec Heterogeneous(std::size_t num_workers) {
    ClusterSpec c;
    c.num_workers = num_workers;
    c.class_multipliers = {1.7, 0.9, 1.0, 0.5};
    return c;
  }
};

struct ExperimentConfig {
  ClusterSpec cluster;
  SchemeSpec scheme;
  SimTime max_time = SimTime::FromSeconds(20000.0);
  std::uint64_t max_pushes = 0;
  std::uint64_t seed = 7;
  bool stop_on_convergence = true;
  // Override the workload's loss target (<=0 keeps the workload's own).
  double loss_target_override = 0.0;
  // Optional observability context, forwarded to ClusterSimConfig::obs.
  obs::ObsContext* obs = nullptr;
  // DES engine, forwarded to ClusterSimConfig::event_queue. Never changes a
  // result (identical pop order by construction), only wall time.
  EventQueueKind event_queue = EventQueueKind::kCalendar;
  // Gradient wire compression, forwarded to ClusterSimConfig::compression.
  CompressionSpec compression;
};

struct ExperimentResult {
  std::string workload_name;
  std::string scheme_name;
  SimResult sim;
  // Runtime to convergence; nullopt when the target was never met.
  std::optional<Duration> time_to_target;
  std::optional<std::uint64_t> pushes_to_target;
  double final_loss = 0.0;
};

ExperimentResult RunExperiment(const Workload& workload,
                               const ExperimentConfig& config);

// Loss at or before `time` (last sample <= time); nullopt before first sample.
std::optional<double> LossAtTime(const TrainingTrace& trace, SimTime time);

// Post-hoc convergence extraction: first sample time from which `patience`
// consecutive samples are below `target`.
std::optional<SimTime> TimeToTarget(const TrainingTrace& trace, double target,
                                    std::size_t patience = 5);

}  // namespace specsync
