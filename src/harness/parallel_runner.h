// Deterministic parallel experiment engine.
//
// Every paper figure is a grid of independent RunExperiment cells —
// (workload, scheme, replicate) — that the benches used to run strictly
// serially. ParallelRunner fans those cells across a fixed-size thread pool
// while guaranteeing results bit-identical to the serial path at any thread
// count:
//   - each cell's seed is forked from the root seed by its *semantic key*
//     (workload name, scheme name, label, replicate), never by submission or
//     completion order;
//   - each cell writes into a pre-assigned slot of the result vector, so the
//     output layout is fixed before any thread runs;
//   - a cell's simulation is single-threaded and shares only immutable state
//     (the workload's const Model / LearningRateSchedule) with its peers.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/workload.h"

namespace specsync {

// One independent experiment cell of a sweep grid.
struct ExperimentCell {
  Workload workload;
  ExperimentConfig config;  // config.seed is ignored; see seeding below
  // Extra semantic salt for the seed key, distinguishing cells that share
  // workload+scheme but differ otherwise (e.g. "workers=20", "hetero").
  std::string label;
  std::uint64_t replicate = 0;
  // When set, bypasses key-derived seeding (grid-search trials pin one seed
  // across the whole grid so only the speculation params vary).
  std::optional<std::uint64_t> explicit_seed;
};

struct CellResult {
  ExperimentResult result;
  std::uint64_t seed = 0;          // seed the cell actually ran with
  std::uint64_t trace_digest = 0;  // TraceDigest(result.sim.trace)
  std::uint64_t sim_events = 0;    // DES events processed by the cell's run
  double wall_seconds = 0.0;       // host wall time spent on this cell
};

struct ParallelRunnerOptions {
  // 1 = the serial reference path (runs inline, no pool).
  std::size_t threads = 1;
  std::uint64_t root_seed = 7;
};

class ParallelRunner {
 public:
  explicit ParallelRunner(ParallelRunnerOptions options);

  // Runs every cell; results[i] always corresponds to cells[i], and is
  // bit-identical whatever `options().threads` was.
  std::vector<CellResult> Run(const std::vector<ExperimentCell>& cells) const;

  // The per-cell seed: FNV-1a over (root seed, workload name, scheme display
  // name, label, replicate). Deterministic and submission-order-free.
  static std::uint64_t CellSeed(std::uint64_t root_seed,
                                const ExperimentCell& cell);

  const ParallelRunnerOptions& options() const { return options_; }

 private:
  ParallelRunnerOptions options_;
};

}  // namespace specsync
