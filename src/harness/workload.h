// Workload registry — the paper's Table I, scaled to laptop size.
//
// Each workload bundles a model over synthetic data, a learning-rate
// schedule, the simulated per-iteration compute time (Table I's measured
// iteration spans: MF 3 s, CIFAR-10 14 s, ImageNet 70 s), and a convergence
// loss target. The scale factor shrinks datasets/models uniformly so the
// relative proportions between workloads are preserved.
#pragma once

#include <memory>
#include <string>

#include "common/sim_time.h"
#include "models/model.h"
#include "optim/lr_schedule.h"

namespace specsync {

struct Workload {
  std::string name;
  std::shared_ptr<const Model> model;
  std::shared_ptr<const LearningRateSchedule> schedule;
  std::size_t batch_size = 32;
  // Mean compute span of one iteration (Table I's "iteration time").
  Duration iteration_time = Duration::Seconds(1.0);
  // Convergence target for runtime-to-convergence experiments.
  double loss_target = 0.0;
  // Server-side elementwise gradient clip (0 = off).
  double sgd_clip = 0.0;
  std::size_t eval_subsample = 2000;
  Duration eval_interval = Duration::Seconds(5.0);

  // Paper metadata (Table I rows, for bench_table1_workloads).
  std::string paper_num_params;
  std::string paper_dataset;
  std::string paper_dataset_size;
  std::string paper_iteration_time;
};

// Matrix factorization on a synthetic MovieLens-like ratings matrix.
Workload MakeMfWorkload(std::uint64_t seed, double scale = 1.0);

// MLP on a 10-class Gaussian mixture — the CIFAR-10 / ResNet-110 proxy.
Workload MakeCifar10Workload(std::uint64_t seed, double scale = 1.0);

// Larger MLP on a 50-class Gaussian mixture — the ImageNet / ResNet-18 proxy.
Workload MakeImageNetWorkload(std::uint64_t seed, double scale = 1.0);

// Convex softmax-regression workload on the CIFAR-proxy data: not part of
// Table I, but invaluable for calibration/tests — its optimum is unique, so
// scheme differences are pure synchronization effects, not landscape noise.
Workload MakeConvexWorkload(std::uint64_t seed, double scale = 1.0);

// All three Table I workloads, in order.
std::vector<Workload> MakeAllWorkloads(std::uint64_t seed, double scale = 1.0);

}  // namespace specsync
