#include "harness/workload.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "models/matrix_factorization.h"
#include "models/mlp.h"
#include "models/softmax_regression.h"

namespace specsync {

namespace {

std::size_t Scaled(std::size_t base, double scale, std::size_t floor_value) {
  return std::max(floor_value,
                  static_cast<std::size_t>(std::lround(
                      static_cast<double>(base) * scale)));
}

}  // namespace

Workload MakeMfWorkload(std::uint64_t seed, double scale) {
  SPECSYNC_CHECK_GT(scale, 0.0);
  Rng rng(seed);

  RatingsSpec spec;
  spec.num_users = Scaled(600, scale, 20);
  spec.num_items = Scaled(400, scale, 20);
  spec.num_ratings = Scaled(60000, scale, 2000);
  spec.true_rank = 8;
  spec.noise_stddev = 0.1;
  auto data = std::make_shared<RatingsDataset>(GenerateRatings(spec, rng));

  MatrixFactorizationConfig config;
  config.rank = 8;
  config.regularization = 0.02;
  config.init_scale = 0.15;

  Workload w;
  w.name = "MF";
  w.model = std::make_shared<MatrixFactorizationModel>(std::move(data), config);
  w.schedule = std::make_shared<ConstantSchedule>(0.1);
  w.batch_size = 200;
  w.iteration_time = Duration::Seconds(3.0);
  w.loss_target = 0.07;
  w.sgd_clip = 0.0;
  w.eval_subsample = 3000;
  w.eval_interval = Duration::Seconds(3.0);
  w.paper_num_params = "4.2 million";
  w.paper_dataset = "MovieLens";
  w.paper_dataset_size = "100,000";
  w.paper_iteration_time = "3s";
  return w;
}

Workload MakeCifar10Workload(std::uint64_t seed, double scale) {
  SPECSYNC_CHECK_GT(scale, 0.0);
  Rng rng(seed);

  ClassificationSpec spec;
  spec.num_examples = Scaled(8000, scale, 500);
  spec.feature_dim = 48;
  spec.num_classes = 10;
  spec.class_separation = 2.4;
  spec.noise_stddev = 1.0;
  auto data =
      std::make_shared<ClassificationDataset>(GenerateClassification(spec, rng));

  MlpConfig config;
  config.hidden = {48};
  config.regularization = 1e-4;

  Workload w;
  w.name = "CIFAR-10";
  w.model = std::make_shared<MlpClassifierModel>(std::move(data), config);
  // Paper Sec. VI-A: initial rate 0.05 decayed at epochs 200 and 250; our
  // proxy converges in fewer epochs, so the boundaries scale accordingly.
  w.schedule = std::make_shared<StepDecaySchedule>(
      0.1, std::vector<EpochId>{120, 160}, 0.1);
  w.batch_size = 128;  // paper Sec. VI-A
  w.iteration_time = Duration::Seconds(14.0);
  w.loss_target = 0.85;
  w.sgd_clip = 5.0;
  w.eval_subsample = 2000;
  w.eval_interval = Duration::Seconds(14.0);
  w.paper_num_params = "2.5 million";
  w.paper_dataset = "CIFAR-10";
  w.paper_dataset_size = "50,000";
  w.paper_iteration_time = "14s";
  return w;
}

Workload MakeImageNetWorkload(std::uint64_t seed, double scale) {
  SPECSYNC_CHECK_GT(scale, 0.0);
  Rng rng(seed);

  ClassificationSpec spec;
  spec.num_examples = Scaled(10000, scale, 1000);
  spec.feature_dim = 64;
  spec.num_classes = 20;
  spec.class_separation = 3.0;
  spec.noise_stddev = 1.0;
  auto data =
      std::make_shared<ClassificationDataset>(GenerateClassification(spec, rng));

  MlpConfig config;
  config.hidden = {64};
  config.regularization = 1e-4;

  Workload w;
  w.name = "ImageNet";
  w.model = std::make_shared<MlpClassifierModel>(std::move(data), config);
  w.schedule = std::make_shared<ConstantSchedule>(0.15);
  w.batch_size = 64;
  w.iteration_time = Duration::Seconds(70.0);
  w.loss_target = 1.0;
  w.sgd_clip = 5.0;
  w.eval_subsample = 2000;
  w.eval_interval = Duration::Seconds(70.0);
  w.paper_num_params = "5.9 million";
  w.paper_dataset = "ImageNet";
  w.paper_dataset_size = "281,167";
  w.paper_iteration_time = "70s";
  return w;
}

Workload MakeConvexWorkload(std::uint64_t seed, double scale) {
  SPECSYNC_CHECK_GT(scale, 0.0);
  Rng rng(seed);

  ClassificationSpec spec;
  spec.num_examples = Scaled(8000, scale, 500);
  spec.feature_dim = 48;
  spec.num_classes = 10;
  spec.class_separation = 2.4;
  spec.noise_stddev = 1.0;
  auto data =
      std::make_shared<ClassificationDataset>(GenerateClassification(spec, rng));

  SoftmaxRegressionConfig config;
  config.regularization = 1e-4;

  Workload w;
  w.name = "Convex";
  w.model =
      std::make_shared<SoftmaxRegressionModel>(std::move(data), config);
  w.schedule = std::make_shared<ConstantSchedule>(0.1);
  w.batch_size = 128;
  w.iteration_time = Duration::Seconds(14.0);
  w.loss_target = 0.6;
  w.sgd_clip = 0.0;
  w.eval_subsample = 2000;
  w.eval_interval = Duration::Seconds(14.0);
  w.paper_num_params = "-";
  w.paper_dataset = "synthetic (calibration)";
  w.paper_dataset_size = "-";
  w.paper_iteration_time = "-";
  return w;
}

std::vector<Workload> MakeAllWorkloads(std::uint64_t seed, double scale) {
  return {MakeMfWorkload(seed, scale), MakeCifar10Workload(seed + 1, scale),
          MakeImageNetWorkload(seed + 2, scale)};
}

}  // namespace specsync
