// SGD update application.
//
// The parameter server applies pushed gradients with w <- w - eta * g
// (paper Eq. (2)). The applier lives server-side: workers push raw gradients
// and the server scales by the epoch's learning rate, exactly as MXNet's
// KVStore updater does. Optional gradient clipping guards the non-convex
// workloads against rare blow-ups under extreme staleness.
#pragma once

#include <memory>
#include <span>

#include "models/model.h"
#include "optim/lr_schedule.h"

namespace specsync {

struct SgdConfig {
  // Elementwise clip bound applied to the gradient before the update;
  // 0 disables clipping.
  double clip = 0.0;
};

class SgdApplier {
 public:
  SgdApplier(std::shared_ptr<const LearningRateSchedule> schedule,
             SgdConfig config = {});

  // params -= Rate(epoch) * grad.
  void Apply(const Gradient& grad, EpochId epoch,
             std::span<double> params) const;

  // Slice primitives for the sharded parameter store: each shard applies only
  // its own contiguous slice of a full-dimension gradient.

  // params -= Rate(epoch) * grad (elementwise over one dense slice).
  void ApplyDenseSlice(std::span<const double> grad, EpochId epoch,
                       std::span<double> params) const;

  // Applies the entries of `grad` whose indices fall in
  // [offset, offset + params.size()) onto the slice (params[i] holds full
  // index offset + i). Returns the number of entries applied.
  std::size_t ApplySparseSlice(const SparseUpdate& grad, EpochId epoch,
                               std::size_t offset,
                               std::span<double> params) const;

  double Rate(EpochId epoch) const { return schedule_->Rate(epoch); }

 private:
  std::shared_ptr<const LearningRateSchedule> schedule_;
  SgdConfig config_;
};

}  // namespace specsync
