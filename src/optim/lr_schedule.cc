#include "optim/lr_schedule.h"

#include <algorithm>
#include <cmath>

namespace specsync {

StepDecaySchedule::StepDecaySchedule(double base_rate,
                                     std::vector<EpochId> boundaries,
                                     double factor)
    : base_rate_(base_rate),
      boundaries_(std::move(boundaries)),
      factor_(factor) {
  SPECSYNC_CHECK_GT(base_rate_, 0.0);
  SPECSYNC_CHECK_GT(factor_, 0.0);
  SPECSYNC_CHECK(std::is_sorted(boundaries_.begin(), boundaries_.end()))
      << "decay boundaries must be ascending";
}

double StepDecaySchedule::Rate(EpochId epoch) const {
  double rate = base_rate_;
  for (EpochId boundary : boundaries_) {
    if (epoch >= boundary) rate *= factor_;
  }
  return rate;
}

double InverseSqrtSchedule::Rate(EpochId epoch) const {
  return base_rate_ / std::sqrt(1.0 + static_cast<double>(epoch));
}

}  // namespace specsync
