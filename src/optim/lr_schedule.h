// Learning-rate schedules.
//
// The paper's CIFAR-10 workload decays the rate from 0.05 at epochs 200 and
// 250 (Sec. VI-A); StepDecaySchedule reproduces that shape. Schedules are
// queried by epoch so all workers apply the same rate within an epoch.
#pragma once

#include <memory>
#include <vector>

#include "common/check.h"
#include "common/ids.h"

namespace specsync {

class LearningRateSchedule {
 public:
  virtual ~LearningRateSchedule() = default;
  virtual double Rate(EpochId epoch) const = 0;
};

class ConstantSchedule final : public LearningRateSchedule {
 public:
  explicit ConstantSchedule(double rate) : rate_(rate) {
    SPECSYNC_CHECK_GT(rate, 0.0);
  }
  double Rate(EpochId /*epoch*/) const override { return rate_; }

 private:
  double rate_;
};

// Multiplies the base rate by `factor` at each boundary epoch.
class StepDecaySchedule final : public LearningRateSchedule {
 public:
  StepDecaySchedule(double base_rate, std::vector<EpochId> boundaries,
                    double factor);
  double Rate(EpochId epoch) const override;

 private:
  double base_rate_;
  std::vector<EpochId> boundaries_;
  double factor_;
};

// 1/sqrt(t) decay, common for convex problems: rate = base / sqrt(1 + epoch).
class InverseSqrtSchedule final : public LearningRateSchedule {
 public:
  explicit InverseSqrtSchedule(double base_rate) : base_rate_(base_rate) {
    SPECSYNC_CHECK_GT(base_rate, 0.0);
  }
  double Rate(EpochId epoch) const override;

 private:
  double base_rate_;
};

}  // namespace specsync
