#include "optim/sgd.h"

#include <algorithm>

#include "common/check.h"

namespace specsync {

SgdApplier::SgdApplier(std::shared_ptr<const LearningRateSchedule> schedule,
                       SgdConfig config)
    : schedule_(std::move(schedule)), config_(config) {
  SPECSYNC_CHECK(schedule_ != nullptr);
  SPECSYNC_CHECK_GE(config_.clip, 0.0);
}

void SgdApplier::Apply(const Gradient& grad, EpochId epoch,
                       std::span<double> params) const {
  if (grad.is_sparse()) {
    // Whole-vector apply: an index beyond the vector is a caller bug, not an
    // entry for some other slice (slices filter; the full vector must not).
    for (std::uint64_t index : grad.sparse().indices()) {
      SPECSYNC_CHECK_LT(index, params.size());
    }
    ApplySparseSlice(grad.sparse(), epoch, 0, params);
  } else {
    ApplyDenseSlice(grad.dense(), epoch, params);
  }
}

void SgdApplier::ApplyDenseSlice(std::span<const double> grad, EpochId epoch,
                                 std::span<double> params) const {
  SPECSYNC_CHECK_EQ(grad.size(), params.size());
  const double eta = schedule_->Rate(epoch);
  if (config_.clip == 0.0) {
    // params[i] += (-eta) * g[i], matching Gradient::AddTo bit for bit.
    const double alpha = -eta;
    for (std::size_t i = 0; i < grad.size(); ++i) {
      params[i] += alpha * grad[i];
    }
    return;
  }
  for (std::size_t i = 0; i < grad.size(); ++i) {
    params[i] -= eta * std::clamp(grad[i], -config_.clip, config_.clip);
  }
}

std::size_t SgdApplier::ApplySparseSlice(const SparseUpdate& grad,
                                         EpochId epoch, std::size_t offset,
                                         std::span<double> params) const {
  const double eta = schedule_->Rate(epoch);
  const double alpha = -eta;
  const auto indices = grad.indices();
  const auto values = grad.values();
  const std::size_t end = offset + params.size();
  std::size_t applied = 0;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto index = static_cast<std::size_t>(indices[i]);
    if (index < offset || index >= end) continue;
    if (config_.clip == 0.0) {
      params[index - offset] += alpha * values[i];
    } else {
      params[index - offset] -=
          eta * std::clamp(values[i], -config_.clip, config_.clip);
    }
    ++applied;
  }
  return applied;
}

}  // namespace specsync
