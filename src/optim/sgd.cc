#include "optim/sgd.h"

#include <algorithm>

#include "common/check.h"

namespace specsync {

SgdApplier::SgdApplier(std::shared_ptr<const LearningRateSchedule> schedule,
                       SgdConfig config)
    : schedule_(std::move(schedule)), config_(config) {
  SPECSYNC_CHECK(schedule_ != nullptr);
  SPECSYNC_CHECK_GE(config_.clip, 0.0);
}

void SgdApplier::Apply(const Gradient& grad, EpochId epoch,
                       std::span<double> params) const {
  const double eta = schedule_->Rate(epoch);
  if (config_.clip == 0.0) {
    grad.AddTo(-eta, params);
    return;
  }
  // Clip elementwise without mutating the caller's gradient.
  if (grad.is_sparse()) {
    const auto indices = grad.sparse().indices();
    const auto values = grad.sparse().values();
    for (std::size_t i = 0; i < indices.size(); ++i) {
      SPECSYNC_CHECK_LT(indices[i], params.size());
      const double v = std::clamp(values[i], -config_.clip, config_.clip);
      params[indices[i]] -= eta * v;
    }
  } else {
    const auto& g = grad.dense();
    SPECSYNC_CHECK_EQ(g.size(), params.size());
    for (std::size_t i = 0; i < g.size(); ++i) {
      params[i] -= eta * std::clamp(g[i], -config_.clip, config_.clip);
    }
  }
}

}  // namespace specsync
