#!/usr/bin/env bash
# Builds and runs the concurrency-sensitive test suites under ThreadSanitizer
# and AddressSanitizer. These are the suites that exercise real threads
# (runtime, chaos, parameter server, the experiment thread pool and the
# ParallelRunner built on it, plus the lock-free obs instruments recorded
# from those threads) and the fault plan itself; the rest of the repo is
# single-threaded sim code covered by the plain build. net_test runs the
# whole transport matrix under both sanitizers: the multiplexed pipelined
# ShardClient (receiver threads, pending-table handoff, reconnects) against
# BOTH server models — the per-model suites are value-parameterized, so the
# epoll event-loop server's loop/pool/connection lifetimes are TSan/ASan
# proven on every CI run, including the start/stop hammer. The calendar-queue
# and tuner equivalence property suites ride along for ASan's sake: the
# pooled event queue recycles nodes through a free list and moves payloads
# out mid-callback, exactly the lifetime pattern ASan proves sound
# (DESIGN.md §12 pool lifetime rules). compression_property_test rides along
# the same way: the codec's error-feedback residuals grow lazily per worker
# and the round-trip checks hammer span views over reallocating buffers.
#
# Usage: scripts/sanitize.sh [thread|address|all]   (default: all)
set -euo pipefail

cd "$(dirname "$0")/.."

SUITES=(runtime_test runtime_chaos_test consistency_hammer_test ps_test
        fault_test thread_pool_test parallel_runner_test obs_test net_test
        calendar_queue_property_test tuner_equivalence_test
        compression_property_test)
MODE="${1:-all}"

run_mode() {
  local sanitizer="$1"
  local build_dir="build-${sanitizer}san"
  echo "=== ${sanitizer} sanitizer ==="
  cmake -B "${build_dir}" -S . -DSPECSYNC_SANITIZE="${sanitizer}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "${build_dir}" -j --target "${SUITES[@]}"
  for suite in "${SUITES[@]}"; do
    echo "--- ${suite} (${sanitizer}) ---"
    "${build_dir}/tests/${suite}"
  done
}

case "${MODE}" in
  thread)  run_mode thread ;;
  address) run_mode address ;;
  all)     run_mode thread; run_mode address ;;
  *) echo "usage: $0 [thread|address|all]" >&2; exit 2 ;;
esac

echo "sanitize.sh: all suites clean"
