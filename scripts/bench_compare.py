#!/usr/bin/env python3
"""Compare two SpecSync bench telemetry files cell-by-cell.

Usage:
  bench_compare.py BASELINE.json CANDIDATE.json [options]

Both files use the BenchReporter schema (BENCH_harness.json /
BENCH_scale.json): a JSON array of per-bench records, each carrying
run-level telemetry, a "metrics" map of headline numbers, and "per_cell"
rows keyed by (workload, scheme, label, replicate).

Two classes of field, compared differently:

  Determinism fields — seed, sim_events, pushes, sim_end_seconds,
  final_loss, trace_digest — must be bit-identical between runs of the
  same commit: the deterministic engines guarantee it, so ANY drift is a
  hard failure regardless of tolerance. Pass --no-exact when comparing
  across commits whose seed derivation or model code legitimately changed.

  Performance fields — wall seconds, events/sec, headline metrics — are
  noisy, so each is gated with a relative tolerance in its bad direction
  only (slower wall = bad, lower throughput = bad; improvements never
  fail). Cells faster than --min-wall-s in BOTH runs are skipped for
  timing: sub-noise-floor cells produce pure-jitter ratios.

The direction of a headline metric is inferred from its name
("*_per_s", "speedup*", "*ops*" → higher is better; "*wall*", "*rtt*",
"*_us", "*latency*" → lower is better); unrecognized names are reported
but never gated.

Exit status: 0 = no regressions, 1 = regressions found, 2 = bad input.
A machine-readable verdict goes to --json-out when given.
"""

import argparse
import json
import sys

# Per-cell fields the deterministic engines reproduce bit-identically.
EXACT_CELL_FIELDS = (
    "seed",
    "sim_events",
    "pushes",
    "sim_end_seconds",
    "final_loss",
    "trace_digest",
)

LOWER_IS_BETTER_HINTS = ("wall", "rtt", "latency", "_us", "seconds", "time_to")
HIGHER_IS_BETTER_HINTS = ("per_s", "per_sec", "speedup", "ops", "events",
                          "throughput", "rate")


def metric_direction(name):
    """-1 = lower is better, +1 = higher is better, 0 = don't gate."""
    lowered = name.lower()
    # Time-ish hints win: "workers1000_wall_seconds" must not read as
    # higher-is-better just because "workers" contains no hint.
    if any(h in lowered for h in LOWER_IS_BETTER_HINTS):
        return -1
    if any(h in lowered for h in HIGHER_IS_BETTER_HINTS):
        return +1
    return 0


def load_records(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.stderr.write(f"bench_compare: cannot load {path}: {e}\n")
        sys.exit(2)
    if not isinstance(data, list):
        sys.stderr.write(f"bench_compare: {path} is not a JSON array\n")
        sys.exit(2)
    records = {}
    for record in data:
        name = record.get("bench")
        if not name:
            sys.stderr.write(f"bench_compare: {path}: record without 'bench'\n")
            sys.exit(2)
        records[name] = record
    return records


def cell_key(cell):
    return (cell.get("workload", ""), cell.get("scheme", ""),
            cell.get("label", ""), cell.get("replicate", 0))


class Report:
    def __init__(self):
        self.regressions = []
        self.improvements = []
        self.notes = []

    def regress(self, where, message):
        self.regressions.append(f"{where}: {message}")

    def improve(self, where, message):
        self.improvements.append(f"{where}: {message}")

    def note(self, where, message):
        self.notes.append(f"{where}: {message}")


def compare_timing(report, where, field, base, cand, tolerance, min_wall):
    """Gate a lower-is-better wall-clock pair, skipping sub-floor noise."""
    if base < min_wall and cand < min_wall:
        return
    if base <= 0.0:
        return
    ratio = cand / base
    if ratio > 1.0 + tolerance:
        report.regress(where, f"{field} {base:.6g}s -> {cand:.6g}s "
                              f"({(ratio - 1.0) * 100:+.1f}%, "
                              f"tolerance {tolerance * 100:.0f}%)")
    elif ratio < 1.0 - tolerance:
        report.improve(where, f"{field} {base:.6g}s -> {cand:.6g}s "
                              f"({(ratio - 1.0) * 100:+.1f}%)")


def compare_higher_better(report, where, field, base, cand, tolerance):
    if base <= 0.0:
        return
    ratio = cand / base
    if ratio < 1.0 - tolerance:
        report.regress(where, f"{field} {base:.6g} -> {cand:.6g} "
                              f"({(ratio - 1.0) * 100:+.1f}%, "
                              f"tolerance {tolerance * 100:.0f}%)")
    elif ratio > 1.0 + tolerance:
        report.improve(where, f"{field} {base:.6g} -> {cand:.6g} "
                              f"({(ratio - 1.0) * 100:+.1f}%)")


def compare_metrics(report, where, base_metrics, cand_metrics, tolerance):
    for name, base_value in base_metrics.items():
        if name not in cand_metrics:
            report.regress(where, f"metric '{name}' missing from candidate")
            continue
        cand_value = cand_metrics[name]
        direction = metric_direction(name)
        if direction == 0:
            if base_value != cand_value:
                report.note(where, f"metric '{name}' {base_value:.6g} -> "
                                   f"{cand_value:.6g} (ungated)")
            continue
        if base_value <= 0.0:
            continue
        ratio = cand_value / base_value
        bad = ratio > 1.0 + tolerance if direction < 0 else \
            ratio < 1.0 - tolerance
        good = ratio < 1.0 - tolerance if direction < 0 else \
            ratio > 1.0 + tolerance
        if bad:
            report.regress(where, f"metric '{name}' {base_value:.6g} -> "
                                  f"{cand_value:.6g} "
                                  f"({(ratio - 1.0) * 100:+.1f}%, tolerance "
                                  f"{tolerance * 100:.0f}%)")
        elif good:
            report.improve(where, f"metric '{name}' {base_value:.6g} -> "
                                  f"{cand_value:.6g} "
                                  f"({(ratio - 1.0) * 100:+.1f}%)")
    for name in cand_metrics:
        if name not in base_metrics:
            report.note(where, f"metric '{name}' new in candidate")


def compare_cells(report, bench, base_cells, cand_cells, args):
    base_by_key = {cell_key(c): c for c in base_cells}
    cand_by_key = {cell_key(c): c for c in cand_cells}
    for key, base_cell in base_by_key.items():
        where = f"{bench} cell {key}"
        cand_cell = cand_by_key.get(key)
        if cand_cell is None:
            report.regress(where, "missing from candidate")
            continue
        if args.exact:
            for field in EXACT_CELL_FIELDS:
                if base_cell.get(field) != cand_cell.get(field):
                    report.regress(
                        where, f"determinism field '{field}' drifted: "
                               f"{base_cell.get(field)} -> "
                               f"{cand_cell.get(field)}")
        compare_timing(report, where, "wall_seconds",
                       float(base_cell.get("wall_seconds", 0.0)),
                       float(cand_cell.get("wall_seconds", 0.0)),
                       args.wall_tolerance, args.min_wall_s)
    for key in cand_by_key:
        if key not in base_by_key:
            report.note(f"{bench} cell {key}", "new in candidate")


def main():
    parser = argparse.ArgumentParser(
        description="Cell-by-cell bench telemetry comparison.")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--wall-tolerance", type=float, default=0.50,
                        help="relative slowdown allowed on wall clocks "
                             "(default 0.50 = 50%%; CI machines are noisy)")
    parser.add_argument("--throughput-tolerance", type=float, default=0.50,
                        help="relative drop allowed on rates/headline "
                             "metrics (default 0.50)")
    parser.add_argument("--min-wall-s", type=float, default=0.05,
                        help="skip timing gates when both runs are under "
                             "this many seconds (default 0.05)")
    parser.add_argument("--no-exact", dest="exact", action="store_false",
                        help="skip determinism fields (use when comparing "
                             "across commits that changed seeding/models)")
    parser.add_argument("--json-out", default="",
                        help="write the verdict as JSON to this path")
    args = parser.parse_args()

    base_records = load_records(args.baseline)
    cand_records = load_records(args.candidate)
    report = Report()

    for bench, base in base_records.items():
        cand = cand_records.get(bench)
        if cand is None:
            report.regress(bench, "bench record missing from candidate")
            continue
        compare_timing(report, bench, "parallel_wall_seconds",
                       float(base.get("parallel_wall_seconds", 0.0)),
                       float(cand.get("parallel_wall_seconds", 0.0)),
                       args.wall_tolerance, args.min_wall_s)
        base_rate = float(base.get("des_events_per_wall_second", 0.0))
        cand_rate = float(cand.get("des_events_per_wall_second", 0.0))
        compare_higher_better(report, bench, "des_events_per_wall_second",
                              base_rate, cand_rate,
                              args.throughput_tolerance)
        compare_metrics(report, bench, base.get("metrics", {}) or {},
                        cand.get("metrics", {}) or {},
                        args.throughput_tolerance)
        compare_cells(report, bench, base.get("per_cell", []) or [],
                      cand.get("per_cell", []) or [], args)
    for bench in cand_records:
        if bench not in base_records:
            report.note(bench, "bench record new in candidate")

    print(f"bench_compare: {args.baseline} vs {args.candidate}")
    print(f"  benches compared: "
          f"{len(set(base_records) & set(cand_records))}"
          f" (baseline {len(base_records)}, candidate {len(cand_records)})")
    for line in report.improvements:
        print(f"  IMPROVED  {line}")
    for line in report.notes:
        print(f"  note      {line}")
    for line in report.regressions:
        print(f"  REGRESSED {line}")
    verdict = "REGRESSED" if report.regressions else "OK"
    print(f"bench_compare: {verdict} "
          f"({len(report.regressions)} regressions, "
          f"{len(report.improvements)} improvements)")

    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as f:
            json.dump({
                "baseline": args.baseline,
                "candidate": args.candidate,
                "verdict": verdict,
                "regressions": report.regressions,
                "improvements": report.improvements,
                "notes": report.notes,
            }, f, indent=1)
            f.write("\n")
    return 1 if report.regressions else 0


if __name__ == "__main__":
    sys.exit(main())
