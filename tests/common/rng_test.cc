#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/check.h"
#include "common/stats.h"

namespace specsync {
namespace {

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0.0, 1.0), b.Uniform(0.0, 1.0));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform(0.0, 1.0) == b.Uniform(0.0, 1.0)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ForkStreamsAreIndependentOfConsumption) {
  // Forking must depend only on (seed, fork index), not on how many numbers
  // the parent drew in between.
  Rng parent1(99);
  Rng child1 = parent1.Fork();
  Rng parent2(99);
  for (int i = 0; i < 50; ++i) parent2.Uniform(0.0, 1.0);
  Rng child2 = parent2.Fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(child1.Uniform(0.0, 1.0), child2.Uniform(0.0, 1.0));
  }
}

TEST(RngTest, SuccessiveForksDiffer) {
  Rng parent(7);
  Rng a = parent.Fork();
  Rng b = parent.Fork();
  EXPECT_NE(a.seed(), b.seed());
  EXPECT_NE(a.Uniform(0.0, 1.0), b.Uniform(0.0, 1.0));
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.UniformInt(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all faces hit
}

TEST(RngTest, IndexCoversRange) {
  Rng rng(5);
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Index(4));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, IndexOfZeroThrows) {
  Rng rng(6);
  EXPECT_THROW(rng.Index(0), CheckError);
}

TEST(RngTest, NormalMoments) {
  Rng rng(8);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Normal(2.0, 3.0));
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Exponential(0.5));
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
}

TEST(RngTest, ExponentialRequiresPositiveRate) {
  Rng rng(10);
  EXPECT_THROW(rng.Exponential(0.0), CheckError);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, BernoulliClampsProbability) {
  Rng rng(12);
  EXPECT_FALSE(rng.Bernoulli(-1.0));
  EXPECT_TRUE(rng.Bernoulli(2.0));
}

TEST(RngTest, LogNormalMedianIsOne) {
  Rng rng(13);
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) sample.push_back(rng.LogNormal(0.0, 0.5));
  std::nth_element(sample.begin(), sample.begin() + 10000, sample.end());
  EXPECT_NEAR(sample[10000], 1.0, 0.05);
}

TEST(RngTest, SampleIndicesDistinctAndInRange) {
  Rng rng(14);
  for (std::size_t k : {0u, 3u, 50u, 100u}) {
    auto sample = rng.SampleIndices(100, k);
    EXPECT_EQ(sample.size(), k);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (std::size_t idx : sample) EXPECT_LT(idx, 100u);
  }
}

TEST(RngTest, SampleIndicesFullRange) {
  Rng rng(15);
  auto sample = rng.SampleIndices(10, 10);
  std::sort(sample.begin(), sample.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, SampleMoreThanPopulationThrows) {
  Rng rng(16);
  EXPECT_THROW(rng.SampleIndices(5, 6), CheckError);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = items;
  rng.Shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, original);
}

}  // namespace
}  // namespace specsync
