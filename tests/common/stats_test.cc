#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace specsync {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.Add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 5.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng(7);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Normal(3.0, 2.0);
    all.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Add(3.0);
  const double mean_before = a.mean();
  a.Merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  empty.Merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean_before);
}

TEST(QuantileTest, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(Quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(QuantileTest, InterpolatesBetweenPoints) {
  // Sorted: {1, 2, 3, 4}; q=0.5 -> position 1.5 -> 2.5.
  EXPECT_DOUBLE_EQ(Quantile({4.0, 1.0, 3.0, 2.0}, 0.5), 2.5);
}

TEST(QuantileTest, Extremes) {
  std::vector<double> sample{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(Quantile(sample, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(sample, 1.0), 9.0);
}

TEST(QuantileTest, EmptySampleThrows) {
  EXPECT_THROW(Quantile({}, 0.5), CheckError);
}

TEST(QuantileTest, OutOfRangeQThrows) {
  EXPECT_THROW(Quantile({1.0}, 1.5), CheckError);
}

TEST(BoxSummaryTest, OrderedPercentiles) {
  Rng rng(11);
  std::vector<double> sample;
  for (int i = 0; i < 500; ++i) sample.push_back(rng.Uniform(0.0, 100.0));
  const BoxSummary box = BoxSummary::FromSample(sample);
  EXPECT_LE(box.p5, box.p25);
  EXPECT_LE(box.p25, box.p50);
  EXPECT_LE(box.p50, box.p75);
  EXPECT_LE(box.p75, box.p95);
  EXPECT_EQ(box.count, 500u);
  // Uniform[0,100]: median near 50.
  EXPECT_NEAR(box.p50, 50.0, 10.0);
}

TEST(BoxSummaryTest, EmptySampleIsZeroed) {
  const BoxSummary box = BoxSummary::FromSample({});
  EXPECT_EQ(box.count, 0u);
  EXPECT_EQ(box.p50, 0.0);
}

TEST(HistogramTest, BucketAssignment) {
  Histogram hist(0.0, 10.0, 5);
  hist.Add(0.5);   // bucket 0
  hist.Add(3.0);   // bucket 1
  hist.Add(9.99);  // bucket 4
  EXPECT_EQ(hist.count(0), 1u);
  EXPECT_EQ(hist.count(1), 1u);
  EXPECT_EQ(hist.count(4), 1u);
  EXPECT_EQ(hist.total(), 3u);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
  Histogram hist(0.0, 10.0, 5);
  hist.Add(-3.0);
  hist.Add(42.0);
  EXPECT_EQ(hist.count(0), 1u);
  EXPECT_EQ(hist.count(4), 1u);
}

TEST(HistogramTest, BucketBoundsAndFractions) {
  Histogram hist(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(hist.bucket_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(hist.bucket_hi(2), 6.0);
  EXPECT_EQ(hist.fraction(0), 0.0);  // empty histogram
  hist.Add(1.0);
  hist.Add(5.0);
  EXPECT_DOUBLE_EQ(hist.fraction(0), 0.5);
}

TEST(HistogramTest, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(5.0, 5.0, 3), CheckError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), CheckError);
}

// Property: quantiles of a large normal sample approximate the theoretical
// inverse CDF.
class QuantileNormalTest : public ::testing::TestWithParam<double> {};

TEST_P(QuantileNormalTest, MatchesTheory) {
  const double q = GetParam();
  Rng rng(123);
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) sample.push_back(rng.Normal(0.0, 1.0));
  // Normal inverse CDF reference points.
  double expected = 0.0;
  if (q == 0.5) expected = 0.0;
  if (q == 0.8413) expected = 1.0;
  if (q == 0.1587) expected = -1.0;
  EXPECT_NEAR(Quantile(sample, q), expected, 0.05);
}

INSTANTIATE_TEST_SUITE_P(ReferencePoints, QuantileNormalTest,
                         ::testing::Values(0.5, 0.8413, 0.1587));

TEST(HistogramTest, MergeSumsBucketsAndTotals) {
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 5);
  a.Add(1.0);  // bucket 0
  a.Add(3.0);  // bucket 1
  b.Add(1.5);  // bucket 0
  b.Add(9.0);  // bucket 4
  a.Merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.count(0), 2u);
  EXPECT_EQ(a.count(1), 1u);
  EXPECT_EQ(a.count(4), 1u);
  // The source histogram is untouched.
  EXPECT_EQ(b.total(), 2u);
}

TEST(HistogramTest, MergeWithEmptyIsIdentity) {
  Histogram a(0.0, 10.0, 5);
  a.Add(4.0);
  Histogram empty(0.0, 10.0, 5);
  a.Merge(empty);
  EXPECT_EQ(a.total(), 1u);
  EXPECT_EQ(a.count(2), 1u);
}

TEST(HistogramTest, MergeMismatchedLayoutThrows) {
  Histogram a(0.0, 10.0, 5);
  Histogram wrong_buckets(0.0, 10.0, 4);
  Histogram wrong_range(0.0, 20.0, 5);
  EXPECT_ANY_THROW(a.Merge(wrong_buckets));
  EXPECT_ANY_THROW(a.Merge(wrong_range));
}

TEST(HistogramTest, ApproxQuantileEmptyIsZero) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.ApproxQuantile(0.5), 0.0);
}

TEST(HistogramTest, ApproxQuantileUniformFill) {
  // 100 observations spread one per 0.1-wide step across [0, 10): the
  // interpolated quantiles should track the true values to bucket width.
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.Add(0.05 + 0.1 * i);
  EXPECT_NEAR(h.ApproxQuantile(0.5), 5.0, 1.0);
  EXPECT_NEAR(h.ApproxQuantile(0.9), 9.0, 1.0);
  EXPECT_NEAR(h.ApproxQuantile(0.1), 1.0, 1.0);
  // Quantiles are monotone in q.
  EXPECT_LE(h.ApproxQuantile(0.25), h.ApproxQuantile(0.75));
}

TEST(HistogramTest, ApproxQuantileSingleBucketInterpolates) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 4; ++i) h.Add(3.5);  // all in bucket [3, 4)
  const double q25 = h.ApproxQuantile(0.25);
  const double q100 = h.ApproxQuantile(1.0);
  EXPECT_GE(q25, 3.0);
  EXPECT_LE(q100, 4.0);
  EXPECT_LE(q25, q100);
}

TEST(HistogramTest, ApproxQuantileMatchesAfterMerge) {
  // Quantiles over the merged histogram equal quantiles over one histogram
  // fed both streams.
  Histogram merged(0.0, 100.0, 50);
  Histogram a(0.0, 100.0, 50);
  Histogram b(0.0, 100.0, 50);
  for (int i = 0; i < 60; ++i) {
    const double x = static_cast<double>(i) + 0.5;
    merged.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.ApproxQuantile(q), merged.ApproxQuantile(q));
  }
}

TEST(HistogramTest, ApproxQuantileRejectsOutOfRangeQ) {
  Histogram h(0.0, 10.0, 10);
  h.Add(5.0);
  EXPECT_ANY_THROW(h.ApproxQuantile(-0.1));
  EXPECT_ANY_THROW(h.ApproxQuantile(1.5));
}

}  // namespace
}  // namespace specsync
