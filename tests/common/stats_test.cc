#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace specsync {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.Add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 5.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng(7);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Normal(3.0, 2.0);
    all.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Add(3.0);
  const double mean_before = a.mean();
  a.Merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  empty.Merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean_before);
}

TEST(QuantileTest, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(Quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(QuantileTest, InterpolatesBetweenPoints) {
  // Sorted: {1, 2, 3, 4}; q=0.5 -> position 1.5 -> 2.5.
  EXPECT_DOUBLE_EQ(Quantile({4.0, 1.0, 3.0, 2.0}, 0.5), 2.5);
}

TEST(QuantileTest, Extremes) {
  std::vector<double> sample{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(Quantile(sample, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(sample, 1.0), 9.0);
}

TEST(QuantileTest, EmptySampleThrows) {
  EXPECT_THROW(Quantile({}, 0.5), CheckError);
}

TEST(QuantileTest, OutOfRangeQThrows) {
  EXPECT_THROW(Quantile({1.0}, 1.5), CheckError);
}

TEST(BoxSummaryTest, OrderedPercentiles) {
  Rng rng(11);
  std::vector<double> sample;
  for (int i = 0; i < 500; ++i) sample.push_back(rng.Uniform(0.0, 100.0));
  const BoxSummary box = BoxSummary::FromSample(sample);
  EXPECT_LE(box.p5, box.p25);
  EXPECT_LE(box.p25, box.p50);
  EXPECT_LE(box.p50, box.p75);
  EXPECT_LE(box.p75, box.p95);
  EXPECT_EQ(box.count, 500u);
  // Uniform[0,100]: median near 50.
  EXPECT_NEAR(box.p50, 50.0, 10.0);
}

TEST(BoxSummaryTest, EmptySampleIsZeroed) {
  const BoxSummary box = BoxSummary::FromSample({});
  EXPECT_EQ(box.count, 0u);
  EXPECT_EQ(box.p50, 0.0);
}

TEST(HistogramTest, BucketAssignment) {
  Histogram hist(0.0, 10.0, 5);
  hist.Add(0.5);   // bucket 0
  hist.Add(3.0);   // bucket 1
  hist.Add(9.99);  // bucket 4
  EXPECT_EQ(hist.count(0), 1u);
  EXPECT_EQ(hist.count(1), 1u);
  EXPECT_EQ(hist.count(4), 1u);
  EXPECT_EQ(hist.total(), 3u);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
  Histogram hist(0.0, 10.0, 5);
  hist.Add(-3.0);
  hist.Add(42.0);
  EXPECT_EQ(hist.count(0), 1u);
  EXPECT_EQ(hist.count(4), 1u);
}

TEST(HistogramTest, BucketBoundsAndFractions) {
  Histogram hist(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(hist.bucket_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(hist.bucket_hi(2), 6.0);
  EXPECT_EQ(hist.fraction(0), 0.0);  // empty histogram
  hist.Add(1.0);
  hist.Add(5.0);
  EXPECT_DOUBLE_EQ(hist.fraction(0), 0.5);
}

TEST(HistogramTest, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(5.0, 5.0, 3), CheckError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), CheckError);
}

// Property: quantiles of a large normal sample approximate the theoretical
// inverse CDF.
class QuantileNormalTest : public ::testing::TestWithParam<double> {};

TEST_P(QuantileNormalTest, MatchesTheory) {
  const double q = GetParam();
  Rng rng(123);
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) sample.push_back(rng.Normal(0.0, 1.0));
  // Normal inverse CDF reference points.
  double expected = 0.0;
  if (q == 0.5) expected = 0.0;
  if (q == 0.8413) expected = 1.0;
  if (q == 0.1587) expected = -1.0;
  EXPECT_NEAR(Quantile(sample, q), expected, 0.05);
}

INSTANTIATE_TEST_SUITE_P(ReferencePoints, QuantileNormalTest,
                         ::testing::Values(0.5, 0.8413, 0.1587));

}  // namespace
}  // namespace specsync
