// Tests for check.h, sim_time.h, logging.h, table.h.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/check.h"
#include "common/logging.h"
#include "common/sim_time.h"
#include "common/table.h"

namespace specsync {
namespace {

// --- check ------------------------------------------------------------------

TEST(CheckTest, PassingCheckDoesNothing) {
  EXPECT_NO_THROW(SPECSYNC_CHECK(1 + 1 == 2));
}

TEST(CheckTest, FailingCheckThrowsWithMessage) {
  try {
    SPECSYNC_CHECK(false) << "custom context " << 42;
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom context 42"), std::string::npos);
    EXPECT_NE(what.find("false"), std::string::npos);
  }
}

TEST(CheckTest, ComparisonMacros) {
  EXPECT_NO_THROW(SPECSYNC_CHECK_EQ(3, 3));
  EXPECT_THROW(SPECSYNC_CHECK_EQ(3, 4), CheckError);
  EXPECT_THROW(SPECSYNC_CHECK_LT(4, 4), CheckError);
  EXPECT_NO_THROW(SPECSYNC_CHECK_LE(4, 4));
  EXPECT_THROW(SPECSYNC_CHECK_GT(1, 2), CheckError);
  EXPECT_NO_THROW(SPECSYNC_CHECK_GE(2, 2));
  EXPECT_NO_THROW(SPECSYNC_CHECK_NE(1, 2));
}

// --- sim_time ---------------------------------------------------------------

TEST(SimTimeTest, DurationArithmetic) {
  const Duration a = Duration::Seconds(2.0);
  const Duration b = Duration::Milliseconds(500.0);
  EXPECT_DOUBLE_EQ((a + b).seconds(), 2.5);
  EXPECT_DOUBLE_EQ((a - b).seconds(), 1.5);
  EXPECT_DOUBLE_EQ((a * 3.0).seconds(), 6.0);
  EXPECT_DOUBLE_EQ((3.0 * a).seconds(), 6.0);
  EXPECT_DOUBLE_EQ((a / 4.0).seconds(), 0.5);
  EXPECT_DOUBLE_EQ(a / b, 4.0);
  EXPECT_DOUBLE_EQ((-a).seconds(), -2.0);
}

TEST(SimTimeTest, DurationComparison) {
  EXPECT_LT(Duration::Seconds(1.0), Duration::Seconds(2.0));
  EXPECT_EQ(Duration::Milliseconds(1000.0), Duration::Seconds(1.0));
  EXPECT_GT(Duration::Infinite(), Duration::Seconds(1e12));
  EXPECT_FALSE(Duration::Infinite().is_finite());
  EXPECT_TRUE(Duration::Zero().is_finite());
}

TEST(SimTimeTest, TimePlusDuration) {
  const SimTime t = SimTime::FromSeconds(10.0);
  EXPECT_DOUBLE_EQ((t + Duration::Seconds(5.0)).seconds(), 15.0);
  EXPECT_DOUBLE_EQ((t - Duration::Seconds(3.0)).seconds(), 7.0);
  EXPECT_DOUBLE_EQ((t - SimTime::FromSeconds(4.0)).seconds(), 6.0);
}

TEST(SimTimeTest, Microseconds) {
  EXPECT_DOUBLE_EQ(Duration::Microseconds(1e6).seconds(), 1.0);
}

TEST(SimTimeTest, Streaming) {
  std::ostringstream os;
  os << Duration::Seconds(1.5) << " " << SimTime::FromSeconds(2.0);
  EXPECT_EQ(os.str(), "1.5s t=2s");
}

// --- logging ----------------------------------------------------------------

TEST(LoggingTest, SinkReceivesMessagesAtOrAboveLevel) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  Logger::Get().set_sink([&](LogLevel level, const std::string& msg) {
    captured.emplace_back(level, msg);
  });
  Logger::Get().set_min_level(LogLevel::kWarning);

  SPECSYNC_LOG(kInfo) << "hidden";
  SPECSYNC_LOG(kWarning) << "visible " << 1;
  SPECSYNC_LOG(kError) << "also visible";

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].second, "visible 1");
  EXPECT_EQ(captured[1].first, LogLevel::kError);

  Logger::Get().set_sink(nullptr);
  Logger::Get().set_min_level(LogLevel::kInfo);
}

TEST(LoggingTest, LevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
}

TEST(LoggingTest, LogEveryNEmitsFirstAndEveryNth) {
  std::vector<std::string> captured;
  Logger::Get().set_sink([&](LogLevel, const std::string& msg) {
    captured.push_back(msg);
  });
  Logger::Get().set_min_level(LogLevel::kWarning);

  for (int i = 0; i < 10; ++i) {
    SPECSYNC_LOG_EVERY_N(kWarning, 4) << "occurrence " << i;
  }

  // Emitted at occurrences 0, 4, 8 of this call site.
  ASSERT_EQ(captured.size(), 3u);
  EXPECT_EQ(captured[0], "occurrence 0");
  EXPECT_EQ(captured[1], "occurrence 4");
  EXPECT_EQ(captured[2], "occurrence 8");

  Logger::Get().set_sink(nullptr);
  Logger::Get().set_min_level(LogLevel::kInfo);
}

TEST(LoggingTest, LogEveryNCountsPerCallSite) {
  std::vector<std::string> captured;
  Logger::Get().set_sink([&](LogLevel, const std::string& msg) {
    captured.push_back(msg);
  });
  Logger::Get().set_min_level(LogLevel::kWarning);

  for (int i = 0; i < 3; ++i) {
    SPECSYNC_LOG_EVERY_N(kWarning, 100) << "site A";
    SPECSYNC_LOG_EVERY_N(kWarning, 100) << "site B";
  }

  // Each site emits its own first occurrence independently.
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0], "site A");
  EXPECT_EQ(captured[1], "site B");

  Logger::Get().set_sink(nullptr);
  Logger::Get().set_min_level(LogLevel::kInfo);
}

TEST(LoggingTest, LogEveryNSkipsArgumentEvaluationWhenSuppressed) {
  Logger::Get().set_sink([](LogLevel, const std::string&) {});
  Logger::Get().set_min_level(LogLevel::kWarning);
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  for (int i = 0; i < 6; ++i) {
    SPECSYNC_LOG_EVERY_N(kWarning, 3) << "value " << expensive();
  }
  // Only the emitted occurrences (0 and 3) paid for the argument.
  EXPECT_EQ(evaluations, 2);
  Logger::Get().set_sink(nullptr);
  Logger::Get().set_min_level(LogLevel::kInfo);
}

// --- table ------------------------------------------------------------------

TEST(TableTest, RowWidthMismatchThrows) {
  Table table({"a", "b"});
  EXPECT_THROW(table.AddRow({"1"}), CheckError);
}

TEST(TableTest, PrettyContainsHeadersAndCells) {
  Table table({"scheme", "speedup"});
  table.AddRowValues("ASP", 1.0);
  table.AddRowValues("SpecSync", 2.5);
  std::ostringstream os;
  table.PrintPretty(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("scheme"), std::string::npos);
  EXPECT_NE(out.find("SpecSync"), std::string::npos);
  EXPECT_NE(out.find("2.500"), std::string::npos);
}

TEST(TableTest, CsvEscaping) {
  Table table({"name", "note"});
  table.AddRow({"a,b", "say \"hi\""});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(TableTest, NumberFormatting) {
  EXPECT_EQ(Table::Format(0.0), "0");
  EXPECT_EQ(Table::Format(2.0), "2.000");
  EXPECT_EQ(Table::Format(0.5), "0.5000");
  EXPECT_EQ(Table::Format(12), "12");
  // Very large/small go scientific.
  EXPECT_NE(Table::Format(1.0e9).find("e"), std::string::npos);
  EXPECT_NE(Table::Format(1.0e-9).find("e"), std::string::npos);
}

TEST(TableTest, RowAccess) {
  Table table({"x"});
  table.AddRow({"v"});
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_EQ(table.row(0)[0], "v");
  EXPECT_THROW(table.row(1), CheckError);
}

}  // namespace
}  // namespace specsync
