// Tests for the fixed-size thread pool the ParallelRunner is built on. This
// suite also runs under TSan/ASan (scripts/sanitize.sh) as part of the
// thread-heavy set.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace specsync {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, WaitBlocksUntilSlowTasksFinish) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, SingleThreadDispatchIsFifo) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });  // one worker: no race
  }
  pool.Wait();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ReusableAcrossWaits) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&count] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        count.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }  // ~ThreadPool
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) h.store(0);
  ParallelFor(pool, hits.size(),
              [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroItemsReturnsImmediately) {
  ThreadPool pool(2);
  ParallelFor(pool, 0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

}  // namespace
}  // namespace specsync
