// Golden-trace determinism tests: a fixed-seed 8-worker SpecSync-Adaptive
// simulation must reproduce one exact event history, pinned here as an FNV
// digest of the ordered pull/push/abort/loss trace. Any change to event
// ordering, RNG consumption, scheduler decisions, or gradient math shows up
// as a digest mismatch — deliberate changes must re-pin the constant.
//
// Two pins, one per shard count:
//  - num_servers=1 degenerates the per-shard transfer fan-out to exactly one
//    message per pull/push, so its digest is pinned to the value the
//    *pre-sharding* simulator produced. This is the refactor's backward
//    compatibility contract: one shard == the legacy single-server model,
//    bit for bit.
//  - num_servers=2 exercises the sharded path (two transfer draws per pull
//    and per dense push, iteration resuming at the max shard arrival) and
//    pins its own history.
//
// To regenerate after an intentional behavior change:
//   run this test and copy the "Actual" digest from the failure message
//   (or print TraceDigest(result.sim.trace) from any driver with the exact
//   config below). The num_servers=1 pin should only ever change together
//   with the legacy single-server semantics themselves.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/workload.h"
#include "obs/obs.h"
#include "trace/trace.h"

namespace specsync {
namespace {

ExperimentResult RunGoldenSim(std::size_t num_servers,
                              obs::ObsContext* obs = nullptr) {
  // Convex workload: unique optimum, no divergence at 8 async workers, so
  // the pinned history stays meaningful (the MF proxy can blow up at this
  // worker count and NaN losses compare unequal to themselves).
  const Workload workload = MakeConvexWorkload(/*seed=*/1, /*scale=*/0.2);
  ExperimentConfig config;
  config.cluster = ClusterSpec::Homogeneous(8);
  config.cluster.num_servers = num_servers;
  config.scheme = SchemeSpec::Adaptive();
  config.max_time = SimTime::FromSeconds(240.0);
  config.stop_on_convergence = false;
  config.seed = 41;
  config.obs = obs;
  return RunExperiment(workload, config);
}

// Pinned digest of the single-shard golden run — identical to the digest the
// simulator produced before pulls and pushes were modeled as per-shard
// messages. See the header comment.
constexpr std::uint64_t kGoldenDigestOneServer = 9468566950707090850ULL;
// Pinned digest of the same experiment at num_servers=2.
constexpr std::uint64_t kGoldenDigestTwoServers = 18067104914765609640ULL;

void ExpectProtocolPathsExercised(const ExperimentResult& result) {
  // The run must exercise the interesting protocol paths, or the pin proves
  // nothing about speculation.
  EXPECT_GT(result.sim.trace.total_pushes(), 100u);
  EXPECT_GT(result.sim.trace.total_aborts(), 0u);
  EXPECT_GT(result.sim.scheduler_stats.resyncs_issued, 0u);
  EXPECT_GT(result.sim.scheduler_stats.retunes, 0u);
}

TEST(GoldenTraceTest, OneServerTraceMatchesPreShardingDigest) {
  const ExperimentResult result = RunGoldenSim(1);
  ExpectProtocolPathsExercised(result);
  EXPECT_EQ(TraceDigest(result.sim.trace), kGoldenDigestOneServer);
}

TEST(GoldenTraceTest, AdaptiveEightWorkerTraceDigestIsPinned) {
  const ExperimentResult result = RunGoldenSim(2);
  ExpectProtocolPathsExercised(result);
  EXPECT_EQ(TraceDigest(result.sim.trace), kGoldenDigestTwoServers);
}

TEST(GoldenTraceTest, ShardCountChangesTheScheduleDeliberately) {
  // Sharding is modeled, not cosmetic: with more than one server the network
  // draw sequence and arrival times genuinely differ from the single-server
  // run. (If these ever collide, the fan-out silently stopped mattering.)
  EXPECT_NE(kGoldenDigestOneServer, kGoldenDigestTwoServers);
}

TEST(GoldenTraceTest, ObservabilityLeavesBothGoldenDigestsIntact) {
  // Observability is record-only by contract: attaching an ObsContext must
  // reproduce the exact pinned histories — including through the consistency
  // refactor's audit hooks — while actually recording something.
  obs::ObsContext one;
  EXPECT_EQ(TraceDigest(RunGoldenSim(1, &one).sim.trace),
            kGoldenDigestOneServer);
  obs::ObsContext two;
  EXPECT_EQ(TraceDigest(RunGoldenSim(2, &two).sim.trace),
            kGoldenDigestTwoServers);
  EXPECT_FALSE(one.audit.retunes().empty());  // Adaptive tuner was audited.
  EXPECT_FALSE(two.audit.retunes().empty());
}

TEST(GoldenTraceTest, RerunningTheGoldenSimIsBitIdentical) {
  const ExperimentResult a = RunGoldenSim(2);
  const ExperimentResult b = RunGoldenSim(2);
  EXPECT_EQ(TraceDigest(a.sim.trace), TraceDigest(b.sim.trace));
  EXPECT_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.sim.scheduler_stats.resyncs_issued,
            b.sim.scheduler_stats.resyncs_issued);
}

TEST(GoldenTraceTest, CalendarAndHeapEnginesProduceTheSameHistory) {
  // The (time, sequence) pop-order contract makes the queue engine invisible
  // to simulation results (calendar_queue.h). Equivalence by construction:
  // the full golden run on each engine must yield the identical digest —
  // which is also why the pins above needed no re-pinning when the calendar
  // queue replaced the heap.
  const Workload workload = MakeConvexWorkload(/*seed=*/1, /*scale=*/0.2);
  ExperimentConfig config;
  config.cluster = ClusterSpec::Homogeneous(8);
  config.cluster.num_servers = 2;
  config.scheme = SchemeSpec::Adaptive();
  config.max_time = SimTime::FromSeconds(240.0);
  config.stop_on_convergence = false;
  config.seed = 41;
  config.event_queue = EventQueueKind::kBinaryHeap;
  const ExperimentResult heap = RunExperiment(workload, config);
  EXPECT_EQ(TraceDigest(heap.sim.trace), kGoldenDigestTwoServers);
}

// Pinned digest of the large-N determinism guard below. Regenerate like the
// other pins: copy the "Actual" digest from the failure message after an
// intentional behavior change.
constexpr std::uint64_t kGoldenDigest128Workers = 6179538663448581388ULL;

TEST(GoldenTraceTest, WorkersOneTwentyEightTraceDigestIsPinned) {
  // Large-N determinism: 128 workers exercise deep event-queue occupancy
  // (resize + wraparound paths in the calendar engine) under a short horizon.
  // The pin locks scheduling order at a scale the other pins never reach.
  const Workload workload = MakeConvexWorkload(/*seed=*/1, /*scale=*/0.2);
  ExperimentConfig config;
  config.cluster = ClusterSpec::Homogeneous(128);
  config.cluster.num_servers = 4;
  config.scheme = SchemeSpec::Adaptive();
  config.max_time = SimTime::FromSeconds(90.0);
  config.stop_on_convergence = false;
  config.seed = 41;
  const ExperimentResult result = RunExperiment(workload, config);
  EXPECT_GT(result.sim.trace.total_pushes(), 500u);
  EXPECT_EQ(TraceDigest(result.sim.trace), kGoldenDigest128Workers);

  // Both engines at 128 workers, too — the digest is engine-invariant.
  config.event_queue = EventQueueKind::kBinaryHeap;
  const ExperimentResult heap = RunExperiment(workload, config);
  EXPECT_EQ(TraceDigest(heap.sim.trace), kGoldenDigest128Workers);
}

// --- compressed-run pins ----------------------------------------------------

// Every codec gets its own pinned history of the standard golden experiment
// (num_servers=2). Regenerate like the other pins. The kNone row doubles as
// the codec=none bit-identity acceptance check: an explicitly-parsed "none"
// spec must reproduce kGoldenDigestTwoServers exactly — the codec seam is
// invisible until a codec is switched on.
struct CompressedPin {
  const char* literal;
  std::uint64_t digest;
  // Whether the codec must move this run's history off the uncompressed pin.
  // delta is pinned EQUAL on purpose: the convex workload pushes dense
  // gradients, so every shard's version advances between any worker's two
  // pulls and the version gate never skips a slice — delta is lossless and
  // inert here, bit for bit (DeltaPullSkipsOnlyWhenNoShardAdvanced below
  // proves it does fire on a sparse-push workload).
  bool diverges;
};
constexpr CompressedPin kCompressedPins[] = {
    {"none", kGoldenDigestTwoServers, false},
    {"topk:0.01", 2808442342461025129ULL, true},
    {"int8", 1944548210867626004ULL, true},
    {"fp16", 5068654852926626871ULL, true},
    {"delta", kGoldenDigestTwoServers, false},
};

TEST(GoldenTraceTest, CompressedTraceDigestsArePinnedPerCodec) {
  for (const CompressedPin& pin : kCompressedPins) {
    const Workload workload = MakeConvexWorkload(/*seed=*/1, /*scale=*/0.2);
    ExperimentConfig config;
    config.cluster = ClusterSpec::Homogeneous(8);
    config.cluster.num_servers = 2;
    config.scheme = SchemeSpec::Adaptive();
    config.max_time = SimTime::FromSeconds(240.0);
    config.stop_on_convergence = false;
    config.seed = 41;
    config.compression = *CompressionSpec::Parse(pin.literal);
    const ExperimentResult result = RunExperiment(workload, config);
    EXPECT_EQ(TraceDigest(result.sim.trace), pin.digest) << pin.literal;
    EXPECT_EQ(TraceDigest(result.sim.trace) != kGoldenDigestTwoServers,
              pin.diverges)
        << pin.literal;
  }
}

TEST(GoldenTraceTest, DeltaPullSkipsOnlyWhenNoShardAdvanced) {
  // Under Cherrypick speculation on MF, an abort's re-pull lands hot on the
  // heels of the previous pull, so some shards have not advanced — the delta
  // run must bank pull-side savings there, and only there (push accounting is
  // untouched by a pull-side codec).
  const Workload workload = MakeMfWorkload(/*seed=*/1, /*scale=*/0.5);
  SpeculationParams params;
  params.abort_time = workload.iteration_time * 0.35;
  params.abort_rate = 0.22;
  ExperimentConfig config;
  config.cluster = ClusterSpec::Homogeneous(8);
  config.cluster.num_servers = 4;
  config.scheme = SchemeSpec::Cherrypick(params);
  config.max_time = SimTime::FromSeconds(400.0);
  config.stop_on_convergence = false;
  config.seed = 41;
  config.compression = *CompressionSpec::Parse("delta");
  const ExperimentResult result = RunExperiment(workload, config);
  EXPECT_GT(result.sim.transfers.saved_bytes(TransferCategory::kPullParams),
            0u);
  EXPECT_EQ(result.sim.transfers.saved_bytes(TransferCategory::kPushGrads),
            0u);
}

}  // namespace
}  // namespace specsync
