// Golden-trace determinism test: a fixed-seed 8-worker SpecSync-Adaptive
// simulation must reproduce one exact event history, pinned here as an FNV
// digest of the ordered pull/push/abort/loss trace. Any change to event
// ordering, RNG consumption, scheduler decisions, or gradient math shows up
// as a digest mismatch — deliberate changes must re-pin the constant.
//
// To regenerate after an intentional behavior change:
//   run this test and copy the "Actual" digest from the failure message
//   (or print TraceDigest(result.sim.trace) from any driver with the exact
//   config below).
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/workload.h"
#include "trace/trace.h"

namespace specsync {
namespace {

ExperimentResult RunGoldenSim() {
  // Convex workload: unique optimum, no divergence at 8 async workers, so
  // the pinned history stays meaningful (the MF proxy can blow up at this
  // worker count and NaN losses compare unequal to themselves).
  const Workload workload = MakeConvexWorkload(/*seed=*/1, /*scale=*/0.2);
  ExperimentConfig config;
  config.cluster = ClusterSpec::Homogeneous(8);
  config.cluster.num_servers = 2;
  config.scheme = SchemeSpec::Adaptive();
  config.max_time = SimTime::FromSeconds(240.0);
  config.stop_on_convergence = false;
  config.seed = 41;
  return RunExperiment(workload, config);
}

// Pinned digest of the golden run's trace. See the header comment for how to
// regenerate when a change is intentional.
constexpr std::uint64_t kGoldenDigest = 9468566950707090850ULL;

TEST(GoldenTraceTest, AdaptiveEightWorkerTraceDigestIsPinned) {
  const ExperimentResult result = RunGoldenSim();
  // The run must exercise the interesting protocol paths, or the pin proves
  // nothing about speculation.
  EXPECT_GT(result.sim.trace.total_pushes(), 100u);
  EXPECT_GT(result.sim.trace.total_aborts(), 0u);
  EXPECT_GT(result.sim.scheduler_stats.resyncs_issued, 0u);
  EXPECT_GT(result.sim.scheduler_stats.retunes, 0u);
  EXPECT_EQ(TraceDigest(result.sim.trace), kGoldenDigest);
}

TEST(GoldenTraceTest, RerunningTheGoldenSimIsBitIdentical) {
  const ExperimentResult a = RunGoldenSim();
  const ExperimentResult b = RunGoldenSim();
  EXPECT_EQ(TraceDigest(a.sim.trace), TraceDigest(b.sim.trace));
  EXPECT_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.sim.scheduler_stats.resyncs_issued,
            b.sim.scheduler_stats.resyncs_issued);
}

}  // namespace
}  // namespace specsync
