// Tests for the workload registry, experiment driver, and cherry-pick search.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/grid_search.h"
#include "harness/workload.h"

namespace specsync {
namespace {

// Small scale + short horizons keep these integration tests quick.
ExperimentConfig FastConfig() {
  ExperimentConfig config;
  config.cluster = ClusterSpec::Homogeneous(4);
  config.cluster.num_servers = 2;
  config.max_time = SimTime::FromSeconds(120.0);
  config.seed = 5;
  return config;
}

TEST(WorkloadTest, TableOneRegistry) {
  const auto workloads = MakeAllWorkloads(1, /*scale=*/0.1);
  ASSERT_EQ(workloads.size(), 3u);
  EXPECT_EQ(workloads[0].name, "MF");
  EXPECT_EQ(workloads[1].name, "CIFAR-10");
  EXPECT_EQ(workloads[2].name, "ImageNet");
  // Iteration times follow Table I: 3s, 14s, 70s.
  EXPECT_DOUBLE_EQ(workloads[0].iteration_time.seconds(), 3.0);
  EXPECT_DOUBLE_EQ(workloads[1].iteration_time.seconds(), 14.0);
  EXPECT_DOUBLE_EQ(workloads[2].iteration_time.seconds(), 70.0);
  for (const Workload& w : workloads) {
    EXPECT_NE(w.model, nullptr);
    EXPECT_NE(w.schedule, nullptr);
    EXPECT_GT(w.model->param_dim(), 0u);
    EXPECT_GT(w.loss_target, 0.0);
    EXPECT_FALSE(w.paper_dataset.empty());
  }
}

TEST(WorkloadTest, ScaleShrinksDatasets) {
  const Workload big = MakeMfWorkload(1, 1.0);
  const Workload small = MakeMfWorkload(1, 0.1);
  EXPECT_GT(big.model->dataset_size(), small.model->dataset_size());
}

TEST(WorkloadTest, ConvexWorkloadForCalibration) {
  const Workload w = MakeConvexWorkload(1, 0.2);
  EXPECT_EQ(w.name, "Convex");
  EXPECT_GT(w.model->param_dim(), 0u);
}

TEST(ExperimentTest, RunsAndImprovesLoss) {
  const Workload workload = MakeMfWorkload(2, 0.1);
  ExperimentConfig config = FastConfig();
  config.scheme = SchemeSpec::Original();
  const ExperimentResult result = RunExperiment(workload, config);
  EXPECT_EQ(result.workload_name, "MF");
  EXPECT_EQ(result.scheme_name, "ASP");
  ASSERT_GE(result.sim.trace.losses().size(), 2u);
  EXPECT_LT(result.sim.trace.losses().back().loss,
            result.sim.trace.losses().front().loss);
}

TEST(ExperimentTest, HeterogeneousClusterShape) {
  const ClusterSpec hetero = ClusterSpec::Heterogeneous(8);
  EXPECT_EQ(hetero.class_multipliers.size(), 4u);
  const Workload workload = MakeMfWorkload(3, 0.1);
  ExperimentConfig config = FastConfig();
  config.cluster = hetero;
  config.cluster.num_servers = 2;
  config.scheme = SchemeSpec::Adaptive();
  const ExperimentResult result = RunExperiment(workload, config);
  EXPECT_GT(result.sim.total_pushes, 0u);
  // Slow-class workers (multiplier 1.7) complete fewer iterations than
  // fast-class ones (0.5).
  std::vector<std::size_t> pushes(8, 0);
  for (const PushEvent& e : result.sim.trace.pushes()) ++pushes[e.worker];
  EXPECT_GT(pushes[3], pushes[0]);  // class 0.5 vs class 1.7
}

TEST(ExperimentTest, LossAtTimeAndTimeToTarget) {
  TrainingTrace trace(1);
  trace.RecordLoss(SimTime::FromSeconds(1.0), 3.0, 1, 0);
  trace.RecordLoss(SimTime::FromSeconds(2.0), 1.0, 2, 0);
  trace.RecordLoss(SimTime::FromSeconds(3.0), 0.5, 3, 0);
  trace.RecordLoss(SimTime::FromSeconds(4.0), 0.4, 4, 0);

  EXPECT_EQ(LossAtTime(trace, SimTime::FromSeconds(0.5)), std::nullopt);
  EXPECT_EQ(LossAtTime(trace, SimTime::FromSeconds(2.5)), 1.0);
  EXPECT_EQ(LossAtTime(trace, SimTime::FromSeconds(9.0)), 0.4);

  const auto ttt = TimeToTarget(trace, 1.5, /*patience=*/3);
  ASSERT_TRUE(ttt.has_value());
  EXPECT_DOUBLE_EQ(ttt->seconds(), 2.0);
  EXPECT_EQ(TimeToTarget(trace, 0.1), std::nullopt);
}

TEST(ExperimentTest, TimeToTargetResetsOnExcursion) {
  TrainingTrace trace(1);
  trace.RecordLoss(SimTime::FromSeconds(1.0), 0.5, 1, 0);  // below
  trace.RecordLoss(SimTime::FromSeconds(2.0), 2.0, 2, 0);  // excursion
  trace.RecordLoss(SimTime::FromSeconds(3.0), 0.5, 3, 0);
  trace.RecordLoss(SimTime::FromSeconds(4.0), 0.5, 4, 0);
  const auto ttt = TimeToTarget(trace, 1.0, /*patience=*/2);
  ASSERT_TRUE(ttt.has_value());
  EXPECT_DOUBLE_EQ(ttt->seconds(), 3.0);
}

TEST(ExperimentTest, LossTargetOverride) {
  const Workload workload = MakeMfWorkload(4, 0.1);
  ExperimentConfig config = FastConfig();
  config.loss_target_override = 100.0;  // trivially met
  const ExperimentResult result = RunExperiment(workload, config);
  EXPECT_TRUE(result.time_to_target.has_value());
}

TEST(GridSearchTest, FindsParamsWithinGrid) {
  const Workload workload = MakeMfWorkload(5, 0.1);
  GridSearchConfig config;
  config.time_fractions = {0.1, 0.3};
  config.rates = {0.25, 0.5};
  config.trial_max_time = SimTime::FromSeconds(60.0);
  ClusterSpec cluster = ClusterSpec::Homogeneous(4);
  cluster.num_servers = 2;
  const GridSearchResult result = CherrypickSearch(workload, cluster, config);
  EXPECT_EQ(result.trials.size(), 4u);
  EXPECT_TRUE(result.best.enabled());
  // Best must be one of the grid points.
  bool found = false;
  for (double f : config.time_fractions) {
    for (double r : config.rates) {
      if (result.best.abort_time == workload.iteration_time * f &&
          result.best.abort_rate == r) {
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
  // Total simulated time accumulates across trials (Table II's cost).
  EXPECT_GT(result.total_simulated_time.seconds(), 100.0);
}

}  // namespace
}  // namespace specsync
