// Parallel-equivalence property tests: ParallelRunner results (losses,
// convergence times, trace digests) must be bit-identical across thread
// counts {1, 2, 8} and across repeated runs at the same count — the core
// guarantee that lets the figure benches fan cells across cores without
// changing a single printed number.
#include <gtest/gtest.h>

#include "harness/grid_search.h"
#include "harness/parallel_runner.h"
#include "harness/workload.h"

namespace specsync {
namespace {

std::vector<ExperimentCell> SmallGrid() {
  // Two workloads x two schemes x two replicates: enough shape to catch a
  // seed leaking across cells or a result landing in the wrong slot.
  std::vector<ExperimentCell> cells;
  const Workload mf = MakeMfWorkload(1, /*scale=*/0.1);
  const Workload convex = MakeConvexWorkload(1, /*scale=*/0.2);
  for (const Workload& workload : {mf, convex}) {
    for (const SchemeSpec& scheme :
         {SchemeSpec::Original(), SchemeSpec::Adaptive()}) {
      for (std::uint64_t replicate = 0; replicate < 2; ++replicate) {
        ExperimentCell cell;
        cell.workload = workload;
        cell.config.cluster = ClusterSpec::Homogeneous(4);
        cell.config.cluster.num_servers = 2;
        cell.config.scheme = scheme;
        cell.config.max_time = SimTime::FromSeconds(60.0);
        cell.config.stop_on_convergence = false;
        cell.replicate = replicate;
        cells.push_back(std::move(cell));
      }
    }
  }
  return cells;
}

std::vector<CellResult> RunWith(const std::vector<ExperimentCell>& cells,
                                std::size_t threads) {
  ParallelRunnerOptions options;
  options.threads = threads;
  options.root_seed = 7;
  return ParallelRunner(options).Run(cells);
}

void ExpectBitIdentical(const std::vector<CellResult>& a,
                        const std::vector<CellResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].trace_digest, b[i].trace_digest);
    EXPECT_EQ(a[i].sim_events, b[i].sim_events);
    // Bit-exact double comparison is the point: == on purpose.
    EXPECT_EQ(a[i].result.final_loss, b[i].result.final_loss);
    EXPECT_EQ(a[i].result.sim.total_pushes, b[i].result.sim.total_pushes);
    EXPECT_EQ(a[i].result.sim.total_aborts, b[i].result.sim.total_aborts);
    EXPECT_EQ(a[i].result.time_to_target.has_value(),
              b[i].result.time_to_target.has_value());
    if (a[i].result.time_to_target.has_value()) {
      EXPECT_EQ(a[i].result.time_to_target->seconds(),
                b[i].result.time_to_target->seconds());
    }
  }
}

TEST(ParallelRunnerTest, BitIdenticalAcrossThreadCounts) {
  const std::vector<ExperimentCell> cells = SmallGrid();
  const auto serial = RunWith(cells, 1);
  ExpectBitIdentical(serial, RunWith(cells, 2));
  ExpectBitIdentical(serial, RunWith(cells, 8));
}

TEST(ParallelRunnerTest, RepeatedRunsAtSameThreadCountAreIdentical) {
  const std::vector<ExperimentCell> cells = SmallGrid();
  const auto first = RunWith(cells, 8);
  ExpectBitIdentical(first, RunWith(cells, 8));
}

TEST(ParallelRunnerTest, SubmissionOrderDoesNotChangeCellResults) {
  std::vector<ExperimentCell> cells = SmallGrid();
  const auto forward = RunWith(cells, 2);
  std::vector<ExperimentCell> reversed(cells.rbegin(), cells.rend());
  const auto backward = RunWith(reversed, 2);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::size_t j = cells.size() - 1 - i;
    EXPECT_EQ(forward[i].seed, backward[j].seed);
    EXPECT_EQ(forward[i].trace_digest, backward[j].trace_digest);
  }
}

TEST(ParallelRunnerTest, MatchesDirectSerialRunExperiment) {
  const std::vector<ExperimentCell> cells = SmallGrid();
  const auto parallel = RunWith(cells, 8);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ExperimentConfig config = cells[i].config;
    config.seed = ParallelRunner::CellSeed(7, cells[i]);
    const ExperimentResult direct = RunExperiment(cells[i].workload, config);
    EXPECT_EQ(TraceDigest(direct.sim.trace), parallel[i].trace_digest)
        << "cell " << i;
    EXPECT_EQ(direct.final_loss, parallel[i].result.final_loss);
  }
}

TEST(ParallelRunnerTest, CellSeedIsKeyDerivedNotOrderDerived) {
  ExperimentCell cell;
  cell.workload = MakeConvexWorkload(1, 0.2);
  cell.config.scheme = SchemeSpec::Adaptive();
  cell.replicate = 3;
  cell.label = "workers=20";
  const std::uint64_t seed = ParallelRunner::CellSeed(7, cell);
  EXPECT_EQ(seed, ParallelRunner::CellSeed(7, cell));  // pure function

  ExperimentCell other = cell;
  other.replicate = 4;
  EXPECT_NE(ParallelRunner::CellSeed(7, other), seed);
  other = cell;
  other.label = "workers=30";
  EXPECT_NE(ParallelRunner::CellSeed(7, other), seed);
  other = cell;
  other.config.scheme = SchemeSpec::Original();
  EXPECT_NE(ParallelRunner::CellSeed(7, other), seed);
  EXPECT_NE(ParallelRunner::CellSeed(8, cell), seed);

  cell.explicit_seed = 99;
  EXPECT_EQ(ParallelRunner::CellSeed(7, cell), 99u);
}

TEST(GridSearchTest, ParallelGridMatchesSerialGrid) {
  const Workload workload = MakeMfWorkload(5, 0.1);
  GridSearchConfig config;
  config.time_fractions = {0.1, 0.3};
  config.rates = {0.25, 0.5};
  config.trial_max_time = SimTime::FromSeconds(60.0);
  ClusterSpec cluster = ClusterSpec::Homogeneous(4);
  cluster.num_servers = 2;

  config.threads = 1;
  const GridSearchResult serial = CherrypickSearch(workload, cluster, config);
  config.threads = 4;
  const GridSearchResult parallel =
      CherrypickSearch(workload, cluster, config);

  EXPECT_EQ(serial.best.abort_time.seconds(),
            parallel.best.abort_time.seconds());
  EXPECT_EQ(serial.best.abort_rate, parallel.best.abort_rate);
  ASSERT_EQ(serial.trials.size(), parallel.trials.size());
  for (std::size_t i = 0; i < serial.trials.size(); ++i) {
    EXPECT_EQ(serial.trials[i].final_loss, parallel.trials[i].final_loss);
    EXPECT_EQ(serial.cell_results[i].trace_digest,
              parallel.cell_results[i].trace_digest);
  }
  EXPECT_EQ(serial.total_simulated_time.seconds(),
            parallel.total_simulated_time.seconds());
}

}  // namespace
}  // namespace specsync
