// Endpoint / ClusterTopology unit tests: the config seam that replaced the
// hard-coded loopback addresses. Validation must be loud and name the bad
// shard; link derivation (DistinctEndpoints / ShardLinkIndex) defines how
// many sockets a client opens, so its dedup and ordering are pinned here.
// The resolution tests at the bottom prove "" and "localhost" really reach a
// bound listener.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "net/endpoint.h"
#include "net/socket.h"

namespace specsync::net {
namespace {

Endpoint Ep(std::uint16_t port, std::string host = "127.0.0.1") {
  return Endpoint{std::move(host), port};
}

TEST(EndpointTest, ToStringCanonicalizesLoopbackSpellings) {
  EXPECT_EQ(ToString(Ep(9000)), "127.0.0.1:9000");
  EXPECT_EQ(ToString(Ep(9000, "")), "127.0.0.1:9000");
  EXPECT_EQ(ToString(Ep(9000, "localhost")), "127.0.0.1:9000");
  EXPECT_EQ(ToString(Ep(80, "10.1.2.3")), "10.1.2.3:80");
}

TEST(EndpointTest, ServerModelNamesAreStable) {
  // Bench flags and CI grep for these strings; renaming them is a break.
  EXPECT_STREQ(ServerModelName(ServerModel::kThreadPerConn),
               "thread_per_conn");
  EXPECT_STREQ(ServerModelName(ServerModel::kEventLoop), "event_loop");
}

TEST(TopologyTest, DimSumsShardLengths) {
  ClusterTopology topology;
  topology.shards = {ShardPlacement{0, 4, Ep(1)}, ShardPlacement{4, 6, Ep(1)}};
  EXPECT_EQ(topology.dim(), 10u);
  EXPECT_EQ(ClusterTopology{}.dim(), 0u);
}

TEST(TopologyTest, ValidAndInvalidLayouts) {
  ClusterTopology topology;
  std::string error;
  EXPECT_FALSE(topology.Validate(&error));  // empty
  EXPECT_EQ(error, "topology has no shards");

  topology.shards = {ShardPlacement{0, 5, Ep(1)}, ShardPlacement{5, 5, Ep(2)}};
  EXPECT_TRUE(topology.Validate(&error));
  EXPECT_TRUE(topology.Validate());  // error out-param optional

  topology.shards[1].offset = 6;  // gap after shard 0
  EXPECT_FALSE(topology.Validate(&error));
  EXPECT_NE(error.find("shard 1"), std::string::npos) << error;

  topology.shards[1].offset = 5;
  topology.shards[1].endpoint.port = 0;  // unbound endpoint
  EXPECT_FALSE(topology.Validate(&error));
  EXPECT_NE(error.find("port 0"), std::string::npos) << error;

  topology.shards = {ShardPlacement{1, 5, Ep(1)}};  // must start at 0
  EXPECT_FALSE(topology.Validate(&error));
  EXPECT_NE(error.find("shard 0"), std::string::npos) << error;

  topology.shards = {ShardPlacement{0, 0, Ep(1)}};  // zero total parameters
  EXPECT_FALSE(topology.Validate(&error));
}

TEST(TopologyTest, DistinctEndpointsDedupesInFirstAppearanceOrder) {
  ClusterTopology topology;
  topology.shards = {
      ShardPlacement{0, 2, Ep(7001)}, ShardPlacement{2, 2, Ep(7002)},
      ShardPlacement{4, 2, Ep(7001)}, ShardPlacement{6, 2, Ep(7003)},
      ShardPlacement{8, 2, Ep(7002)}};
  const std::vector<Endpoint> links = topology.DistinctEndpoints();
  ASSERT_EQ(links.size(), 3u);
  EXPECT_EQ(links[0].port, 7001);
  EXPECT_EQ(links[1].port, 7002);
  EXPECT_EQ(links[2].port, 7003);
  // Same port on a different host is a different link.
  topology.shards.push_back(ShardPlacement{10, 2, Ep(7001, "10.0.0.1")});
  EXPECT_EQ(topology.DistinctEndpoints().size(), 4u);
}

TEST(TopologyTest, ShardLinkIndexMapsEveryShardToItsLink) {
  ClusterTopology topology;
  topology.shards = {
      ShardPlacement{0, 2, Ep(7001)}, ShardPlacement{2, 2, Ep(7002)},
      ShardPlacement{4, 2, Ep(7001)}, ShardPlacement{6, 2, Ep(7003)}};
  EXPECT_EQ(topology.ShardLinkIndex(),
            (std::vector<std::size_t>{0, 1, 0, 2}));
}

TEST(TopologyTest, SingleServerPlacesEveryShardBehindOneEndpoint) {
  const std::vector<std::pair<std::size_t, std::size_t>> split = {
      {0, 3}, {3, 3}, {6, 4}};
  const ClusterTopology topology =
      ClusterTopology::SingleServer(split, Ep(7100));
  ASSERT_EQ(topology.shards.size(), 3u);
  EXPECT_EQ(topology.dim(), 10u);
  EXPECT_TRUE(topology.Validate());
  EXPECT_EQ(topology.DistinctEndpoints().size(), 1u);
  EXPECT_EQ(topology.shards[2].offset, 6u);
  EXPECT_EQ(topology.shards[2].length, 4u);
}

TEST(EndpointResolutionTest, EmptyAndLocalhostHostsReachALoopbackListener) {
  auto listener = TcpListener::Bind(Endpoint{"127.0.0.1", 0});
  ASSERT_NE(listener, nullptr);
  ASSERT_GT(listener->port(), 0);
  for (const char* host : {"", "localhost", "127.0.0.1"}) {
    TcpConnection conn =
        TcpConnection::Connect(Endpoint{host, listener->port()});
    EXPECT_TRUE(conn.valid()) << "host '" << host << "'";
    TcpConnection accepted = listener->Accept();
    EXPECT_TRUE(accepted.valid()) << "host '" << host << "'";
  }
}

TEST(EndpointResolutionTest, UnresolvableHostFailsCleanly) {
  TcpConnection conn = TcpConnection::Connect(
      Endpoint{"no-such-host.invalid", 9});
  EXPECT_FALSE(conn.valid());
}

}  // namespace
}  // namespace specsync::net
