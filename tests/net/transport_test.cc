// Loopback transport tests: a ShardServer + ShardClient pair must be an
// observable no-op relative to direct ParameterServer calls — same parameter
// bytes, same versions, same scheduler decisions — and must survive injected
// drop / delay / duplicate faults without hanging.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "core/scheduler.h"
#include "core/speculation.h"
#include "fault/fault_plan.h"
#include "net/shard_client.h"
#include "net/shard_server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "optim/lr_schedule.h"
#include "ps/param_store.h"

namespace specsync::net {
namespace {

std::shared_ptr<const SgdApplier> UnitApplier() {
  return std::make_shared<SgdApplier>(std::make_shared<ConstantSchedule>(1.0));
}

std::unique_ptr<ParameterServer> MakeStore(std::size_t dim,
                                           std::size_t num_shards) {
  auto store = std::make_unique<ParameterServer>(dim, num_shards,
                                                 UnitApplier());
  DenseVector params(dim);
  std::iota(params.begin(), params.end(), 1.0);
  store->SetParams(std::move(params));
  return store;
}

ShardClientConfig ClientConfigFor(const ParameterServer& store,
                                  std::uint16_t port) {
  ShardClientConfig config;
  for (std::size_t s = 0; s < store.num_shards(); ++s) {
    const ShardInfo info = store.shard(s);
    config.shards.push_back(ShardEndpoint{info.offset, info.length, port});
  }
  return config;
}

TEST(TransportTest, ServerStartStopIsClean) {
  auto store = MakeStore(10, 3);
  ShardServer server(store.get(), ShardServerConfig{});
  ASSERT_TRUE(server.Start());
  EXPECT_GT(server.port(), 0);
  server.Stop();
  server.Stop();  // idempotent
}

TEST(TransportTest, TwoServersGetDistinctEphemeralPorts) {
  auto store = MakeStore(10, 2);
  ShardServer a(store.get(), ShardServerConfig{});
  ShardServer b(store.get(), ShardServerConfig{});
  ASSERT_TRUE(a.Start());
  ASSERT_TRUE(b.Start());
  EXPECT_NE(a.port(), b.port());
}

TEST(TransportTest, PullMatchesDirectPullBitwise) {
  auto store = MakeStore(17, 4);
  ShardServer server(store.get(), ShardServerConfig{});
  ASSERT_TRUE(server.Start());
  ShardClient client(ClientConfigFor(*store, server.port()));
  ASSERT_TRUE(client.Connect());

  const PullResult direct = store->Pull();
  const PullResult wire = client.Pull();
  EXPECT_EQ(wire.params, direct.params);
  EXPECT_EQ(wire.version, direct.version);

  const ShardPullResult shard_direct = store->PullShard(2);
  const ShardPullResult shard_wire = client.PullShard(2);
  EXPECT_EQ(shard_wire.offset, shard_direct.offset);
  EXPECT_EQ(shard_wire.params, shard_direct.params);
  EXPECT_EQ(shard_wire.shard_version, shard_direct.shard_version);
  EXPECT_EQ(shard_wire.version, shard_direct.version);
}

TEST(TransportTest, ConcurrentPullUsesPool) {
  auto store = MakeStore(101, 5);
  ShardServer server(store.get(), ShardServerConfig{});
  ASSERT_TRUE(server.Start());
  ShardClient client(ClientConfigFor(*store, server.port()));
  ASSERT_TRUE(client.Connect());
  ThreadPool pool(4);
  const PullResult wire = client.Pull(&pool);
  EXPECT_EQ(wire.params, store->Pull().params);
}

// The scripted op timeline: one deterministic sequence of pulls and pushes
// (dense, sparse spanning a shard boundary, empty) executed once directly
// and once over the wire. Every observation — pulled bytes, versions, and
// the scheduler decisions the observations drive — must be identical.
struct OpObservation {
  std::vector<double> pulled;
  std::uint64_t pull_version = 0;
  std::uint64_t push_version = 0;
};

template <typename PullFn, typename PushFn>
std::vector<OpObservation> RunScriptedTimeline(PullFn pull, PushFn push) {
  std::vector<OpObservation> log;
  const auto observe_pull = [&] {
    OpObservation obs;
    PullResult r = pull();
    obs.pulled = std::move(r.params);
    obs.pull_version = r.version;
    log.push_back(std::move(obs));
  };
  const auto observe_push = [&](const Gradient& g, EpochId epoch) {
    OpObservation obs;
    obs.push_version = push(g, epoch);
    log.push_back(std::move(obs));
  };

  observe_pull();
  Gradient dense = Gradient::Dense(10);
  for (std::size_t i = 0; i < 10; ++i) dense.dense()[i] = 0.25 * (i + 1);
  observe_push(dense, 0);
  observe_pull();

  Gradient boundary = Gradient::Sparse();  // spans the [0,4)/[4,7) boundary
  boundary.sparse().Add(3, 1.0);
  boundary.sparse().Add(4, -1.0);
  boundary.sparse().Add(9, 0.5);
  observe_push(boundary, 1);
  observe_pull();

  Gradient empty = Gradient::Sparse();  // still one logical push
  observe_push(empty, 1);
  observe_push(dense, 2);
  observe_pull();
  return log;
}

// Replays the observed timeline as scheduler input: each pull observation is
// a HandlePull, each push observation a HandleNotify whose timing is derived
// from the observed version (so any transport-level divergence in versions
// changes the decisions). Returns a printable decision trace.
std::string SchedulerDecisions(const std::vector<OpObservation>& log) {
  SchedulerConfig config;
  config.num_workers = 2;
  config.initial_params.abort_time = Duration::Milliseconds(50.0);
  config.initial_params.abort_rate = 0.5;
  SpecSyncScheduler scheduler(
      config,
      std::make_unique<FixedSpeculationPolicy>(config.initial_params));
  std::string trace;
  IterationId iteration = 0;
  SimTime now = SimTime::FromSeconds(0.0);
  for (const OpObservation& obs : log) {
    now = now + Duration::Milliseconds(10.0);
    if (!obs.pulled.empty() || obs.pull_version > 0 || obs.push_version == 0) {
      scheduler.HandlePull(obs.pull_version % config.num_workers, now);
      trace += "pull@" + std::to_string(obs.pull_version) + ";";
      continue;
    }
    const WorkerId worker = obs.push_version % config.num_workers;
    auto request = scheduler.HandleNotify(worker, iteration++, now);
    if (request.has_value()) {
      const SimTime fire = now + request->delay;
      const bool resync =
          scheduler.HandleCheckTimer(worker, request->token, fire);
      trace += "check@" + std::to_string(request->delay.milliseconds()) +
               (resync ? "!resync;" : ";");
    } else {
      trace += "nocheck;";
    }
  }
  return trace;
}

TEST(TransportTest, LoopbackTimelineIsEquivalentToInProcess) {
  // Direct run.
  auto direct_store = MakeStore(10, 3);
  const auto direct_log = RunScriptedTimeline(
      [&] { return direct_store->Pull(); },
      [&](const Gradient& g, EpochId e) { return direct_store->Push(g, e); });

  // Wire run against an identically initialized store.
  auto wire_store = MakeStore(10, 3);
  ShardServer server(wire_store.get(), ShardServerConfig{});
  ASSERT_TRUE(server.Start());
  ShardClient client(ClientConfigFor(*wire_store, server.port()));
  ASSERT_TRUE(client.Connect());
  const auto wire_log = RunScriptedTimeline(
      [&] { return client.Pull(); },
      [&](const Gradient& g, EpochId e) { return client.Push(g, e); });

  // Identical final store state, bit for bit.
  EXPECT_EQ(wire_store->Snapshot(), direct_store->Snapshot());
  EXPECT_EQ(wire_store->version(), direct_store->version());
  for (std::size_t s = 0; s < direct_store->num_shards(); ++s) {
    EXPECT_EQ(wire_store->shard(s).version, direct_store->shard(s).version)
        << "shard " << s;
  }

  // Identical per-op observations.
  ASSERT_EQ(wire_log.size(), direct_log.size());
  for (std::size_t i = 0; i < direct_log.size(); ++i) {
    EXPECT_EQ(wire_log[i].pulled, direct_log[i].pulled) << "op " << i;
    EXPECT_EQ(wire_log[i].pull_version, direct_log[i].pull_version)
        << "op " << i;
    EXPECT_EQ(wire_log[i].push_version, direct_log[i].push_version)
        << "op " << i;
  }

  // Identical scheduler decisions when the observations drive the protocol.
  EXPECT_EQ(SchedulerDecisions(wire_log), SchedulerDecisions(direct_log));
}

TEST(TransportTest, SparsePushAcrossShardBoundary) {
  auto store = MakeStore(10, 2);  // shards [0,5) and [5,10)
  ShardServer server(store.get(), ShardServerConfig{});
  ASSERT_TRUE(server.Start());
  ShardClient client(ClientConfigFor(*store, server.port()));
  ASSERT_TRUE(client.Connect());

  Gradient g = Gradient::Sparse();
  g.sparse().Add(4, 10.0);  // last index of shard 0
  g.sparse().Add(5, 20.0);  // first index of shard 1
  EXPECT_EQ(client.Push(g, 0), 1u);

  const DenseVector params = store->Snapshot();
  EXPECT_DOUBLE_EQ(params[4], 5.0 - 10.0);  // iota init minus lr=1 gradient
  EXPECT_DOUBLE_EQ(params[5], 6.0 - 20.0);
  EXPECT_EQ(store->shard(0).version, 1u);
  EXPECT_EQ(store->shard(1).version, 1u);
  EXPECT_EQ(store->version(), 1u);
}

TEST(TransportTest, EmptyGradientPushStillCommits) {
  auto store = MakeStore(10, 2);
  ShardServer server(store.get(), ShardServerConfig{});
  ASSERT_TRUE(server.Start());
  ShardClient client(ClientConfigFor(*store, server.port()));
  ASSERT_TRUE(client.Connect());
  EXPECT_EQ(client.Push(Gradient::Sparse(), 0), 1u);
  EXPECT_EQ(store->version(), 1u);
  EXPECT_EQ(store->shard(0).version, 0u);  // empty slice touches nothing
}

TEST(TransportTest, UnservedShardAnsweredWithBadShardAck) {
  auto store = MakeStore(10, 2);
  ShardServerConfig config;
  config.served_shards = {0};  // this server owns shard 0 only
  ShardServer server(store.get(), config);
  ASSERT_TRUE(server.Start());

  TcpConnection conn = TcpConnection::ConnectLoopback(server.port());
  ASSERT_TRUE(conn.valid());
  const auto frame = EncodeFrame(PullShardReq{1}, 77);
  ASSERT_TRUE(conn.SendAll(frame));
  std::vector<std::uint8_t> reply;
  ASSERT_EQ(conn.RecvFrame(reply,
                           std::chrono::steady_clock::now() +
                               std::chrono::seconds(5)),
            TcpConnection::RecvStatus::kFrame);
  std::uint64_t id = 0;
  WireMessage out;
  ASSERT_EQ(DecodeFrame(reply, id, out), WireStatus::kOk);
  EXPECT_EQ(id, 77u);
  ASSERT_TRUE(std::holds_alternative<AckResp>(out));
  EXPECT_EQ(std::get<AckResp>(out).status, kAckBadShard);
  EXPECT_EQ(server.stats().rejected, 1u);
}

TEST(TransportTest, MalformedFrameKillsOnlyItsConnection) {
  auto store = MakeStore(10, 2);
  ShardServer server(store.get(), ShardServerConfig{});
  ASSERT_TRUE(server.Start());

  // Connection 1 sends garbage with a valid-looking length and dies.
  TcpConnection bad = TcpConnection::ConnectLoopback(server.port());
  ASSERT_TRUE(bad.valid());
  std::vector<std::uint8_t> garbage(kHeaderBytes, 0xff);
  ASSERT_TRUE(bad.SendAll(garbage));
  std::vector<std::uint8_t> reply;
  EXPECT_EQ(bad.RecvFrame(reply,
                          std::chrono::steady_clock::now() +
                              std::chrono::seconds(5)),
            TcpConnection::RecvStatus::kClosed);

  // The server keeps serving new clients.
  ShardClient client(ClientConfigFor(*store, server.port()));
  ASSERT_TRUE(client.Connect());
  EXPECT_EQ(client.Pull().params, store->Pull().params);
  EXPECT_GE(server.stats().bad_frames, 1u);
}

TEST(TransportTest, SurvivesDropDelayDuplicateInjection) {
  auto store = MakeStore(40, 4);
  ShardServer server(store.get(), ShardServerConfig{});
  ASSERT_TRUE(server.Start());

  FaultPlanConfig fault_config;
  fault_config.data.drop_probability = 0.15;
  fault_config.data.delay_probability = 0.15;
  fault_config.data.delay_mean = Duration::Milliseconds(2.0);
  fault_config.data.duplicate_probability = 0.15;
  fault_config.seed = 99;
  FaultPlan faults(fault_config);

  ShardClientConfig client_config = ClientConfigFor(*store, server.port());
  client_config.request_timeout = std::chrono::milliseconds(50);
  client_config.max_attempts = 64;
  ShardClient client(client_config, &faults);
  ASSERT_TRUE(client.Connect());

  constexpr std::size_t kWorkers = 3;
  constexpr std::size_t kPushesPerWorker = 10;
  std::vector<std::jthread> workers;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      // Each worker gets its own client: independent connections, like
      // independent machines.
      ShardClient mine(client_config, &faults);
      ASSERT_TRUE(mine.Connect());
      Gradient g = Gradient::Dense(40);
      for (std::size_t i = 0; i < 40; ++i) {
        g.dense()[i] = 0.001 * static_cast<double>(w + 1);
      }
      for (std::size_t it = 0; it < kPushesPerWorker; ++it) {
        const PullResult snapshot = mine.Pull();
        ASSERT_EQ(snapshot.params.size(), 40u);
        mine.Push(g, it);
      }
    });
  }
  workers.clear();  // join

  // Retried pushes may re-commit (at-least-once), so the version is a floor.
  EXPECT_GE(store->version(), kWorkers * kPushesPerWorker);
  for (const double v : store->Snapshot()) {
    EXPECT_TRUE(std::isfinite(v));
  }
  const ShardClient::Stats stats = client.stats();
  (void)stats;  // per-worker clients carry the interesting counters
}

TEST(TransportTest, ClientStatsCountInjectedFaults) {
  auto store = MakeStore(10, 1);
  ShardServer server(store.get(), ShardServerConfig{});
  ASSERT_TRUE(server.Start());

  FaultPlanConfig fault_config;
  fault_config.data.drop_probability = 1.0;  // every attempt times out
  FaultPlan faults(fault_config);

  ShardClientConfig client_config = ClientConfigFor(*store, server.port());
  client_config.request_timeout = std::chrono::milliseconds(10);
  client_config.max_attempts = 3;
  ShardClient client(client_config, &faults);
  ASSERT_TRUE(client.Connect());
  EXPECT_THROW(client.PullShard(0), CheckError);
  const ShardClient::Stats stats = client.stats();
  EXPECT_EQ(stats.injected_drops, 3u);
  EXPECT_EQ(stats.timeouts, 3u);
  EXPECT_EQ(stats.retries, 2u);
}

}  // namespace
}  // namespace specsync::net
