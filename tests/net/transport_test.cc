// Loopback transport tests: a shard server + ShardClient pair must be an
// observable no-op relative to direct ParameterServer calls — same parameter
// bytes, same versions, same scheduler decisions — and must survive injected
// drop / delay / duplicate faults without hanging.
//
// The whole behavioral suite is value-parameterized over ServerModel: every
// guarantee must hold identically behind the thread-per-connection server and
// the epoll event-loop server (the A/B seam MakeShardServer exists for).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/hash.h"
#include "common/thread_pool.h"
#include "core/scheduler.h"
#include "core/speculation.h"
#include "fault/fault_plan.h"
#include "net/endpoint.h"
#include "net/shard_client.h"
#include "net/shard_server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/span_recorder.h"
#include "optim/lr_schedule.h"
#include "ps/param_store.h"

namespace specsync::net {
namespace {

std::shared_ptr<const SgdApplier> UnitApplier() {
  return std::make_shared<SgdApplier>(std::make_shared<ConstantSchedule>(1.0));
}

std::unique_ptr<ParameterServer> MakeStore(std::size_t dim,
                                           std::size_t num_shards) {
  auto store = std::make_unique<ParameterServer>(dim, num_shards,
                                                 UnitApplier());
  DenseVector params(dim);
  std::iota(params.begin(), params.end(), 1.0);
  store->SetParams(std::move(params));
  return store;
}

ShardClientConfig ClientConfigFor(const ParameterServer& store,
                                  std::uint16_t port) {
  ShardClientConfig config;
  const Endpoint endpoint{"127.0.0.1", port};
  for (std::size_t s = 0; s < store.num_shards(); ++s) {
    const ShardInfo info = store.shard(s);
    config.topology.shards.push_back(
        ShardPlacement{info.offset, info.length, endpoint});
  }
  return config;
}

class TransportTest : public ::testing::TestWithParam<ServerModel> {
 protected:
  // Builds + starts the parameterized server model for `store`.
  std::unique_ptr<ShardServerBase> StartServer(ParameterServer* store,
                                               ShardServerConfig config = {}) {
    config.model = GetParam();
    auto server = MakeShardServer(store, std::move(config));
    EXPECT_TRUE(server->Start());
    return server;
  }
};

INSTANTIATE_TEST_SUITE_P(
    Models, TransportTest,
    ::testing::Values(ServerModel::kThreadPerConn, ServerModel::kEventLoop),
    [](const ::testing::TestParamInfo<ServerModel>& info) {
      return info.param == ServerModel::kEventLoop ? "EventLoop"
                                                   : "ThreadPerConn";
    });

TEST_P(TransportTest, ServerStartStopIsClean) {
  auto store = MakeStore(10, 3);
  auto server = StartServer(store.get());
  EXPECT_GT(server->port(), 0);
  server->Stop();
  server->Stop();  // idempotent
}

TEST_P(TransportTest, TwoServersGetDistinctEphemeralPorts) {
  auto store = MakeStore(10, 2);
  auto a = StartServer(store.get());
  auto b = StartServer(store.get());
  EXPECT_NE(a->port(), b->port());
}

TEST_P(TransportTest, PullMatchesDirectPullBitwise) {
  auto store = MakeStore(17, 4);
  auto server = StartServer(store.get());
  ShardClient client(ClientConfigFor(*store, server->port()));
  ASSERT_TRUE(client.Connect());
  EXPECT_EQ(client.num_links(), 1u);  // 4 shards, one endpoint, one socket

  const PullResult direct = store->Pull();
  const PullResult wire = client.Pull();
  EXPECT_EQ(wire.params, direct.params);
  EXPECT_EQ(wire.version, direct.version);

  const ShardPullResult shard_direct = store->PullShard(2);
  const ShardPullResult shard_wire = client.PullShard(2);
  EXPECT_EQ(shard_wire.offset, shard_direct.offset);
  EXPECT_EQ(shard_wire.params, shard_direct.params);
  EXPECT_EQ(shard_wire.shard_version, shard_direct.shard_version);
  EXPECT_EQ(shard_wire.version, shard_direct.version);
}

TEST_P(TransportTest, PoolArgumentStaysCompatible) {
  // Pre-mux call sites passed a pull pool; the pipelined client accepts and
  // ignores it, and the composed pull still matches the direct one.
  auto store = MakeStore(101, 5);
  auto server = StartServer(store.get());
  ShardClient client(ClientConfigFor(*store, server->port()));
  ASSERT_TRUE(client.Connect());
  ThreadPool pool(4);
  const PullResult wire = client.Pull(&pool);
  EXPECT_EQ(wire.params, store->Pull().params);
}

// The scripted op timeline: one deterministic sequence of pulls and pushes
// (dense, sparse spanning a shard boundary, empty) executed once directly
// and once over the wire. Every observation — pulled bytes, versions, and
// the scheduler decisions the observations drive — must be identical.
struct OpObservation {
  std::vector<double> pulled;
  std::uint64_t pull_version = 0;
  std::uint64_t push_version = 0;
};

template <typename PullFn, typename PushFn>
std::vector<OpObservation> RunScriptedTimeline(PullFn pull, PushFn push) {
  std::vector<OpObservation> log;
  const auto observe_pull = [&] {
    OpObservation obs;
    PullResult r = pull();
    obs.pulled = std::move(r.params);
    obs.pull_version = r.version;
    log.push_back(std::move(obs));
  };
  const auto observe_push = [&](const Gradient& g, EpochId epoch) {
    OpObservation obs;
    obs.push_version = push(g, epoch);
    log.push_back(std::move(obs));
  };

  observe_pull();
  Gradient dense = Gradient::Dense(10);
  for (std::size_t i = 0; i < 10; ++i) dense.dense()[i] = 0.25 * (i + 1);
  observe_push(dense, 0);
  observe_pull();

  Gradient boundary = Gradient::Sparse();  // spans the [0,4)/[4,7) boundary
  boundary.sparse().Add(3, 1.0);
  boundary.sparse().Add(4, -1.0);
  boundary.sparse().Add(9, 0.5);
  observe_push(boundary, 1);
  observe_pull();

  Gradient empty = Gradient::Sparse();  // still one logical push
  observe_push(empty, 1);
  observe_push(dense, 2);
  observe_pull();
  return log;
}

// Replays the observed timeline as scheduler input: each pull observation is
// a HandlePull, each push observation a HandleNotify whose timing is derived
// from the observed version (so any transport-level divergence in versions
// changes the decisions). Returns a printable decision trace.
std::string SchedulerDecisions(const std::vector<OpObservation>& log) {
  SchedulerConfig config;
  config.num_workers = 2;
  config.initial_params.abort_time = Duration::Milliseconds(50.0);
  config.initial_params.abort_rate = 0.5;
  SpecSyncScheduler scheduler(
      config,
      std::make_unique<FixedSpeculationPolicy>(config.initial_params));
  std::string trace;
  IterationId iteration = 0;
  SimTime now = SimTime::FromSeconds(0.0);
  for (const OpObservation& obs : log) {
    now = now + Duration::Milliseconds(10.0);
    if (!obs.pulled.empty() || obs.pull_version > 0 || obs.push_version == 0) {
      scheduler.HandlePull(obs.pull_version % config.num_workers, now);
      trace += "pull@" + std::to_string(obs.pull_version) + ";";
      continue;
    }
    const WorkerId worker = obs.push_version % config.num_workers;
    auto request = scheduler.HandleNotify(worker, iteration++, now);
    if (request.has_value()) {
      const SimTime fire = now + request->delay;
      const bool resync =
          scheduler.HandleCheckTimer(worker, request->token, fire);
      trace += "check@" + std::to_string(request->delay.milliseconds()) +
               (resync ? "!resync;" : ";");
    } else {
      trace += "nocheck;";
    }
  }
  return trace;
}

TEST_P(TransportTest, LoopbackTimelineIsEquivalentToInProcess) {
  // Direct run.
  auto direct_store = MakeStore(10, 3);
  const auto direct_log = RunScriptedTimeline(
      [&] { return direct_store->Pull(); },
      [&](const Gradient& g, EpochId e) { return direct_store->Push(g, e); });

  // Wire run against an identically initialized store.
  auto wire_store = MakeStore(10, 3);
  auto server = StartServer(wire_store.get());
  ShardClient client(ClientConfigFor(*wire_store, server->port()));
  ASSERT_TRUE(client.Connect());
  const auto wire_log = RunScriptedTimeline(
      [&] { return client.Pull(); },
      [&](const Gradient& g, EpochId e) { return client.Push(g, e); });

  // Identical final store state, bit for bit.
  EXPECT_EQ(wire_store->Snapshot(), direct_store->Snapshot());
  EXPECT_EQ(wire_store->version(), direct_store->version());
  for (std::size_t s = 0; s < direct_store->num_shards(); ++s) {
    EXPECT_EQ(wire_store->shard(s).version, direct_store->shard(s).version)
        << "shard " << s;
  }

  // Identical per-op observations.
  ASSERT_EQ(wire_log.size(), direct_log.size());
  for (std::size_t i = 0; i < direct_log.size(); ++i) {
    EXPECT_EQ(wire_log[i].pulled, direct_log[i].pulled) << "op " << i;
    EXPECT_EQ(wire_log[i].pull_version, direct_log[i].pull_version)
        << "op " << i;
    EXPECT_EQ(wire_log[i].push_version, direct_log[i].push_version)
        << "op " << i;
  }

  // Identical scheduler decisions when the observations drive the protocol.
  EXPECT_EQ(SchedulerDecisions(wire_log), SchedulerDecisions(direct_log));
}

TEST_P(TransportTest, SparsePushAcrossShardBoundary) {
  auto store = MakeStore(10, 2);  // shards [0,5) and [5,10)
  auto server = StartServer(store.get());
  ShardClient client(ClientConfigFor(*store, server->port()));
  ASSERT_TRUE(client.Connect());

  Gradient g = Gradient::Sparse();
  g.sparse().Add(4, 10.0);  // last index of shard 0
  g.sparse().Add(5, 20.0);  // first index of shard 1
  EXPECT_EQ(client.Push(g, 0), 1u);

  const DenseVector params = store->Snapshot();
  EXPECT_DOUBLE_EQ(params[4], 5.0 - 10.0);  // iota init minus lr=1 gradient
  EXPECT_DOUBLE_EQ(params[5], 6.0 - 20.0);
  EXPECT_EQ(store->shard(0).version, 1u);
  EXPECT_EQ(store->shard(1).version, 1u);
  EXPECT_EQ(store->version(), 1u);
}

TEST_P(TransportTest, EmptyGradientPushStillCommits) {
  auto store = MakeStore(10, 2);
  auto server = StartServer(store.get());
  ShardClient client(ClientConfigFor(*store, server->port()));
  ASSERT_TRUE(client.Connect());
  EXPECT_EQ(client.Push(Gradient::Sparse(), 0), 1u);
  EXPECT_EQ(store->version(), 1u);
  EXPECT_EQ(store->shard(0).version, 0u);  // empty slice touches nothing
}

TEST_P(TransportTest, UnservedShardAnsweredWithBadShardAck) {
  auto store = MakeStore(10, 2);
  ShardServerConfig config;
  config.served_shards = {0};  // this server owns shard 0 only
  auto server = StartServer(store.get(), std::move(config));

  TcpConnection conn = TcpConnection::ConnectLoopback(server->port());
  ASSERT_TRUE(conn.valid());
  const auto frame = EncodeFrame(PullShardReq{1}, 77);
  ASSERT_TRUE(conn.SendAll(frame));
  std::vector<std::uint8_t> reply;
  ASSERT_EQ(conn.RecvFrame(reply,
                           std::chrono::steady_clock::now() +
                               std::chrono::seconds(5)),
            TcpConnection::RecvStatus::kFrame);
  std::uint64_t id = 0;
  WireMessage out;
  ASSERT_EQ(DecodeFrame(reply, id, out), WireStatus::kOk);
  EXPECT_EQ(id, 77u);
  ASSERT_TRUE(std::holds_alternative<AckResp>(out));
  EXPECT_EQ(std::get<AckResp>(out).status, kAckBadShard);
  EXPECT_EQ(server->stats().rejected, 1u);
}

TEST_P(TransportTest, MalformedFrameKillsOnlyItsConnection) {
  auto store = MakeStore(10, 2);
  auto server = StartServer(store.get());

  // Connection 1 sends garbage with a valid-looking length and dies.
  TcpConnection bad = TcpConnection::ConnectLoopback(server->port());
  ASSERT_TRUE(bad.valid());
  std::vector<std::uint8_t> garbage(kHeaderBytes, 0xff);
  ASSERT_TRUE(bad.SendAll(garbage));
  std::vector<std::uint8_t> reply;
  EXPECT_EQ(bad.RecvFrame(reply,
                          std::chrono::steady_clock::now() +
                              std::chrono::seconds(5)),
            TcpConnection::RecvStatus::kClosed);

  // The server keeps serving new clients.
  ShardClient client(ClientConfigFor(*store, server->port()));
  ASSERT_TRUE(client.Connect());
  EXPECT_EQ(client.Pull().params, store->Pull().params);
  EXPECT_GE(server->stats().bad_frames, 1u);
}

TEST_P(TransportTest, ReconnectsAfterServerRestartOnSamePort) {
  auto store = MakeStore(12, 3);
  auto first = StartServer(store.get());
  const std::uint16_t port = first->port();

  ShardClientConfig client_config = ClientConfigFor(*store, port);
  client_config.request_timeout = std::chrono::milliseconds(100);
  client_config.max_attempts = 64;
  ShardClient client(client_config);
  ASSERT_TRUE(client.Connect());
  EXPECT_EQ(client.Pull().params, store->Pull().params);

  // Restart on the same port (SO_REUSEADDR makes the rebind immediate). The
  // client's link dies with the first server; the next request must notice,
  // reconnect, and succeed — no new ShardClient.
  first->Stop();
  ShardServerConfig restart_config;
  restart_config.bind.port = port;
  auto second = StartServer(store.get(), std::move(restart_config));
  ASSERT_EQ(second->port(), port);

  EXPECT_EQ(client.Pull().params, store->Pull().params);
  EXPECT_GE(client.stats().reconnects, 1u);
}

// The join-while-accepting audit: Stop() racing live connection churn must
// join the accept thread before reaping connections, never deadlock, and
// never crash. Hammered across repeated start/stop rounds with raw
// connections arriving the whole time, plus concurrent Stop() callers.
TEST_P(TransportTest, StartStopSurvivesConnectionHammer) {
  auto store = MakeStore(16, 2);
  for (int round = 0; round < 8; ++round) {
    auto server = StartServer(store.get());
    const std::uint16_t port = server->port();
    std::atomic<bool> quit{false};
    std::vector<std::jthread> hammers;
    for (int t = 0; t < 4; ++t) {
      hammers.emplace_back([&, t] {
        const auto frame = EncodeFrame(PullShardReq{0}, 1 + t);
        while (!quit.load(std::memory_order_relaxed)) {
          TcpConnection conn = TcpConnection::ConnectLoopback(port);
          if (!conn.valid()) continue;  // server already gone this round
          if (!conn.SendAll(frame)) continue;
          std::vector<std::uint8_t> reply;
          (void)conn.RecvFrame(reply, std::chrono::steady_clock::now() +
                                          std::chrono::milliseconds(100));
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    // Two concurrent stoppers while connections keep arriving.
    std::jthread other_stopper([&] { server->Stop(); });
    server->Stop();
    other_stopper.join();
    quit.store(true);
    hammers.clear();
    server->Stop();  // idempotent after the storm
  }
}

TEST_P(TransportTest, SurvivesDropDelayDuplicateInjection) {
  auto store = MakeStore(40, 4);
  auto server = StartServer(store.get());

  FaultPlanConfig fault_config;
  fault_config.data.drop_probability = 0.15;
  fault_config.data.delay_probability = 0.15;
  fault_config.data.delay_mean = Duration::Milliseconds(2.0);
  fault_config.data.duplicate_probability = 0.15;
  fault_config.seed = 99;
  FaultPlan faults(fault_config);

  ShardClientConfig client_config = ClientConfigFor(*store, server->port());
  client_config.request_timeout = std::chrono::milliseconds(50);
  client_config.max_attempts = 64;
  ShardClient client(client_config, &faults);
  ASSERT_TRUE(client.Connect());

  constexpr std::size_t kWorkers = 3;
  constexpr std::size_t kPushesPerWorker = 10;
  std::vector<std::jthread> workers;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      // Each worker gets its own client: independent connections, like
      // independent machines.
      ShardClient mine(client_config, &faults);
      ASSERT_TRUE(mine.Connect());
      Gradient g = Gradient::Dense(40);
      for (std::size_t i = 0; i < 40; ++i) {
        g.dense()[i] = 0.001 * static_cast<double>(w + 1);
      }
      for (std::size_t it = 0; it < kPushesPerWorker; ++it) {
        const PullResult snapshot = mine.Pull();
        ASSERT_EQ(snapshot.params.size(), 40u);
        mine.Push(g, it);
      }
    });
  }
  workers.clear();  // join

  // Retried pushes may re-commit (at-least-once), so the version is a floor.
  EXPECT_GE(store->version(), kWorkers * kPushesPerWorker);
  for (const double v : store->Snapshot()) {
    EXPECT_TRUE(std::isfinite(v));
  }
  const ShardClient::Stats stats = client.stats();
  (void)stats;  // per-worker clients carry the interesting counters
}

TEST_P(TransportTest, ClientStatsCountInjectedFaults) {
  auto store = MakeStore(10, 1);
  auto server = StartServer(store.get());

  FaultPlanConfig fault_config;
  fault_config.data.drop_probability = 1.0;  // every attempt times out
  FaultPlan faults(fault_config);

  ShardClientConfig client_config = ClientConfigFor(*store, server->port());
  client_config.request_timeout = std::chrono::milliseconds(10);
  client_config.max_attempts = 3;
  ShardClient client(client_config, &faults);
  ASSERT_TRUE(client.Connect());
  EXPECT_THROW(client.PullShard(0), CheckError);
  const ShardClient::Stats stats = client.stats();
  EXPECT_EQ(stats.injected_drops, 3u);
  EXPECT_EQ(stats.timeouts, 3u);
  EXPECT_EQ(stats.retries, 2u);
}

TEST_P(TransportTest, RetransmitLedgerCountsRetriesNotGoodput) {
  // Satellite regression for the retry-accounting fix: under a FaultPlan drop
  // schedule the retried frames' bytes must land in the dedicated retransmit
  // ledger (client stat + "net.link.retransmit_bytes" counter) and never stay
  // zero, while a fault-free client's ledger stays exactly zero — goodput is
  // not inflated by a clean link.
  auto store = MakeStore(24, 2);
  auto server = StartServer(store.get());

  {  // Clean link: zero retransmit, by construction.
    ShardClient clean(ClientConfigFor(*store, server->port()));
    ASSERT_TRUE(clean.Connect());
    for (int i = 0; i < 4; ++i) (void)clean.Pull();
    EXPECT_EQ(clean.stats().retransmit_bytes, 0u);
  }

  FaultPlanConfig fault_config;
  fault_config.data.drop_probability = 0.4;
  fault_config.seed = 7;
  FaultPlan faults(fault_config);

  obs::MetricsRegistry metrics;
  ShardClientConfig client_config = ClientConfigFor(*store, server->port());
  client_config.request_timeout = std::chrono::milliseconds(20);
  client_config.max_attempts = 64;
  ShardClient client(client_config, &faults, &metrics);
  ASSERT_TRUE(client.Connect());

  Gradient g = Gradient::Dense(24);
  for (std::size_t i = 0; i < 24; ++i) g.dense()[i] = 0.5;
  for (int it = 0; it < 6; ++it) {
    (void)client.Pull();
    (void)client.Push(g, static_cast<EpochId>(it));
  }

  const ShardClient::Stats stats = client.stats();
  // 40% drops over dozens of requests: some attempt retried with certainty
  // for any reasonable seed (this one verified).
  EXPECT_GT(stats.retries, 0u);
  EXPECT_GT(stats.retransmit_bytes, 0u);
  const std::string label =
      "{link=127.0.0.1:" + std::to_string(server->port()) + "}";
  EXPECT_EQ(metrics.counter("net.link.retransmit_bytes" + label).value(),
            stats.retransmit_bytes);
}

TEST_P(TransportTest, DuplicateInjectionSecondCopyIsRetransmit) {
  // Every injected duplicate's second copy is pure overhead: it must be
  // charged to the retransmit ledger even though no request ever retried.
  auto store = MakeStore(10, 1);
  auto server = StartServer(store.get());

  FaultPlanConfig fault_config;
  fault_config.data.duplicate_probability = 1.0;
  FaultPlan faults(fault_config);

  ShardClientConfig client_config = ClientConfigFor(*store, server->port());
  ShardClient client(client_config, &faults);
  ASSERT_TRUE(client.Connect());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(client.PullShard(0).params, store->PullShard(0).params);
  }

  const ShardClient::Stats stats = client.stats();
  EXPECT_EQ(stats.injected_duplicates, stats.requests);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_GT(stats.retransmit_bytes, 0u);
}

// --- compression over the wire ----------------------------------------------

TEST_P(TransportTest, DeltaPullServesUnchangedShardsViaNotModified) {
  auto store = MakeStore(12, 3);
  auto server = StartServer(store.get());

  ShardClientConfig client_config = ClientConfigFor(*store, server->port());
  client_config.compression = *CompressionSpec::Parse("delta");
  ShardClient client(client_config);
  ASSERT_TRUE(client.Connect());

  // Cold cache: every shard is a miss shipping the full slice.
  EXPECT_EQ(client.Pull().params, store->Pull().params);
  EXPECT_EQ(client.stats().delta_misses, 3u);
  EXPECT_EQ(client.stats().delta_hits, 0u);

  // Nothing changed: every shard answered not-modified from the cache.
  EXPECT_EQ(client.Pull().params, store->Pull().params);
  EXPECT_EQ(client.stats().delta_hits, 3u);

  // Touch only shard 0 (indices [0,4)): exactly one miss, two hits, and the
  // composed snapshot still matches the store bit for bit.
  Gradient g = Gradient::Sparse();
  g.sparse().Add(1, 2.0);
  store->Push(g, 0);
  EXPECT_EQ(client.Pull().params, store->Pull().params);
  EXPECT_EQ(client.stats().delta_misses, 4u);
  EXPECT_EQ(client.stats().delta_hits, 5u);
}

TEST_P(TransportTest, CodedPushMatchesDirectApplyBitwise) {
  // int8/fp16 ship the compact kind-2 frames; because Transform() already
  // made the gradient idempotent under re-quantization, the wire store must
  // land bit-identical to applying the transformed gradient directly.
  for (const char* literal : {"int8", "fp16"}) {
    const CompressionSpec spec = *CompressionSpec::Parse(literal);
    auto direct_store = MakeStore(10, 3);
    auto wire_store = MakeStore(10, 3);
    auto server = StartServer(wire_store.get());

    ShardClientConfig client_config =
        ClientConfigFor(*wire_store, server->port());
    client_config.compression = spec;
    ShardClient client(client_config);
    ASSERT_TRUE(client.Connect());

    GradientCodec codec(spec, /*num_workers=*/1,
                        ParameterServer::ShardSplit(10, 3));
    Gradient dense = Gradient::Dense(10);
    for (std::size_t i = 0; i < 10; ++i) {
      dense.dense()[i] = 0.3 * static_cast<double>(i) - 1.1;
    }
    Gradient sparse = Gradient::Sparse();
    sparse.sparse().Add(2, -0.0625);
    sparse.sparse().Add(7, 5e-324);  // denormal: flushed to zero identically
    for (Gradient* grad : {&dense, &sparse}) {
      codec.Transform(WorkerId{0}, *grad);
      const std::uint64_t direct_version = direct_store->Push(*grad, 0);
      EXPECT_EQ(client.Push(*grad, 0), direct_version) << literal;
    }
    EXPECT_EQ(wire_store->Snapshot(), direct_store->Snapshot()) << literal;
  }
}

// --- observability ----------------------------------------------------------

TEST_P(TransportTest, PerLinkCountersExportedToRegistry) {
  // Same restart scenario as ReconnectsAfterServerRestartOnSamePort, but the
  // assertion moves to the registry: the client's internal reconnect count
  // must surface as a per-link labeled counter.
  auto store = MakeStore(12, 3);
  auto first = StartServer(store.get());
  const std::uint16_t port = first->port();

  obs::MetricsRegistry metrics;
  ShardClientConfig client_config = ClientConfigFor(*store, port);
  client_config.request_timeout = std::chrono::milliseconds(100);
  client_config.max_attempts = 64;
  ShardClient client(client_config, nullptr, &metrics);
  ASSERT_TRUE(client.Connect());
  EXPECT_EQ(client.Pull().params, store->Pull().params);

  first->Stop();
  ShardServerConfig restart_config;
  restart_config.bind.port = port;
  auto second = StartServer(store.get(), std::move(restart_config));
  ASSERT_EQ(second->port(), port);
  EXPECT_EQ(client.Pull().params, store->Pull().params);

  const std::string label = "{link=127.0.0.1:" + std::to_string(port) + "}";
  const std::uint64_t reconnects =
      metrics.counter("net.link.reconnects" + label).value();
  EXPECT_GE(reconnects, 1u);
  EXPECT_EQ(reconnects, client.stats().reconnects);
  EXPECT_EQ(metrics.counter("net.link.stale_frames" + label).value(),
            client.stats().stale_frames);
  // Quiescent client: nothing pending or in flight.
  EXPECT_EQ(metrics.gauge("net.link.pending_depth" + label).value(), 0.0);
  EXPECT_EQ(metrics.gauge("net.link.in_flight" + label).value(), 0.0);
}

TEST_P(TransportTest, ClientAndServerSpansStitchViaFlowIds) {
  // Client and server each record into their own SpanRecorder (as two
  // processes would); every client request span's flow_out id must appear as
  // some server serve span's flow_in id — the in-process version of the
  // >=95% stitch gate bench_transport's merged trace is held to.
  auto store = MakeStore(20, 2);
  obs::SpanRecorder server_spans;
  ShardServerConfig server_config;
  server_config.model = GetParam();
  auto server =
      MakeShardServer(store.get(), std::move(server_config), nullptr,
                      &server_spans);
  ASSERT_TRUE(server->Start());

  obs::SpanRecorder client_spans;
  ShardClient client(ClientConfigFor(*store, server->port()), nullptr, nullptr,
                     &client_spans);
  ASSERT_TRUE(client.Connect());

  Gradient g = Gradient::Sparse();
  g.sparse().Add(3, 0.5);
  g.sparse().Add(12, -0.25);
  for (int i = 0; i < 4; ++i) {
    (void)client.Pull();
    (void)client.Push(g, static_cast<EpochId>(i));
  }
  server->Stop();

  std::vector<std::uint64_t> out_ids;
  for (const obs::TraceEvent& event : client_spans.Events()) {
    if (event.category != "net.client") continue;
    EXPECT_NE(event.flow_out, 0u) << event.name;
    out_ids.push_back(event.flow_out);
  }
  // 4 rounds x (2 shard pulls + commit + shard pushes + commit) — at minimum
  // one client span per wire request; just require a healthy number.
  ASSERT_GE(out_ids.size(), 8u);

  std::vector<std::uint64_t> in_ids;
  for (const obs::TraceEvent& event : server_spans.Events()) {
    if (event.category != "net.server") continue;
    EXPECT_NE(event.flow_in, 0u) << event.name;
    in_ids.push_back(event.flow_in);
  }
  for (const std::uint64_t id : out_ids) {
    EXPECT_NE(std::find(in_ids.begin(), in_ids.end(), id), in_ids.end())
        << "client flow id 0x" << std::hex << id
        << " has no server-side serve span";
  }
}

TEST_P(TransportTest, EventLoopTelemetryReachesRegistry) {
  if (GetParam() != ServerModel::kEventLoop) {
    GTEST_SKIP() << "event-loop internals only";
  }
  auto store = MakeStore(16, 2);
  obs::MetricsRegistry metrics;
  ShardServerConfig config;
  config.model = ServerModel::kEventLoop;
  auto server = MakeShardServer(store.get(), std::move(config), &metrics);
  ASSERT_TRUE(server->Start());

  auto client = std::make_unique<ShardClient>(
      ClientConfigFor(*store, server->port()));
  ASSERT_TRUE(client->Connect());
  for (int i = 0; i < 3; ++i) (void)client->Pull();
  EXPECT_EQ(metrics.gauge("net.eloop.conns").value(), 1.0);
  EXPECT_EQ(metrics.counter("net.eloop.accepts").value(), 1u);
  EXPECT_GT(metrics.histogram("net.eloop.pool_wait_s").count(), 0u);
  EXPECT_GT(metrics.histogram("net.eloop.out_queue_s").count(), 0u);
  EXPECT_GT(metrics.histogram("net.eloop.epoll_wait_s").count(), 0u);
  EXPECT_GT(metrics.histogram("net.eloop.dispatch_s").count(), 0u);

  client.reset();  // disconnect: the loop sees EOF and drops the conn
  server->Stop();
  // Every byte gauge must return to zero once all connections are gone.
  EXPECT_EQ(metrics.gauge("net.eloop.conns").value(), 0.0);
  EXPECT_EQ(metrics.gauge("net.eloop.reassembly_bytes").value(), 0.0);
  EXPECT_EQ(metrics.gauge("net.eloop.out_queue_bytes").value(), 0.0);
}

// --- Golden 8-worker digest -------------------------------------------------

// Bit-exact digest of the store: every parameter's bit pattern plus the
// global and per-shard version counters.
std::uint64_t StoreDigest(const ParameterServer& store) {
  Fnv1a h;
  for (const double v : store.Snapshot()) h.F64(v);
  h.U64(store.version());
  for (std::size_t s = 0; s < store.num_shards(); ++s) {
    h.U64(store.shard(s).version);
  }
  return h.digest();
}

// Deterministic 8-worker schedule, serialized round-robin so the op order —
// and therefore the float application order — is identical however the ops
// travel. Alternates dense pushes with boundary-spanning sparse pushes; all
// values are dyadic so nothing depends on rounding.
template <typename PullFn, typename PushFn>
void RunGoldenSchedule(std::size_t dim, PullFn pull, PushFn push) {
  constexpr std::size_t kGoldenWorkers = 8;
  constexpr std::size_t kRounds = 5;
  for (std::size_t r = 0; r < kRounds; ++r) {
    for (std::size_t w = 0; w < kGoldenWorkers; ++w) {
      const PullResult snapshot = pull(w);
      ASSERT_EQ(snapshot.params.size(), dim);
      if ((r + w) % 3 == 2) {
        Gradient g = Gradient::Sparse();
        g.sparse().Add((w * 7) % dim, 0.25 * static_cast<double>(w + 1));
        g.sparse().Add((w * 7 + dim / 2) % dim, -0.125);
        push(w, g, r);
      } else {
        Gradient g = Gradient::Dense(dim);
        for (std::size_t i = 0; i < dim; ++i) {
          g.dense()[i] = 0.0078125 * static_cast<double>((w + 1) * (r + 1)) +
                         0.015625 * static_cast<double>(i % 5);
        }
        push(w, g, r);
      }
    }
  }
}

// The acceptance gate: an 8-worker loopback schedule produces the same
// training digest as the direct in-process run, under BOTH server models.
TEST(TransportGoldenTest, EightWorkerDigestIdenticalAcrossModelsAndDirect) {
  constexpr std::size_t kDim = 64;
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kGoldenWorkers = 8;

  auto direct_store = MakeStore(kDim, kShards);
  RunGoldenSchedule(
      kDim, [&](std::size_t) { return direct_store->Pull(); },
      [&](std::size_t, const Gradient& g, EpochId e) {
        direct_store->Push(g, e);
      });
  const std::uint64_t direct_digest = StoreDigest(*direct_store);

  for (const ServerModel model :
       {ServerModel::kThreadPerConn, ServerModel::kEventLoop}) {
    auto store = MakeStore(kDim, kShards);
    ShardServerConfig config;
    config.model = model;
    auto server = MakeShardServer(store.get(), std::move(config));
    ASSERT_TRUE(server->Start());

    // One client per worker: eight live connections into one server.
    std::vector<std::unique_ptr<ShardClient>> clients;
    for (std::size_t w = 0; w < kGoldenWorkers; ++w) {
      clients.push_back(std::make_unique<ShardClient>(
          ClientConfigFor(*store, server->port())));
      ASSERT_TRUE(clients.back()->Connect());
    }
    RunGoldenSchedule(
        kDim, [&](std::size_t w) { return clients[w]->Pull(); },
        [&](std::size_t w, const Gradient& g, EpochId e) {
          clients[w]->Push(g, e);
        });
    EXPECT_EQ(StoreDigest(*store), direct_digest)
        << "model " << ServerModelName(model);
  }
}

// Tracing is record-only: the same schedule with full observability attached
// (metrics registry, span recorders on both sides, trace-context extension on
// every frame) must produce the same digest as the untraced direct run.
TEST(TransportGoldenTest, EightWorkerDigestUnchangedByTracing) {
  constexpr std::size_t kDim = 64;
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kGoldenWorkers = 8;

  auto direct_store = MakeStore(kDim, kShards);
  RunGoldenSchedule(
      kDim, [&](std::size_t) { return direct_store->Pull(); },
      [&](std::size_t, const Gradient& g, EpochId e) {
        direct_store->Push(g, e);
      });
  const std::uint64_t direct_digest = StoreDigest(*direct_store);

  for (const ServerModel model :
       {ServerModel::kThreadPerConn, ServerModel::kEventLoop}) {
    auto store = MakeStore(kDim, kShards);
    obs::MetricsRegistry metrics;
    obs::SpanRecorder server_spans;
    ShardServerConfig config;
    config.model = model;
    auto server =
        MakeShardServer(store.get(), std::move(config), &metrics,
                        &server_spans);
    ASSERT_TRUE(server->Start());

    obs::SpanRecorder client_spans;
    std::vector<std::unique_ptr<ShardClient>> clients;
    for (std::size_t w = 0; w < kGoldenWorkers; ++w) {
      ShardClientConfig client_config = ClientConfigFor(*store, server->port());
      client_config.trace_track = static_cast<std::uint32_t>(w);
      clients.push_back(std::make_unique<ShardClient>(
          std::move(client_config), nullptr, &metrics, &client_spans));
      ASSERT_TRUE(clients.back()->Connect());
    }
    RunGoldenSchedule(
        kDim, [&](std::size_t w) { return clients[w]->Pull(); },
        [&](std::size_t w, const Gradient& g, EpochId e) {
          clients[w]->Push(g, e);
        });
    EXPECT_EQ(StoreDigest(*store), direct_digest)
        << "model " << ServerModelName(model);
    EXPECT_GT(client_spans.event_count(), 0u);
    EXPECT_GT(server_spans.event_count(), 0u);
  }
}

}  // namespace
}  // namespace specsync::net
