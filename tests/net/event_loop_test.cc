// Event-loop server tests: the epoll model's structural guarantees (constant
// thread count, pipelined out-of-order service) plus the incremental frame
// reassembly fuzz — frames split at every byte boundary, coalesced frames,
// truncated-then-closed streams, and malformed bytes that must kill exactly
// one connection. The reassembly suite runs against BOTH server models: the
// wire contract does not care which concurrency model is listening.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "net/endpoint.h"
#include "net/shard_client.h"
#include "net/shard_server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "optim/lr_schedule.h"
#include "ps/param_store.h"

namespace specsync::net {
namespace {

std::unique_ptr<ParameterServer> MakeStore(std::size_t dim,
                                           std::size_t num_shards) {
  auto store = std::make_unique<ParameterServer>(
      dim, num_shards,
      std::make_shared<SgdApplier>(std::make_shared<ConstantSchedule>(1.0)));
  DenseVector params(dim);
  std::iota(params.begin(), params.end(), 1.0);
  store->SetParams(std::move(params));
  return store;
}

ShardClientConfig ClientConfigFor(const ParameterServer& store,
                                  std::uint16_t port) {
  ShardClientConfig config;
  const Endpoint endpoint{"127.0.0.1", port};
  for (std::size_t s = 0; s < store.num_shards(); ++s) {
    const ShardInfo info = store.shard(s);
    config.topology.shards.push_back(
        ShardPlacement{info.offset, info.length, endpoint});
  }
  return config;
}

// Receives one frame (5s deadline) and returns its decoded id + message.
bool RecvOne(TcpConnection& conn, std::uint64_t& id, WireMessage& out) {
  std::vector<std::uint8_t> reply;
  if (conn.RecvFrame(reply, std::chrono::steady_clock::now() +
                                std::chrono::seconds(5)) !=
      TcpConnection::RecvStatus::kFrame) {
    return false;
  }
  return DecodeFrame(reply, id, out) == WireStatus::kOk;
}

class ReassemblyTest : public ::testing::TestWithParam<ServerModel> {
 protected:
  std::unique_ptr<ShardServerBase> StartServer(ParameterServer* store,
                                               ShardServerConfig config = {}) {
    config.model = GetParam();
    auto server = MakeShardServer(store, std::move(config));
    EXPECT_TRUE(server->Start());
    return server;
  }
};

INSTANTIATE_TEST_SUITE_P(
    Models, ReassemblyTest,
    ::testing::Values(ServerModel::kThreadPerConn, ServerModel::kEventLoop),
    [](const ::testing::TestParamInfo<ServerModel>& info) {
      return info.param == ServerModel::kEventLoop ? "EventLoop"
                                                   : "ThreadPerConn";
    });

TEST_P(ReassemblyTest, FrameDribbledOneByteAtATimeIsReassembled) {
  auto store = MakeStore(10, 2);
  auto server = StartServer(store.get());
  TcpConnection conn = TcpConnection::ConnectLoopback(server->port());
  ASSERT_TRUE(conn.valid());

  // A payload-bearing request so the dribble crosses the header/payload seam
  // and several element boundaries.
  PushShardReq req;
  req.shard = 0;
  req.epoch = 1;
  req.sparse = true;
  req.indices = {0, 3, 4};
  req.values = {0.5, -1.0, 2.0};
  const auto frame = EncodeFrame(req, 99);
  for (const std::uint8_t byte : frame) {
    ASSERT_TRUE(conn.SendAll(std::span(&byte, 1)));
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }

  std::uint64_t id = 0;
  WireMessage out;
  ASSERT_TRUE(RecvOne(conn, id, out));
  EXPECT_EQ(id, 99u);
  ASSERT_TRUE(std::holds_alternative<AckResp>(out));
  EXPECT_EQ(std::get<AckResp>(out).status, kAckOk);
}

TEST_P(ReassemblyTest, CodedFrameDribbledByteWiseIsReassembled) {
  // The kind-2 coded encoding has an odd-sized layout (1-byte codec tag,
  // 8-byte scale, 1-byte values): dribbling it exercises reassembly seams no
  // f64-aligned frame hits. The int8 values are chosen pre-quantized so the
  // decoded push applies exactly.
  auto store = MakeStore(10, 2);
  auto server = StartServer(store.get());
  TcpConnection conn = TcpConnection::ConnectLoopback(server->port());
  ASSERT_TRUE(conn.valid());

  PushShardReq req;
  req.shard = 0;
  req.epoch = 2;
  req.sparse = true;
  req.coded = static_cast<std::uint8_t>(CodecKind::kInt8);
  req.indices = {1, 2, 4};
  req.values = {0.25, -1.0, 0.5};  // scale 1/64, all exactly coded
  const auto frame = EncodeFrame(req, 41);
  // 20 header + 4 shard + 8 epoch + 3 tags + 8 scale + 8 nnz + 24 idx + 3 q.
  ASSERT_EQ(frame.size(), 78u);
  for (const std::uint8_t byte : frame) {
    ASSERT_TRUE(conn.SendAll(std::span(&byte, 1)));
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }

  std::uint64_t id = 0;
  WireMessage out;
  ASSERT_TRUE(RecvOne(conn, id, out));
  EXPECT_EQ(id, 41u);
  ASSERT_TRUE(std::holds_alternative<AckResp>(out));
  EXPECT_EQ(std::get<AckResp>(out).status, kAckOk);
}

TEST_P(ReassemblyTest, FrameSplitAtEveryByteBoundaryIsReassembled) {
  auto store = MakeStore(10, 2);
  auto server = StartServer(store.get());
  const auto frame = EncodeFrame(PullShardReq{1}, 7);
  for (std::size_t split = 1; split < frame.size(); ++split) {
    TcpConnection conn = TcpConnection::ConnectLoopback(server->port());
    ASSERT_TRUE(conn.valid());
    ASSERT_TRUE(conn.SendAll(std::span(frame).first(split)));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_TRUE(conn.SendAll(std::span(frame).subspan(split)));
    std::uint64_t id = 0;
    WireMessage out;
    ASSERT_TRUE(RecvOne(conn, id, out)) << "split at byte " << split;
    EXPECT_EQ(id, 7u);
    EXPECT_TRUE(std::holds_alternative<PullShardResp>(out))
        << "split at byte " << split;
  }
}

TEST_P(ReassemblyTest, CoalescedFramesAreAllAnswered) {
  auto store = MakeStore(10, 2);
  auto server = StartServer(store.get());
  TcpConnection conn = TcpConnection::ConnectLoopback(server->port());
  ASSERT_TRUE(conn.valid());

  // Eight pipelined requests in ONE write: the server must peel frame after
  // frame out of a single receive buffer and answer each id exactly once.
  // Responses may legally arrive in any order (wire v2).
  constexpr std::uint64_t kBase = 1000;
  constexpr std::size_t kCount = 8;
  std::vector<std::uint8_t> burst;
  for (std::size_t i = 0; i < kCount; ++i) {
    const auto frame = EncodeFrame(
        PullShardReq{static_cast<std::uint32_t>(i % store->num_shards())},
        kBase + i);
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  ASSERT_TRUE(conn.SendAll(burst));

  std::set<std::uint64_t> answered;
  for (std::size_t i = 0; i < kCount; ++i) {
    std::uint64_t id = 0;
    WireMessage out;
    ASSERT_TRUE(RecvOne(conn, id, out)) << "response " << i;
    EXPECT_TRUE(std::holds_alternative<PullShardResp>(out));
    answered.insert(id);
  }
  EXPECT_EQ(answered.size(), kCount);
  EXPECT_EQ(*answered.begin(), kBase);
  EXPECT_EQ(*answered.rbegin(), kBase + kCount - 1);
}

TEST_P(ReassemblyTest, TruncatedFrameThenCloseLeavesServerServing) {
  auto store = MakeStore(10, 2);
  auto server = StartServer(store.get());
  {
    TcpConnection conn = TcpConnection::ConnectLoopback(server->port());
    ASSERT_TRUE(conn.valid());
    const auto frame = EncodeFrame(PullShardReq{0}, 1);
    ASSERT_TRUE(conn.SendAll(std::span(frame).first(kHeaderBytes / 2)));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }  // stream closes mid-header
  {
    TcpConnection conn = TcpConnection::ConnectLoopback(server->port());
    ASSERT_TRUE(conn.valid());
    const auto frame = EncodeFrame(PullShardReq{0}, 2);
    // Full header + half the payload, then close.
    ASSERT_TRUE(conn.SendAll(
        std::span(frame).first(kHeaderBytes + (frame.size() - kHeaderBytes) / 2)));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }  // stream closes mid-payload

  ShardClient client(ClientConfigFor(*store, server->port()));
  ASSERT_TRUE(client.Connect());
  EXPECT_EQ(client.Pull().params, store->Pull().params);
}

TEST_P(ReassemblyTest, MalformedPayloadKillsOnlyItsConnection) {
  auto store = MakeStore(10, 2);
  auto server = StartServer(store.get());
  TcpConnection bad = TcpConnection::ConnectLoopback(server->port());
  ASSERT_TRUE(bad.valid());

  // Valid header, corrupt body: the dense/sparse kind byte (offset
  // header + u32 shard + u64 epoch) set to an undefined value.
  auto frame = EncodeFrame(PushShardReq{}, 5);
  frame[kHeaderBytes + 4 + 8] = 7;
  ASSERT_TRUE(bad.SendAll(frame));
  std::vector<std::uint8_t> reply;
  EXPECT_EQ(bad.RecvFrame(reply, std::chrono::steady_clock::now() +
                                     std::chrono::seconds(5)),
            TcpConnection::RecvStatus::kClosed);

  ShardClient client(ClientConfigFor(*store, server->port()));
  ASSERT_TRUE(client.Connect());
  EXPECT_EQ(client.Pull().params, store->Pull().params);
  EXPECT_GE(server->stats().bad_frames, 1u);
}

// --- Pipelining regression (the reason wire v2 exists) ----------------------

// With an injected 25 ms service delay per request, a Pull over 8 shards is 8
// pipelined requests on one connection. The event-loop server runs them on
// its pool concurrently: the batch costs ~1 delay. The thread-per-connection
// server is strictly serial per connection: the same batch costs >= 8 delays
// (a deterministic floor — sleeps do not undershoot). This pins the
// regression: if the client ever goes back to serial round trips, or the
// event-loop server serializes its pool, the pipelined bound breaks.
TEST(PipeliningTest, PipelinedPullCostsOneDelayBatchNotNSerialRoundTrips) {
  constexpr std::size_t kShards = 8;
  constexpr std::chrono::milliseconds kDelay{25};
  const auto timed_pull = [](ShardClient& client) {
    const auto start = std::chrono::steady_clock::now();
    const PullResult result = client.Pull();
    EXPECT_EQ(result.params.size(), 64u);
    return std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
  };

  auto store = MakeStore(64, kShards);
  ShardServerConfig server_config;
  server_config.service_delay = kDelay;
  server_config.pool_threads = kShards;

  // Event loop: all 8 delayed requests sleep on the pool concurrently.
  server_config.model = ServerModel::kEventLoop;
  auto event_loop = MakeShardServer(store.get(), server_config);
  ASSERT_TRUE(event_loop->Start());
  ShardClientConfig client_config = ClientConfigFor(*store, event_loop->port());
  client_config.request_timeout = std::chrono::milliseconds(2000);
  {
    ShardClient client(client_config);
    ASSERT_TRUE(client.Connect());
    (void)timed_pull(client);  // warm the link
    const auto pipelined = timed_pull(client);
    EXPECT_GE(pipelined, kDelay);           // the delay is really in the path
    EXPECT_LT(pipelined, 4 * kDelay);       // ~1 batch, nowhere near 8 serial
  }
  event_loop->Stop();

  // Thread-per-conn: one connection is served serially, so the same batch
  // pays every delay back to back.
  server_config.model = ServerModel::kThreadPerConn;
  auto serial = MakeShardServer(store.get(), server_config);
  ASSERT_TRUE(serial->Start());
  client_config = ClientConfigFor(*store, serial->port());
  client_config.request_timeout = std::chrono::milliseconds(2000);
  {
    ShardClient client(client_config);
    ASSERT_TRUE(client.Connect());
    const auto batch = timed_pull(client);
    EXPECT_GE(batch, kShards * kDelay);
  }
}

// --- Thread-count structure -------------------------------------------------

TEST(EventLoopTest, ThreadCountStaysConstantUnderManyConnections) {
  auto store = MakeStore(16, 2);
  ShardServerConfig config;
  config.model = ServerModel::kEventLoop;
  config.pool_threads = 3;
  auto server = MakeShardServer(store.get(), std::move(config));
  ASSERT_TRUE(server->Start());
  const std::size_t baseline = server->thread_count();
  EXPECT_EQ(baseline, 1u + 3u);  // loop + pool, nothing per-connection

  std::vector<TcpConnection> held;
  for (int i = 0; i < 24; ++i) {
    TcpConnection conn = TcpConnection::ConnectLoopback(server->port());
    ASSERT_TRUE(conn.valid());
    ASSERT_TRUE(conn.SendAll(EncodeFrame(PullShardReq{0}, 1 + i)));
    std::uint64_t id = 0;
    WireMessage out;
    ASSERT_TRUE(RecvOne(conn, id, out));
    held.push_back(std::move(conn));  // keep every connection open
  }
  EXPECT_EQ(server->thread_count(), baseline);
  EXPECT_GE(server->stats().pulls, 24u);
}

TEST(EventLoopTest, ThreadPerConnGrowsWithConnectionsByConstruction) {
  // The contrast case documenting WHY the event loop exists: the legacy
  // model's thread count scales with held-open connections.
  auto store = MakeStore(16, 2);
  auto server = MakeShardServer(store.get(), ShardServerConfig{});
  ASSERT_TRUE(server->Start());

  std::vector<TcpConnection> held;
  for (int i = 0; i < 8; ++i) {
    TcpConnection conn = TcpConnection::ConnectLoopback(server->port());
    ASSERT_TRUE(conn.valid());
    ASSERT_TRUE(conn.SendAll(EncodeFrame(PullShardReq{0}, 1 + i)));
    std::uint64_t id = 0;
    WireMessage out;
    ASSERT_TRUE(RecvOne(conn, id, out));
    held.push_back(std::move(conn));
  }
  EXPECT_GE(server->thread_count(), 1u + 8u);  // accept + one per held conn
}

}  // namespace
}  // namespace specsync::net
